// Command datagen generates a synthetic heterogeneous academic network
// (the Aminer/DBLP/ACM stand-ins of DESIGN.md) and writes it as JSON for
// use with cmd/expertfind or external tooling.
//
// Usage:
//
//	datagen -preset aminer -papers 2000 -out aminer.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"expertfind/internal/cluster"
	"expertfind/internal/dataset"
)

func main() {
	var (
		preset  = flag.String("preset", "aminer", "dataset preset: aminer, dblp, or acm")
		papers  = flag.Int("papers", 0, "number of papers (0 for the preset default)")
		seed    = flag.Int64("seed", 0, "override the preset's random seed (0 keeps it)")
		out     = flag.String("out", "", "output file (default stdout)")
		queries = flag.Int("queries", 0, "also write this many evaluation queries to <out>.queries.json")
		qseed   = flag.Int64("qseed", 1, "random seed for query sampling")
		shards  = flag.Int("shards", 0, "also write an S-way paper partition to <out>.shards/ (requires -out)")
	)
	flag.Parse()

	var cfg dataset.Config
	switch *preset {
	case "aminer":
		cfg = dataset.AminerSim(*papers)
	case "dblp":
		cfg = dataset.DBLPSim(*papers)
	case "acm":
		cfg = dataset.ACMSim(*papers)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q\n", *preset)
		os.Exit(1)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	ds := dataset.Generate(cfg)
	st := ds.Graph.Stats()
	fmt.Fprintf(os.Stderr, "generated %s: %d papers, %d experts, %d venues, %d topics, %d relations\n",
		cfg.Name, st.Papers, st.Experts, st.Venues, st.Topics, st.Relations)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.Graph.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	if *queries > 0 {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "datagen: -queries requires -out")
			os.Exit(1)
		}
		qf, err := os.Create(*out + ".queries.json")
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer qf.Close()
		qs := ds.Queries(*queries, rand.New(rand.NewSource(*qseed)))
		if err := dataset.WriteQueriesJSON(qf, qs); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d queries to %s.queries.json\n", len(qs), *out)
	}

	if *shards > 0 {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "datagen: -shards requires -out")
			os.Exit(1)
		}
		dir := *out + ".shards"
		man, err := cluster.WritePartition(dir, ds.Graph, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		for i, sl := range man.Slices {
			fmt.Fprintf(os.Stderr, "shard %d: %d papers, %d authors, %d edges\n",
				i, sl.Papers, sl.Authors, sl.Edges)
		}
		fmt.Fprintf(os.Stderr, "wrote %d-shard partition to %s/\n", *shards, dir)
	}
}
