// Command datagen generates a synthetic heterogeneous academic network
// (the Aminer/DBLP/ACM stand-ins of DESIGN.md) and writes it as JSON for
// use with cmd/expertfind or external tooling.
//
// Usage:
//
//	datagen -preset aminer -papers 2000 -out aminer.json
//	datagen -preset aminer -papers 1000000 -out big.json -shards 4
//
// Large corpora: generation is linear in -papers and logs progress to
// stderr, so a 10^6-paper graph is a matter of tens of seconds and a
// few GiB of JSON. Pair a large -out with -shards S to also write an
// S-way paper partition to <out>.shards/ (one slice manifest per
// shard, consumed by expertserve -role shard), and serve the result
// with expertserve -mmap auto so the embedding matrix pages in from
// the snapshot instead of occupying heap. -queries N writes N held-out
// evaluation queries to <out>.queries.json. Both -queries and -shards
// need -out — that is checked before generation starts, not after
// minutes of work.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"expertfind/internal/cluster"
	"expertfind/internal/dataset"
)

func main() {
	var (
		preset  = flag.String("preset", "aminer", "dataset preset: aminer, dblp, or acm")
		papers  = flag.Int("papers", 0, "number of papers (0 for the preset default)")
		seed    = flag.Int64("seed", 0, "override the preset's random seed (0 keeps it)")
		out     = flag.String("out", "", "output file (default stdout)")
		queries = flag.Int("queries", 0, "also write this many evaluation queries to <out>.queries.json (requires -out)")
		qseed   = flag.Int64("qseed", 1, "random seed for query sampling")
		shards  = flag.Int("shards", 0, "also write an S-way paper partition to <out>.shards/ (requires -out)")
	)
	flag.Parse()

	// Validate the flag set before any generation work: a 10^6-paper
	// run should not fail on a missing -out after the graph is built.
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
		os.Exit(1)
	}
	if *papers < 0 {
		fail("-papers must be >= 0, got %d", *papers)
	}
	if *queries < 0 || *shards < 0 {
		fail("-queries and -shards must be >= 0")
	}
	if *queries > 0 && *out == "" {
		fail("-queries requires -out (the queries land next to the graph file)")
	}
	if *shards > 0 && *out == "" {
		fail("-shards requires -out (the partition lands in <out>.shards/)")
	}

	var cfg dataset.Config
	switch *preset {
	case "aminer":
		cfg = dataset.AminerSim(*papers)
	case "dblp":
		cfg = dataset.DBLPSim(*papers)
	case "acm":
		cfg = dataset.ACMSim(*papers)
	default:
		fail("unknown preset %q (want aminer, dblp, or acm)", *preset)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	fmt.Fprintf(os.Stderr, "generating %s (%d papers, seed %d)...\n",
		cfg.Name, cfg.NumPapers, cfg.Seed)
	t0 := time.Now()
	ds := dataset.Generate(cfg)
	st := ds.Graph.Stats()
	fmt.Fprintf(os.Stderr, "generated %s in %s: %d papers, %d experts, %d venues, %d topics, %d relations\n",
		cfg.Name, time.Since(t0).Round(time.Millisecond),
		st.Papers, st.Experts, st.Venues, st.Topics, st.Relations)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
		fmt.Fprintf(os.Stderr, "writing graph JSON to %s...\n", *out)
	}
	t1 := time.Now()
	if err := ds.Graph.WriteJSON(w); err != nil {
		fail("%v", err)
	}
	if *out != "" {
		if fi, err := os.Stat(*out); err == nil {
			fmt.Fprintf(os.Stderr, "wrote %s (%.1f MiB) in %s\n",
				*out, float64(fi.Size())/(1<<20), time.Since(t1).Round(time.Millisecond))
		}
	}

	if *queries > 0 {
		qf, err := os.Create(*out + ".queries.json")
		if err != nil {
			fail("%v", err)
		}
		defer qf.Close()
		qs := ds.Queries(*queries, rand.New(rand.NewSource(*qseed)))
		if err := dataset.WriteQueriesJSON(qf, qs); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d queries to %s.queries.json\n", len(qs), *out)
	}

	if *shards > 0 {
		dir := *out + ".shards"
		fmt.Fprintf(os.Stderr, "partitioning into %d shards...\n", *shards)
		man, err := cluster.WritePartition(dir, ds.Graph, *shards)
		if err != nil {
			fail("%v", err)
		}
		for i, sl := range man.Slices {
			fmt.Fprintf(os.Stderr, "shard %d: %d papers, %d authors, %d edges\n",
				i, sl.Papers, sl.Authors, sl.Edges)
		}
		fmt.Fprintf(os.Stderr, "wrote %d-shard partition to %s/\n", *shards, dir)
	}
}
