// Command benchtab regenerates the paper's tables and figures on the
// synthetic datasets and prints them in the paper's layout.
//
// Usage:
//
//	benchtab -exp table2 [-papers 1500] [-queries 50] [-m 150] [-n 20] [-dim 64] [-seed 7]
//	benchtab -exp all
//
// Experiments: table2, table3, table4, table5, table6, fig7, fig8a,
// fig8b, fig8c, fig8d, coresearch, query, cluster, kernels, all. The query
// experiment benchmarks the concurrent serving layer (cold/warm/concurrent
// latency, QPS, cache hit rate) and writes BENCH_query.json (-bench-out).
// The cluster experiment compares single-node serving against router+2/4
// shards over loopback HTTP and writes BENCH_cluster.json
// (-cluster-bench-out); it is excluded from "all" because it binds
// listening sockets. The kernels experiment microbenchmarks the float64,
// float32, and int8 distance/update kernels and writes BENCH_kernels.json
// (-kernel-bench-out). The replication experiment measures follower
// snapshot bootstrap, WAL catch-up throughput, steady-state write
// propagation, and the replica read path, and writes
// BENCH_replication.json (-replication-bench-out); like cluster, it
// binds listening sockets and is excluded from "all". The scale
// experiment sweeps corpus sizes (-scale-sizes, default 10^4..10^6
// papers), loading each snapshot with the columnar section mmap'd and
// heap-decoded, and writes BENCH_scale.json (-scale-bench-out); it is
// excluded from "all" because the large sizes take minutes to build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"expertfind/internal/experiments"
)

// benchOut is the -bench-out flag: where -exp query writes its JSON.
// clusterBenchOut and kernelBenchOut are the same for -exp cluster and
// -exp kernels; scaleBenchOut and scaleSizes configure -exp scale.
var benchOut, clusterBenchOut, kernelBenchOut, replBenchOut, scaleBenchOut string
var scaleSizes []int

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1..table6, fig5, fig7, fig8a..fig8d, coresearch, sig, query, cluster, kernels, replication, all)")
		papers  = flag.Int("papers", experiments.Default.Papers, "papers per dataset")
		queries = flag.Int("queries", experiments.Default.Queries, "evaluation queries per dataset")
		m       = flag.Int("m", experiments.Default.M, "top-m papers retrieved")
		n       = flag.Int("n", experiments.Default.N, "top-n experts returned")
		dim     = flag.Int("dim", experiments.Default.Dim, "embedding dimension")
		seed    = flag.Int64("seed", experiments.Default.Seed, "random seed")
		bench   = flag.String("bench-out", "BENCH_query.json", "output file for the query benchmark (-exp query)")
		cbench  = flag.String("cluster-bench-out", "BENCH_cluster.json", "output file for the cluster benchmark (-exp cluster)")
		kbench  = flag.String("kernel-bench-out", "BENCH_kernels.json", "output file for the kernel microbenchmarks (-exp kernels)")
		rbench  = flag.String("replication-bench-out", "BENCH_replication.json", "output file for the replication benchmark (-exp replication)")
		sbench  = flag.String("scale-bench-out", "BENCH_scale.json", "output file for the scale benchmark (-exp scale)")
		ssizes  = flag.String("scale-sizes", "10000,100000,1000000", "comma-separated corpus sizes for -exp scale")
	)
	flag.Parse()
	benchOut = *bench
	clusterBenchOut = *cbench
	kernelBenchOut = *kbench
	replBenchOut = *rbench
	scaleBenchOut = *sbench
	var err error
	if scaleSizes, err = parseSizes(*ssizes); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}

	sc := experiments.Scale{
		Papers: *papers, Queries: *queries, M: *m, N: *n, Dim: *dim, Seed: *seed,
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table2", "table3", "table4", "table5", "table6",
			"fig5", "fig7", "fig8a", "fig8b", "fig8c", "fig8d", "coresearch", "sig", "query"}
	}
	for _, id := range ids {
		t0 := time.Now()
		out, err := run(strings.TrimSpace(id), sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

func run(id string, sc experiments.Scale) (string, error) {
	switch id {
	case "table1":
		return experiments.FormatTable1(experiments.RunTable1(sc)), nil
	case "fig5":
		return experiments.FormatFig5(experiments.RunFig5(sc)), nil
	case "sig":
		return experiments.FormatSignificance(experiments.RunSignificance(sc)), nil
	case "table2":
		return experiments.FormatTable2(experiments.RunTable2(sc)), nil
	case "table3":
		return experiments.FormatTable3(experiments.RunTable3(sc)), nil
	case "table4":
		var b strings.Builder
		for _, r := range experiments.RunTable4(sc) {
			b.WriteString(experiments.FormatEffectivenessTable(
				"TABLE IV — effect of meta-paths, dataset "+r.Dataset, r.Rows, false))
			b.WriteByte('\n')
		}
		return b.String(), nil
	case "table5":
		return experiments.FormatTable5(experiments.RunTable5(sc)), nil
	case "table6":
		return experiments.FormatTable6(experiments.RunTable6(sc)), nil
	case "fig7":
		return experiments.FormatFig7(experiments.RunFig7(sc)), nil
	case "fig8a":
		return experiments.FormatSensitivity("FIGURE 8(a) — sample ratio f (Aminer-sim)",
			"train-time", experiments.RunFig8a(sc)), nil
	case "fig8b":
		return experiments.FormatSensitivity("FIGURE 8(b) — core size k (Aminer-sim)",
			"train-time", experiments.RunFig8b(sc)), nil
	case "fig8c":
		return experiments.FormatSensitivity("FIGURE 8(c) — top-m papers (Aminer-sim)",
			"query-time", experiments.RunFig8c(sc)), nil
	case "fig8d":
		return experiments.FormatSensitivity("FIGURE 8(d) — top-n experts (Aminer-sim)",
			"query-time", experiments.RunFig8d(sc)), nil
	case "coresearch":
		rows := experiments.RunCoreSearchComparison(sc, 4, 20)
		var b strings.Builder
		b.WriteString("ABLATION — (k,P)-core community search algorithms (k=4, P-A-P)\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-28s avg %-12s avg core size %.1f\n",
				r.Algorithm, r.AvgTime.Round(time.Microsecond), r.AvgCore)
		}
		return b.String(), nil
	case "query":
		rep := experiments.RunQueryBench(sc)
		if err := writeBenchJSON(benchOut, rep); err != nil {
			return "", err
		}
		return experiments.FormatQueryBench(rep) +
			fmt.Sprintf("[wrote %s]\n", benchOut), nil
	case "cluster":
		rep := experiments.RunClusterBench(sc)
		if err := writeBenchJSON(clusterBenchOut, rep); err != nil {
			return "", err
		}
		return experiments.FormatClusterBench(rep) +
			fmt.Sprintf("[wrote %s]\n", clusterBenchOut), nil
	case "kernels":
		rep := experiments.RunKernelBench(sc)
		if err := writeBenchJSON(kernelBenchOut, rep); err != nil {
			return "", err
		}
		return experiments.FormatKernelBench(rep) +
			fmt.Sprintf("[wrote %s]\n", kernelBenchOut), nil
	case "replication":
		rep := experiments.RunReplBench(sc)
		if err := writeBenchJSON(replBenchOut, rep); err != nil {
			return "", err
		}
		return experiments.FormatReplBench(rep) +
			fmt.Sprintf("[wrote %s]\n", replBenchOut), nil
	case "scale":
		rep := experiments.RunScaleBench(sc, scaleSizes)
		if err := writeBenchJSON(scaleBenchOut, rep); err != nil {
			return "", err
		}
		return experiments.FormatScaleBench(rep) +
			fmt.Sprintf("[wrote %s]\n", scaleBenchOut), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}

// jsonReport is any benchmark report that can serialise itself.
type jsonReport interface {
	WriteJSON(w io.Writer) error
}

// parseSizes decodes the -scale-sizes grammar: positive comma-separated
// corpus sizes.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("-scale-sizes: bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale-sizes: no sizes given")
	}
	return out, nil
}

// writeBenchJSON writes a benchmark report to path.
func writeBenchJSON(path string, rep jsonReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
