// Command expertfind builds the (k,P)-core based expert-finding engine
// over an academic graph and answers top-n expert queries.
//
// The graph comes either from a JSON file written by cmd/datagen
// (-graph) or from a built-in synthetic preset (-dataset). One query can
// be passed with -query; otherwise queries are read line by line from
// standard input.
//
// Examples:
//
//	expertfind -dataset aminer -papers 1000 -query "graph community search"
//	datagen -preset dblp -out g.json && expertfind -graph g.json < queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"expertfind/internal/cli"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/metrics"
	"expertfind/internal/sampling"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "JSON graph file (from datagen)")
		preset    = flag.String("dataset", "aminer", "built-in preset when -graph is not given: aminer, dblp, acm")
		papers    = flag.Int("papers", 1000, "preset size in papers")
		query     = flag.String("query", "", "one query text (otherwise read lines from stdin)")
		k         = flag.Int("k", 4, "(k,P)-core cohesiveness threshold")
		paths     = flag.String("metapaths", "P-A-P,P-T-P", "comma-separated paper-paper meta-paths")
		strategy  = flag.String("neg", "near", "negative sampling strategy: near or random")
		frac      = flag.Float64("f", 0.3, "seed sampling ratio")
		dim       = flag.Int("dim", 64, "embedding dimension")
		m         = flag.Int("m", 200, "papers retrieved per query (top-m)")
		n         = flag.Int("n", 10, "experts returned per query (top-n)")
		seed      = flag.Int64("seed", 7, "random seed")
		verbose   = flag.Bool("v", false, "print build statistics")
		evalFile  = flag.String("eval", "", "evaluate against a query file from datagen -queries and exit")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*graphFile, *preset, *papers)
	if err != nil {
		fail(err)
	}

	opts := core.Options{
		K:              *k,
		SampleFraction: *frac,
		Dim:            *dim,
		Seed:           *seed,
	}
	for _, p := range strings.Split(*paths, ",") {
		mp, err := hetgraph.ParseMetaPath(strings.TrimSpace(p))
		if err != nil {
			fail(err)
		}
		opts.MetaPaths = append(opts.MetaPaths, mp)
	}
	switch *strategy {
	case "near":
		opts.NegStrategy = sampling.NearNegative
	case "random":
		opts.NegStrategy = sampling.RandomNegative
	default:
		fail(fmt.Errorf("unknown negative strategy %q", *strategy))
	}

	fmt.Fprintf(os.Stderr, "building engine over %d papers (k=%d, P=%s)...\n",
		g.NumNodesOfType(hetgraph.Paper), *k, *paths)
	t0 := time.Now()
	engine, err := core.Build(g, opts)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "built in %s\n", time.Since(t0).Round(time.Millisecond))
	if *verbose {
		st := engine.Stats()
		fmt.Fprintf(os.Stderr, "  vocabulary: %d tokens\n", st.VocabSize)
		fmt.Fprintf(os.Stderr, "  sampling: %d seeds, %d triples (mean community %.1f)\n",
			st.Sampling.Seeds, st.Sampling.Triples, st.Sampling.MeanCommunity)
		fmt.Fprintf(os.Stderr, "  training: %d steps, final loss %.4f\n",
			st.Training.Steps, last(st.Training.EpochLosses))
		fmt.Fprintf(os.Stderr, "  pg-index: %d edges, %.1f MB, built in %s\n",
			st.IndexEdges, float64(st.IndexMemory)/(1<<20), st.IndexTime.Round(time.Millisecond))
	}

	if *evalFile != "" {
		if err := evaluate(engine, g, *evalFile, *m, *n); err != nil {
			fail(err)
		}
		return
	}
	if *query != "" {
		answer(engine, g, *query, *m, *n)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		answer(engine, g, line, *m, *n)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
}

// evaluate scores the engine against a benchmark query file, printing the
// paper's effectiveness metrics plus the mean response time.
func evaluate(engine *core.Engine, g *hetgraph.Graph, file string, m, n int) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	queries, err := dataset.ReadQueriesJSON(f)
	if err != nil {
		return err
	}
	var aps []float64
	var p5, p10, p20 float64
	var total time.Duration
	for _, q := range queries {
		t0 := time.Now()
		ranked, _, _ := engine.TopExperts(q.Text, m, n)
		total += time.Since(t0)
		ids := make([]hetgraph.NodeID, len(ranked))
		for i, r := range ranked {
			ids[i] = r.Expert
		}
		aps = append(aps, metrics.AveragePrecision(ids, q.Truth))
		p5 += metrics.PrecisionAtN(ids, q.Truth, 5)
		p10 += metrics.PrecisionAtN(ids, q.Truth, 10)
		p20 += metrics.PrecisionAtN(ids, q.Truth, 20)
	}
	nq := float64(len(queries))
	if nq == 0 {
		return fmt.Errorf("no queries in %s", file)
	}
	fmt.Printf("evaluated %d queries (m=%d, n=%d)\n", len(queries), m, n)
	fmt.Printf("MAP %.3f  P@5 %.3f  P@10 %.3f  P@20 %.3f  avg %.2fms\n",
		metrics.MAP(aps), p5/nq, p10/nq, p20/nq,
		float64(total.Milliseconds())/nq)
	return nil
}

func answer(engine *core.Engine, g *hetgraph.Graph, query string, m, n int) {
	experts, st, err := engine.TopExperts(query, m, n)
	if err != nil {
		fmt.Printf("query failed: %v\n", err)
		return
	}
	fmt.Printf("query: %s\n", truncate(query, 70))
	fmt.Printf("top-%d experts (%.2fms: encode %.2f, retrieve %.2f, rank %.2f; %d dist comps, TA depth %d):\n",
		n, ms(st.Total()), ms(st.EncodeTime), ms(st.RetrieveTime), ms(st.RankTime),
		st.Search.DistanceComputations, st.TA.Depth)
	for i, r := range experts {
		fmt.Printf("  %2d. %-28s score %.4f  (%d papers)\n",
			i+1, g.Label(r.Expert), r.Score, len(g.PapersOf(r.Expert)))
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "expertfind:", err)
	os.Exit(1)
}
