package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

// TestReplicationFailoverE2E drives the full failover story against real
// processes: a leader acknowledges writes, a follower bootstraps and
// tails them, the follower survives SIGKILL mid-stream, the leader is
// SIGKILLed and the follower promoted with a bumped epoch, the deposed
// leader comes back and is fenced, and at the end the promoted node's
// rankings are Float64bits-identical to a fresh single node that saw the
// same update sequence.
func TestReplicationFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "expertserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	leaderAddr := freeAddr(t)
	followerAddr := freeAddr(t)
	leaderBase := "http://" + leaderAddr
	followerBase := "http://" + followerAddr
	leaderDir := filepath.Join(tmp, "leader")
	followerDir := filepath.Join(tmp, "follower")
	logPath := filepath.Join(tmp, "server.log")

	start := func(args ...string) *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		common := []string{
			"-dataset", "aminer", "-papers", "120", "-dim", "8",
			"-fsync", "always", "-snapshot-interval", "0", "-query-cache", "0",
			"-drain-timeout", "5s",
		}
		cmd := exec.Command(bin, append(common, args...)...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait(); logf.Close() })
		return cmd
	}
	startLeader := func() *exec.Cmd {
		return start("-data-dir", leaderDir, "-addr", leaderAddr)
	}
	startFollower := func() *exec.Cmd {
		return start("-role", "follower", "-leader", leaderBase,
			"-data-dir", followerDir, "-addr", followerAddr,
			"-replication-poll", "25ms", "-follower-id", "e2e-follower")
	}
	defer func() {
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("server log:\n%s", b)
			}
		}
	}()

	authors := dataset.Generate(dataset.AminerSim(120)).Graph.NodesOfType(hetgraph.Author)
	// addPaper posts one deterministic update; the same index i produces
	// the same paper wherever it is applied.
	addPaper := func(base string, i int) {
		t.Helper()
		body := fmt.Sprintf(`{"text":"failover paper %d on kp-core embeddings","authors":[%d,%d]}`,
			i, authors[i%len(authors)], authors[(i*7+3)%len(authors)])
		resp, err := http.Post(base+"/add", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add %d to %s: status %d: %s", i, base, resp.StatusCode, b)
		}
	}
	replStatus := func(base string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + "/replication/status")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		var out map[string]any
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("replication status: %v: %s", err, b)
		}
		return out
	}
	waitApplied := func(base string, seq float64) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			st := replStatus(base)
			if applied, _ := st["applied_seq"].(float64); applied >= seq {
				if caught, _ := st["caught_up"].(bool); caught {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("follower never applied seq %v: %+v", seq, replStatus(base))
	}

	// Phase 1: leader up, 10 acknowledged writes, follower bootstraps and
	// catches up.
	leader := startLeader()
	waitReady(t, leaderBase)
	for i := 0; i < 10; i++ {
		addPaper(leaderBase, i)
	}
	follower := startFollower()
	waitReady(t, followerBase)
	waitApplied(followerBase, 10)

	// Phase 2: SIGKILL the follower, write while it is down, restart it on
	// the same directory — it must recover locally and resume the tail
	// from its last applied sequence.
	if err := follower.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	follower.Wait()
	for i := 10; i < 20; i++ {
		addPaper(leaderBase, i)
	}
	startFollower()
	waitReady(t, followerBase)
	waitApplied(followerBase, 20)

	// Phase 3: SIGKILL the leader, promote the follower. The epoch bumps.
	if err := leader.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.Wait()
	presp, err := http.Post(followerBase+"/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := readBody(presp)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %s", presp.StatusCode, pb)
	}
	var promoted struct {
		Promoted bool    `json:"promoted"`
		Epoch    float64 `json:"epoch"`
	}
	if err := json.Unmarshal(pb, &promoted); err != nil {
		t.Fatal(err)
	}
	if !promoted.Promoted || promoted.Epoch != 1 {
		t.Fatalf("promotion: %s", pb)
	}
	// The promoted node accepts writes now.
	for i := 20; i < 23; i++ {
		addPaper(followerBase, i)
	}

	// Phase 4: the deposed leader comes back from its old state, unaware
	// it was deposed. Fencing it at the new epoch makes its writes 409.
	startLeader()
	waitReady(t, leaderBase)
	fresp, err := http.Post(leaderBase+"/replication/fence", "application/json",
		strings.NewReader(`{"epoch": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := readBody(fresp)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("fence deposed leader: status %d: %s", fresp.StatusCode, fb)
	}
	staleBody := fmt.Sprintf(`{"text":"stale write","authors":[%d]}`, authors[0])
	sresp, err := http.Post(leaderBase+"/add", "application/json", strings.NewReader(staleBody))
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := readBody(sresp)
	if sresp.StatusCode != http.StatusConflict {
		t.Fatalf("deposed leader /add: status %d, want 409: %s", sresp.StatusCode, sb)
	}
	if !strings.Contains(string(sb), "fenced") {
		t.Fatalf("deposed leader /add body %q does not mention fencing", sb)
	}
	tresp, err := http.Get(leaderBase + "/replication/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusConflict {
		t.Fatalf("deposed leader tail: status %d, want 409", tresp.StatusCode)
	}

	// Phase 5: ground truth. A fresh single node applies the same 23
	// updates; the promoted follower's rankings must match it bit for bit.
	refAddr := freeAddr(t)
	refBase := "http://" + refAddr
	start("-data-dir", filepath.Join(tmp, "ref"), "-addr", refAddr)
	waitReady(t, refBase)
	for i := 0; i < 23; i++ {
		addPaper(refBase, i)
	}

	queries := dataset.Generate(dataset.AminerSim(120)).Queries(5, rand.New(rand.NewSource(3)))
	type expert struct {
		ID    int32   `json:"id"`
		Rank  int     `json:"rank"`
		Score float64 `json:"score"`
	}
	fetch := func(base, q string) []expert {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/experts?q=%s&m=40&n=10", base, url.QueryEscape(q)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q on %s: status %d: %s", q, base, resp.StatusCode, b)
		}
		var out struct {
			Experts []expert `json:"experts"`
		}
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		return out.Experts
	}
	for _, q := range queries {
		want := fetch(refBase, q.Text)
		got := fetch(followerBase, q.Text)
		if len(want) != len(got) {
			t.Fatalf("query %q: %d vs %d experts", q.Text, len(want), len(got))
		}
		for i := range want {
			if want[i].ID != got[i].ID {
				t.Fatalf("query %q rank %d: expert %d vs %d", q.Text, i+1, got[i].ID, want[i].ID)
			}
			if math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
				t.Fatalf("query %q rank %d: score bits %x vs %x", q.Text, i+1,
					math.Float64bits(got[i].Score), math.Float64bits(want[i].Score))
			}
		}
	}
}
