package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterE2E is the end-to-end topology check the CI cluster job
// runs: build the real binary, launch a router plus three shard
// processes (shard 0 with two replicas), assert /readyz on every member,
// run a golden query through the router, SIGKILL one replica of shard 0,
// and require the same query to still answer 200 with identical
// rankings. /healthz must identify every topology member.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "expertserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	logPath := filepath.Join(tmp, "cluster.log")
	defer func() {
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("cluster log:\n%s", b)
			}
		}
	}()

	start := func(args ...string) *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait(); logf.Close() })
		return cmd
	}

	// Three shards over a small deterministic corpus; shard 0 runs twice
	// (two replicas of the identical deterministic build). Tracing is on
	// everywhere with sample rate 1, so every query's trace is retained.
	const shards = 3
	corpus := []string{"-dataset", "aminer", "-papers", "120", "-dim", "8", "-seed", "7",
		"-query-cache", "0", "-drain-timeout", "2s",
		"-trace-capacity", "64", "-trace-sample", "1"}
	shardAddrs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		reps := 1
		if i == 0 {
			reps = 2
		}
		for r := 0; r < reps; r++ {
			addr := freeAddr(t)
			shardAddrs[i] = append(shardAddrs[i], addr)
		}
	}
	var procs [][]*exec.Cmd // [shard][replica]
	for i := 0; i < shards; i++ {
		var ps []*exec.Cmd
		for _, addr := range shardAddrs[i] {
			args := append([]string{"-role", "shard",
				"-shards", fmt.Sprint(shards), "-shard-id", fmt.Sprint(i),
				"-addr", addr}, corpus...)
			ps = append(ps, start(args...))
		}
		procs = append(procs, ps)
	}

	routerAddr := freeAddr(t)
	var groups []string
	for _, g := range shardAddrs {
		groups = append(groups, strings.Join(g, "|"))
	}
	// -hedge-after 1ns hedges every sub-request to shard 0's second
	// replica, so the assembled trace must show a hedged attempt.
	start("-role", "router", "-addr", routerAddr,
		"-replicas", strings.Join(groups, ","),
		"-shard-retries", "2", "-probe-interval", "200ms", "-eject-after", "2",
		"-trace-capacity", "64", "-trace-sample", "1", "-hedge-after", "1ns")
	routerBase := "http://" + routerAddr

	// Readiness: every shard replica, then the router (which gates on all
	// shards being reachable).
	for i := range shardAddrs {
		for _, addr := range shardAddrs[i] {
			waitReady(t, "http://"+addr)
		}
	}
	waitReady(t, routerBase)

	// Topology identification on /healthz.
	var sh struct {
		Role    string `json:"role"`
		ShardID int    `json:"shard_id"`
		Shards  int    `json:"shards"`
	}
	getJSON(t, "http://"+shardAddrs[1][0]+"/healthz", &sh)
	if sh.Role != "shard" || sh.ShardID != 1 || sh.Shards != shards {
		t.Fatalf("shard healthz: %+v", sh)
	}
	var rh struct {
		Role     string     `json:"role"`
		Shards   int        `json:"shards"`
		Replicas [][]string `json:"replicas"`
	}
	getJSON(t, routerBase+"/healthz", &rh)
	if rh.Role != "router" || rh.Shards != shards || len(rh.Replicas[0]) != 2 {
		t.Fatalf("router healthz: %+v", rh)
	}

	// Golden query through the healthy topology.
	const goldenQuery = "graph embedding expert search"
	queryURL := routerBase + "/experts?q=" + url.QueryEscape(goldenQuery) + "&m=40&n=10"
	type expertsResp struct {
		Experts []struct {
			Rank  int     `json:"rank"`
			ID    int32   `json:"id"`
			Score float64 `json:"score"`
		} `json:"experts"`
	}
	var before expertsResp
	getJSON(t, queryURL, &before)
	if len(before.Experts) == 0 {
		t.Fatal("golden query returned no experts")
	}

	// One query with ?debug=1 must yield ONE assembled cross-node trace:
	// the router's span tree with every shard's subtree grafted in under
	// the same trace id, hedged attempt included. Asserted while the
	// topology is fully healthy, before the replica kill below.
	var dbg struct {
		Debug *struct {
			TraceID string `json:"trace_id"`
		} `json:"debug"`
	}
	getJSON(t, queryURL+"&debug=1", &dbg)
	if dbg.Debug == nil || len(dbg.Debug.TraceID) != 32 {
		t.Fatalf("debug=1 response has no usable trace id: %+v", dbg.Debug)
	}
	traceID := dbg.Debug.TraceID
	type spanNode struct {
		Name     string            `json:"name"`
		Attrs    map[string]string `json:"attrs"`
		Children []spanNode        `json:"children"`
	}
	var tr struct {
		TraceID string `json:"trace_id"`
		Records []struct {
			TraceID string   `json:"trace_id"`
			Kept    string   `json:"kept"`
			Root    spanNode `json:"root"`
		} `json:"records"`
	}
	getJSON(t, routerBase+"/debug/traces/"+traceID, &tr)
	if len(tr.Records) != 1 || tr.Records[0].TraceID != traceID {
		t.Fatalf("router trace %s: %+v", traceID, tr.Records)
	}
	root := tr.Records[0].Root
	if root.Name != "query" {
		t.Fatalf("assembled trace root %q, want query", root.Name)
	}
	shardsSeen := map[string]bool{}
	hedged := false
	var walk func(n spanNode)
	walk = func(n spanNode) {
		if n.Name == "shard_papers" || n.Name == "shard_experts" {
			shardsSeen[n.Attrs["shard"]] = true
		}
		if n.Name == "rpc" && n.Attrs["hedge"] == "1" {
			hedged = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for i := 0; i < shards; i++ {
		if !shardsSeen[fmt.Sprint(i)] {
			t.Errorf("assembled trace has no grafted subtree from shard %d (saw %v)",
				i, shardsSeen)
		}
	}
	if !hedged {
		t.Error("assembled trace shows no hedged rpc span despite -hedge-after 1ns")
	}
	// Cross-node identity: a shard process retains its own records under
	// the SAME trace id the router handed out.
	var shardTr struct {
		Records []struct {
			TraceID string `json:"trace_id"`
		} `json:"records"`
	}
	getJSON(t, "http://"+shardAddrs[1][0]+"/debug/traces/"+traceID, &shardTr)
	if len(shardTr.Records) == 0 {
		t.Fatalf("shard 1 retained no records for trace %s", traceID)
	}

	// SIGKILL one replica of shard 0 — no goodbye, no drain.
	if err := procs[0][1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[0][1].Wait()

	// The same query must keep answering 200 with identical rankings —
	// strictly, no retry loop here: the router's own in-request retries
	// must absorb the dead replica. Several rounds, so the round-robin
	// rotation is guaranteed to trip over it.
	for round := 0; round < 4; round++ {
		resp, err := http.Get(queryURL)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		body, rerr := readBody(resp)
		if rerr != nil {
			t.Fatalf("round %d: %v", round, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d after kill: status %d, want 200: %s",
				round, resp.StatusCode, body)
		}
		var after expertsResp
		if err := json.Unmarshal(body, &after); err != nil {
			t.Fatalf("round %d: bad payload %v: %s", round, err, body)
		}
		if len(after.Experts) != len(before.Experts) {
			t.Fatalf("round %d: %d experts after kill, %d before",
				round, len(after.Experts), len(before.Experts))
		}
		for i := range before.Experts {
			if before.Experts[i] != after.Experts[i] {
				t.Fatalf("round %d rank %d: %+v after kill, want %+v",
					round, i+1, after.Experts[i], before.Experts[i])
			}
		}
	}

	// The fan-out metrics must be exposed on the router.
	resp, err := http.Get(routerBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtx, _ := readBody(resp)
	for _, name := range []string{
		"expertfind_cluster_fanout_seconds",
		"expertfind_cluster_wire_bytes_total",
		"expertfind_cluster_replicas_alive",
	} {
		if !strings.Contains(string(mtx), name) {
			t.Errorf("/metrics is missing %s", name)
		}
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			b, rerr := readBody(resp)
			if rerr == nil && resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(b, v); err != nil {
					t.Fatalf("GET %s: bad payload %v: %s", url, err, b)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("GET %s: %v", url, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
