package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

// TestCrashRecoveryE2E is the end-to-end durability check: run the real
// binary with -data-dir, acknowledge a stream of POST /add updates, kill
// the process with SIGKILL (no cleanup of any kind), restart it on the
// same directory, and require every acknowledged paper to be present and
// queryable. A final SIGTERM run checks the graceful path: clean exit,
// final snapshot, empty WAL on the next boot.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "expertserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	dataDir := filepath.Join(tmp, "state")
	logPath := filepath.Join(tmp, "server.log")

	start := func() *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-dataset", "aminer", "-papers", "120", "-dim", "8",
			"-data-dir", dataDir, "-addr", addr,
			"-fsync", "always",
			"-snapshot-interval", "0", // keep updates WAL-only: force the replay path
			"-query-cache", "0",
			"-drain-timeout", "5s",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait(); logf.Close() })
		return cmd
	}
	dumpLogOnFailure := func() {
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("server log:\n%s", b)
			}
		}
	}
	defer dumpLogOnFailure()

	// The preset build is deterministic, so the test knows the server's
	// author node ids without asking it.
	authors := dataset.Generate(dataset.AminerSim(120)).Graph.NodesOfType(hetgraph.Author)

	cmd := start()
	waitReady(t, base)
	basePapers := healthPapers(t, base)

	// Acknowledge a stream of updates, then SIGKILL mid-stream — the
	// process gets no chance to flush, snapshot, or say goodbye.
	type acked struct {
		ID  int32  `json:"id"`
		Seq uint64 `json:"seq"`
	}
	var acks []acked
	for i := 0; i < 12; i++ {
		body := fmt.Sprintf(`{"text":"crash recovery paper %d on graph embeddings","authors":[%d,%d]}`,
			i, authors[i], authors[i+1])
		resp, err := http.Post(base+"/add", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add %d: status %d: %s", i, resp.StatusCode, b)
		}
		var a acked
		if err := json.Unmarshal(b, &a); err != nil {
			t.Fatal(err)
		}
		acks = append(acks, a)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: a real crash
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same directory: recovery must replay the WAL and
	// restore every acknowledged paper under its acknowledged id.
	cmd2 := start()
	waitReady(t, base)
	if got := healthPapers(t, base); got != basePapers+len(acks) {
		t.Errorf("papers after recovery: %d, want %d base + %d acked", got, basePapers, len(acks))
	}
	for _, a := range acks {
		resp, err := http.Get(fmt.Sprintf("%s/similar?id=%d&m=1", base, a.ID))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("acked paper %d (seq %d) lost after crash: status %d: %s",
				a.ID, a.Seq, resp.StatusCode, b)
		}
	}

	// Graceful path: SIGTERM drains and exits 0, writing a final
	// snapshot on the way out.
	if err := cmd2.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitExit(t, cmd2, 30*time.Second)
	if code := cmd2.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("graceful shutdown exit code %d, want 0", code)
	}

	// Third boot: the final snapshot covers everything, so recovery is
	// instant and nothing was lost across the clean restart either.
	start()
	waitReady(t, base)
	if got := healthPapers(t, base); got != basePapers+len(acks) {
		t.Errorf("papers after graceful restart: %d, want %d", got, basePapers+len(acks))
	}
}

// TestCrashRecoveryMmapE2E is the mmap'd variant of the crash check:
// the restart after SIGKILL recovers onto a snapshot whose columnar
// section is mmap'd (-mmap on fails fast if the platform cannot map, so
// a green run proves the mapping happened) and replays the WAL on top
// of the read-only mapping. Every acknowledged paper must survive.
func TestCrashRecoveryMmapE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "expertserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	dataDir := filepath.Join(tmp, "state")
	logPath := filepath.Join(tmp, "server.log")

	start := func() *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-dataset", "aminer", "-papers", "120", "-dim", "8",
			"-data-dir", dataDir, "-addr", addr,
			"-mmap", "on",
			"-fsync", "always",
			"-snapshot-interval", "0", // updates stay WAL-only after boot
			"-query-cache", "0",
			"-drain-timeout", "5s",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait(); logf.Close() })
		return cmd
	}
	defer func() {
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("server log:\n%s", b)
			}
		}
	}()

	authors := dataset.Generate(dataset.AminerSim(120)).Graph.NodesOfType(hetgraph.Author)
	addPaper := func(i int) (id int32, seq uint64) {
		t.Helper()
		body := fmt.Sprintf(`{"text":"mmap crash paper %d on columnar snapshots","authors":[%d,%d]}`,
			i, authors[i], authors[i+1])
		resp, err := http.Post(base+"/add", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add %d: status %d: %s", i, resp.StatusCode, b)
		}
		var a struct {
			ID  int32  `json:"id"`
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(b, &a); err != nil {
			t.Fatal(err)
		}
		return a.ID, a.Seq
	}

	// Boot 1: build, accept some updates, SIGTERM — the graceful exit
	// writes a final v2 snapshot that journals those updates.
	cmd := start()
	waitReady(t, base)
	basePapers := healthPapers(t, base)
	var ids []int32
	for i := 0; i < 5; i++ {
		id, _ := addPaper(i)
		ids = append(ids, id)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitExit(t, cmd, 30*time.Second)
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("graceful shutdown exit code %d, want 0", code)
	}

	// Boot 2: recover onto the mmap'd snapshot, acknowledge more
	// updates (WAL-only, on top of the read-only mapping), SIGKILL.
	cmd2 := start()
	waitReady(t, base)
	if got := healthPapers(t, base); got != basePapers+5 {
		t.Fatalf("papers after mmap'd restart: %d, want %d", got, basePapers+5)
	}
	for i := 5; i < 12; i++ {
		id, _ := addPaper(i)
		ids = append(ids, id)
	}
	if err := cmd2.Process.Kill(); err != nil { // SIGKILL: a real crash
		t.Fatal(err)
	}
	cmd2.Wait()

	// Boot 3: recover onto the same mmap'd snapshot plus WAL replay;
	// every acknowledged paper must be present and queryable.
	start()
	waitReady(t, base)
	if got := healthPapers(t, base); got != basePapers+len(ids) {
		t.Errorf("papers after crash recovery: %d, want %d", got, basePapers+len(ids))
	}
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/similar?id=%d&m=1", base, id))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := readBody(resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("acked paper %d lost after crash onto mmap'd snapshot: status %d: %s",
				id, resp.StatusCode, b)
		}
	}
	if b, err := os.ReadFile(logPath); err == nil && !strings.Contains(string(b), "mmap=true") {
		t.Errorf("server log never reported an mmap'd recovery")
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func healthPapers(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, err := readBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Papers int `json:"papers"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatalf("healthz: %v: %s", err, b)
	}
	return h.Papers
}

func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func waitExit(t *testing.T, cmd *exec.Cmd, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(timeout):
		cmd.Process.Kill()
		t.Fatal("process did not exit after SIGTERM")
	}
}
