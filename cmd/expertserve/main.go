// Command expertserve builds (or loads) an expert-finding engine and
// serves top-n expert queries over HTTP, separating the paper's offline
// stage from a long-lived online stage.
//
// Endpoints:
//
//	GET /experts?q=<text>&n=<count>&m=<papers>  -> JSON expert ranking
//	GET /papers?q=<text>&m=<count>              -> JSON paper retrieval
//	GET /healthz                                -> build statistics
//
// Usage:
//
//	expertserve -dataset aminer -papers 1000 -addr :8080
//	expertserve -graph g.json -engine engine.bin -addr :8080
package main

import (
	"flag"
	"fmt"
	"os"

	"expertfind/internal/cli"
	"expertfind/internal/core"
	"expertfind/internal/hetgraph"
	"expertfind/internal/serve"
)

func main() {
	var (
		graphFile  = flag.String("graph", "", "JSON graph file (from datagen)")
		engineFile = flag.String("engine", "", "saved engine file (from a previous -save)")
		saveFile   = flag.String("save", "", "save the built engine to this file and continue serving")
		preset     = flag.String("dataset", "aminer", "built-in preset when -graph is not given")
		papers     = flag.Int("papers", 1000, "preset size in papers")
		dim        = flag.Int("dim", 64, "embedding dimension")
		seed       = flag.Int64("seed", 7, "random seed")
		addr       = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*graphFile, *preset, *papers)
	if err != nil {
		fail(err)
	}

	var engine *core.Engine
	if *engineFile != "" {
		f, err := os.Open(*engineFile)
		if err != nil {
			fail(err)
		}
		engine, err = core.Load(f, g)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded engine from %s\n", *engineFile)
	} else {
		fmt.Fprintf(os.Stderr, "building engine over %d papers...\n", g.NumNodesOfType(hetgraph.Paper))
		engine, err = core.Build(g, core.Options{Dim: *dim, Seed: *seed})
		if err != nil {
			fail(err)
		}
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fail(err)
		}
		if err := engine.Save(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "saved engine to %s\n", *saveFile)
	}

	srv := serve.New(engine)
	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "expertserve:", err)
	os.Exit(1)
}
