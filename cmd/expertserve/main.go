// Command expertserve builds (or loads) an expert-finding engine and
// serves top-n expert queries over HTTP, separating the paper's offline
// stage from a long-lived online stage.
//
// Endpoints:
//
//	GET  /experts?q=<text>&n=<count>&m=<papers> -> JSON expert ranking
//	GET  /papers?q=<text>&m=<count>             -> JSON paper retrieval
//	GET  /similar?id=<paper>&m=<count>          -> JSON related papers
//	POST /add                                   -> accept one paper online
//	GET  /healthz                               -> liveness + build statistics
//	GET  /readyz                                -> readiness (503 while recovering)
//	GET  /metrics                               -> Prometheus text metrics
//	GET  /debug/vars                            -> JSON metrics snapshot
//	GET  /debug/traces[/{id}]                   -> retained distributed traces
//	GET  /debug/pprof/*                         -> profiling (with -pprof)
//
// With -data-dir the engine state is durable: a checksummed snapshot
// plus a write-ahead log live under that directory, every acknowledged
// POST /add is recorded before it is applied, and a restart — including
// kill -9 — recovers exactly the acknowledged state. The listener opens
// before recovery so /readyz honestly reports 503 until replay is done.
//
// Snapshots carry a columnar section holding the embedding matrix and
// the proximity-graph index. With -mmap auto (the default) that section
// is served zero-copy from the page cache via mmap, so corpora larger
// than RAM stay queryable; -mmap off forces the heap decode and -mmap
// on fails fast where the platform cannot map. Rankings are bit-for-bit
// identical either way.
//
// The -role flag selects the process's place in a sharded topology:
//
//	single    (default) the whole corpus in one process, as above
//	shard     same build, but also serves the internal /shard/papers and
//	          /shard/experts partial-list API for its slice of the corpus
//	          (-shards total, -shard-id this one)
//	follower  read replica: bootstraps from the -leader node's snapshot,
//	          tails its WAL (resumable, log-before-apply), serves reads
//	          once lag <= -max-replication-lag, refuses writes until
//	          promoted via POST /replication/promote
//	router    no corpus: scatter-gathers /experts and /papers across the
//	          shard replicas given by -replicas, with retries, hedging and
//	          replica health ejection
//
// Usage:
//
//	expertserve -dataset aminer -papers 1000 -addr :8080
//	expertserve -graph g.json -data-dir /var/lib/expertfind -addr :8080
//	expertserve -role shard -shards 4 -shard-id 2 -graph g.json -addr :8082
//	expertserve -role router -replicas 'h1:8081|h1:9081,h2:8082' -addr :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"expertfind/internal/cli"
	"expertfind/internal/cluster"
	"expertfind/internal/colstore"
	"expertfind/internal/core"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/serve"
	"expertfind/internal/ta"
	"expertfind/internal/train"
)

func main() {
	var (
		graphFile   = flag.String("graph", "", "JSON graph file (from datagen)")
		engineFile  = flag.String("engine", "", "saved engine file (from a previous -save)")
		saveFile    = flag.String("save", "", "save the built engine to this file and continue serving")
		preset      = flag.String("dataset", "aminer", "built-in preset when -graph is not given")
		papers      = flag.Int("papers", 1000, "preset size in papers")
		dim         = flag.Int("dim", 64, "embedding dimension")
		seed        = flag.Int64("seed", 7, "random seed")
		addr        = flag.String("addr", ":8080", "listen address")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		enablePprof = flag.Bool("pprof", false, "mount profiling handlers under /debug/pprof/")

		queryCache  = flag.Int("query-cache", 4096, "query-cache entries (0 disables caching)")
		queryTTL    = flag.Duration("query-cache-ttl", 5*time.Minute, "query-cache entry TTL (0 = no expiry)")
		queryTO     = flag.Duration("query-timeout", 2*time.Second, "per-request query deadline, 504 past it (0 = none)")
		maxInflight = flag.Int("max-inflight", 256, "concurrent query requests before shedding 503 (0 = unlimited)")

		traceCap     = flag.Int("trace-capacity", 512, "retained traces in the /debug/traces ring (0 disables trace retention)")
		traceSample  = flag.Int("trace-sample", 64, "tail sampling: keep 1 in N ordinary traces (negative disables the rule)")
		traceSlowest = flag.Int("trace-slowest", 32, "tail sampling: always keep a trace ranking among the N slowest retained (negative disables the rule)")
		slowQuery    = flag.Duration("slow-query", 0, "log any request at least this slow with its trace id (0 disables)")

		role         = flag.String("role", "single", "topology role: single, shard, follower, or router")
		shards       = flag.Int("shards", 0, "total shard count of the topology (role shard)")
		shardID      = flag.Int("shard-id", 0, "this shard's index in [0, shards) (role shard)")
		leaderURL    = flag.String("leader", "", "leader base URL to replicate from, e.g. http://host:8080 (role follower)")
		maxLag       = flag.Uint64("max-replication-lag", 0, "largest lag (in WAL sequences) at which a follower still reports ready (role follower)")
		replPoll     = flag.Duration("replication-poll", 200*time.Millisecond, "tail poll interval once caught up (role follower)")
		followerID   = flag.String("follower-id", "", "identity reported to the leader for low-water tracking; default hostname-pid (role follower)")
		replicas     = flag.String("replicas", "", "shard replica addresses: shards comma-separated, replicas of one shard separated by '|' (role router)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "hedge a slow shard sub-request to another replica after this delay; 0 derives it from the observed p99, negative disables (role router)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "health-probe period for ejected replicas (role router)")
		ejectAfter   = flag.Int("eject-after", 3, "consecutive sub-request failures before a replica is ejected (role router)")
		shardRetries = flag.Int("shard-retries", 2, "retries per shard sub-request (role router)")

		dataDir      = flag.String("data-dir", "", "durable state directory: snapshot + write-ahead log (enables crash recovery)")
		mmapMode     = flag.String("mmap", "auto", "serve embeddings from the mmap'd snapshot: auto, on, off")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "background snapshot period with -data-dir (0 disables)")
		fsyncPolicy  = flag.String("fsync", "always", "WAL fsync policy: always, interval, never")
		fsyncEvery   = flag.Duration("fsync-interval", 50*time.Millisecond, "flush period under -fsync interval")
		walSegBytes  = flag.Int64("wal-segment-bytes", 4<<20, "WAL segment size before rotation")
		drainTO      = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window for in-flight requests")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger := obs.NewLogger(os.Stderr, lvl)

	if *dataDir != "" && (*engineFile != "" || *saveFile != "") {
		fail(fmt.Errorf("-data-dir owns engine persistence; it cannot be combined with -engine or -save"))
	}
	syncPolicy, err := durable.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		fail(err)
	}
	mmap, err := colstore.ParseMode(*mmapMode)
	if err != nil {
		fail(err)
	}

	// Wire the metrics sinks before the build so the offline phases
	// (sampling, training epochs, indexing) are recorded too.
	reg := obs.Default()
	obs.RegisterWellKnown(reg)
	pgindex.SetSink(reg)
	ta.SetSink(reg)
	train.SetSink(reg)

	// Residency gauges (RSS, page faults) on /metrics: with an mmap'd
	// snapshot these — not the Go heap profile — show the true footprint.
	stopProcSampler := obs.StartProcSampler(reg, 10*time.Second)
	defer stopProcSampler()

	// Open the listener before recovery: load balancers immediately get
	// an honest /readyz 503 instead of connection-refused, and flip to
	// 200 only once the engine is recovered and WAL replay is complete.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gate := serve.NewGate()
	servErr := make(chan error, 1)
	go func() {
		servErr <- gate.ListenAndServeContext(ctx, *addr, *drainTO, nil, reg, logger)
	}()
	logger.Info("listening", "addr", *addr, "role", *role, "ready", false)

	switch *role {
	case "single", "shard", "follower":
	case "router":
		// The router holds no corpus: skip the whole offline pipeline and
		// serve scatter-gather over the configured shard replicas.
		topo, err := parseReplicas(*replicas)
		if err != nil {
			fail(err)
		}
		client, err := cluster.NewShardClient(topo, cluster.ClientConfig{
			Retries:       *shardRetries,
			HedgeAfter:    *hedgeAfter,
			EjectAfter:    *ejectAfter,
			ProbeInterval: *probeEvery,
		}, reg, logger)
		if err != nil {
			fail(err)
		}
		client.StartProbes(ctx)
		router := cluster.NewRouter(client, cluster.RouterConfig{
			QueryTimeout: *queryTO,
		}, reg, logger)
		router.Traces = newTraceStore(*traceCap, *traceSlowest, *traceSample, reg)
		router.SlowQuery = *slowQuery
		gate.Install(router)
		logger.Info("serving", "addr", *addr, "role", "router",
			"shards", client.NumShards(), "hedge_after", *hedgeAfter,
			"query_timeout", *queryTO)
		select {
		case err = <-servErr:
		case <-ctx.Done():
			router.SetReady(false)
			err = <-servErr
		}
		if err != nil {
			logger.Error("listener_failed", "err", err)
			fail(err)
		}
		logger.Info("shutdown_complete")
		return
	default:
		fail(fmt.Errorf("unknown -role %q (want single, shard, follower, or router)", *role))
	}

	g, err := cli.LoadGraph(*graphFile, *preset, *papers)
	if err != nil {
		fail(err)
	}

	if *role == "follower" {
		// A follower holds no authority over the corpus: it bootstraps
		// from the leader's snapshot, tails the leader's WAL, and serves
		// reads from the replicated engine. Writes are refused until
		// POST /replication/promote.
		if *leaderURL == "" {
			fail(fmt.Errorf("-role follower requires -leader"))
		}
		if *dataDir == "" {
			fail(fmt.Errorf("-role follower requires -data-dir"))
		}
		obs.RegisterReplication(reg)
		fo, err := core.OpenFollower(*dataDir, g, *leaderURL, core.FollowerOptions{
			ID:           *followerID,
			PollInterval: *replPoll,
			MaxLag:       *maxLag,
			Sync:         syncPolicy,
			SyncEvery:    *fsyncEvery,
			SegmentBytes: *walSegBytes,
			Mmap:         mmap,
			Metrics:      reg,
			Logger:       logger,
		})
		if err != nil {
			fail(err)
		}
		engine := fo.Engine()
		if *queryCache > 0 {
			engine.EnableQueryCache(core.CacheConfig{MaxEntries: *queryCache, TTL: *queryTTL})
		}
		srv := serve.New(engine)
		srv.Log = logger
		srv.QueryTimeout = *queryTO
		srv.MaxInFlight = *maxInflight
		srv.Traces = newTraceStore(*traceCap, *traceSlowest, *traceSample, reg)
		srv.SlowQuery = *slowQuery
		if *enablePprof {
			srv.EnablePprof()
		}
		if *shards > 0 {
			// Follower of a shard server: same shard API, replicated engine.
			idxCfg := pgindex.DefaultConfig()
			idxCfg.Seed = *seed
			se, err := cluster.NewShardEngine(engine, cluster.ShardConfig{
				ID: *shardID, Of: *shards, Index: idxCfg, UsePGIndex: true,
			})
			if err != nil {
				fail(err)
			}
			cluster.MountFollowerShard(srv, se, fo)
		} else {
			srv.SetTopology(serve.Topology{Role: "follower"})
			srv.ReadyProbe = func() (bool, string) {
				if fo.Ready() {
					return true, ""
				}
				return false, "replication_lag"
			}
			srv.DenyWrites("replication follower serves reads only; write to the leader")
		}
		serve.MountReplication(srv, fo.Store(), fo)
		fo.Start()
		if *snapInterval > 0 {
			fo.Store().StartSnapshotLoop(*snapInterval)
		}
		gate.Install(srv)
		srv.SetReady(true) // actual readiness still gated by ReadyProbe (lag)
		logger.Info("serving", "addr", *addr, "role", "follower",
			"leader", *leaderURL, "max_lag", *maxLag, "applied", fo.Store().LastSeq())
		select {
		case err = <-servErr:
		case <-ctx.Done():
			srv.SetReady(false)
			err = <-servErr
		}
		if err != nil {
			logger.Error("listener_failed", "err", err)
		}
		if cerr := fo.Close(); cerr != nil {
			logger.Error("follower_close_failed", "err", cerr)
			if err == nil {
				err = cerr
			}
		} else {
			logger.Info("follower_closed", "dir", *dataDir)
		}
		logger.Info("shutdown_complete")
		if err != nil {
			fail(err)
		}
		return
	}

	build := func() (*core.Engine, error) {
		logger.Info("build_start", "papers", g.NumNodesOfType(hetgraph.Paper),
			"dim", *dim, "seed", *seed)
		engine, err := core.Build(g, core.Options{Dim: *dim, Seed: *seed})
		if err != nil {
			return nil, err
		}
		st := engine.Stats()
		logger.Info("build_done",
			"total", st.TotalTime,
			"sampling", st.CommunityTime,
			"training", st.TrainTime,
			"embedding", st.EmbedTime,
			"indexing", st.IndexTime,
			"vocab", st.VocabSize,
			"index_edges", st.IndexEdges,
		)
		return engine, nil
	}

	var engine *core.Engine
	var store *core.Store
	switch {
	case *dataDir != "":
		store, err = core.OpenStore(*dataDir, g, build, core.StoreOptions{
			Sync:         syncPolicy,
			SyncEvery:    *fsyncEvery,
			SegmentBytes: *walSegBytes,
			Mmap:         mmap,
			Metrics:      reg,
			Logger:       logger,
		})
		if err != nil {
			fail(err)
		}
		engine = store.Engine()
		rec := store.Recovery()
		logger.Info("recovered",
			"dir", *dataDir,
			"snapshot_loaded", rec.SnapshotLoaded,
			"snapshot_seq", rec.SnapshotSeq,
			"wal_replayed", rec.Replayed,
			"torn_wal_tail", rec.TornWALTail,
			"mmap", rec.SnapshotMapped,
			"fsync", syncPolicy.String(),
			"duration", rec.Duration,
		)
		if *snapInterval > 0 {
			store.StartSnapshotLoop(*snapInterval)
			logger.Info("snapshot_loop_started", "interval", *snapInterval)
		}
	case *engineFile != "":
		engine, err = core.LoadFileWith(*engineFile, g, core.LoadOptions{Mmap: mmap})
		if err != nil {
			fail(err)
		}
		logger.Info("engine_loaded", "file", *engineFile, "mmap", engine.SnapshotMapped())
	default:
		engine, err = build()
		if err != nil {
			fail(err)
		}
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fail(err)
		}
		if err := engine.Save(f); err != nil {
			fail(err)
		}
		f.Close()
		logger.Info("engine_saved", "file", *saveFile)
	}

	if *queryCache > 0 {
		engine.EnableQueryCache(core.CacheConfig{MaxEntries: *queryCache, TTL: *queryTTL})
		logger.Info("query_cache_enabled", "entries", *queryCache, "ttl", *queryTTL)
	}

	srv := serve.New(engine)
	srv.Log = logger
	srv.QueryTimeout = *queryTO
	srv.MaxInFlight = *maxInflight
	srv.Traces = newTraceStore(*traceCap, *traceSlowest, *traceSample, reg)
	srv.SlowQuery = *slowQuery
	if *enablePprof {
		srv.EnablePprof()
		logger.Info("pprof_enabled", "path", "/debug/pprof/")
	}
	if *role == "shard" {
		idxCfg := pgindex.DefaultConfig()
		idxCfg.Seed = *seed
		se, err := cluster.NewShardEngine(engine, cluster.ShardConfig{
			ID:         *shardID,
			Of:         *shards,
			Index:      idxCfg,
			UsePGIndex: true,
		})
		if err != nil {
			fail(err)
		}
		cluster.MountShard(srv, se)
		logger.Info("shard_mounted", "shard_id", *shardID, "shards", *shards,
			"owned_papers", se.NumOwned())
	}
	if store != nil {
		// A durable node can lead: expose the replication surface so
		// followers bootstrap from its snapshot and tail its WAL.
		obs.RegisterReplication(reg)
		serve.MountReplication(srv, store, nil)
		logger.Info("replication_mounted", "epoch", store.Epoch(), "last_seq", store.LastSeq())
	}
	gate.Install(srv)
	srv.SetReady(true)
	logger.Info("serving", "addr", *addr, "role", *role, "ready", true,
		"query_timeout", *queryTO, "max_inflight", *maxInflight, "durable", *dataDir != "")

	// Block until SIGINT/SIGTERM cancels ctx (the gate then drains the
	// listener) or the listener itself fails. Readiness flips off first
	// so probes stop routing here while in-flight requests finish.
	err = func() error {
		select {
		case err := <-servErr:
			return err
		case <-ctx.Done():
			srv.SetReady(false)
			return <-servErr
		}
	}()
	if err != nil {
		logger.Error("listener_failed", "err", err)
	}
	if store != nil {
		// Final snapshot + WAL close: everything acknowledged is now in
		// the snapshot and the next boot replays nothing.
		if cerr := store.Close(); cerr != nil {
			logger.Error("store_close_failed", "err", cerr)
			if err == nil {
				err = cerr
			}
		} else {
			logger.Info("store_closed", "dir", *dataDir)
		}
	}
	logger.Info("shutdown_complete")
	if err != nil {
		fail(err)
	}
}

// newTraceStore builds the trace ring from the -trace-* flags; capacity
// 0 turns trace retention off entirely (nil store, /debug/traces 404s).
func newTraceStore(capacity, slowest, sample int, reg *obs.Registry) *obs.TraceStore {
	if capacity <= 0 {
		return nil
	}
	return obs.NewTraceStore(obs.TracePolicy{
		Capacity:    capacity,
		SlowestN:    slowest,
		SampleEvery: sample,
	}, reg)
}

// parseReplicas decodes the -replicas grammar: shards separated by
// commas, replicas of one shard separated by '|'.
//
//	"h1:8081|h1:9081,h2:8082" -> shard 0 with two replicas, shard 1 with one
func parseReplicas(s string) ([][]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-role router requires -replicas")
	}
	var out [][]string
	for i, shard := range strings.Split(s, ",") {
		var addrs []string
		for _, a := range strings.Split(shard, "|") {
			a = strings.TrimSpace(a)
			if a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-replicas: shard %d has no addresses", i)
		}
		out = append(out, addrs)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "expertserve:", err)
	os.Exit(1)
}
