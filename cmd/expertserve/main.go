// Command expertserve builds (or loads) an expert-finding engine and
// serves top-n expert queries over HTTP, separating the paper's offline
// stage from a long-lived online stage.
//
// Endpoints:
//
//	GET /experts?q=<text>&n=<count>&m=<papers>  -> JSON expert ranking
//	GET /papers?q=<text>&m=<count>              -> JSON paper retrieval
//	GET /similar?id=<paper>&m=<count>           -> JSON related papers
//	GET /healthz                                -> build statistics
//	GET /metrics                                -> Prometheus text metrics
//	GET /debug/vars                             -> JSON metrics snapshot
//	GET /debug/pprof/*                          -> profiling (with -pprof)
//
// Usage:
//
//	expertserve -dataset aminer -papers 1000 -addr :8080
//	expertserve -graph g.json -engine engine.bin -addr :8080 -pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"expertfind/internal/cli"
	"expertfind/internal/core"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/serve"
	"expertfind/internal/ta"
	"expertfind/internal/train"
)

func main() {
	var (
		graphFile   = flag.String("graph", "", "JSON graph file (from datagen)")
		engineFile  = flag.String("engine", "", "saved engine file (from a previous -save)")
		saveFile    = flag.String("save", "", "save the built engine to this file and continue serving")
		preset      = flag.String("dataset", "aminer", "built-in preset when -graph is not given")
		papers      = flag.Int("papers", 1000, "preset size in papers")
		dim         = flag.Int("dim", 64, "embedding dimension")
		seed        = flag.Int64("seed", 7, "random seed")
		addr        = flag.String("addr", ":8080", "listen address")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		enablePprof = flag.Bool("pprof", false, "mount profiling handlers under /debug/pprof/")

		queryCache  = flag.Int("query-cache", 4096, "query-cache entries (0 disables caching)")
		queryTTL    = flag.Duration("query-cache-ttl", 5*time.Minute, "query-cache entry TTL (0 = no expiry)")
		queryTO     = flag.Duration("query-timeout", 2*time.Second, "per-request query deadline, 504 past it (0 = none)")
		maxInflight = flag.Int("max-inflight", 256, "concurrent query requests before shedding 503 (0 = unlimited)")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger := obs.NewLogger(os.Stderr, lvl)

	// Wire the metrics sinks before the build so the offline phases
	// (sampling, training epochs, indexing) are recorded too.
	reg := obs.Default()
	obs.RegisterWellKnown(reg)
	pgindex.SetSink(reg)
	ta.SetSink(reg)
	train.SetSink(reg)

	g, err := cli.LoadGraph(*graphFile, *preset, *papers)
	if err != nil {
		fail(err)
	}

	var engine *core.Engine
	if *engineFile != "" {
		f, err := os.Open(*engineFile)
		if err != nil {
			fail(err)
		}
		engine, err = core.Load(f, g)
		f.Close()
		if err != nil {
			fail(err)
		}
		logger.Info("engine_loaded", "file", *engineFile)
	} else {
		logger.Info("build_start", "papers", g.NumNodesOfType(hetgraph.Paper),
			"dim", *dim, "seed", *seed)
		engine, err = core.Build(g, core.Options{Dim: *dim, Seed: *seed})
		if err != nil {
			fail(err)
		}
		st := engine.Stats()
		logger.Info("build_done",
			"total", st.TotalTime,
			"sampling", st.CommunityTime,
			"training", st.TrainTime,
			"embedding", st.EmbedTime,
			"indexing", st.IndexTime,
			"vocab", st.VocabSize,
			"index_edges", st.IndexEdges,
		)
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fail(err)
		}
		if err := engine.Save(f); err != nil {
			fail(err)
		}
		f.Close()
		logger.Info("engine_saved", "file", *saveFile)
	}

	if *queryCache > 0 {
		engine.EnableQueryCache(core.CacheConfig{MaxEntries: *queryCache, TTL: *queryTTL})
		logger.Info("query_cache_enabled", "entries", *queryCache, "ttl", *queryTTL)
	}

	srv := serve.New(engine)
	srv.Log = logger
	srv.QueryTimeout = *queryTO
	srv.MaxInFlight = *maxInflight
	if *enablePprof {
		srv.EnablePprof()
		logger.Info("pprof_enabled", "path", "/debug/pprof/")
	}
	logger.Info("serving", "addr", *addr,
		"query_timeout", *queryTO, "max_inflight", *maxInflight)
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "expertserve:", err)
	os.Exit(1)
}
