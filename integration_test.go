package expertfind_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the shipped binaries end to end: generate a
// dataset with datagen (graph + benchmark queries), then evaluate it with
// expertfind -eval. This is the workflow README documents.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }

	for _, tool := range []string{"datagen", "expertfind"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	graph := filepath.Join(dir, "g.json")
	out, err := exec.Command(bin("datagen"), "-preset", "aminer", "-papers", "200",
		"-out", graph, "-queries", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "generated aminer-sim") {
		t.Errorf("datagen output missing summary: %s", out)
	}
	if _, err := os.Stat(graph + ".queries.json"); err != nil {
		t.Fatalf("queries file missing: %v", err)
	}

	out, err = exec.Command(bin("expertfind"), "-graph", graph,
		"-eval", graph+".queries.json", "-m", "40", "-n", "10", "-dim", "16").CombinedOutput()
	if err != nil {
		t.Fatalf("expertfind -eval: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "MAP") || !strings.Contains(text, "evaluated 5 queries") {
		t.Errorf("eval output unexpected:\n%s", text)
	}

	// Single-query mode.
	out, err = exec.Command(bin("expertfind"), "-graph", graph,
		"-query", "community graphs expert", "-m", "40", "-n", "3", "-dim", "16").CombinedOutput()
	if err != nil {
		t.Fatalf("expertfind -query: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "top-3 experts") {
		t.Errorf("query output unexpected:\n%s", out)
	}
}
