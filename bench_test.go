package expertfind_test

// One benchmark per table and figure of the paper's evaluation (§VI),
// plus micro-benchmarks for the ablations DESIGN.md calls out: Algorithm
// 1's early pruning vs FastBCore vs the naive projection, PG-Index
// refinement vs the raw kNN graph vs brute force, TA vs full-scan expert
// ranking, and near vs random negative sampling.
//
// The table/figure benchmarks regenerate the corresponding experiment
// end-to-end at a reduced scale; cmd/benchtab prints the same rows in the
// paper's layout at any scale. Run with:
//
//	go test -bench=. -benchmem

import (
	"math/rand"
	"sync"
	"testing"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
	"expertfind/internal/hetgraph"
	"expertfind/internal/kpcore"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
	"expertfind/internal/ta"
)

// benchScale keeps the end-to-end experiment benchmarks at a size where
// one iteration takes seconds, not minutes.
var benchScale = experiments.Scale{Papers: 150, Queries: 5, M: 30, N: 10, Dim: 16, Seed: 7}

func BenchmarkTable2Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(benchScale)
	}
}

func BenchmarkTable3CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable3(benchScale)
	}
}

func BenchmarkTable4MetaPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable4(benchScale)
	}
}

func BenchmarkTable5NegSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable5(benchScale)
	}
}

func BenchmarkTable6PGIndexOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable6(experiments.Scale{Papers: 400, Dim: 16, Seed: 7})
	}
}

func BenchmarkFig7Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(benchScale)
	}
}

func BenchmarkFig8aSampleRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig8a(benchScale)
	}
}

func BenchmarkFig8bCoreK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig8b(benchScale)
	}
}

func BenchmarkFig8cTopM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig8c(benchScale)
	}
}

func BenchmarkFig8dTopN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig8d(benchScale)
	}
}

// --- Ablation micro-benchmarks -------------------------------------------

// benchGraph caches one mid-size dataset for the per-operation benchmarks.
var benchGraph = func() *dataset.Dataset {
	return dataset.Generate(dataset.AminerSim(800))
}()

// BenchmarkCoreSearch compares the three (k,P)-core community searches of
// §III-A per seed lookup: Algorithm 1 with early pruning, FastBCore, and
// the naive full projection + decomposition.
func BenchmarkCoreSearch(b *testing.B) {
	g := benchGraph.Graph
	papers := g.NodesOfType(hetgraph.Paper)
	rng := rand.New(rand.NewSource(1))
	seeds := make([]hetgraph.NodeID, 64)
	for i := range seeds {
		seeds[i] = papers[rng.Intn(len(papers))]
	}
	b.Run("Algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kpcore.Search(g, seeds[i%len(seeds)], 4, hetgraph.PAP)
		}
	})
	b.Run("FastBCore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kpcore.FastBCore(g, seeds[i%len(seeds)], 4, hetgraph.PAP)
		}
	})
	b.Run("NaiveProjection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kpcore.NaiveSearch(g, seeds[i%len(seeds)], 4, hetgraph.PAP)
		}
	})
}

// BenchmarkCoreSearchByK shows the cost growth in k (Figure 8(b)'s
// training-cost axis is dominated by this search).
func BenchmarkCoreSearchByK(b *testing.B) {
	g := benchGraph.Graph
	papers := g.NodesOfType(hetgraph.Paper)
	for _, k := range []int{2, 4, 6, 8} {
		b.Run(map[int]string{2: "k=2", 4: "k=4", 6: "k=6", 8: "k=8"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kpcore.Search(g, papers[i%len(papers)], k, hetgraph.PAP)
			}
		})
	}
}

// benchEngine caches a built engine for the online-path benchmarks.
var benchEngine = func() *core.Engine {
	e, err := core.Build(benchGraph.Graph, core.Options{Dim: 32, Seed: 7})
	if err != nil {
		panic(err)
	}
	return e
}()

// BenchmarkRetrieval compares PG-Index search against the brute-force
// scan (the Ours-1 vs Ours-3 gap of Figure 7).
func BenchmarkRetrieval(b *testing.B) {
	queries := benchGraph.Queries(32, rand.New(rand.NewSource(2)))
	b.Run("PGIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := benchEngine.EncodeQuery(queries[i%len(queries)].Text)
			benchEngine.Index().Search(q, 50, 0)
		}
	})
	b.Run("BruteForce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := benchEngine.EncodeQuery(queries[i%len(queries)].Text)
			pgindex.BruteForce(benchEngine.Embeddings, q, 50)
		}
	})
}

// BenchmarkExpertRanking compares TA against the full scan over the same
// retrieved lists (the Ours-1 vs Ours-2 gap of Figure 7).
func BenchmarkExpertRanking(b *testing.B) {
	g := benchGraph.Graph
	queries := benchGraph.Queries(16, rand.New(rand.NewSource(3)))
	retrieved := make([][]hetgraph.NodeID, len(queries))
	for i, q := range queries {
		retrieved[i], _, _ = benchEngine.RetrievePapers(q.Text, 100)
	}
	b.Run("TA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ta.TopExperts(g, retrieved[i%len(retrieved)], 20)
		}
	})
	b.Run("FullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ta.TopExpertsFullScan(g, retrieved[i%len(retrieved)], 20)
		}
	})
}

// BenchmarkPGIndexBuild measures index construction with and without the
// Algorithm 2 refinement (Table VI's cost, and the refinement ablation).
func BenchmarkPGIndexBuild(b *testing.B) {
	embs := benchEngine.Embeddings
	b.Run("Refined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pgindex.Build(embs, pgindex.Config{Refine: true, Seed: 7})
		}
	})
	b.Run("RawKNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pgindex.Build(embs, pgindex.Config{Refine: false, Seed: 7})
		}
	})
}

// BenchmarkSampling compares the near and random negative strategies
// (Table V's training-cost column starts here).
func BenchmarkSampling(b *testing.B) {
	g := benchGraph.Graph
	for _, st := range []sampling.Strategy{sampling.NearNegative, sampling.RandomNegative} {
		st := st
		b.Run(st.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				sampling.Generate(g, sampling.Config{Strategy: st, Fraction: 0.1,
					MaxPositivesPerSeed: 32}, rng)
			}
		})
	}
}

// BenchmarkEndToEndQuery measures the full online path (encode, retrieve,
// rank) — the per-query latency of Figure 7's Ours-1.
func BenchmarkEndToEndQuery(b *testing.B) {
	queries := benchGraph.Queries(32, rand.New(rand.NewSource(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEngine.TopExperts(queries[i%len(queries)].Text, 100, 20)
	}
}

// BenchmarkOfflineBuild measures the full offline pipeline at a small
// scale (the cost Figure 8(a)/(b) trade against quality).
func BenchmarkOfflineBuild(b *testing.B) {
	ds := dataset.Generate(dataset.AminerSim(200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(ds.Graph, core.Options{Dim: 16, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Statistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable1(benchScale)
	}
}

func BenchmarkFig5SearchWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(benchScale)
	}
}

// BenchmarkSamplingCoreIndex compares per-seed community search against
// the amortised core-index fast path over the whole sampling stage.
func BenchmarkSamplingCoreIndex(b *testing.B) {
	g := benchGraph.Graph
	for _, fast := range []bool{false, true} {
		name := "PerSeedSearch"
		if fast {
			name = "CoreIndex"
		}
		cfg := sampling.Config{Fraction: 0.3, MaxPositivesPerSeed: 32, UseCoreIndex: fast}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sampling.Generate(g, cfg, rand.New(rand.NewSource(1)))
			}
		})
	}
}

// cachedBenchEngine lazily builds a second engine with the query cache
// enabled, for the warm/concurrent serving benchmarks. benchEngine stays
// cache-less so the offline-path benchmarks keep measuring real work.
var cachedBenchEngine = struct {
	once sync.Once
	e    *core.Engine
}{}

func cachedEngine() *core.Engine {
	cachedBenchEngine.once.Do(func() {
		e, err := core.Build(benchGraph.Graph, core.Options{Dim: 32, Seed: 7})
		if err != nil {
			panic(err)
		}
		e.EnableQueryCache(core.CacheConfig{MaxEntries: 4096})
		cachedBenchEngine.e = e
	})
	return cachedBenchEngine.e
}

// BenchmarkTopExpertsCold measures the full online path — encode,
// PG-Index retrieval, TA ranking — with no cache attached.
func BenchmarkTopExpertsCold(b *testing.B) {
	queries := benchGraph.Queries(32, rand.New(rand.NewSource(9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := benchEngine.TopExperts(queries[i%len(queries)].Text, 50, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopExpertsWarm measures a cache hit: the same queries again on
// a cache-enabled engine. The acceptance bar for the query cache is a
// >=10x p50 advantage over BenchmarkTopExpertsCold (tracked as
// warm_speedup_p50 in BENCH_query.json).
func BenchmarkTopExpertsWarm(b *testing.B) {
	e := cachedEngine()
	queries := benchGraph.Queries(32, rand.New(rand.NewSource(9)))
	for _, q := range queries { // prime
		if _, _, err := e.TopExperts(q.Text, 50, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := e.TopExperts(queries[i%len(queries)].Text, 50, 10)
		if err != nil {
			b.Fatal(err)
		}
		if !st.CacheHit {
			b.Fatal("warm benchmark missed the cache")
		}
	}
}

// BenchmarkTopExpertsConcurrent hammers the cache-enabled engine from
// GOMAXPROCS goroutines over a small warm query set — the serving-layer
// throughput number (QPS under concurrency in BENCH_query.json).
func BenchmarkTopExpertsConcurrent(b *testing.B) {
	e := cachedEngine()
	queries := benchGraph.Queries(8, rand.New(rand.NewSource(9)))
	for _, q := range queries {
		if _, _, err := e.TopExperts(q.Text, 50, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := e.TopExperts(queries[i%len(queries)].Text, 50, 10); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
