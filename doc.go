// Package expertfind is a from-scratch Go reproduction of "Academic
// Expert Finding via (k,P)-Core based Embedding over Heterogeneous
// Graphs" (ICDE 2022).
//
// The implementation lives under internal/: the heterogeneous academic
// graph and meta-path machinery (internal/hetgraph), the (k,P)-core
// community search of Algorithm 1 with its FastBCore and naive baselines
// (internal/kpcore), the simulated pre-trained document encoder
// (internal/textenc), sampling-based training-data generation
// (internal/sampling), triplet-loss fine-tuning with Adam
// (internal/train), the PG-Index proximity graph (internal/pgindex), the
// threshold-algorithm expert ranking (internal/ta), the synthetic
// Aminer/DBLP/ACM stand-ins (internal/dataset), seven comparison baselines
// (internal/baselines), the assembled engine (internal/core), and the
// experiment harness regenerating every table and figure of the paper's
// evaluation (internal/experiments).
//
// Binaries: cmd/expertfind (query CLI), cmd/datagen (dataset generator),
// cmd/benchtab (experiment runner). Runnable examples are under examples/.
// The benchmarks in bench_test.go exercise one workload per paper table
// and figure plus the ablations called out in DESIGN.md.
package expertfind
