// Service: the offline/online split as a deployment. Build the engine
// once, persist the fine-tuned parameters to disk, reload them into a
// fresh engine (as a restarted serving process would), stand up the HTTP
// API, and issue a query against it.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/serve"
)

func main() {
	ds := dataset.Generate(dataset.ACMSim(900))

	// Offline: build and persist.
	t0 := time.Now()
	built, err := core.Build(ds.Graph, core.Options{Dim: 48, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	var snapshot bytes.Buffer
	if err := built.Save(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline build: %s; engine snapshot: %d KB\n",
		time.Since(t0).Round(time.Millisecond), snapshot.Len()/1024)

	// Online: a fresh process would load the snapshot against the graph.
	t0 = time.Now()
	engine, err := core.Load(&snapshot, ds.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine restored in %s (embeddings + PG-Index rebuilt from Θ_B)\n",
		time.Since(t0).Round(time.Millisecond))

	srv := httptest.NewServer(serve.New(engine))
	defer srv.Close()
	fmt.Printf("serving on %s\n\n", srv.URL)

	// A client asks for experts.
	q := ds.Queries(1, rand.New(rand.NewSource(11)))[0]
	resp, err := http.Get(srv.URL + "/experts?q=" + url.QueryEscape(q.Text) + "&n=5&m=150")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	var out serve.ExpertsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /experts (%.2fms server-side):\n", out.ResponseMs)
	for _, e := range out.Experts {
		mark := " "
		if q.Truth[hetgraph.NodeID(e.ID)] {
			mark = "*"
		}
		fmt.Printf("  %d.%s %-24s score %.4f (%d papers)\n", e.Rank, mark, e.Name, e.Score, e.Papers)
	}
	fmt.Println("\n(* = ground-truth expert of the query's topic)")
}
