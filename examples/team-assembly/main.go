// Team assembly: a consulting-style scenario (§I cites consulting and
// technology transfer as applications). A project brief spans several
// expertise areas; for each area we retrieve the strongest experts, then
// assemble a team greedily, never picking two members from the same
// research group twice for the same area and preferring breadth across
// areas over depth in one.
//
//	go run ./examples/team-assembly
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/ta"
)

func main() {
	ds := dataset.Generate(dataset.DBLPSim(900))
	g := ds.Graph
	engine, err := core.Build(g, core.Options{Dim: 48, Seed: 6, FastSampling: true})
	if err != nil {
		log.Fatal(err)
	}

	// The project brief: three sub-areas, each described in a user's own
	// words (we borrow three generated queries from different topics).
	rng := rand.New(rand.NewSource(21))
	var briefs []dataset.Query
	seen := map[int]bool{}
	for _, q := range ds.Queries(60, rng) {
		if !seen[q.Topic] {
			seen[q.Topic] = true
			briefs = append(briefs, q)
			if len(briefs) == 3 {
				break
			}
		}
	}

	fmt.Println("assembling a 6-person team across 3 expertise areas")
	perArea := make([][]ta.Ranking, len(briefs))
	for i, q := range briefs {
		perArea[i], _, _ = engine.TopExperts(q.Text, 200, 15)
		fmt.Printf("  area %d (topic %d): %d candidates, best score %.3f\n",
			i+1, q.Topic, len(perArea[i]), perArea[i][0].Score)
	}

	// Greedy round-robin: take the best remaining candidate of each area
	// in turn, skipping anyone already picked.
	picked := map[hetgraph.NodeID]bool{}
	type member struct {
		expert hetgraph.NodeID
		area   int
		score  float64
	}
	var team []member
	cursor := make([]int, len(briefs))
	for len(team) < 6 {
		progressed := false
		for a := range briefs {
			if len(team) == 6 {
				break
			}
			for cursor[a] < len(perArea[a]) {
				cand := perArea[a][cursor[a]]
				cursor[a]++
				if picked[cand.Expert] {
					continue
				}
				picked[cand.Expert] = true
				team = append(team, member{cand.Expert, a + 1, cand.Score})
				progressed = true
				break
			}
		}
		if !progressed {
			break // candidate pools exhausted
		}
	}

	fmt.Println("\nproposed team:")
	for i, m := range team {
		mark := " "
		if briefs[m.area-1].Truth[m.expert] {
			mark = "*"
		}
		fmt.Printf("  %d.%s %-24s area %d, score %.3f, %d papers\n",
			i+1, mark, g.Label(m.expert), m.area, m.score, len(g.PapersOf(m.expert)))
	}
	fmt.Println("\n(* = ground-truth expert of that area's topic)")
}
