// Meta-path comparison: the §V optimisation in action. Build the engine
// under three meta-path configurations — co-authorship alone (P-A-P),
// same-topic alone (P-T-P), and their intersection (the paper's best) —
// and compare retrieval quality for interdisciplinary authors, the very
// failure mode §V describes: one author publishing in several areas makes
// P-A-P-only communities topically impure.
//
//	go run ./examples/metapaths
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/metrics"
)

func main() {
	ds := dataset.Generate(dataset.AminerSim(800))
	g := ds.Graph

	configs := []struct {
		name  string
		paths []hetgraph.MetaPath
	}{
		{"P-A-P (co-authorship only)", []hetgraph.MetaPath{hetgraph.PAP}},
		{"P-T-P (same topic only)", []hetgraph.MetaPath{hetgraph.PTP}},
		{"P-A-P ∩ P-T-P (paper's best)", []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}},
	}

	rng := rand.New(rand.NewSource(5))
	queries := ds.Queries(20, rng)

	fmt.Println("effect of the meta-path choice on expert-finding quality")
	fmt.Printf("%-30s %8s %8s\n", "configuration", "MAP", "P@10")
	for _, cfg := range configs {
		engine, err := core.Build(g, core.Options{
			Dim:       48,
			Seed:      3,
			MetaPaths: cfg.paths,
		})
		if err != nil {
			log.Fatal(err)
		}
		var aps []float64
		var p10 float64
		for _, q := range queries {
			ranked, _, _ := engine.TopExperts(q.Text, 200, 20)
			ids := make([]hetgraph.NodeID, len(ranked))
			for i, r := range ranked {
				ids[i] = r.Expert
			}
			aps = append(aps, metrics.AveragePrecision(ids, q.Truth))
			p10 += metrics.PrecisionAtN(ids, q.Truth, 10)
		}
		fmt.Printf("%-30s %8.3f %8.3f\n", cfg.name, metrics.MAP(aps), p10/float64(len(queries)))
	}

	fmt.Println("\nwhy: interdisciplinary research groups publish across two topics;")
	fmt.Println("P-A-P cores mix both, while intersecting with P-T-P keeps training")
	fmt.Println("communities topically pure (§V of the paper).")
}
