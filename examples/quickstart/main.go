// Quickstart: generate a small synthetic academic network, build the
// (k,P)-core expert-finding engine with the paper's default parameters,
// and answer one free-text query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
)

func main() {
	// 1. A synthetic Aminer-like heterogeneous graph: papers, authors,
	// venues, topics, with planted research groups (see internal/dataset).
	ds := dataset.Generate(dataset.AminerSim(600))
	st := ds.Graph.Stats()
	fmt.Printf("academic graph: %d papers, %d experts, %d topics, %d relations\n",
		st.Papers, st.Experts, st.Topics, st.Relations)

	// 2. Offline build: (k,P)-core community sampling, triplet fine-tuning
	// of the document encoder, and PG-Index construction. The zero-value
	// options select the paper's defaults (k=4, P-A-P ∩ P-T-P, f=0.3,
	// near negatives 1:3).
	t0 := time.Now()
	engine, err := core.Build(ds.Graph, core.Options{Dim: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine built in %s (%d training triples, %d index edges)\n",
		time.Since(t0).Round(time.Millisecond),
		engine.Stats().Sampling.Triples, engine.Stats().IndexEdges)

	// 3. Online query: a user describes the expertise they need in their
	// own words. Here we borrow a generated evaluation query so the text
	// matches the synthetic corpus vocabulary.
	q := ds.Queries(1, rand.New(rand.NewSource(42)))[0]
	fmt.Printf("\nquery: %.70s...\n", q.Text)

	experts, qs, _ := engine.TopExperts(q.Text, 200, 10)
	fmt.Printf("top-10 experts in %.2fms (PG-Index visited %d nodes; TA stopped at depth %d):\n",
		float64(qs.Total().Microseconds())/1000, qs.Search.NodesVisited, qs.TA.Depth)
	for i, r := range experts {
		mark := " "
		if q.Truth[r.Expert] {
			mark = "*" // ground-truth expert of the query's topic
		}
		fmt.Printf("  %2d.%s %-24s score %.4f\n", i+1, mark, ds.Graph.Label(r.Expert), r.Score)
	}
	fmt.Println("\n(* = expert of the query's ground-truth topic)")
}
