// Reviewer assignment: one of the paper's motivating applications (§I).
// Given a submission's title+abstract and its author list, find the most
// relevant reviewers while excluding anyone with a conflict of interest
// (the submitting authors themselves and their recent co-authors).
//
//	go run ./examples/reviewer-assignment
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

func main() {
	ds := dataset.Generate(dataset.DBLPSim(800))
	g := ds.Graph
	engine, err := core.Build(g, core.Options{Dim: 48, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The "submission": we pick an existing paper and pretend it was just
	// submitted; its text is the query, its authors are the conflicted
	// parties.
	rng := rand.New(rand.NewSource(9))
	q := ds.Queries(1, rng)[0]
	submission := q.Source
	submitting := g.AuthorsOf(submission)

	// Conflict set: submitting authors plus everyone who co-authored any
	// paper with them.
	conflicts := map[hetgraph.NodeID]bool{}
	for _, a := range submitting {
		conflicts[a] = true
		for _, p := range g.PapersOf(a) {
			for _, co := range g.AuthorsOf(p) {
				conflicts[co] = true
			}
		}
	}
	fmt.Printf("submission: %.70s...\n", g.Label(submission))
	fmt.Printf("submitting authors: %d, conflict set: %d researchers\n\n",
		len(submitting), len(conflicts))

	// Over-fetch candidates, then take the best conflict-free reviewers.
	const want = 5
	ranked, _, _ := engine.TopExperts(q.Text, 300, 50)
	fmt.Printf("top-%d conflict-free reviewers:\n", want)
	count := 0
	for _, r := range ranked {
		if conflicts[r.Expert] {
			continue
		}
		count++
		mark := " "
		if q.Truth[r.Expert] {
			mark = "*"
		}
		fmt.Printf("  %d.%s %-24s score %.4f (%d papers on record)\n",
			count, mark, g.Label(r.Expert), r.Score, len(g.PapersOf(r.Expert)))
		if count == want {
			break
		}
	}
	if count < want {
		fmt.Printf("  (only %d conflict-free candidates in the top-50 pool)\n", count)
	}
	fmt.Println("\n(* = works on the submission's topic, per the synthetic ground truth)")
}
