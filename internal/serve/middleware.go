package serve

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"expertfind/internal/obs"
)

// knownRoutes bounds the route label's cardinality: anything else is
// folded into "other" so a path-scanning client cannot grow the registry
// without bound.
var knownRoutes = map[string]string{
	"/experts":       "/experts",
	"/papers":        "/papers",
	"/similar":       "/similar",
	"/add":           "/add",
	"/healthz":       "/healthz",
	"/readyz":        "/readyz",
	"/metrics":       "/metrics",
	"/debug/vars":    "/debug/vars",
	"/debug/traces":  "/debug/traces",
	"/shard/papers":  "/shard/papers",
	"/shard/experts": "/shard/experts",
}

func routeLabel(path string) string {
	if r, ok := knownRoutes[path]; ok {
		return r
	}
	if len(path) >= len("/debug/pprof/") && path[:len("/debug/pprof/")] == "/debug/pprof/" {
		return "/debug/pprof"
	}
	if len(path) >= len("/debug/traces/") && path[:len("/debug/traces/")] == "/debug/traces/" {
		return "/debug/traces"
	}
	return "other"
}

// statusWriter captures the response code and body size for metrics and
// the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler: the observability middleware around
// the route mux. Each request gets a request ID (honouring an incoming
// X-Request-ID so ids propagate across services), an access-log line, and
// per-route metrics. Query routes additionally run under a trace-aware
// context: an incoming X-Trace-Context joins the request to its
// originating distributed trace, and the handler's root span is captured
// here — rather than wrapped in a middleware span, which would rename
// every stage metric series — for trace retention, exemplars and the
// slow-query log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	route := routeLabel(r.URL.Path)
	r, capture := enrichContext(r, s.reg, route)

	inflight := s.reg.Gauge("expertfind_http_in_flight", "Requests currently being served.")
	inflight.Add(1)
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	inflight.Add(-1)

	if sw.code == 0 { // handler wrote nothing at all
		sw.code = http.StatusOK
	}
	dur := time.Since(start)
	durMs := float64(dur.Microseconds()) / 1000
	traceID := s.finishTrace(capture, r, route, sw.code, durMs)
	s.reg.Counter("expertfind_http_requests_total", "HTTP requests by route and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(sw.code))).Inc()
	s.reg.Histogram("expertfind_http_request_seconds", "HTTP request latency by route.",
		nil, obs.L("route", route)).ObserveWithExemplar(dur.Seconds(), traceID)
	s.Log.Info("access",
		"req_id", reqID,
		"method", r.Method,
		"path", r.URL.Path,
		"route", route,
		"status", sw.code,
		"bytes", sw.bytes,
		"dur_ms", durMs,
	)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format; scrapers that negotiate OpenMetrics via Accept additionally
// get histogram exemplars, which the classic 0.0.4 parser rejects.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if obs.AcceptsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", obs.ContentTypeText)
	s.reg.WritePrometheus(w)
}

// handleDebugVars serves a JSON snapshot of every metric, histograms
// summarised as count/sum/p50/p90/p99 — a quick human-readable mirror of
// /metrics in the expvar tradition.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.reg.Snapshot())
}

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: profiling endpoints can stall the
// process (CPU profiles block for their duration) and belong behind an
// operator flag.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
