package serve

import (
	"testing"
	"time"

	"expertfind/internal/colstore"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/obs"
)

// startMmapFollower is startReplFollower with an explicit mmap mode:
// the follower bootstraps from the leader's snapshot and materialises
// its columnar section the chosen way.
func startMmapFollower(t *testing.T, leaderURL string, mode colstore.Mode) *replFollower {
	t.Helper()
	g := dataset.Generate(dataset.AminerSim(replCorpus)).Graph
	reg := obs.NewRegistry()
	obs.RegisterReplication(reg)
	fo, err := core.OpenFollower(t.TempDir(), g, leaderURL, core.FollowerOptions{
		ID: "mmap-follower-" + mode.String(), PollInterval: 10 * time.Millisecond,
		Mmap: mode, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fo.Close() })
	fo.Start()
	return &replFollower{fo: fo, reg: reg}
}

// TestMmapEquivalenceFollower is the replication leg of the mmap
// acceptance suite: a follower that bootstraps onto the leader's
// snapshot with the columnar section mmap'd must converge to rankings
// Float64bits-identical to the leader and to a heap-decoded follower of
// the same leader — replicated updates land on the heap, never in the
// read-only mapping.
func TestMmapEquivalenceFollower(t *testing.T) {
	ld := startReplLeader(t, 0, 0)
	addPapers(t, ld.store.Engine(), 0, 6)
	// Snapshot now, so the bootstrap snapshot itself carries a columnar
	// section with journalled updates in it.
	if err := ld.store.Snapshot(); err != nil {
		t.Fatal(err)
	}

	mapped := startMmapFollower(t, ld.ts.URL, colstore.ModeOn)
	heap := startMmapFollower(t, ld.ts.URL, colstore.ModeOff)
	if !mapped.fo.Engine().SnapshotMapped() {
		t.Fatal("ModeOn follower did not map its bootstrap snapshot")
	}
	if heap.fo.Engine().SnapshotMapped() {
		t.Fatal("ModeOff follower reports a mapped snapshot")
	}

	waitApplied(t, mapped.fo, 6)
	waitApplied(t, heap.fo, 6)
	assertEnginesEqual(t, ld.ds, ld.store.Engine(), mapped.fo.Engine())
	assertEnginesEqual(t, ld.ds, heap.fo.Engine(), mapped.fo.Engine())

	// Writes issued while both followers tail replicate onto the mapped
	// matrix's heap extension and stay bit-identical.
	addPapers(t, ld.store.Engine(), 6, 5)
	waitApplied(t, mapped.fo, 11)
	waitApplied(t, heap.fo, 11)
	assertEnginesEqual(t, ld.ds, ld.store.Engine(), mapped.fo.Engine())
	assertEnginesEqual(t, ld.ds, heap.fo.Engine(), mapped.fo.Engine())
}
