// Package serve exposes a built expert-finding engine over HTTP: the
// online stage of the paper (§IV) as a long-lived service. The handlers
// are safe for concurrent use — the engine is read-only after Build.
//
// Every request passes through the observability middleware
// (middleware.go): request-ID assignment, an access log line, per-route
// latency histograms, status-code counters and an in-flight gauge, all
// recorded in the engine's obs.Registry and scrapeable at /metrics (with
// a JSON mirror at /debug/vars and opt-in pprof under /debug/pprof/).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/ta"
	"expertfind/internal/train"
)

// Server wraps an engine with HTTP handlers.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux
	reg    *obs.Registry
	// Log receives one structured access line per request; NopLogger by
	// default so library use stays silent. Replace before serving.
	Log *obs.Logger
	// defaults for m and n when the request omits them.
	DefaultM, DefaultN int
	// MaxM and MaxN bound per-request work.
	MaxM, MaxN int
	// QueryTimeout bounds each query route's work; past it the handler
	// answers 504. Zero means no per-request deadline (the client's own
	// cancellation still propagates). Set before serving.
	QueryTimeout time.Duration
	// MaxInFlight sheds query-route requests past this many concurrent
	// ones with 503 + Retry-After, keeping tail latency bounded under
	// overload. Zero means unlimited. Set before serving.
	MaxInFlight int
	// RetryAfter is the Retry-After hint on shed responses (default 1s).
	RetryAfter time.Duration
	// Traces, when set, retains query span trees under its tail-based
	// keep rules and serves them on /debug/traces. Nil disables trace
	// retention (spans still time stages and propagate trace context).
	// Set before serving.
	Traces *obs.TraceStore
	// SlowQuery, when positive, logs one structured warn line (with
	// trace id) for every traced request at least this slow. Set before
	// serving.
	SlowQuery time.Duration

	// ReadyProbe, when set, is consulted by /readyz after the boot gate:
	// it returns whether the node should receive traffic and a short
	// status word for the 503 body when it should not (e.g. a
	// replication follower reports false, "replication_lag" until its
	// lag is within bound). Set before serving.
	ReadyProbe func() (ok bool, status string)

	inflightQueries atomic.Int64
	// topology is the /healthz identity block; zero value reports role
	// "single". See SetTopology.
	topology Topology
	// ready gates /readyz (and update acceptance): false until the
	// operator signals that recovery — engine load/build and WAL replay —
	// is complete. See SetReady.
	ready atomic.Bool
	// denyWrites, when non-nil, is the reason /add refuses writes — a
	// replication follower serves reads only until promoted.
	denyWrites atomic.Pointer[string]
}

// New returns a server over a built engine with sensible bounds. The
// server records into the engine's metrics registry and installs that
// registry as the measurement sink of the pipeline packages, so PG-Index
// and TA work counters aggregate across requests.
func New(engine *core.Engine) *Server {
	s := &Server{
		engine:     engine,
		mux:        http.NewServeMux(),
		reg:        engine.Metrics(),
		Log:        obs.NopLogger(),
		DefaultM:   200,
		DefaultN:   10,
		MaxM:       5000,
		MaxN:       500,
		RetryAfter: time.Second,
	}
	obs.RegisterWellKnown(s.reg)
	pgindex.SetSink(s.reg)
	ta.SetSink(s.reg)
	train.SetSink(s.reg)
	s.mux.HandleFunc("/experts", s.handleExperts)
	s.mux.HandleFunc("/papers", s.handlePapers)
	s.mux.HandleFunc("/similar", s.handleSimilar)
	s.mux.HandleFunc("/add", s.handleAdd)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/vars", s.handleDebugVars)
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	s.mux.HandleFunc("/debug/traces/", s.handleTraces)
	return s
}

// Handle mounts an additional handler on the server's mux, behind the
// same observability middleware as the built-in routes. The cluster layer
// uses this to expose the internal /shard/* APIs on a shard server.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
}

// WriteJSON renders v as indented JSON with the server's buffered-encode
// error handling, for handlers mounted via Handle.
func (s *Server) WriteJSON(w http.ResponseWriter, v interface{}) { s.writeJSON(w, v) }

// DenyWrites makes /add refuse updates with 503 + Retry-After and the
// given reason — the state of a replication follower, whose only writes
// come from its leader's log. AllowWrites (on promotion) reverses it.
func (s *Server) DenyWrites(reason string) { s.denyWrites.Store(&reason) }

// AllowWrites lifts DenyWrites.
func (s *Server) AllowWrites() { s.denyWrites.Store(nil) }

// SetReady flips the /readyz gate. Serve it false while booting —
// building or loading the engine, replaying the WAL — so load
// balancers keep traffic away from a replica that cannot yet answer
// (or durably accept) anything; flip it true once recovery completes,
// and back to false when shutdown begins.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

// Registry returns the metrics registry the server records into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ListenAndServe blocks serving on addr.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}

// ListenAndServeContext serves on addr until ctx is cancelled, then
// shuts down gracefully: the readiness gate flips to 503 (so load
// balancers stop routing here), the listener closes, and in-flight
// requests get up to drain to finish before being cut off. It returns
// nil on a clean drain; the caller then flushes durable state (final
// snapshot, WAL close) knowing no handler is still mutating the engine.
func (s *Server) ListenAndServeContext(ctx context.Context, addr string, drain time.Duration) error {
	return serveContext(ctx, s, addr, drain, func() { s.SetReady(false) }, s.reg, s.Log)
}

// statusClientClosedRequest is nginx's 499: the client went away before
// the response was ready, so no status will reach it anyway — but the
// access log and counters should not blame the server with a 5xx.
const statusClientClosedRequest = 499

// acquireQuerySlot admits a query-route request under the MaxInFlight
// bound, or sheds it with 503 + Retry-After. The returned release must be
// called when the handler finishes; ok=false means the response is
// already written.
func (s *Server) acquireQuerySlot(w http.ResponseWriter) (release func(), ok bool) {
	if s.MaxInFlight <= 0 {
		return func() {}, true
	}
	for {
		cur := s.inflightQueries.Load()
		if cur >= int64(s.MaxInFlight) {
			s.reg.Counter("expertfind_http_shed_total",
				"Query requests shed because the in-flight limit was reached.").Inc()
			s.setRetryAfter(w)
			http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
			return nil, false
		}
		if s.inflightQueries.CompareAndSwap(cur, cur+1) {
			return func() { s.inflightQueries.Add(-1) }, true
		}
	}
}

// setRetryAfter stamps the Retry-After hint every transient 503 carries,
// rounded up to whole seconds as the header requires.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	retry := s.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
}

// queryContext derives the handler context: the request's own (so client
// disconnects cancel server work) bounded by QueryTimeout when set.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.QueryTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.QueryTimeout)
}

// writeQueryError maps an engine error onto an HTTP status: 400 for bad
// parameters, 504 for an expired deadline, 499 for a client that went
// away, 500 otherwise. Returns true when it wrote a response.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) bool {
	if err == nil {
		return false
	}
	var bad *core.BadParamError
	switch {
	case errors.As(err, &bad):
		http.Error(w, bad.Error(), http.StatusBadRequest)
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("expertfind_http_timeouts_total",
			"Query requests that exceeded their deadline.").Inc()
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "client closed request", statusClientClosedRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return true
}

// ExpertResult is one expert in an /experts response.
type ExpertResult struct {
	Rank   int     `json:"rank"`
	ID     int32   `json:"id"`
	Name   string  `json:"name"`
	Score  float64 `json:"score"`
	Papers int     `json:"papers"`
}

// ExpertsResponse is the /experts payload.
type ExpertsResponse struct {
	Query      string         `json:"query"`
	Experts    []ExpertResult `json:"experts"`
	ResponseMs float64        `json:"response_ms"`
	Candidates int            `json:"candidates"`
	TADepth    int            `json:"ta_depth"`
	Cached     bool           `json:"cached"`
	// Debug carries the opt-in (?debug=1) trace id and stage breakdown;
	// omitted otherwise, so default responses are byte-identical to
	// pre-tracing builds.
	Debug *QueryDebug `json:"debug,omitempty"`
}

func (s *Server) handleExperts(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	n, err := s.intParam(r, "n", s.DefaultN, s.MaxN)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := s.intParam(r, "m", s.DefaultM, s.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.acquireQuerySlot(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()

	ranked, st, err := s.engine.TopExpertsCtx(ctx, q, m, n)
	if s.writeQueryError(w, err) {
		return
	}
	g := s.engine.Graph()
	resp := ExpertsResponse{
		Query:      q,
		ResponseMs: float64(st.Total().Microseconds()) / 1000,
		Candidates: st.TA.Candidates,
		TADepth:    st.TA.Depth,
		Cached:     st.CacheHit,
		Experts:    make([]ExpertResult, 0, len(ranked)),
	}
	for i, e := range ranked {
		resp.Experts = append(resp.Experts, ExpertResult{
			Rank:   i + 1,
			ID:     int32(e.Expert),
			Name:   g.Label(e.Expert),
			Score:  e.Score,
			Papers: len(g.PapersOf(e.Expert)),
		})
	}
	if r.URL.Query().Get("debug") == "1" {
		resp.Debug = &QueryDebug{
			// Empty on a cache hit: the answer ran no spans this time.
			TraceID: obs.TraceIDFromContext(ctx),
			Stages: []StageTiming{
				{Name: "encode", Ms: float64(st.EncodeTime.Microseconds()) / 1000},
				{Name: "retrieve", Ms: float64(st.RetrieveTime.Microseconds()) / 1000},
				{Name: "rank", Ms: float64(st.RankTime.Microseconds()) / 1000},
			},
		}
	}
	s.writeJSON(w, resp)
}

// PaperResult is one paper in a /papers response.
type PaperResult struct {
	Rank    int      `json:"rank"`
	ID      int32    `json:"id"`
	Text    string   `json:"text"`
	Authors []string `json:"authors"`
}

func (s *Server) paperResult(rank int, p hetgraph.NodeID) PaperResult {
	g := s.engine.Graph()
	pr := PaperResult{Rank: rank, ID: int32(p), Text: truncate(g.Label(p), 120)}
	for _, a := range g.AuthorsOf(p) {
		pr.Authors = append(pr.Authors, g.Label(a))
	}
	return pr
}

func (s *Server) handlePapers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	m, err := s.intParam(r, "m", s.DefaultN, s.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.acquireQuerySlot(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	papers, _, err := s.engine.RetrievePapersCtx(ctx, q, m)
	if s.writeQueryError(w, err) {
		return
	}
	out := make([]PaperResult, 0, len(papers))
	for i, p := range papers {
		out = append(out, s.paperResult(i+1, p))
	}
	s.writeJSON(w, out)
}

// handleSimilar returns the papers most similar to an already-indexed
// paper, by its node id — the related-work lookup the embeddings support
// directly. The search goes through the engine so the configured EF
// search-pool option applies, exactly as it does for /experts.
func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		http.Error(w, "missing id parameter", http.StatusBadRequest)
		return
	}
	id64, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		http.Error(w, "id must be an integer node id", http.StatusBadRequest)
		return
	}
	m, err := s.intParam(r, "m", s.DefaultN, s.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.acquireQuerySlot(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ids, _, err := s.engine.SimilarPapersCtx(ctx, hetgraph.NodeID(id64), m)
	switch {
	case errors.Is(err, core.ErrUnknownPaper):
		http.Error(w, "unknown paper id", http.StatusNotFound)
		return
	case errors.Is(err, core.ErrNoIndex):
		http.Error(w, "index disabled on this engine", http.StatusServiceUnavailable)
		return
	case s.writeQueryError(w, err):
		return
	}
	out := make([]PaperResult, 0, len(ids))
	for i, p := range ids {
		out = append(out, s.paperResult(i+1, p))
	}
	s.writeJSON(w, out)
}

// AddRequest is the POST /add body: one paper to accept online.
type AddRequest struct {
	Text    string  `json:"text"`
	Authors []int32 `json:"authors"`
	Venues  []int32 `json:"venues,omitempty"`
	Topics  []int32 `json:"topics,omitempty"`
	Cites   []int32 `json:"cites,omitempty"`
}

// AddResponse acknowledges an accepted paper. By the time a client
// reads this, the update is recorded in the write-ahead log (when one
// is attached) — it survives kill -9 to the durability promised by the
// configured fsync policy.
type AddResponse struct {
	ID  int32  `json:"id"`
	Seq uint64 `json:"seq"`
}

// handleAdd accepts one paper into the live engine. Status mapping:
// 200 applied (and logged, when durability is on); 400 invalid
// update; 409 this node is fenced by a newer replication epoch — write
// to the new leader instead; 503 not ready, writes denied (follower),
// or the write-ahead log refused the record — the update was NOT
// applied and the client should retry.
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		s.setRetryAfter(w)
		http.Error(w, "engine not ready, still recovering", http.StatusServiceUnavailable)
		return
	}
	if reason := s.denyWrites.Load(); reason != nil {
		s.setRetryAfter(w)
		http.Error(w, *reason, http.StatusServiceUnavailable)
		return
	}
	var req AddRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.engine.AddPaper(core.NewPaper{
		Text:    req.Text,
		Authors: toNodeIDs(req.Authors),
		Venues:  toNodeIDs(req.Venues),
		Topics:  toNodeIDs(req.Topics),
		Cites:   toNodeIDs(req.Cites),
	})
	var invalid *core.InvalidUpdateError
	var logErr *core.UpdateLogError
	var fenced *durable.FencedError
	switch {
	case errors.As(err, &invalid):
		http.Error(w, invalid.Error(), http.StatusBadRequest)
		return
	case errors.As(err, &fenced):
		// This node was deposed by a newer replication epoch: the write
		// belongs on the new leader, and no amount of retrying here will
		// ever apply it. 409, not 503 — the conflict is permanent.
		s.reg.Counter("expertfind_http_fenced_writes_total",
			"Writes rejected because this node's WAL is fenced by a newer epoch.").Inc()
		http.Error(w, fenced.Error(), http.StatusConflict)
		return
	case errors.As(err, &logErr):
		s.reg.Counter("expertfind_http_update_log_failures_total",
			"Updates rejected because the write-ahead log failed.").Inc()
		http.Error(w, "durability unavailable, update not applied; retry",
			http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, AddResponse{ID: int32(id), Seq: s.engine.LastUpdateSeq()})
}

func toNodeIDs(ids []int32) []hetgraph.NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]hetgraph.NodeID, len(ids))
	for i, id := range ids {
		out[i] = hetgraph.NodeID(id)
	}
	return out
}

// ReadyResponse is the /readyz payload.
type ReadyResponse struct {
	Status string `json:"status"`
}

// handleReady is the load-balancer gate, distinct from /healthz
// (liveness): 503 until the engine is loaded/recovered and WAL replay
// has finished, so a booting replica receives no traffic; 503 again
// once shutdown begins, so connections drain away. A ReadyProbe can
// impose further conditions — a replication follower stays 503 (status
// "replication_lag") until its lag is within bound. Every 503 carries
// Retry-After so probes know the condition is transient.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	status := "loading"
	ready := s.ready.Load()
	if ready && s.ReadyProbe != nil {
		var ok bool
		if ok, status = s.ReadyProbe(); !ok {
			ready = false
			if status == "" {
				status = "loading"
			}
		}
	}
	if !ready {
		s.setRetryAfter(w)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\n  \"status\": %q\n}\n", status)
		return
	}
	s.writeJSON(w, ReadyResponse{Status: "ready"})
}

// Topology identifies a process's place in a (possibly sharded) cluster,
// reported on /healthz so probes and operators can tell topology members
// apart. A single-node server is role "single"; shard servers add their
// shard position, and routers list the replica sets they fan out to.
type Topology struct {
	Role string `json:"role"`
	// ShardID/Shards place a shard server in the partition (shard role
	// only; ShardID is meaningful when Shards > 0).
	ShardID int `json:"shard_id,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// OwnedPapers counts the papers this shard serves (shard role only).
	OwnedPapers int `json:"owned_papers,omitempty"`
	// Replicas lists each shard's replica addresses (router role only).
	Replicas [][]string `json:"replicas,omitempty"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Topology
	Papers     int   `json:"papers"`
	Experts    int   `json:"experts"`
	VocabSize  int   `json:"vocab_size"`
	IndexEdges int   `json:"index_edges"`
	IndexBytes int64 `json:"index_bytes"`
}

// SetTopology overrides the topology block reported on /healthz. The
// default is role "single"; shard mode calls this with its shard
// coordinates before serving.
func (s *Server) SetTopology(t Topology) { s.topology = t }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	g := s.engine.Graph()
	st := s.engine.Stats()
	top := s.topology
	if top.Role == "" {
		top.Role = "single"
	}
	s.writeJSON(w, HealthResponse{
		Topology:   top,
		Papers:     g.NumNodesOfType(hetgraph.Paper),
		Experts:    g.NumNodesOfType(hetgraph.Author),
		VocabSize:  st.VocabSize,
		IndexEdges: st.IndexEdges,
		IndexBytes: st.IndexMemory,
	})
}

func (s *Server) intParam(r *http.Request, name string, def, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("parameter %s must be a positive integer", name)
	}
	if v > max {
		return 0, fmt.Errorf("parameter %s exceeds the maximum %d", name, max)
	}
	return v, nil
}

// writeJSON encodes v into a buffer first, so an encoding failure can
// still produce a clean 500 — writing through the encoder directly would
// have already committed the 200 header and part of the body.
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.reg.Counter("expertfind_http_encode_failures_total",
			"Responses dropped because JSON encoding failed.").Inc()
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// truncate shortens s to at most n runes plus an ellipsis. Slicing at a
// byte offset would split multi-byte UTF-8 sequences in non-ASCII titles.
func truncate(s string, n int) string {
	seen := 0
	for i := range s {
		if seen == n {
			return s[:i] + "..."
		}
		seen++
	}
	return s
}
