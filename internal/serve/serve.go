// Package serve exposes a built expert-finding engine over HTTP: the
// online stage of the paper (§IV) as a long-lived service. The handlers
// are safe for concurrent use — the engine is read-only after Build.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/hetgraph"
)

// Server wraps an engine with HTTP handlers.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux
	// defaults for m and n when the request omits them.
	DefaultM, DefaultN int
	// MaxM and MaxN bound per-request work.
	MaxM, MaxN int
}

// New returns a server over a built engine with sensible bounds.
func New(engine *core.Engine) *Server {
	s := &Server{
		engine:   engine,
		mux:      http.NewServeMux(),
		DefaultM: 200,
		DefaultN: 10,
		MaxM:     5000,
		MaxN:     500,
	}
	s.mux.HandleFunc("/experts", s.handleExperts)
	s.mux.HandleFunc("/papers", s.handlePapers)
	s.mux.HandleFunc("/similar", s.handleSimilar)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ListenAndServe blocks serving on addr.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}

// ExpertResult is one expert in an /experts response.
type ExpertResult struct {
	Rank   int     `json:"rank"`
	ID     int32   `json:"id"`
	Name   string  `json:"name"`
	Score  float64 `json:"score"`
	Papers int     `json:"papers"`
}

// ExpertsResponse is the /experts payload.
type ExpertsResponse struct {
	Query      string         `json:"query"`
	Experts    []ExpertResult `json:"experts"`
	ResponseMs float64        `json:"response_ms"`
	Candidates int            `json:"candidates"`
	TADepth    int            `json:"ta_depth"`
}

func (s *Server) handleExperts(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	n, err := s.intParam(r, "n", s.DefaultN, s.MaxN)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := s.intParam(r, "m", s.DefaultM, s.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ranked, st := s.engine.TopExperts(q, m, n)
	g := s.engine.Graph()
	resp := ExpertsResponse{
		Query:      q,
		ResponseMs: float64(st.Total().Microseconds()) / 1000,
		Candidates: st.TA.Candidates,
		TADepth:    st.TA.Depth,
		Experts:    make([]ExpertResult, 0, len(ranked)),
	}
	for i, e := range ranked {
		resp.Experts = append(resp.Experts, ExpertResult{
			Rank:   i + 1,
			ID:     int32(e.Expert),
			Name:   g.Label(e.Expert),
			Score:  e.Score,
			Papers: len(g.PapersOf(e.Expert)),
		})
	}
	writeJSON(w, resp)
}

// PaperResult is one paper in a /papers response.
type PaperResult struct {
	Rank    int      `json:"rank"`
	ID      int32    `json:"id"`
	Text    string   `json:"text"`
	Authors []string `json:"authors"`
}

func (s *Server) handlePapers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	m, err := s.intParam(r, "m", s.DefaultN, s.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	papers, _ := s.engine.RetrievePapers(q, m)
	g := s.engine.Graph()
	out := make([]PaperResult, 0, len(papers))
	for i, p := range papers {
		pr := PaperResult{Rank: i + 1, ID: int32(p), Text: truncate(g.Label(p), 120)}
		for _, a := range g.AuthorsOf(p) {
			pr.Authors = append(pr.Authors, g.Label(a))
		}
		out = append(out, pr)
	}
	writeJSON(w, out)
}

// handleSimilar returns the papers most similar to an already-indexed
// paper, by its node id — the related-work lookup the embeddings support
// directly.
func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		http.Error(w, "missing id parameter", http.StatusBadRequest)
		return
	}
	id64, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		http.Error(w, "id must be an integer node id", http.StatusBadRequest)
		return
	}
	id := hetgraph.NodeID(id64)
	emb, ok := s.engine.Embeddings[id]
	if !ok {
		http.Error(w, "unknown paper id", http.StatusNotFound)
		return
	}
	m, err := s.intParam(r, "m", s.DefaultN, s.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g := s.engine.Graph()
	var out []PaperResult
	rank := 0
	idx := s.engine.Index()
	if idx == nil {
		http.Error(w, "index disabled on this engine", http.StatusServiceUnavailable)
		return
	}
	res, _ := idx.Search(emb, m+1, 0) // +1: the paper itself ranks first
	for _, rr := range res {
		if rr.ID == id {
			continue
		}
		rank++
		pr := PaperResult{Rank: rank, ID: int32(rr.ID), Text: truncate(g.Label(rr.ID), 120)}
		for _, a := range g.AuthorsOf(rr.ID) {
			pr.Authors = append(pr.Authors, g.Label(a))
		}
		out = append(out, pr)
		if rank == m {
			break
		}
	}
	writeJSON(w, out)
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Papers     int   `json:"papers"`
	Experts    int   `json:"experts"`
	VocabSize  int   `json:"vocab_size"`
	IndexEdges int   `json:"index_edges"`
	IndexBytes int64 `json:"index_bytes"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	g := s.engine.Graph()
	st := s.engine.Stats()
	writeJSON(w, HealthResponse{
		Papers:     g.NumNodesOfType(hetgraph.Paper),
		Experts:    g.NumNodesOfType(hetgraph.Author),
		VocabSize:  st.VocabSize,
		IndexEdges: st.IndexEdges,
		IndexBytes: st.IndexMemory,
	})
}

func (s *Server) intParam(r *http.Request, name string, def, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("parameter %s must be a positive integer", name)
	}
	if v > max {
		return 0, fmt.Errorf("parameter %s exceeds the maximum %d", name, max)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
