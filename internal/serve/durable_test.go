package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

// updateServer builds a dedicated engine for the mutation tests so the
// shared read-only fixture's rankings stay untouched.
func updateServer(t *testing.T) (*Server, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.AminerSim(120))
	e, err := core.Build(ds.Graph, core.Options{Dim: 8, Seed: 7, UseKPCore: core.Bool(false)})
	if err != nil {
		t.Fatal(err)
	}
	s := New(e)
	s.SetReady(true)
	return s, ds
}

func postAdd(s *Server, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/add", strings.NewReader(body)))
	return rec
}

func TestReadyzGate(t *testing.T) {
	s, _ := updateServer(t)
	s.SetReady(false)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("booting /readyz = %d, want 503", rec.Code)
	}
	var resp ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "loading" {
		t.Fatalf("status %q, want loading", resp.Status)
	}
	// /healthz stays 200 throughout: the process is alive, just not ready.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("booting /healthz = %d, want 200", rec.Code)
	}
	// Updates are refused until recovery is declared complete.
	if rec := postAdd(s, `{"text":"x","authors":[1]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /add = %d, want 503", rec.Code)
	}

	s.SetReady(true)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready /readyz = %d, want 200", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ready" {
		t.Fatalf("status %q, want ready", resp.Status)
	}
}

func TestAddEndpoint(t *testing.T) {
	s, ds := updateServer(t)
	authors := ds.Graph.NodesOfType(hetgraph.Author)
	body := fmt.Sprintf(`{"text":"heterogeneous graph embedding for expert search","authors":[%d,%d]}`,
		authors[0], authors[1])
	rec := postAdd(s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp AddResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if ds.Graph.Type(hetgraph.NodeID(resp.ID)) != hetgraph.Paper {
		t.Fatalf("acked id %d is not a paper node", resp.ID)
	}
	// No WAL attached here, so seq stays 0 — the ack still carries it.
	if resp.Seq != s.engine.LastUpdateSeq() {
		t.Fatalf("seq %d != engine seq %d", resp.Seq, s.engine.LastUpdateSeq())
	}
	// The new paper is immediately queryable.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/similar?id=%d&m=3", resp.ID), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/similar on added paper = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestAddEndpointErrors(t *testing.T) {
	s, ds := updateServer(t)
	authors := ds.Graph.NodesOfType(hetgraph.Author)
	papers := ds.Graph.NodesOfType(hetgraph.Paper)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/add", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /add = %d, want 405", rec.Code)
	}
	if rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("missing Allow header")
	}

	if rec := postAdd(s, `{"text": truncated`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", rec.Code)
	}
	// No authors: invalid update, engine untouched.
	if rec := postAdd(s, `{"text":"orphan paper"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("no authors = %d, want 400", rec.Code)
	}
	// A paper node where an author id belongs: typed InvalidUpdateError.
	rec = postAdd(s, fmt.Sprintf(`{"text":"x","authors":[%d]}`, papers[0]))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong node type = %d, want 400", rec.Code)
	}
	before := s.engine.AppliedUpdates()

	// A failing WAL turns acks off: 503, nothing applied.
	s.engine.SetUpdateLog(failingLog{})
	rec = postAdd(s, fmt.Sprintf(`{"text":"x","authors":[%d]}`, authors[0]))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing WAL = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if got := s.engine.AppliedUpdates(); got != before {
		t.Fatalf("update applied despite log failure: %d -> %d", before, got)
	}
}

type failingLog struct{}

func (failingLog) Append([]byte) (uint64, error) { return 0, errors.New("disk gone") }

func TestGateBootWindow(t *testing.T) {
	g := NewGate()

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("boot /readyz = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("boot /healthz = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/experts?q=x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("boot /experts = %d, want 503", rec.Code)
	}

	s, _ := updateServer(t)
	g.Install(s)
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("installed /readyz = %d, want 200", rec.Code)
	}
}

// TestGracefulShutdown: cancelling the context drains the listener,
// flips readiness off, and returns nil on a clean drain.
func TestGracefulShutdown(t *testing.T) {
	s, _ := updateServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServeContext(ctx, "127.0.0.1:0", 2*time.Second) }()
	// ListenAndServeContext picks its own port via :0 which we cannot see
	// from here; readiness flip + clean return are the observable part.
	time.Sleep(50 * time.Millisecond)
	s.SetReady(true)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	if s.Ready() {
		t.Fatal("readiness not flipped off during drain")
	}
}
