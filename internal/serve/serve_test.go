package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

var (
	testSrvOnce sync.Once
	testSrv     *Server
	testDS      *dataset.Dataset
)

// server builds one small engine shared by all handler tests.
func server(t *testing.T) (*Server, *dataset.Dataset) {
	t.Helper()
	testSrvOnce.Do(func() {
		testDS = dataset.Generate(dataset.AminerSim(200))
		e, err := core.Build(testDS.Graph, core.Options{Dim: 16, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		testSrv = New(e)
	})
	return testSrv, testDS
}

func TestExpertsEndpoint(t *testing.T) {
	s, ds := server(t)
	q := ds.Corpus()[0][:40]
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/experts?q="+url.QueryEscape(q)+"&n=5&m=40", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ExpertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Experts) != 5 {
		t.Fatalf("got %d experts, want 5", len(resp.Experts))
	}
	for i, e := range resp.Experts {
		if e.Rank != i+1 || e.Name == "" || e.Papers == 0 {
			t.Errorf("bad expert entry %+v", e)
		}
		if i > 0 && resp.Experts[i-1].Score < e.Score {
			t.Error("experts not sorted by score")
		}
	}
	if resp.Candidates == 0 {
		t.Error("stats missing")
	}
}

func TestPapersEndpoint(t *testing.T) {
	s, ds := server(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/papers?q="+url.QueryEscape(ds.Corpus()[3][:30])+"&m=7", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out []PaperResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("got %d papers, want 7", len(out))
	}
	for _, p := range out {
		if p.Text == "" || len(p.Authors) == 0 {
			t.Errorf("bad paper entry %+v", p)
		}
	}
}

func TestHealthEndpoint(t *testing.T) {
	s, _ := server(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Papers != 200 || h.VocabSize == 0 || h.IndexEdges == 0 {
		t.Errorf("health incomplete: %+v", h)
	}
}

func TestParameterValidation(t *testing.T) {
	s, _ := server(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/experts", 400},               // missing q
		{"/experts?q=x&n=-1", 400},      // negative n
		{"/experts?q=x&n=abc", 400},     // non-numeric
		{"/experts?q=x&n=9999999", 400}, // above MaxN
		{"/papers?q=", 400},             // empty q
		{"/experts?q=hello", 200},       // defaults apply
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", c.url, nil))
		if rec.Code != c.code {
			t.Errorf("%s: status %d, want %d", c.url, rec.Code, c.code)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	s, ds := server(t)
	queries := ds.Corpus()[:8]
	var wg sync.WaitGroup
	errs := make(chan string, len(queries)*4)
	for round := 0; round < 4; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/experts?q="+url.QueryEscape(q[:20])+"&n=3&m=20", nil))
				if rec.Code != 200 {
					errs <- rec.Body.String()
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent query failed: %s", e)
	}
}

func TestSimilarEndpoint(t *testing.T) {
	s, ds := server(t)
	papers := ds.Graph.NodesOfType(hetgraph.Paper)
	id := papers[3]
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/similar?id=%d&m=5", id), nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out []PaperResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d similar papers", len(out))
	}
	for _, p := range out {
		if hetgraph.NodeID(p.ID) == id {
			t.Error("query paper returned as its own neighbour")
		}
	}
	// Bad ids.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/similar?id=abc", nil))
	if rec.Code != 400 {
		t.Errorf("non-numeric id: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/similar?id=999999", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id: status %d", rec.Code)
	}
}
