package serve

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strconv"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// goldenServer builds a server over its own engine and registry, so the
// scripted counter assertions below are not polluted by the shared
// server other tests use.
func goldenServer(t *testing.T) (*Server, *core.Engine, *dataset.Dataset, *obs.Registry) {
	t.Helper()
	ds := dataset.Generate(dataset.AminerSim(200))
	reg := obs.NewRegistry()
	e, err := core.Build(ds.Graph, core.Options{Dim: 16, Seed: 5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableQueryCache(core.CacheConfig{MaxEntries: 256})
	return New(e), e, ds, reg
}

// TestGoldenQueryScript drives the full serving stack through a fixed
// scripted mix — misses, hits, normalization variants, an update, a
// timeout and a shed request — and asserts the exact rankings and the
// exact cache counter values the script must produce.
func TestGoldenQueryScript(t *testing.T) {
	s, e, ds, reg := goldenServer(t)
	g := ds.Graph
	query := ds.Corpus()[0][:40]

	get := func(path string) (int, *httptest.ResponseRecorder) {
		t.Helper()
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec
	}
	experts := func(q string, m, n int) ExpertsResponse {
		t.Helper()
		code, rec := get("/experts?q=" + url.QueryEscape(q) +
			"&m=" + strconv.Itoa(m) + "&n=" + strconv.Itoa(n))
		if code != 200 {
			t.Fatalf("experts %q: status %d: %s", q, code, rec.Body.String())
		}
		var resp ExpertsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	counter := func(name string) int {
		return int(reg.Counter(name, "").Value())
	}

	// 1. Cold query: a miss that fills the cache.
	first := experts(query, 40, 5)
	if first.Cached {
		t.Fatal("step 1: cold query reported cached")
	}
	if len(first.Experts) != 5 {
		t.Fatalf("step 1: %d experts, want 5", len(first.Experts))
	}

	// 2. Identical query: a hit with the exact same ranking.
	second := experts(query, 40, 5)
	if !second.Cached {
		t.Fatal("step 2: repeat query missed the cache")
	}
	if !reflect.DeepEqual(first.Experts, second.Experts) {
		t.Fatalf("step 2: hit ranking differs from miss:\n%+v\n%+v", first.Experts, second.Experts)
	}

	// 3. Case/whitespace variant: still a hit.
	third := experts("  "+query+"  ", 40, 5)
	if !third.Cached || !reflect.DeepEqual(first.Experts, third.Experts) {
		t.Fatalf("step 3: variant not served from cache (cached=%v)", third.Cached)
	}

	// 4. Different m: a different result identity, so a miss.
	if r := experts(query, 41, 5); r.Cached {
		t.Fatal("step 4: different m served from cache")
	}

	// 5+6. /papers is its own entry: miss then hit, same bytes.
	_, rec5 := get("/papers?q=" + url.QueryEscape(query) + "&m=10")
	_, rec6 := get("/papers?q=" + url.QueryEscape(query) + "&m=10")
	if rec5.Body.String() != rec6.Body.String() {
		t.Fatal("steps 5/6: papers hit differs from miss")
	}

	// 7. An update invalidates everything.
	if _, err := e.AddPaper(core.NewPaper{
		Text:    "golden update " + query,
		Authors: g.NodesOfType(hetgraph.Author)[:1],
	}); err != nil {
		t.Fatal(err)
	}
	if e.QueryCacheLen() != 0 {
		t.Fatalf("step 7: %d entries survived the update", e.QueryCacheLen())
	}

	// 8. Post-update repeat of step 1: a miss again.
	if r := experts(query, 40, 5); r.Cached {
		t.Fatal("step 8: stale cache hit after update")
	}

	// 9. Expired deadline: 504, counted, and not a cache interaction.
	s.QueryTimeout = time.Nanosecond
	code, rec := get("/experts?q=" + url.QueryEscape(query) + "&m=40&n=5")
	if code != 504 {
		t.Fatalf("step 9: status %d, want 504: %s", code, rec.Body.String())
	}
	s.QueryTimeout = 0

	// 10. Saturated server: 503 with a Retry-After hint.
	s.MaxInFlight = 2
	s.RetryAfter = 1500 * time.Millisecond
	s.inflightQueries.Store(2)
	code, rec = get("/experts?q=" + url.QueryEscape(query) + "&m=40&n=5")
	if code != 503 {
		t.Fatalf("step 10: status %d, want 503", code)
	}
	if ra := rec.Result().Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("step 10: Retry-After = %q, want \"2\" (1.5s rounded up)", ra)
	}
	s.inflightQueries.Store(0)
	s.MaxInFlight = 0

	// The script's exact counter footprint: steps 2, 3 and 6 hit; steps
	// 1, 4, 5 and 8 miss; step 7 invalidates; steps 9 and 10 never reach
	// the cache.
	for _, want := range []struct {
		name  string
		value int
	}{
		{"expertfind_qcache_hits_total", 3},
		{"expertfind_qcache_misses_total", 4},
		{"expertfind_qcache_invalidations_total", 1},
		{"expertfind_updates_total", 1},
		{"expertfind_http_timeouts_total", 1},
		{"expertfind_http_shed_total", 1},
	} {
		if got := counter(want.name); got != want.value {
			t.Errorf("%s = %d, want %d", want.name, got, want.value)
		}
	}
}

// TestGoldenRankingsDeterministic rebuilds the engine from the same seed
// and requires byte-identical /experts output: the fixed-seed pipeline
// has no hidden nondeterminism for the cache to memoise.
func TestGoldenRankingsDeterministic(t *testing.T) {
	s1, _, ds, _ := goldenServer(t)
	s2, _, _, _ := goldenServer(t)
	for _, q := range []string{ds.Corpus()[0][:40], ds.Corpus()[7][:30]} {
		path := "/experts?q=" + url.QueryEscape(q) + "&m=40&n=5"
		rec1, rec2 := httptest.NewRecorder(), httptest.NewRecorder()
		s1.ServeHTTP(rec1, httptest.NewRequest("GET", path, nil))
		s2.ServeHTTP(rec2, httptest.NewRequest("GET", path, nil))
		if rec1.Code != 200 || rec2.Code != 200 {
			t.Fatalf("statuses %d/%d", rec1.Code, rec2.Code)
		}
		var a, b ExpertsResponse
		if err := json.Unmarshal(rec1.Body.Bytes(), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rec2.Body.Bytes(), &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Experts, b.Experts) {
			t.Fatalf("rankings differ across identical builds for %q:\n%+v\n%+v",
				q, a.Experts, b.Experts)
		}
	}
}
