package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// The replication fault suite, in-process: leader and follower run as
// real HTTP servers on the loopback, records move over the wire in the
// WAL format, and every scenario ends with the follower's rankings
// Float64bits-identical to a single node that saw the same updates.
// Process-level SIGKILL variants live in cmd/expertserve.

const replCorpus = 120

// replLeader is a durable leader served over loopback HTTP with the
// replication surface mounted.
type replLeader struct {
	store *core.Store
	srv   *Server
	ts    *httptest.Server
	ds    *dataset.Dataset
	reg   *obs.Registry
}

func buildReplEngine(g *hetgraph.Graph, reg *obs.Registry) (*core.Engine, error) {
	return core.Build(g, core.Options{
		Dim: 8, Seed: 7, UseKPCore: core.Bool(false), Metrics: reg,
	})
}

func startReplLeader(t *testing.T, segBytes int64, followerTTL time.Duration) *replLeader {
	t.Helper()
	dir := t.TempDir()
	ds := dataset.Generate(dataset.AminerSim(replCorpus))
	reg := obs.NewRegistry()
	store, err := core.OpenStore(dir, ds.Graph,
		func() (*core.Engine, error) { return buildReplEngine(ds.Graph, reg) },
		core.StoreOptions{SegmentBytes: segBytes, Metrics: reg, FollowerTTL: followerTTL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store.Engine())
	srv.SetReady(true)
	MountReplication(srv, store, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &replLeader{store: store, srv: srv, ts: ts, ds: ds, reg: reg}
}

// replFollower is a follower served over loopback HTTP, wired the way
// cmd/expertserve wires role=follower.
type replFollower struct {
	fo  *core.Follower
	srv *Server
	ts  *httptest.Server
	reg *obs.Registry
	dir string
}

func startReplFollower(t *testing.T, leaderURL, dir string, maxLag uint64) *replFollower {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	g := dataset.Generate(dataset.AminerSim(replCorpus)).Graph
	reg := obs.NewRegistry()
	obs.RegisterReplication(reg)
	fo, err := core.OpenFollower(dir, g, leaderURL, core.FollowerOptions{
		ID: "test-follower", PollInterval: 10 * time.Millisecond,
		MaxLag: maxLag, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(fo.Engine())
	srv.SetTopology(Topology{Role: "follower"})
	srv.ReadyProbe = func() (bool, string) {
		if fo.Ready() {
			return true, ""
		}
		return false, "replication_lag"
	}
	srv.DenyWrites("replication follower serves reads only; write to the leader")
	MountReplication(srv, fo.Store(), fo)
	srv.SetReady(true)
	fo.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { fo.Close() })
	return &replFollower{fo: fo, srv: srv, ts: ts, reg: reg, dir: dir}
}

// addPapers applies n deterministic updates starting at index start —
// the same call against any engine over the same base corpus produces
// bit-identical state, which is what the equivalence assertions lean on.
func addPapers(t *testing.T, e *core.Engine, start, n int) {
	t.Helper()
	authors := e.Graph().NodesOfType(hetgraph.Author)
	for i := start; i < start+n; i++ {
		_, err := e.AddPaper(core.NewPaper{
			Text: fmt.Sprintf("replicated paper %d on heterogeneous graph embedding", i),
			Authors: []hetgraph.NodeID{
				authors[i%len(authors)], authors[(i*7+3)%len(authors)],
			},
		})
		if err != nil {
			t.Fatalf("add paper %d: %v", i, err)
		}
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitApplied(t *testing.T, fo *core.Follower, seq uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("follower to apply seq %d", seq), 20*time.Second, func() bool {
		return fo.CaughtUp() && fo.Store().LastSeq() >= seq
	})
}

// assertEnginesEqual compares rankings bit for bit: ids, order, score
// bits — ties included, since tie order falls out of the deterministic
// scan order both engines must share.
func assertEnginesEqual(t *testing.T, ds *dataset.Dataset, want, got *core.Engine) {
	t.Helper()
	queries := ds.Queries(5, rand.New(rand.NewSource(3)))
	for _, q := range queries {
		w, _, err := want.TopExperts(q.Text, 40, 10)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := got.TopExperts(q.Text, 40, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(g) {
			t.Fatalf("query %q: %d vs %d experts", q.Text, len(w), len(g))
		}
		for i := range w {
			if w[i].Expert != g[i].Expert {
				t.Fatalf("query %q rank %d: expert %d vs %d", q.Text, i+1, w[i].Expert, g[i].Expert)
			}
			if math.Float64bits(w[i].Score) != math.Float64bits(g[i].Score) {
				t.Fatalf("query %q rank %d: score bits %x vs %x", q.Text, i+1,
					math.Float64bits(w[i].Score), math.Float64bits(g[i].Score))
			}
		}
	}
}

// TestFollowerCatchUpBitIdentical is the base case: bootstrap from the
// leader's snapshot, tail the WAL, converge, and serve the leader's
// exact rankings — then keep converging as the leader keeps writing.
func TestFollowerCatchUpBitIdentical(t *testing.T) {
	ld := startReplLeader(t, 0, 0)
	addPapers(t, ld.store.Engine(), 0, 8)

	fw := startReplFollower(t, ld.ts.URL, "", 0)
	waitApplied(t, fw.fo, 8)
	assertEnginesEqual(t, ld.ds, ld.store.Engine(), fw.fo.Engine())

	// Writes issued while the follower is live replicate too.
	addPapers(t, ld.store.Engine(), 8, 5)
	waitApplied(t, fw.fo, 13)
	assertEnginesEqual(t, ld.ds, ld.store.Engine(), fw.fo.Engine())

	// The follower's /readyz is open and /add is refused with a hint.
	resp, err := http.Get(fw.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up follower /readyz = %d, want 200", resp.StatusCode)
	}
	post, err := http.Post(fw.ts.URL+"/add", "application/json",
		strings.NewReader(`{"text":"x","authors":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /add = %d, want 503", post.StatusCode)
	}
	if post.Header.Get("Retry-After") == "" {
		t.Fatal("follower /add 503 must carry Retry-After")
	}
}

// TestFollowerRestartResumes is the in-process shape of the
// killed-mid-catch-up fault: the follower stops with replication
// incomplete, the leader keeps writing, and a reopen over the same
// directory recovers locally and resumes from its last applied
// sequence — ending bit-identical.
func TestFollowerRestartResumes(t *testing.T) {
	ld := startReplLeader(t, 0, 0)
	addPapers(t, ld.store.Engine(), 0, 6)

	dir := t.TempDir()
	fw := startReplFollower(t, ld.ts.URL, dir, 0)
	waitApplied(t, fw.fo, 6)
	if err := fw.fo.Close(); err != nil {
		t.Fatal(err)
	}

	// The follower is down; the leader moves on.
	addPapers(t, ld.store.Engine(), 6, 7)

	fw2 := startReplFollower(t, ld.ts.URL, dir, 0)
	if got := fw2.fo.Store().LastSeq(); got < 6 {
		t.Fatalf("reopened follower lost progress: applied %d, want >= 6", got)
	}
	waitApplied(t, fw2.fo, 13)
	assertEnginesEqual(t, ld.ds, ld.store.Engine(), fw2.fo.Engine())
}

// TestTornWireResumes cuts the tail stream mid-record several times: the
// follower must apply each intact prefix, resume from its last applied
// sequence, and still converge to bit-identical state.
func TestTornWireResumes(t *testing.T) {
	ld := startReplLeader(t, 0, 0)
	addPapers(t, ld.store.Engine(), 0, 10)

	var tears atomic.Int32
	tears.Store(3)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequest(r.Method, ld.ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if r.URL.Path == core.ReplWALPath && resp.StatusCode == http.StatusOK &&
			len(b) > 24 && tears.Add(-1) >= 0 {
			b = b[:len(b)-9] // cut the last record mid-payload
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Del("Content-Length") // the body may be shorter now
		w.WriteHeader(resp.StatusCode)
		w.Write(b)
	}))
	t.Cleanup(proxy.Close)

	fw := startReplFollower(t, proxy.URL, "", 0)
	waitApplied(t, fw.fo, 10)
	assertEnginesEqual(t, ld.ds, ld.store.Engine(), fw.fo.Engine())
	if got := fw.reg.Counter("expertfind_replication_stream_tears_total", "").Value(); got == 0 {
		t.Fatal("the torn-wire path was never exercised")
	}
}

// TestPromotionFencesStaleLeader is the change-over scenario: a caught-up
// follower is promoted (epoch bump), the old leader is fenced, its
// writes and its tail stream are rejected, and the new leader's state —
// including writes accepted after promotion — is bit-identical to a
// single node that saw the same update sequence.
func TestPromotionFencesStaleLeader(t *testing.T) {
	ld := startReplLeader(t, 0, 0)
	addPapers(t, ld.store.Engine(), 0, 5)

	fw := startReplFollower(t, ld.ts.URL, "", 0)
	waitApplied(t, fw.fo, 5)

	// Before promotion the follower refuses writes.
	pre, err := http.Post(fw.ts.URL+"/add", "application/json",
		strings.NewReader(`{"text":"x","authors":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	pre.Body.Close()
	if pre.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-promotion /add = %d, want 503", pre.StatusCode)
	}

	// Promote over HTTP, the way the runbook does it.
	presp, err := http.Post(fw.ts.URL+core.ReplPromotePath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if !promoted.Promoted || promoted.Epoch != 1 {
		t.Fatalf("promotion: %+v", promoted)
	}

	// Fence the old leader at the new epoch (it is still reachable here;
	// were it dead, the first tail request from a re-pointed follower
	// would fence it on revival).
	fresp, err := http.Post(ld.ts.URL+core.ReplFencePath, "application/json",
		strings.NewReader(fmt.Sprintf(`{"epoch": %d}`, promoted.Epoch)))
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("fence old leader = %d, want 200", fresp.StatusCode)
	}

	// The deposed leader's writes are rejected with 409 — a permanent
	// conflict, not a retryable 503.
	authors := ld.ds.Graph.NodesOfType(hetgraph.Author)
	stale, err := http.Post(ld.ts.URL+"/add", "application/json",
		strings.NewReader(fmt.Sprintf(`{"text":"stale write","authors":[%d]}`, authors[0])))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(stale.Body)
	stale.Body.Close()
	if stale.StatusCode != http.StatusConflict {
		t.Fatalf("deposed leader /add = %d (%s), want 409", stale.StatusCode, body)
	}
	if !strings.Contains(string(body), "fenced") {
		t.Fatalf("deposed leader /add body %q does not mention fencing", body)
	}
	// And so is its tail stream.
	tail, err := http.Get(ld.ts.URL + core.ReplWALPath + "?from=1")
	if err != nil {
		t.Fatal(err)
	}
	tail.Body.Close()
	if tail.StatusCode != http.StatusConflict {
		t.Fatalf("deposed leader tail = %d, want 409", tail.StatusCode)
	}
	// The engine-level append is the typed FencedError.
	var fe *durable.FencedError
	if _, err := ld.store.Engine().AddPaper(core.NewPaper{
		Text: "stale", Authors: []hetgraph.NodeID{authors[0]},
	}); !asFenced(err, &fe) {
		t.Fatalf("deposed leader AddPaper: got %v, want *FencedError", err)
	}

	// The new leader accepts writes now.
	addPapers(t, fw.fo.Engine(), 5, 4)
	if got := fw.fo.Store().LastSeq(); got != 9 {
		t.Fatalf("new leader seq = %d, want 9 (5 replicated + 4 own)", got)
	}

	// Ground truth: a single node that saw the same 9 updates.
	ref := dataset.Generate(dataset.AminerSim(replCorpus))
	refEng, err := buildReplEngine(ref.Graph, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addPapers(t, refEng, 0, 9)
	assertEnginesEqual(t, ld.ds, refEng, fw.fo.Engine())
}

// asFenced unwraps err looking for a *durable.FencedError (through the
// core.UpdateLogError wrapper).
func asFenced(err error, fe **durable.FencedError) bool {
	for err != nil {
		if f, ok := err.(*durable.FencedError); ok {
			*fe = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestPassiveFencing: a tail request carrying a higher epoch is proof of
// a newer leader — the node must fence itself on the spot, without any
// explicit /replication/fence call.
func TestPassiveFencing(t *testing.T) {
	ld := startReplLeader(t, 0, 0)
	addPapers(t, ld.store.Engine(), 0, 2)

	// A fence that is not beyond our epoch cannot depose an unfenced node.
	fresp, err := http.Post(ld.ts.URL+core.ReplFencePath, "application/json",
		strings.NewReader(`{"epoch": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusConflict {
		t.Fatalf("stale fence on unfenced node = %d, want 409", fresp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, ld.ts.URL+core.ReplWALPath+"?from=1", nil)
	req.Header.Set(core.ReplEpochHeader, "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("higher-epoch tail = %d, want 409", resp.StatusCode)
	}
	if !ld.store.Fenced() || ld.store.Epoch() != 3 {
		t.Fatalf("leader not passively fenced: epoch %d fenced %v",
			ld.store.Epoch(), ld.store.Fenced())
	}
	// Re-fencing an already-fenced node at a lower epoch is an idempotent
	// no-op: it stays fenced at the higher epoch.
	fresp, err = http.Post(ld.ts.URL+core.ReplFencePath, "application/json",
		strings.NewReader(`{"epoch": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("re-fence below current = %d, want 200 no-op", fresp.StatusCode)
	}
	if ld.store.Epoch() != 3 {
		t.Fatalf("no-op re-fence moved the epoch to %d", ld.store.Epoch())
	}
}

// TestLowWaterTruncationGuard: the snapshot loop must never truncate
// records a live follower still needs, and must reclaim them once the
// follower has been silent past the TTL.
func TestLowWaterTruncationGuard(t *testing.T) {
	ld := startReplLeader(t, 512, 300*time.Millisecond) // tiny segments rotate fast
	ld.store.ObserveFollower("slow-follower", 3)        // applied through 3, needs 4+
	addPapers(t, ld.store.Engine(), 0, 20)

	if err := ld.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	it, err := ld.store.ReadWALFrom(4)
	if err != nil {
		t.Fatalf("records pinned by a live follower were truncated: %v", err)
	}
	seq, _, err := it.Next()
	if err != nil || seq != 4 {
		t.Fatalf("read pinned records: seq %d err %v, want 4", seq, err)
	}
	it.Close()
	// Over HTTP the same position streams fine.
	resp, err := http.Get(ld.ts.URL + core.ReplWALPath + "?from=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail from pinned position = %d, want 200", resp.StatusCode)
	}

	// Silence past the TTL releases the pin; the next snapshot reclaims.
	time.Sleep(400 * time.Millisecond)
	if err := ld.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.store.ReadWALFrom(4); err != durable.ErrCompacted {
		t.Fatalf("expired follower still pins the log: %v", err)
	}
	resp, err = http.Get(ld.ts.URL + core.ReplWALPath + "?from=4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("tail below compaction = %d, want 410", resp.StatusCode)
	}
}

// TestRetryAfterOn503s pins the satellite contract: every transient 503
// — the boot gate's, the lag-gated follower /readyz, and the shedding
// path — carries a Retry-After header.
func TestRetryAfterOn503s(t *testing.T) {
	// Boot gate: /readyz and arbitrary routes.
	g := NewGate()
	for _, path := range []string{"/readyz", "/experts?q=x"} {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("boot %s = %d, want 503", path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("boot %s 503 missing Retry-After", path)
		}
	}

	// Lag-gated follower readiness.
	s, _ := updateServer(t)
	s.ReadyProbe = func() (bool, string) { return false, "replication_lag" }
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("lagging /readyz = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("lagging /readyz 503 missing Retry-After")
	}
	var body ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "replication_lag" {
		t.Fatalf("lagging /readyz status %q, want replication_lag", body.Status)
	}

	// Not-ready /add.
	s.ReadyProbe = nil
	s.SetReady(false)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/add",
		bytes.NewReader([]byte(`{"text":"x","authors":[1]}`))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /add = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("not-ready /add 503 missing Retry-After")
	}
}
