package serve

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/obs"
)

var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
	fuzzSrvErr  error
)

// fuzzServer builds one small cached engine shared by every fuzz
// execution; rebuilding per input would drown the fuzzer in build time.
func fuzzServer() (*Server, error) {
	fuzzSrvOnce.Do(func() {
		ds := dataset.Generate(dataset.AminerSim(120))
		e, err := core.Build(ds.Graph, core.Options{Dim: 8, Seed: 4, Metrics: obs.NewRegistry()})
		if err != nil {
			fuzzSrvErr = err
			return
		}
		e.EnableQueryCache(core.CacheConfig{MaxEntries: 256})
		fuzzSrv = New(e)
	})
	return fuzzSrv, fuzzSrvErr
}

// FuzzHandleExperts throws arbitrary query parameters at /experts: the
// handler must never panic, must answer only 200 or 400 (no deadline and
// no shedding are configured), and every 200 must carry a decodable,
// rank-ordered payload.
func FuzzHandleExperts(f *testing.F) {
	if _, err := fuzzServer(); err != nil {
		f.Fatal(err)
	}
	f.Add("graph embedding", "5", "40")
	f.Add("", "", "")
	f.Add("x", "-1", "0")
	f.Add("研究", "abc", "99999999999999999999")
	f.Add("a&b=c#d", "5\x00", " 5")
	f.Add("q", "0x10", "1e3")
	f.Fuzz(func(t *testing.T, q, n, m string) {
		s, _ := fuzzServer()
		v := url.Values{}
		// Only set parameters the input actually provides, so defaults get
		// fuzzed too (empty string means "absent", matching handler logic
		// only when unset rather than set-to-empty for q).
		v.Set("q", q)
		if n != "" {
			v.Set("n", n)
		}
		if m != "" {
			v.Set("m", m)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/experts?"+v.Encode(), nil))
		switch rec.Code {
		case 200:
			var resp ExpertsResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body: %v", err)
			}
			for i, e := range resp.Experts {
				if e.Rank != i+1 {
					t.Fatalf("rank %d at position %d", e.Rank, i)
				}
				if i > 0 && resp.Experts[i-1].Score < e.Score {
					t.Fatalf("experts out of order at %d", i)
				}
			}
		case 400:
			// Rejected input: fine.
		default:
			t.Fatalf("unexpected status %d for q=%q n=%q m=%q: %s",
				rec.Code, q, n, m, rec.Body.String())
		}
	})
}
