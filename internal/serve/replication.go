package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"

	"expertfind/internal/core"
	"expertfind/internal/durable"
)

// MountReplication exposes a store's replication surface on a server:
//
//	GET  /replication/wal?from=N   stream WAL records >= N (raw on-disk
//	                               format), up to the log's last sequence
//	                               at request time; followers re-poll
//	GET  /replication/snapshot     stream the current snapshot file
//	GET  /replication/status       replication state as JSON
//	POST /replication/fence        depose this node: {"epoch": N}
//	POST /replication/promote      promote this follower to leader
//
// fo is non-nil on a follower and enables /replication/promote (plus a
// follower-shaped /replication/status). The same routes stay mounted
// after promotion — a promoted follower serves the tail stream to the
// followers that re-point at it.
//
// Epoch fencing runs on every tail request: a follower sends its epoch,
// and a leader seeing a HIGHER one fences itself on the spot — the
// request proves a newer leader exists — then answers 409, as it does
// for any request once fenced. Responses carry the leader's epoch so
// followers adopt promotions they haven't heard about, and the leader's
// last sequence so followers can compute lag.
func MountReplication(srv *Server, st *core.Store, fo *core.Follower) {
	srv.Handle(core.ReplWALPath, handleReplWAL(srv, st))
	srv.Handle(core.ReplSnapshotPath, handleReplSnapshot(srv, st))
	srv.Handle(core.ReplStatusPath, handleReplStatus(srv, st, fo))
	srv.Handle(core.ReplFencePath, handleReplFence(srv, st))
	if fo != nil {
		srv.Handle(core.ReplPromotePath, handleReplPromote(srv, fo))
	}
}

// replEpochHeaders stamps the node's replication identity on a response.
func replEpochHeaders(w http.ResponseWriter, st *core.Store) {
	w.Header().Set(core.ReplEpochHeader, strconv.FormatUint(st.Epoch(), 10))
	w.Header().Set(core.ReplLastSeqHeader, strconv.FormatUint(st.LastSeq(), 10))
}

func handleReplWAL(srv *Server, st *core.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// A request carrying a higher epoch than ours is proof a newer
		// leader was promoted: fence immediately, then refuse — streaming
		// records from a deposed history would feed followers garbage.
		if reqEpoch, err := strconv.ParseUint(r.Header.Get(core.ReplEpochHeader), 10, 64); err == nil {
			if reqEpoch > st.Epoch() {
				if err := st.Fence(reqEpoch); err != nil && !st.Fenced() {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
			}
		}
		if st.Fenced() {
			replEpochHeaders(w, st)
			http.Error(w, "node is fenced by a newer replication epoch",
				http.StatusConflict)
			return
		}
		from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if err != nil || from == 0 {
			http.Error(w, "from must be a positive sequence number", http.StatusBadRequest)
			return
		}
		// The follower's position pins WAL truncation: everything below
		// from is applied over there, everything at or above it is needed.
		if id := r.Header.Get(core.ReplFollowerHeader); id != "" {
			st.ObserveFollower(id, from-1)
		}
		it, err := st.ReadWALFrom(from)
		if errors.Is(err, durable.ErrCompacted) {
			http.Error(w, "requested records already compacted; re-bootstrap from the snapshot",
				http.StatusGone)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer it.Close()
		replEpochHeaders(w, st)
		w.Header().Set("Content-Type", "application/octet-stream")
		flusher, _ := w.(http.Flusher)
		for {
			seq, payload, err := it.Next()
			if err == io.EOF {
				return // end of this batch; the follower re-polls
			}
			if err != nil {
				// Mid-stream there is no status left to change; cutting the
				// connection leaves the follower a torn tail it knows how to
				// resume from.
				srv.reg.Counter("expertfind_replication_stream_errors_total",
					"Tail streams aborted mid-flight by a read error.").Inc()
				return
			}
			if _, err := w.Write(durable.MarshalRecord(seq, payload)); err != nil {
				return // follower went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func handleReplSnapshot(srv *Server, st *core.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f, err := os.Open(st.SnapshotPath())
		if os.IsNotExist(err) {
			http.Error(w, "no snapshot yet", http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		replEpochHeaders(w, st)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
		// The open fd pins the file's content even if a concurrent
		// snapshot renames a fresh one over the path mid-copy.
		io.Copy(w, f)
	}
}

// LeaderReplStatus is the JSON shape of /replication/status on a node
// that is not tailing anyone (a leader, or a promoted follower).
type LeaderReplStatus struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Fenced   bool   `json:"fenced"`
	LastSeq  uint64 `json:"last_seq"`
	LowWater uint64 `json:"follower_low_water_seq,omitempty"`
}

func handleReplStatus(srv *Server, st *core.Store, fo *core.Follower) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if fo != nil {
			stat := fo.Status()
			if stat.Role == "follower" {
				srv.WriteJSON(w, stat)
				return
			}
			// Promoted: fall through to the leader shape.
		}
		out := LeaderReplStatus{
			Role: "leader", Epoch: st.Epoch(), Fenced: st.Fenced(), LastSeq: st.LastSeq(),
		}
		if lw, ok := st.FollowerLowWater(); ok {
			out.LowWater = lw
		}
		srv.WriteJSON(w, out)
	}
}

// FenceRequest is the POST /replication/fence body.
type FenceRequest struct {
	Epoch uint64 `json:"epoch"`
}

func handleReplFence(srv *Server, st *core.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req FenceRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<10)).Decode(&req); err != nil {
			http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
			return
		}
		var fenced *durable.FencedError
		switch err := st.Fence(req.Epoch); {
		case errors.As(err, &fenced):
			// A stale fence (epoch not beyond ours) must not depose us.
			replEpochHeaders(w, st)
			http.Error(w, fenced.Error(), http.StatusConflict)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		replEpochHeaders(w, st)
		srv.WriteJSON(w, map[string]any{"fenced": true, "epoch": st.Epoch()})
	}
}

func handleReplPromote(srv *Server, fo *core.Follower) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		epoch, err := fo.Promote()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// The node now accepts writes and is unconditionally ready.
		srv.AllowWrites()
		srv.WriteJSON(w, map[string]any{"promoted": true, "epoch": epoch})
	}
}
