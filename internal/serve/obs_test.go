package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"unicode/utf8"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/train"
)

// obsServer builds an engine recording into a private registry, wiring
// the train sink first (as cmd/expertserve does) so offline training
// metrics land there too.
func obsServer(t *testing.T) (*Server, *obs.Registry, *dataset.Dataset) {
	t.Helper()
	reg := obs.NewRegistry()
	obs.RegisterWellKnown(reg)
	train.SetSink(reg)
	ds := dataset.Generate(dataset.AminerSim(150))
	e, err := core.Build(ds.Graph, core.Options{Dim: 16, Seed: 11, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return New(e), reg, ds
}

// TestMetricsEndpointIntegration drives real traffic through the server
// and verifies the /metrics scrape covers every surface the acceptance
// criteria name: per-route request counts and latency histograms,
// in-flight requests, PG-Index search work, TA depth, training progress
// and offline build phase durations.
func TestMetricsEndpointIntegration(t *testing.T) {
	s, _, ds := obsServer(t)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	q := url.QueryEscape(ds.Corpus()[0][:30])
	if rec := get("/experts?q=" + q + "&n=5&m=30"); rec.Code != 200 {
		t.Fatalf("/experts: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get("/papers?q=" + q + "&m=5"); rec.Code != 200 {
		t.Fatalf("/papers: %d", rec.Code)
	}
	paper := ds.Graph.NodesOfType(hetgraph.Paper)[0]
	if rec := get(fmt.Sprintf("/similar?id=%d&m=3", paper)); rec.Code != 200 {
		t.Fatalf("/similar: %d %s", rec.Code, rec.Body.String())
	}
	get("/no-such-route")

	rec := get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		// HTTP middleware.
		`expertfind_http_requests_total{code="200",route="/experts"} 1`,
		`expertfind_http_requests_total{code="200",route="/papers"} 1`,
		`expertfind_http_requests_total{code="200",route="/similar"} 1`,
		`expertfind_http_requests_total{code="404",route="other"} 1`,
		`expertfind_http_request_seconds_bucket{route="/experts",le="+Inf"} 1`,
		`expertfind_http_request_seconds_count{route="/experts"} 1`,
		"expertfind_http_in_flight",
		// Online pipeline work, via the injected sinks.
		"expertfind_pgindex_searches_total",
		"expertfind_pgindex_hops_total",
		"expertfind_ta_runs_total 1",
		"expertfind_ta_depth_total",
		"expertfind_ta_candidates_total",
		// Query spans and counters.
		`expertfind_stage_seconds_count{stage="query/encode"}`,
		`expertfind_stage_seconds_count{stage="query/retrieve"}`,
		`expertfind_stage_seconds_count{stage="query/rank"}`,
		"expertfind_query_seconds_count 3",
		"expertfind_queries_total 3",
		// Offline build phases, from the build spans.
		`expertfind_stage_seconds_count{stage="build"} 1`,
		`expertfind_stage_seconds_count{stage="build/sampling"} 1`,
		`expertfind_stage_seconds_count{stage="build/training"} 1`,
		`expertfind_stage_seconds_count{stage="build/embedding"} 1`,
		`expertfind_stage_seconds_count{stage="build/indexing"} 1`,
		// Training progress via the train sink.
		"expertfind_train_epochs_total 4",
		"expertfind_builds_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The PG-Index did real work: hops strictly positive.
	hops := regexp.MustCompile(`expertfind_pgindex_hops_total (\d+)`).FindStringSubmatch(body)
	if hops == nil || hops[1] == "0" {
		t.Errorf("pgindex hops not recorded: %v", hops)
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	s, _, ds := obsServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/experts?q="+url.QueryEscape(ds.Corpus()[1][:20]), nil))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: %d", rec.Code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap[`expertfind_http_requests_total{code="200",route="/experts"}`]; !ok {
		t.Error("request counter missing from /debug/vars")
	}
	var hs obs.HistogramSummary
	key := `expertfind_http_request_seconds{route="/experts"}`
	if err := json.Unmarshal(snap[key], &hs); err != nil || hs.Count != 1 {
		t.Errorf("histogram summary for %s = %+v (err %v)", key, hs, err)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s, _, _ := obsServer(t)
	var buf strings.Builder
	s.Log = obs.NewLogger(&buf, obs.LevelInfo)

	// Incoming id is honoured: echoed in the response header and logged.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-id-42")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "upstream-id-42" {
		t.Errorf("response id %q", got)
	}
	line := buf.String()
	if !strings.Contains(line, "req_id=upstream-id-42") ||
		!strings.Contains(line, "route=/healthz") ||
		!strings.Contains(line, "status=200") {
		t.Errorf("access line incomplete: %q", line)
	}

	// No incoming id: one is generated and still returned + logged.
	buf.Reset()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	id := rec.Header().Get("X-Request-ID")
	if len(id) != 16 {
		t.Errorf("generated id %q", id)
	}
	if !strings.Contains(buf.String(), "req_id="+id) {
		t.Errorf("generated id not in log: %q", buf.String())
	}
}

func TestPprofOptIn(t *testing.T) {
	s, _, _ := obsServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof reachable without opt-in: %d", rec.Code)
	}
	s.EnablePprof()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof index after EnablePprof: %d", rec.Code)
	}
}

func TestWriteJSONEncodeFailure(t *testing.T) {
	s := &Server{reg: obs.NewRegistry()}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, map[string]interface{}{"bad": make(chan int)})
	if rec.Code != 500 {
		t.Errorf("status %d, want 500", rec.Code)
	}
	if got := s.reg.Counter("expertfind_http_encode_failures_total", "").Value(); got != 1 {
		t.Errorf("encode failure counter = %v, want 1", got)
	}
	// Success path: headers only written after a full encode.
	rec = httptest.NewRecorder()
	s.writeJSON(rec, map[string]int{"ok": 1})
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("success path: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
}

func TestTruncateRuneSafe(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"short", 10, "short"},
		{"exactly-ten", 11, "exactly-ten"},
		{"0123456789ab", 10, "0123456789..."},
		{"héllo wörld", 5, "héllo..."},
		{"日本語のタイトルです", 4, "日本語の..."},
		{"grafos heterogéneos y búsqueda de expertos académicos", 20, "grafos heterogéneos " + "..."},
		{"", 5, ""},
	}
	for _, c := range cases {
		got := truncate(c.in, c.n)
		if got != c.want {
			t.Errorf("truncate(%q, %d) = %q, want %q", c.in, c.n, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("truncate(%q, %d) produced invalid UTF-8: %q", c.in, c.n, got)
		}
	}
}

// TestPapersNonASCIITitles serves a corpus of long non-ASCII titles and
// checks the truncated response text is valid UTF-8 — the old byte-offset
// truncate sliced runes in half.
func TestPapersNonASCIITitles(t *testing.T) {
	g := hetgraph.New()
	title := strings.Repeat("効率的な専門家検索と異種グラフ埋め込み ", 8) // ~160 runes, 3 bytes each
	var papers []hetgraph.NodeID
	for i := 0; i < 12; i++ {
		papers = append(papers, g.AddNode(hetgraph.Paper, fmt.Sprintf("%s 論文%d", title, i)))
	}
	for i := 0; i < 4; i++ {
		a := g.AddNode(hetgraph.Author, fmt.Sprintf("著者-%d", i))
		for j := i; j < len(papers); j += 2 {
			g.MustAddEdge(a, papers[j], hetgraph.Write)
		}
	}
	e, err := core.Build(g, core.Options{Dim: 8, Seed: 3, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(e)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/papers?q="+url.QueryEscape("専門家検索")+"&m=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !utf8.Valid(rec.Body.Bytes()) {
		t.Fatal("response contains invalid UTF-8")
	}
	var out []PaperResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range out {
		if !utf8.ValidString(p.Text) {
			t.Errorf("mangled title %q", p.Text)
		}
		if strings.Contains(p.Text, "�") {
			t.Errorf("replacement rune in %q", p.Text)
		}
	}
}

// TestSimilarUsesEngineEF pins the /similar fix: the handler goes through
// the engine, so the configured EF search-pool option applies instead of
// the hard-coded 0 it used to pass straight to the index.
func TestSimilarUsesEngineEF(t *testing.T) {
	reg := obs.NewRegistry()
	ds := dataset.Generate(dataset.AminerSim(150))
	// An oversized EF forces the search to visit (nearly) the whole
	// corpus, which is observable in the per-search visit counts.
	e, err := core.Build(ds.Graph, core.Options{Dim: 16, Seed: 11, EF: 10000, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	id := ds.Graph.NodesOfType(hetgraph.Paper)[5]

	_, stWide, err := e.SimilarPapers(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := e.SimilarPapers(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d similar papers", len(ids))
	}

	// Same engine options but default EF: with m=3 the pool is only 2m,
	// so far fewer nodes are visited. If the handler ignored EF these
	// two would match.
	eDefault, err := core.Build(ds.Graph, core.Options{Dim: 16, Seed: 11, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	_, stNarrow, err := eDefault.SimilarPapers(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stWide.Search.NodesVisited <= stNarrow.Search.NodesVisited {
		t.Errorf("EF not honoured: wide EF visited %d nodes, default visited %d",
			stWide.Search.NodesVisited, stNarrow.Search.NodesVisited)
	}
}
