package serve

import (
	"net/http"
	"strings"

	"expertfind/internal/obs"
)

// QueryDebug is the opt-in (?debug=1) diagnostics block of an /experts
// response: the query's trace id (joinable against /debug/traces and the
// slow-query log) and its per-stage latency breakdown.
type QueryDebug struct {
	TraceID string        `json:"trace_id,omitempty"`
	Stages  []StageTiming `json:"stages,omitempty"`
}

// StageTiming is one stage of a query's latency breakdown.
type StageTiming struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// StagesFromTree flattens the direct children of an assembled span tree
// into a stage breakdown — the router's ?debug=1 view of its fan-out.
func StagesFromTree(root obs.SpanNode) []StageTiming {
	out := make([]StageTiming, 0, len(root.Children))
	for _, c := range root.Children {
		out = append(out, StageTiming{Name: c.Name, Ms: float64(c.DurationNano) / 1e6})
	}
	return out
}

// TraceIndexResponse is the /debug/traces payload.
type TraceIndexResponse struct {
	Count  int                `json:"count"`
	Traces []obs.TraceSummary `json:"traces"`
}

// TraceResponse is the /debug/traces/{id} payload. Records is a slice
// because one node can retain several records for a trace (a shard
// serves both scatter rounds of one query).
type TraceResponse struct {
	TraceID string            `json:"trace_id"`
	Records []obs.TraceRecord `json:"records"`
}

// ServeTraces answers both /debug/traces (index) and /debug/traces/{id}
// (full span trees) from store. Shared by the single-node/shard server
// and the cluster router, which carry different response plumbing —
// hence the writeJSON callback.
func ServeTraces(w http.ResponseWriter, r *http.Request, store *obs.TraceStore,
	writeJSON func(http.ResponseWriter, interface{})) {
	if store == nil {
		http.Error(w, "trace store disabled (enable with -trace-capacity)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces")
	id = strings.Trim(id, "/")
	if id == "" {
		idx := store.Index()
		writeJSON(w, TraceIndexResponse{Count: len(idx), Traces: idx})
		return
	}
	recs := store.Get(id)
	if len(recs) == 0 {
		http.Error(w, "trace not found (evicted, dropped by keep rules, or never sampled)",
			http.StatusNotFound)
		return
	}
	writeJSON(w, TraceResponse{TraceID: id, Records: recs})
}

// tracedRoutes are the routes whose root spans feed the trace store: the
// query-serving paths, public and internal. Health, metrics and debug
// endpoints stay untraced.
var tracedRoutes = map[string]bool{
	"/experts":       true,
	"/papers":        true,
	"/similar":       true,
	"/shard/papers":  true,
	"/shard/experts": true,
}

// enrichContext prepares a request context for tracing: the metric
// registry for span recording, any remote trace context extracted from
// the TraceHeader, and — on traced routes — a capture that hands the
// handler's root span back to the middleware. The returned capture is
// nil on untraced routes.
func enrichContext(r *http.Request, reg *obs.Registry, route string) (*http.Request, *obs.TraceCapture) {
	ctx := obs.WithRegistry(r.Context(), reg)
	if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
		ctx = obs.ContextWithRemote(ctx, tc)
	}
	var capture *obs.TraceCapture
	if tracedRoutes[route] {
		ctx, capture = obs.WithTraceCapture(ctx)
	}
	return r.WithContext(ctx), capture
}

// finishTrace runs the middleware's tail work for one request: offer the
// captured root to the trace store under the tail-based keep rules, and
// emit the slow-query log line. Returns the trace id ("" when the
// request produced no span — e.g. a cache hit).
func (s *Server) finishTrace(capture *obs.TraceCapture, r *http.Request, route string,
	status int, durMs float64) string {
	if capture == nil {
		return ""
	}
	root := capture.Root()
	if root == nil {
		return ""
	}
	traceID := root.TraceID().String()
	if s.Traces != nil {
		tree := root.Tree()
		s.Traces.Add(obs.TraceRecord{
			TraceID:    traceID,
			Route:      route,
			Query:      r.URL.Query().Get("q"),
			Status:     status,
			Start:      root.Start(),
			DurationMs: durMs,
			Root:       tree,
		}, obs.KeepFlags{
			Error:    status >= 500,
			Hedged:   tree.HasAttr("hedge"),
			Deepened: tree.HasAttr("deepened"),
		})
	}
	if s.SlowQuery > 0 && durMs >= s.SlowQuery.Seconds()*1000 {
		s.reg.Counter("expertfind_slow_queries_total",
			"Queries slower than the slow-query log threshold.").Inc()
		s.Log.Warn("slow_query",
			"trace_id", traceID,
			"route", route,
			"q", r.URL.Query().Get("q"),
			"status", status,
			"dur_ms", durMs,
		)
	}
	return traceID
}

// handleTraces serves /debug/traces and /debug/traces/{id}.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	ServeTraces(w, r, s.Traces, s.writeJSON)
}
