package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"expertfind/internal/obs"
)

// Gate is a swappable front door for the process's HTTP listener. It
// lets the socket open before recovery finishes: while booting it
// answers readiness probes honestly (/readyz 503, /healthz 200) and
// refuses everything else, and once the engine has recovered the real
// *Server is installed atomically. Load balancers therefore see a
// bind-then-ready sequence instead of connection-refused, and no query
// can ever reach a half-recovered engine.
type Gate struct {
	cur atomic.Pointer[http.Handler]
}

// NewGate returns a gate serving the boot handler.
func NewGate() *Gate {
	g := &Gate{}
	h := bootHandler()
	g.cur.Store(&h)
	return g
}

// Install atomically swaps in the recovered server (or any handler).
// Requests already dispatched to the boot handler finish there;
// everything after the swap sees h.
func (g *Gate) Install(h http.Handler) { g.cur.Store(&h) }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*g.cur.Load()).ServeHTTP(w, r)
}

// bootHandler answers probes during the boot window. /healthz reports
// the process alive (it is — it's recovering), /readyz reports it not
// ready, and every other route is refused so nothing observes partial
// state.
func bootHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{\n  \"status\": \"booting\"\n}\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Booting is transient by definition; tell probes when to look again.
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\n  \"status\": \"loading\"\n}\n"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "engine not ready, still recovering", http.StatusServiceUnavailable)
	})
	return mux
}

// ListenAndServeContext serves the gate on addr until ctx is cancelled,
// then drains like (*Server).ListenAndServeContext. onDrain (optional)
// runs as shutdown begins — flip the installed server's readiness gate
// there so probes go 503 while in-flight requests finish.
func (g *Gate) ListenAndServeContext(ctx context.Context, addr string, drain time.Duration, onDrain func(), reg *obs.Registry, log *obs.Logger) error {
	return serveContext(ctx, g, addr, drain, onDrain, reg, log)
}

// serveContext is the shared graceful-shutdown loop: serve h on addr
// until ctx cancels, run onDrain, then http.Server.Shutdown bounded by
// drain, force-closing (and counting) on overrun.
func serveContext(ctx context.Context, h http.Handler, addr string, drain time.Duration, onDrain func(), reg *obs.Registry, log *obs.Logger) error {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if log == nil {
		log = obs.NopLogger()
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown was asked for
	case <-ctx.Done():
	}
	if onDrain != nil {
		onDrain()
	}
	log.Info("shutdown_draining", "drain", drain)
	dctx := context.Background()
	cancel := func() {}
	if drain > 0 {
		dctx, cancel = context.WithTimeout(dctx, drain)
	}
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		// Requests outlasted the drain window: cut them off rather than
		// hang shutdown forever. Durable state stays consistent — an
		// interrupted update either reached the WAL or was never acked.
		reg.Counter("expertfind_http_drain_timeouts_total",
			"Graceful shutdowns that hit the drain deadline and forced close.").Inc()
		srv.Close()
	}
	<-errc // Serve has returned (http.ErrServerClosed)
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: drain deadline exceeded after %v", drain)
	}
	return err
}
