package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/obs"
)

// retainEverything keeps every offered trace so assertions don't depend
// on sampling arithmetic.
func retainEverything() obs.TracePolicy {
	return obs.TracePolicy{Capacity: 16, SlowestN: -1, SampleEvery: 1}
}

// TestTraceServeLifecycle drives one traced query through the full
// single-node middleware stack and checks every surfacing path: the
// ?debug=1 response field, /debug/traces retention, the slow-query log,
// and the histogram exemplar on /metrics.
func TestTraceServeLifecycle(t *testing.T) {
	s, reg, ds := obsServer(t)
	s.engine.EnableQueryCache(core.CacheConfig{MaxEntries: 64})
	s.Traces = obs.NewTraceStore(retainEverything(), reg)
	s.SlowQuery = time.Nanosecond // everything is slow: the log line must fire
	var logBuf bytes.Buffer
	s.Log = obs.NewLogger(&logBuf, obs.LevelWarn)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	q := ds.Corpus()[0][:30]
	path := "/experts?q=" + url.QueryEscape(q) + "&n=5&m=30&debug=1"

	rec := get(path)
	if rec.Code != 200 {
		t.Fatalf("/experts: %d %s", rec.Code, rec.Body.String())
	}
	var resp ExpertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Debug == nil {
		t.Fatal("debug=1 response has no debug block")
	}
	traceID := resp.Debug.TraceID
	if len(traceID) != 32 {
		t.Fatalf("trace id %q, want 32 hex chars", traceID)
	}
	stages := map[string]bool{}
	for _, st := range resp.Debug.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"encode", "retrieve", "rank"} {
		if !stages[want] {
			t.Errorf("debug stages missing %q: %+v", want, resp.Debug.Stages)
		}
	}

	// The trace was retained and is served back with its span tree.
	rec = get("/debug/traces/" + traceID)
	if rec.Code != 200 {
		t.Fatalf("/debug/traces/%s: %d %s", traceID, rec.Code, rec.Body.String())
	}
	var tr TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("%d records, want 1", len(tr.Records))
	}
	r0 := tr.Records[0]
	if r0.Route != "/experts" || r0.Query != q || r0.Status != 200 {
		t.Fatalf("record framing: %+v", obs.TraceSummary{
			Route: r0.Route, Query: r0.Query, Status: r0.Status})
	}
	if r0.Root.Name != "query" {
		t.Fatalf("root span %q, want query", r0.Root.Name)
	}
	for _, want := range []string{"encode", "retrieve", "rank"} {
		if r0.Root.Find(want) == nil {
			t.Errorf("span tree missing %q", want)
		}
	}

	// The index lists it.
	rec = get("/debug/traces")
	var idx TraceIndexResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Count < 1 || len(idx.Traces) != idx.Count {
		t.Fatalf("index count %d, traces %d", idx.Count, len(idx.Traces))
	}
	if idx.Traces[0].TraceID != traceID {
		t.Fatalf("newest index entry %s, want %s", idx.Traces[0].TraceID, traceID)
	}

	// Slow-query surfacing: log line with the trace id, plus the counter.
	logLine := logBuf.String()
	if !strings.Contains(logLine, "msg=slow_query") || !strings.Contains(logLine, traceID) {
		t.Errorf("slow-query log missing or without trace id: %q", logLine)
	}
	if v := reg.Counter("expertfind_slow_queries_total", "").Value(); v < 1 {
		t.Errorf("slow query counter = %v", v)
	}

	// A cache hit runs no spans, so its debug block carries no trace id
	// and no second trace is retained.
	rec = get(path)
	var cached ExpertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if cached.Debug == nil || cached.Debug.TraceID != "" {
		t.Errorf("cache hit debug block: %+v", cached.Debug)
	}

	// The request-latency histogram exposes the trace id as an exemplar —
	// but only to scrapers that negotiate OpenMetrics. The default 0.0.4
	// format must stay exemplar-free: its parser errors on the # suffix,
	// which would fail the entire scrape.
	rec = get("/metrics")
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentTypeText {
		t.Errorf("/metrics content type %q, want %q", ct, obs.ContentTypeText)
	}
	if strings.Contains(rec.Body.String(), "# {trace_id=") {
		t.Error("0.0.4 /metrics output carries exemplars; classic scrapers will reject the scrape")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentTypeOpenMetrics {
		t.Errorf("negotiated /metrics content type %q, want %q", ct, obs.ContentTypeOpenMetrics)
	}
	om := rec.Body.String()
	if !strings.Contains(om, `# {trace_id="`+traceID+`"}`) {
		t.Error("OpenMetrics /metrics has no exemplar carrying the trace id")
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics /metrics output missing the # EOF terminator")
	}
}

// TestTraceServeEndpointsDisabled pins the /debug/traces behaviour when
// no store is configured, and the not-found path when one is.
func TestTraceServeEndpointsDisabled(t *testing.T) {
	s, reg, _ := obsServer(t)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "disabled") {
		t.Fatalf("without store: %d %s", rec.Code, rec.Body.String())
	}

	s.Traces = obs.NewTraceStore(retainEverything(), reg)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/deadbeef", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "not found") {
		t.Fatalf("unknown id: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("empty index: %d %s", rec.Code, rec.Body.String())
	}
	var idx TraceIndexResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Count != 0 {
		t.Fatalf("empty store index count %d", idx.Count)
	}
}

// TestTraceServeRouteLabel keeps /debug/traces/{id} out of the route
// label's unbounded "other" bucket.
func TestTraceServeRouteLabel(t *testing.T) {
	for path, want := range map[string]string{
		"/debug/traces":         "/debug/traces",
		"/debug/traces/":        "/debug/traces",
		"/debug/traces/abc123":  "/debug/traces",
		"/debug/traces/x/y":     "/debug/traces",
		"/debug/tracesnotquite": "other",
	} {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
