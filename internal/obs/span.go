package obs

import (
	"context"
	"sync"
	"time"
)

// Span times one named phase of work. Spans form a hierarchy: starting a
// span under a context that already carries one makes it a child, and its
// full name becomes "parent/child" — e.g. "build/sampling". Ending a span
// records its duration into the attached registry's
// expertfind_stage_seconds histogram, labelled by the full name, so every
// pipeline phase is scrapeable without bespoke per-phase metrics.
type Span struct {
	name  string
	start time.Time
	reg   *Registry

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
}

type ctxKey int

const (
	spanKey ctxKey = iota
	registryKey
)

// WithRegistry attaches reg to ctx; spans started under it (and their
// descendants) record their durations there. A nil reg disables
// recording while keeping the timing behaviour.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey, reg)
}

// StartSpan begins a span named name under ctx and returns a derived
// context carrying it, so nested StartSpan calls become children. The
// clock starts immediately; call End (or EndIfOpen) exactly when the
// phase finishes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.name = parent.name + "/" + name
		s.reg = parent.reg
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else if reg, ok := ctx.Value(registryKey).(*Registry); ok {
		s.reg = reg
	}
	return context.WithValue(ctx, spanKey, s), s
}

// End stops the span's clock, records the duration into the registry
// (first call only; End is idempotent), and returns the duration.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	if s.ended {
		d := s.dur
		s.mu.Unlock()
		return d
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	reg := s.reg
	s.mu.Unlock()
	if reg != nil {
		reg.Histogram("expertfind_stage_seconds",
			"Duration of pipeline stages, labelled by span path.",
			nil, L("stage", s.name)).Observe(d.Seconds())
	}
	return d
}

// Name returns the span's full hierarchical name.
func (s *Span) Name() string { return s.name }

// Duration returns the recorded duration, or the running time if the
// span has not ended.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns the directly nested spans, in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Child returns the first direct child whose last path segment is name,
// or nil.
func (s *Span) Child(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.name == s.name+"/"+name {
			return c
		}
	}
	return nil
}

// ChildrenTotal sums the durations of all direct children — the portion
// of the span accounted for by named sub-phases.
func (s *Span) ChildrenTotal() time.Duration {
	var t time.Duration
	for _, c := range s.Children() {
		t += c.Duration()
	}
	return t
}
