package obs

import (
	"context"
	"sync"
	"time"
)

// Span times one named phase of work. Spans form a hierarchy: starting a
// span under a context that already carries one makes it a child, and its
// full name becomes "parent/child" — e.g. "build/sampling". Ending a span
// records its duration into the attached registry's
// expertfind_stage_seconds histogram, labelled by the full name, so every
// pipeline phase is scrapeable without bespoke per-phase metrics.
type Span struct {
	name  string
	start time.Time
	reg   *Registry

	// Trace identity. Every span carries the trace id of the query it
	// belongs to and its own span id; parentID is the id of the span one
	// level up — possibly on another node, when the trace context arrived
	// over the wire.
	traceID  TraceID
	id       SpanID
	parentID SpanID

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
	attrs    map[string]string
	grafts   []SpanNode // remote subtrees adopted via Graft
}

type ctxKey int

const (
	spanKey ctxKey = iota
	registryKey
	remoteKey
	captureKey
)

// WithRegistry attaches reg to ctx; spans started under it (and their
// descendants) record their durations there. A nil reg disables
// recording while keeping the timing behaviour.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey, reg)
}

// StartSpan begins a span named name under ctx and returns a derived
// context carrying it, so nested StartSpan calls become children. The
// clock starts immediately; call End (or EndIfOpen) exactly when the
// phase finishes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now(), id: NewSpanID()}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.name = parent.name + "/" + name
		s.reg = parent.reg
		s.traceID = parent.traceID
		s.parentID = parent.id
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		if reg, ok := ctx.Value(registryKey).(*Registry); ok {
			s.reg = reg
		}
		// Root span: join a remote trace if the context carries one,
		// else mint a fresh trace id, and offer the root to any capture
		// installed by middleware.
		if tc, ok := RemoteFromContext(ctx); ok {
			s.traceID = tc.Trace
			s.parentID = tc.Span
		} else {
			s.traceID = NewTraceID()
		}
		if c, ok := ctx.Value(captureKey).(*TraceCapture); ok {
			c.offer(s)
		}
	}
	return context.WithValue(ctx, spanKey, s), s
}

// End stops the span's clock, records the duration into the registry
// (first call only; End is idempotent), and returns the duration.
func (s *Span) End() time.Duration {
	d, _ := s.end()
	return d
}

// EndIfOpen ends the span and reports whether this call did the ending —
// false means the span had already completed on its own. Abandonment
// paths (a hedge loser, a cancelled fan-out) use the distinction to mark
// only genuinely interrupted work, while a span that raced to completion
// keeps its own timing untouched.
func (s *Span) EndIfOpen() bool {
	_, endedNow := s.end()
	return endedNow
}

func (s *Span) end() (time.Duration, bool) {
	s.mu.Lock()
	if s.ended {
		d := s.dur
		s.mu.Unlock()
		return d, false
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	reg := s.reg
	s.mu.Unlock()
	if reg != nil {
		reg.Histogram("expertfind_stage_seconds",
			"Duration of pipeline stages, labelled by span path.",
			nil, L("stage", s.name)).ObserveWithExemplar(d.Seconds(), s.traceID.String())
	}
	return d, true
}

// TraceID returns the id of the trace the span belongs to.
func (s *Span) TraceID() TraceID { return s.traceID }

// ID returns the span's own id.
func (s *Span) ID() SpanID { return s.id }

// ParentID returns the id of the span's parent (zero for a true root).
func (s *Span) ParentID() SpanID { return s.parentID }

// Annotate attaches a key=value attribute to the span. Attributes carry
// per-instance detail (shard, replica, hedge, round) that must NOT go
// into the span name, which labels a bounded metric series. Safe after
// End: attributes describe the span, not its timing.
func (s *Span) Annotate(key, value string) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the value of an attribute set by Annotate.
func (s *Span) Attr(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.attrs[key]
	return v, ok
}

// Graft adopts a remote subtree (a shard's exported spans) as a child of
// s, re-parenting its root onto s so the assembled tree reads as one
// trace. The subtree keeps its own span ids and timings.
func (s *Span) Graft(node SpanNode) {
	node.ParentID = s.id.String()
	s.mu.Lock()
	s.grafts = append(s.grafts, node)
	s.mu.Unlock()
}

// Tree exports the span and its descendants (local children and grafted
// remote subtrees) as a SpanNode tree. Names are shortened to the last
// path segment — the hierarchy is structural in the tree, so repeating
// the full "parent/child" path would be noise. Call after End for final
// durations; an open span exports its running time.
func (s *Span) Tree() SpanNode {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := make(map[string]string, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	if len(attrs) == 0 {
		attrs = nil
	}
	children := append([]*Span(nil), s.children...)
	grafts := append([]SpanNode(nil), s.grafts...)
	s.mu.Unlock()

	n := SpanNode{
		Name:          shortName(s.name),
		SpanID:        s.id.String(),
		StartUnixNano: s.start.UnixNano(),
		DurationNano:  int64(dur),
		Attrs:         attrs,
	}
	if !s.parentID.IsZero() {
		n.ParentID = s.parentID.String()
	}
	for _, c := range children {
		n.Children = append(n.Children, c.Tree())
	}
	n.Children = append(n.Children, grafts...)
	return n
}

// shortName returns the last segment of a "parent/child" span path.
func shortName(name string) string {
	if i := lastSlash(name); i >= 0 {
		return name[i+1:]
	}
	return name
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// Name returns the span's full hierarchical name.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// Duration returns the recorded duration, or the running time if the
// span has not ended.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns the directly nested spans, in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Child returns the first direct child whose last path segment is name,
// or nil.
func (s *Span) Child(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.name == s.name+"/"+name {
			return c
		}
	}
	return nil
}

// ChildrenTotal sums the durations of all direct children — the portion
// of the span accounted for by named sub-phases.
func (s *Span) ChildrenTotal() time.Duration {
	var t time.Duration
	for _, c := range s.Children() {
		t += c.Duration()
	}
	return t
}
