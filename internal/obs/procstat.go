package obs

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ProcStat is one sample of the process's memory residency, read from
// the /proc filesystem. It is the ground truth the scale benchmarks and
// the mmap'd snapshot store are judged against: heap profilers cannot
// see page-cache residency, RSS can.
type ProcStat struct {
	// RSSBytes is the resident set size (VmRSS) — physical memory the
	// process currently occupies, including faulted-in mmap'd pages.
	RSSBytes int64
	// VMBytes is the virtual address-space size (VmSize), which counts
	// mapped-but-not-resident snapshot bytes too.
	VMBytes int64
	// MinorPageFaults and MajorPageFaults are the process's cumulative
	// fault counts (minflt/majflt); major faults hit the disk, which is
	// what a cold query against an mmap'd snapshot costs.
	MinorPageFaults uint64
	MajorPageFaults uint64
}

// ReadProcStat samples the current process. ok is false on platforms
// without /proc (or with an unreadable one) — callers treat that as
// "no data", never an error, so the same code runs everywhere.
func ReadProcStat() (st ProcStat, ok bool) {
	status, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return ProcStat{}, false
	}
	for _, line := range strings.Split(string(status), "\n") {
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			st.RSSBytes = parseKBLine(line)
		case strings.HasPrefix(line, "VmSize:"):
			st.VMBytes = parseKBLine(line)
		}
	}
	if st.RSSBytes == 0 {
		return ProcStat{}, false
	}
	if stat, err := os.ReadFile("/proc/self/stat"); err == nil {
		st.MinorPageFaults, st.MajorPageFaults = parseFaults(stat)
	}
	return st, true
}

// parseKBLine parses "VmRSS:   123456 kB" into bytes.
func parseKBLine(line string) int64 {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0
	}
	kb, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return kb * 1024
}

// parseFaults extracts minflt (field 10) and majflt (field 12) from
// /proc/self/stat. The comm field (2) may itself contain spaces and
// parentheses, so counting starts after the last ')'.
func parseFaults(stat []byte) (minor, major uint64) {
	i := bytes.LastIndexByte(stat, ')')
	if i < 0 {
		return 0, 0
	}
	fields := strings.Fields(string(stat[i+1:]))
	// fields[0] is field 3 (state); minflt is field 10, majflt field 12.
	if len(fields) < 10 {
		return 0, 0
	}
	minor, _ = strconv.ParseUint(fields[7], 10, 64)
	major, _ = strconv.ParseUint(fields[9], 10, 64)
	return minor, major
}

// PublishProcStat samples the process once and publishes the result as
// gauges on reg. Returns false (and publishes nothing) where /proc is
// unavailable. The fault counts are cumulative kernel counters but are
// published as sampled gauges — scrape-to-scrape deltas give rates.
func PublishProcStat(reg *Registry) bool {
	st, ok := ReadProcStat()
	if !ok {
		return false
	}
	reg.Gauge("expertfind_process_rss_bytes",
		"Resident set size of this process (VmRSS), sampled from /proc.").
		Set(float64(st.RSSBytes))
	reg.Gauge("expertfind_process_vm_bytes",
		"Virtual memory size of this process (VmSize), sampled from /proc.").
		Set(float64(st.VMBytes))
	reg.Gauge("expertfind_process_minor_page_faults",
		"Cumulative minor page faults of this process, sampled from /proc.").
		Set(float64(st.MinorPageFaults))
	reg.Gauge("expertfind_process_major_page_faults",
		"Cumulative major page faults of this process, sampled from /proc.").
		Set(float64(st.MajorPageFaults))
	return true
}

// StartProcSampler publishes process residency gauges every interval
// until the returned stop function is called. On platforms without
// /proc the loop exits immediately and stop is a no-op — callers wire
// it unconditionally.
func StartProcSampler(reg *Registry, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	if !PublishProcStat(reg) {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				PublishProcStat(reg)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
