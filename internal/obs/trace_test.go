package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	s := FormatTraceContext(tc)
	if !strings.HasPrefix(s, "00-") || !strings.HasSuffix(s, "-01") {
		t.Fatalf("unexpected header form %q", s)
	}
	got, ok := ParseTraceContext(s)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}

	for _, bad := range []string{
		"",
		"00",
		"01-" + tc.Trace.String() + "-" + tc.Span.String() + "-01", // unknown version
		"00-shorttrace-" + tc.Span.String() + "-01",
		"00-" + tc.Trace.String() + "-zzzzzzzzzzzzzzzz-01",               // non-hex span
		"00-" + strings.Repeat("0", 32) + "-" + tc.Span.String() + "-01", // zero trace id
		"00-" + tc.Trace.String() + "-" + tc.Span.String(),               // missing flags
	} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext(%q) accepted malformed input", bad)
		}
	}
}

func TestTraceSpanIdentity(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "query")
	if root.TraceID().IsZero() || root.ID().IsZero() {
		t.Fatal("root span missing trace or span id")
	}
	if !root.ParentID().IsZero() {
		t.Fatalf("fresh root has parent %s", root.ParentID())
	}
	_, child := StartSpan(ctx, "encode")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.ParentID() != root.ID() {
		t.Fatalf("child parent %s != root id %s", child.ParentID(), root.ID())
	}
	if child.ID() == root.ID() {
		t.Fatal("child reused root span id")
	}
}

func TestTraceRemoteJoin(t *testing.T) {
	remote := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := ContextWithRemote(context.Background(), remote)
	_, root := StartSpan(ctx, "shard_experts")
	if root.TraceID() != remote.Trace {
		t.Fatalf("root trace %s, want remote %s", root.TraceID(), remote.Trace)
	}
	if root.ParentID() != remote.Span {
		t.Fatalf("root parent %s, want remote span %s", root.ParentID(), remote.Span)
	}
}

func TestTraceInject(t *testing.T) {
	h := http.Header{}
	if InjectTrace(context.Background(), h) {
		t.Fatal("injected a trace from an empty context")
	}

	ctx, span := StartSpan(context.Background(), "fanout")
	if !InjectTrace(ctx, h) {
		t.Fatal("no header injected from span context")
	}
	tc, ok := ParseTraceContext(h.Get(TraceHeader))
	if !ok {
		t.Fatalf("injected header unparseable: %q", h.Get(TraceHeader))
	}
	if tc.Trace != span.TraceID() || tc.Span != span.ID() {
		t.Fatalf("injected %+v, want trace=%s span=%s", tc, span.TraceID(), span.ID())
	}

	// A context with only a remote trace (no local span yet) relays it.
	h2 := http.Header{}
	remote := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	if !InjectTrace(ContextWithRemote(context.Background(), remote), h2) {
		t.Fatal("remote-only context not injected")
	}
	if got, _ := ParseTraceContext(h2.Get(TraceHeader)); got != remote {
		t.Fatalf("relayed %+v, want %+v", got, remote)
	}
}

func TestTraceCapture(t *testing.T) {
	ctx, capture := WithTraceCapture(context.Background())
	if capture.Root() != nil {
		t.Fatal("capture non-empty before any span")
	}
	sctx, root := StartSpan(ctx, "query")
	_, child := StartSpan(sctx, "encode")
	child.End()
	root.End()

	got := capture.Root()
	if got != root {
		t.Fatalf("captured %v, want the root span", got)
	}
	// Only the first root is captured; a second root under the same
	// capture (e.g. a later handler phase) must not displace it.
	_, other := StartSpan(ctx, "other")
	other.End()
	if capture.Root() != root {
		t.Fatal("second root displaced the captured root")
	}
	if TraceIDFromContext(ctx) != root.TraceID().String() {
		t.Fatalf("TraceIDFromContext = %q, want %s", TraceIDFromContext(ctx), root.TraceID())
	}
}

func TestTraceSpanTree(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	ctx, root := StartSpan(ctx, "query")
	root.Annotate("query", "graph embedding")
	cctx, enc := StartSpan(ctx, "encode")
	enc.End()
	_, rank := StartSpan(ctx, "rank")
	rank.Annotate("round", "2")
	rank.End()
	_ = cctx
	root.End()

	// Graft a remote subtree like the router does with a shard envelope.
	remote := SpanNode{Name: "shard_experts", SpanID: NewSpanID().String(),
		Attrs: map[string]string{"shard": "1"}}
	root.Graft(remote)

	tree := root.Tree()
	if tree.Name != "query" {
		t.Fatalf("root name %q", tree.Name)
	}
	if tree.SpanID != root.ID().String() {
		t.Fatalf("root span id %q != %s", tree.SpanID, root.ID())
	}
	if len(tree.Children) != 3 {
		t.Fatalf("children = %d, want 3 (encode, rank, graft)", len(tree.Children))
	}
	// Short names: hierarchy lives in the tree, not the name.
	if tree.Children[0].Name != "encode" || tree.Children[1].Name != "rank" {
		t.Fatalf("child names %q, %q", tree.Children[0].Name, tree.Children[1].Name)
	}
	if tree.Children[1].Attrs["round"] != "2" {
		t.Fatal("rank attrs lost in export")
	}
	graft := tree.Children[2]
	if graft.Name != "shard_experts" || graft.ParentID != root.ID().String() {
		t.Fatalf("graft not re-parented: %+v", graft)
	}
	if !tree.HasAttr("shard") {
		t.Fatal("HasAttr failed to find grafted attr")
	}
	if tree.Find("rank") == nil || tree.Find("shard_experts") == nil {
		t.Fatal("Find failed on exported tree")
	}
	if tree.Find("nope") != nil {
		t.Fatal("Find invented a node")
	}
	// Exported trees must round-trip through JSON (wire envelope).
	b, err := json.Marshal(tree)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back SpanNode
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Children[2].Attrs["shard"] != "1" {
		t.Fatal("graft attrs lost over JSON")
	}
}

func TestTraceStageMetricNamesUnchanged(t *testing.T) {
	// Trace identity must not leak into the stage histogram's label set:
	// the series is still keyed by the hierarchical span path alone.
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	ctx, root := StartSpan(ctx, "query")
	_, enc := StartSpan(ctx, "encode")
	enc.End()
	root.End()
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{`stage="query"`, `stage="query/encode"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in exposition:\n%s", want, out)
		}
	}
}

func TestTraceExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("expertfind_query_seconds", "q", nil)
	h.Observe(0.002) // untraced: no exemplar
	var b strings.Builder
	reg.WriteOpenMetrics(&b)
	if strings.Contains(b.String(), "trace_id") {
		t.Fatal("exemplar rendered without any traced observation")
	}

	id := NewTraceID().String()
	h.ObserveWithExemplar(0.002, id)

	// The classic 0.0.4 format must never carry exemplars: its parser
	// errors on the # suffix and the whole scrape fails.
	b.Reset()
	reg.WritePrometheus(&b)
	if strings.Contains(b.String(), "trace_id") {
		t.Fatalf("0.0.4 exposition carries an exemplar:\n%s", b.String())
	}

	// The OpenMetrics format carries it, on exactly one bucket line, and
	// terminates with # EOF.
	b.Reset()
	reg.WriteOpenMetrics(&b)
	want := fmt.Sprintf(`le="0.0025"} 2 # {trace_id=%q} 0.002`, id)
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exemplar line missing %q in:\n%s", want, b.String())
	}
	if strings.Count(b.String(), "trace_id") != 1 {
		t.Fatal("exemplar rendered on more than one bucket line")
	}
	if !strings.HasSuffix(b.String(), "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing the # EOF terminator")
	}
	if reg.Histogram("expertfind_query_seconds", "q", nil).Summary().ExemplarTraceID != id {
		t.Fatal("summary missing exemplar trace id")
	}

	// The zero trace id (span outside any trace context) is suppressed.
	h2 := reg.Histogram("other_seconds", "o", nil)
	h2.ObserveWithExemplar(0.1, TraceID{}.String())
	if h2.LastExemplar() != nil {
		t.Fatal("zero trace id produced an exemplar")
	}
}

// TestOpenMetricsNegotiation pins the Accept-header decision and the
// counter-family renaming that the OpenMetrics format requires.
func TestOpenMetricsNegotiation(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain", false},
		{"text/plain; version=0.0.4", false},
		{"application/openmetrics-text", true},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", true},
		{"text/plain, application/openmetrics-text;version=1.0.0", true},
		{"Application/OpenMetrics-Text", true},
		{"application/openmetrics-text-ish", false},
	}
	for _, c := range cases {
		if got := AcceptsOpenMetrics(c.accept); got != c.want {
			t.Errorf("AcceptsOpenMetrics(%q) = %v, want %v", c.accept, got, c.want)
		}
	}

	// OpenMetrics declares a counter family under its un-suffixed name
	// while samples keep _total; the 0.0.4 format keeps the full name in
	// the TYPE line.
	reg := NewRegistry()
	reg.Counter("requests_total", "h").Inc()
	var b strings.Builder
	reg.WriteOpenMetrics(&b)
	om := b.String()
	if !strings.Contains(om, "# TYPE requests counter\n") {
		t.Errorf("OpenMetrics TYPE line not un-suffixed:\n%s", om)
	}
	if !strings.Contains(om, "requests_total 1\n") {
		t.Errorf("OpenMetrics sample lost its _total suffix:\n%s", om)
	}
	b.Reset()
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "# TYPE requests_total counter\n") {
		t.Errorf("0.0.4 TYPE line altered:\n%s", b.String())
	}
}

func mkRecord(id string, durMs float64) TraceRecord {
	return TraceRecord{
		TraceID:    id,
		Route:      "/experts",
		Status:     200,
		Start:      time.Unix(0, 0),
		DurationMs: durMs,
		Root:       SpanNode{Name: "query"},
	}
}

func TestTraceStoreKeepRules(t *testing.T) {
	reg := NewRegistry()
	st := NewTraceStore(TracePolicy{Capacity: 16, SlowestN: 2, SampleEvery: 4}, reg)

	// Error/hedged/deepened are kept unconditionally, in that precedence.
	if reason, kept := st.Add(mkRecord("e1", 1), KeepFlags{Error: true, Hedged: true}); !kept || reason != KeepError {
		t.Fatalf("error trace: reason=%q kept=%v", reason, kept)
	}
	if reason, _ := st.Add(mkRecord("h1", 1), KeepFlags{Hedged: true, Deepened: true}); reason != KeepHedged {
		t.Fatalf("hedged trace: reason=%q", reason)
	}
	if reason, _ := st.Add(mkRecord("d1", 1), KeepFlags{Deepened: true}); reason != KeepDeepen {
		t.Fatalf("deepened trace: reason=%q", reason)
	}

	// Slowest-N: with fewer than N slower records retained, it's slow.
	if reason, _ := st.Add(mkRecord("s1", 50), KeepFlags{}); reason != KeepSlow {
		t.Fatalf("first slow trace: reason=%q", reason)
	}
	if reason, _ := st.Add(mkRecord("s2", 40), KeepFlags{}); reason != KeepSlow {
		t.Fatalf("second slow trace: reason=%q", reason)
	}
	// Now two retained records are slower than 1ms, so an ordinary
	// trace is not "slow" — and with offered=6, not sampled either.
	if reason, kept := st.Add(mkRecord("fast", 0.5), KeepFlags{}); kept {
		t.Fatalf("fast trace kept as %q", reason)
	}

	if got := st.Len(); got != 5 {
		t.Fatalf("retained %d, want 5", got)
	}
	if recs := st.Get("h1"); len(recs) != 1 || recs[0].Kept != KeepHedged {
		t.Fatalf("Get(h1) = %+v", recs)
	}
	if recs := st.Get("fast"); len(recs) != 0 {
		t.Fatal("dropped trace retrievable")
	}

	idx := st.Index()
	if len(idx) != 5 {
		t.Fatalf("index len %d", len(idx))
	}
	if idx[0].TraceID != "s2" {
		t.Fatalf("index not newest-first: %q", idx[0].TraceID)
	}

	snap := reg.Snapshot()
	if v, _ := snap[`expertfind_traces_kept_total{reason="slow"}`].(float64); v != 2 {
		t.Fatalf("kept{slow} = %v", v)
	}
	if v, _ := snap["expertfind_traces_dropped_total"].(float64); v != 1 {
		t.Fatalf("dropped = %v", v)
	}
}

// TestTraceStoreSlowColdStart: until the ring holds SlowestN records,
// every trace would trivially rank in the slowest N, so the slow rule
// stays disarmed and ordinary cold-start traffic falls through to the
// sampling rule instead of being mislabelled "slow".
func TestTraceStoreSlowColdStart(t *testing.T) {
	st := NewTraceStore(TracePolicy{Capacity: 16, SlowestN: 2, SampleEvery: 4}, nil)
	if reason, kept := st.Add(mkRecord("t0", 1), KeepFlags{}); !kept || reason != KeepSampled {
		t.Fatalf("first cold-start trace: reason=%q kept=%v, want sampled", reason, kept)
	}
	// Ring holds 1 < SlowestN: still disarmed, and offered=2 is off the
	// sampling stride, so an ordinary trace is dropped, not kept "slow".
	if reason, kept := st.Add(mkRecord("t1", 5), KeepFlags{}); kept {
		t.Fatalf("cold-start trace kept as %q", reason)
	}
	// A flag-kept record brings the ring to SlowestN; the rule arms.
	st.Add(mkRecord("h0", 1), KeepFlags{Hedged: true})
	if reason, _ := st.Add(mkRecord("t2", 50), KeepFlags{}); reason != KeepSlow {
		t.Fatalf("armed slow rule: reason=%q, want slow", reason)
	}
}

func TestTraceStoreSampling(t *testing.T) {
	st := NewTraceStore(TracePolicy{Capacity: 64, SlowestN: -1, SampleEvery: 4}, nil)
	kept := 0
	for i := 0; i < 16; i++ {
		if _, ok := st.Add(mkRecord(fmt.Sprintf("t%d", i), 1), KeepFlags{}); ok {
			kept++
		}
	}
	if kept != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4, want 4", kept)
	}
	// Disabled sampling keeps nothing ordinary.
	st2 := NewTraceStore(TracePolicy{Capacity: 64, SlowestN: -1, SampleEvery: -1}, nil)
	if _, ok := st2.Add(mkRecord("x", 1), KeepFlags{}); ok {
		t.Fatal("record kept with all tail rules disabled")
	}
}

func TestTraceStoreRingEviction(t *testing.T) {
	st := NewTraceStore(TracePolicy{Capacity: 4, SlowestN: -1, SampleEvery: 1}, nil)
	for i := 0; i < 10; i++ {
		st.Add(mkRecord(fmt.Sprintf("t%d", i), float64(i)), KeepFlags{})
	}
	if st.Len() != 4 {
		t.Fatalf("ring len %d, want capacity 4", st.Len())
	}
	idx := st.Index()
	want := []string{"t9", "t8", "t7", "t6"}
	for i, w := range want {
		if idx[i].TraceID != w {
			t.Fatalf("index[%d] = %q, want %q (got %+v)", i, idx[i].TraceID, w, idx)
		}
	}
	if len(st.Get("t0")) != 0 {
		t.Fatal("evicted trace still retrievable")
	}
}

func TestTraceStoreMultipleRecordsPerTrace(t *testing.T) {
	// A shard serves both /shard/papers and /shard/experts for the same
	// query: two records share one trace id and Get returns both.
	st := NewTraceStore(TracePolicy{Capacity: 8, SlowestN: -1, SampleEvery: 1}, nil)
	a := mkRecord("shared", 1)
	a.Route = "/shard/papers"
	b := mkRecord("shared", 2)
	b.Route = "/shard/experts"
	st.Add(a, KeepFlags{})
	st.Add(b, KeepFlags{})
	recs := st.Get("shared")
	if len(recs) != 2 {
		t.Fatalf("Get returned %d records, want 2", len(recs))
	}
	if recs[0].Route != "/shard/papers" || recs[1].Route != "/shard/experts" {
		t.Fatalf("records out of order: %+v", recs)
	}
}
