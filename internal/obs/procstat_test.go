package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadProcStat(t *testing.T) {
	st, ok := ReadProcStat()
	if !ok {
		t.Skip("no /proc on this platform")
	}
	if st.RSSBytes <= 0 {
		t.Fatalf("RSS %d, want > 0", st.RSSBytes)
	}
	if st.VMBytes < st.RSSBytes {
		t.Fatalf("VmSize %d below VmRSS %d", st.VMBytes, st.RSSBytes)
	}
	// Fault counters may legitimately read zero under sandboxed kernels
	// (gVisor and friends zero them), so only sanity-order them.
	if st.MajorPageFaults > 0 && st.MinorPageFaults == 0 {
		t.Fatalf("majflt %d with minflt 0 — field order wrong?", st.MajorPageFaults)
	}
}

func TestPublishProcStatGauges(t *testing.T) {
	reg := NewRegistry()
	if !PublishProcStat(reg) {
		t.Skip("no /proc on this platform")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"expertfind_process_rss_bytes",
		"expertfind_process_vm_bytes",
		"expertfind_process_minor_page_faults",
		"expertfind_process_major_page_faults",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestParseFaultsHostileComm(t *testing.T) {
	// comm may contain spaces and parentheses; fields count from the
	// LAST ')'. minflt is the 7th field after it, majflt the 9th.
	stat := []byte("1234 (a (we) ird) S 1 2 3 4 5 6 777 8 999 10 11 12 13 14")
	minor, major := parseFaults(stat)
	if minor != 777 || major != 999 {
		t.Fatalf("got minflt=%d majflt=%d, want 777/999", minor, major)
	}
	if minor, major := parseFaults([]byte("garbage")); minor != 0 || major != 0 {
		t.Fatalf("garbage parsed to %d/%d", minor, major)
	}
}

func TestStartProcSamplerStops(t *testing.T) {
	reg := NewRegistry()
	stop := StartProcSampler(reg, 0)
	stop()
	stop() // idempotent
}
