package obs

// RegisterWellKnown pre-registers the metric families fed through the
// pipeline sinks (pgindex, ta, train), fixing their types and help text
// before the first measurement arrives — otherwise Observe would
// auto-register everything as a help-less counter. Idempotent; call it
// wherever a registry is wired to sinks.
func RegisterWellKnown(r *Registry) {
	for name, help := range map[string]string{
		"expertfind_pgindex_searches_total":              "PG-Index greedy searches executed.",
		"expertfind_pgindex_hops_total":                  "PG-Index node expansions (search hops) across all searches.",
		"expertfind_pgindex_nodes_visited_total":         "PG-Index nodes visited across all searches.",
		"expertfind_pgindex_distance_computations_total": "Distance computations across all PG-Index searches.",
		"expertfind_ta_runs_total":                       "Threshold-algorithm rankings executed.",
		"expertfind_ta_candidates_total":                 "Candidate experts considered across all TA runs.",
		"expertfind_ta_depth_total":                      "Ranked-list depth reached across all TA runs.",
		"expertfind_ta_sorted_accesses_total":            "Sorted accesses performed across all TA runs.",
		"expertfind_ta_early_terminations_total":         "TA runs that stopped before exhausting the lists.",
		"expertfind_train_runs_total":                    "Fine-tuning runs completed.",
		"expertfind_train_epochs_total":                  "Fine-tuning epochs completed.",
		"expertfind_train_epoch_seconds_total":           "Cumulative wall time spent in training epochs.",
		"expertfind_train_triples_total":                 "Training triples consumed by fine-tuning runs.",
		"expertfind_train_steps_total":                   "Optimiser steps taken by fine-tuning runs.",

		// Concurrent query-serving layer (core query cache + serve).
		"expertfind_qcache_hits_total":          "Query-cache lookups answered from the cache.",
		"expertfind_qcache_misses_total":        "Query-cache lookups that fell through to a full query.",
		"expertfind_qcache_evictions_total":     "Query-cache entries evicted by the LRU size bound.",
		"expertfind_qcache_expired_total":       "Query-cache entries dropped because their TTL elapsed.",
		"expertfind_qcache_invalidations_total": "Whole-cache invalidations triggered by graph updates.",
		"expertfind_singleflight_shared_total":  "Queries answered by piggybacking on a concurrent identical query.",
		"expertfind_query_abandoned_total":      "Queries abandoned because their context was cancelled or timed out.",
		"expertfind_updates_total":              "Online papers added to a built engine.",
		"expertfind_http_shed_total":            "Query requests shed because the in-flight limit was reached.",
		"expertfind_http_timeouts_total":        "Query requests that exceeded their deadline.",
	} {
		r.Counter(name, help)
	}
	r.Gauge("expertfind_train_loss", "Mean triplet loss of the most recent training epoch.")
	r.Gauge("expertfind_qcache_entries", "Query-cache entries currently resident.")
	r.declare("expertfind_stage_seconds",
		"Duration of pipeline stages, labelled by span path.", histogramKind, nil)
	r.declare("expertfind_traces_kept_total",
		"Traces retained by the trace store, by keep rule.", counterKind, nil)
	r.declare("expertfind_traces_dropped_total",
		"Traces offered to the trace store but kept by no rule.", counterKind, nil)
	r.declare("expertfind_slow_queries_total",
		"Queries slower than the slow-query log threshold.", counterKind, nil)
}

// RegisterCluster pre-declares the sharded-cluster metric families — the
// router's per-shard fan-out instrumentation — so they expose the right
// type and help text before the first scatter. Per-shard series carry a
// shard="<id>" label (and replica="<addr>" where noted); declaring the
// family here does not create an unlabelled series.
func RegisterCluster(r *Registry) {
	for name, help := range map[string]string{
		"expertfind_cluster_fanout_errors_total":     "Failed shard sub-requests (after all retries), by shard.",
		"expertfind_cluster_retries_total":           "Shard sub-request retries, by shard.",
		"expertfind_cluster_hedges_total":            "Hedged (duplicate) shard sub-requests launched, by shard.",
		"expertfind_cluster_hedge_wins_total":        "Hedged shard sub-requests that finished before the primary, by shard.",
		"expertfind_cluster_ejections_total":         "Replica ejections after consecutive failures, by shard and replica.",
		"expertfind_cluster_readmissions_total":      "Ejected replicas re-admitted by a successful probe, by shard and replica.",
		"expertfind_cluster_deep_fetches_total":      "Extra scatter rounds issued because the distributed threshold bound was not satisfied.",
		"expertfind_cluster_wire_bytes_total":        "Response bytes read from shard sub-requests, by shard.",
		"expertfind_cluster_shard_unavailable_total": "Queries failed because a whole shard (every replica) was unreachable.",
	} {
		r.declare(name, help, counterKind, nil)
	}
	r.declare("expertfind_cluster_fanout_seconds",
		"Latency of shard sub-requests, by shard.", histogramKind, nil)
	r.declare("expertfind_cluster_replicas_alive",
		"Non-ejected replicas per shard.", gaugeKind, nil)
}

// RegisterReplication pre-declares the WAL-shipping replication metric
// families — follower lag and position, leader-side follower tracking,
// and epoch-fencing events — so they expose the right type and help
// text before replication starts moving.
func RegisterReplication(r *Registry) {
	for name, help := range map[string]string{
		"expertfind_replication_records_applied_total": "WAL records received from the leader and applied.",
		"expertfind_replication_reconnects_total":      "Tail stream failures followed by a backoff and reconnect.",
		"expertfind_replication_stream_tears_total":    "Tail streams cut mid-record (resumed from the applied prefix).",
		"expertfind_replication_stream_errors_total":   "Tail streams aborted mid-flight by a read error.",
		"expertfind_replication_fences_total":          "Times this node's WAL was fenced by a newer replication epoch.",
		"expertfind_replication_promotions_total":      "Times this node was promoted from follower to leader.",
		"expertfind_http_fenced_writes_total":          "Writes rejected because this node's WAL is fenced by a newer epoch.",
	} {
		r.Counter(name, help)
	}
	r.Gauge("expertfind_replication_lag_seq",
		"WAL sequences this follower trails its leader by.")
	r.Gauge("expertfind_replication_applied_seq",
		"Last WAL sequence this follower has applied.")
	r.Gauge("expertfind_replication_caught_up",
		"1 when the follower has applied everything the leader acknowledged.")
	r.Gauge("expertfind_replication_epoch",
		"Persisted replication epoch of this node's WAL.")
	r.Gauge("expertfind_replication_fenced",
		"1 when this node's WAL is fenced by a newer epoch.")
	r.Gauge("expertfind_replication_followers",
		"Live replication followers tracked by this leader.")
	r.Gauge("expertfind_replication_low_water_seq",
		"Lowest WAL sequence applied by any live follower.")
	r.Gauge("expertfind_replication_bootstrap_seconds",
		"Duration of the most recent follower snapshot bootstrap.")
}
