package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "route", Value: "/experts"}.
// Keep label sets small and bounded: every distinct combination creates a
// new time series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// atomicFloat is a float64 updated with compare-and-swap, so counters and
// histogram sums stay exact under concurrent Add without a mutex.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Add increases the counter by v (v must be non-negative).
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add moves the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the tail. Observations
// are lock-free.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Uint64

	// exemplar is the most recent traced observation, rendered
	// OpenMetrics-style on its bucket line so dashboards can jump from a
	// latency series to the trace that exhibited it. Nil until an
	// observation arrives with a trace id.
	exemplar atomic.Pointer[Exemplar]
}

// Exemplar links one histogram observation to the trace that produced
// it.
type Exemplar struct {
	TraceID string
	Value   float64
	bucket  int
}

// DefBuckets spans 100µs to 10s, the useful range for both per-request
// latencies and offline build phases.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveWithExemplar records one value and, when traceID is non-empty,
// remembers it as the histogram's exemplar (last writer wins — recency
// is the useful property for "show me a trace like this").
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || traceID == zeroTraceID {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.exemplar.Store(&Exemplar{TraceID: traceID, Value: v, bucket: i})
}

// zeroTraceID is the string form of an unset TraceID; spans created
// outside any trace-aware context render it and must not emit exemplars.
const zeroTraceID = "00000000000000000000000000000000"

// LastExemplar returns the histogram's current exemplar, or nil.
func (h *Histogram) LastExemplar() *Exemplar {
	return h.exemplar.Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			if i == len(h.upper) { // +Inf bucket: clamp
				return h.upper[len(h.upper)-1]
			}
			frac := (target - cum) / n
			return lo + frac*(h.upper[i]-lo)
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (metric name, label set) time series.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing a metric name.
type family struct {
	name, help string
	kind       kind
	buckets    []float64
	series     map[string]*series // keyed by rendered label signature
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; metric
// handles returned by Counter/Gauge/Histogram are themselves lock-free
// and may be cached by callers.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey renders labels canonically (sorted) for series lookup and
// exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// declare creates the family for name without any series, fixing its
// kind, help and (for histograms) buckets ahead of the first sample.
func (r *Registry) declare(name, help string, k kind, buckets []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
		}
		return
	}
	r.families[name] = &family{name: name, help: help, kind: k, buckets: buckets, series: map[string]*series{}}
}

// getSeries returns (creating as needed) the series for name+labels,
// checking that the metric kind is consistent with prior registrations.
func (r *Registry) getSeries(name, help string, k kind, buckets []float64, labels []Label) *series {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelKey(sorted)

	r.mu.RLock()
	f := r.families[name]
	var s *series
	if f != nil {
		s = f.series[key]
	}
	r.mu.RUnlock()
	if s != nil {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
		}
		return s
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: sorted}
	switch k {
	case counterKind:
		s.c = &Counter{}
	case gaugeKind:
		s.g = &Gauge{}
	case histogramKind:
		b := f.buckets
		if len(b) == 0 {
			b = DefBuckets
		}
		s.h = &Histogram{upper: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	f.series[key] = s
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getSeries(name, help, counterKind, nil, labels).c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getSeries(name, help, gaugeKind, nil, labels).g
}

// Histogram returns the histogram for name+labels, creating it on first
// use. buckets applies only on the first registration of the family; nil
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.getSeries(name, help, histogramKind, buckets, labels).h
}

// Observe routes a named measurement to the matching metric: histograms
// get an observation, gauges are set, and anything else (including
// unregistered names, which are created as counters) is added. This is
// the sink entry point the pipeline packages (pgindex, ta, train) feed
// through an injected interface, keeping them decoupled from metric
// types.
func (r *Registry) Observe(name string, v float64) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.Counter(name, "auto-registered by sink").Add(v)
		return
	}
	switch f.kind {
	case histogramKind:
		r.Histogram(name, f.help, nil).Observe(v)
	case gaugeKind:
		r.Gauge(name, f.help).Set(v)
	default:
		r.Counter(name, f.help).Add(v)
	}
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Content types for the two exposition formats /metrics can serve.
const (
	// ContentTypeText is the classic Prometheus text format. Its parser
	// expects an optional integer timestamp after each value and errors
	// on anything else, so output in this format must not carry
	// exemplars.
	ContentTypeText = "text/plain; version=0.0.4; charset=utf-8"
	// ContentTypeOpenMetrics is the OpenMetrics 1.0 text format, the
	// only exposition format whose parsers accept exemplars.
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// AcceptsOpenMetrics reports whether an Accept header negotiates the
// OpenMetrics exposition format. Metrics handlers use it to decide
// between WritePrometheus (safe for every scraper) and WriteOpenMetrics
// (exemplars included).
func AcceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// WritePrometheus renders every family in the classic text exposition
// format (version 0.0.4), families and series in lexicographic order so
// output is deterministic and diffable. Exemplars are never emitted:
// the 0.0.4 parser rejects them, which would fail the whole scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders every family in the OpenMetrics 1.0 text
// format: histogram exemplars included, counter families declared under
// their un-suffixed name, and the mandatory # EOF terminator. Serve it
// only to scrapers that negotiated ContentTypeOpenMetrics via Accept.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	type snap struct {
		fam  *family
		keys []string
	}
	snaps := make([]snap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, snap{f, keys})
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, sn := range snaps {
		f := sn.fam
		// OpenMetrics declares counter families under the un-suffixed
		// name (samples keep the _total suffix); a counter whose name
		// lacks the suffix cannot be declared as such and degrades to
		// the unknown type.
		famName, famKind := f.name, f.kind.String()
		if openMetrics && f.kind == counterKind {
			if strings.HasSuffix(famName, "_total") {
				famName = strings.TrimSuffix(famName, "_total")
			} else {
				famKind = "unknown"
			}
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", famName, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", famName, famKind)
		for _, key := range sn.keys {
			s := f.series[key]
			switch f.kind {
			case counterKind:
				writeSample(&b, f.name, key, "", s.c.Value())
			case gaugeKind:
				writeSample(&b, f.name, key, "", s.g.Value())
			case histogramKind:
				h := s.h
				var ex *Exemplar
				if openMetrics {
					ex = h.exemplar.Load()
				}
				var cum uint64
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					writeSampleExemplar(&b, f.name+"_bucket", key,
						`le="`+fmtFloat(ub)+`"`, float64(cum), exemplarFor(ex, i))
				}
				cum += h.counts[len(h.upper)].Load()
				writeSampleExemplar(&b, f.name+"_bucket", key, `le="+Inf"`, float64(cum),
					exemplarFor(ex, len(h.upper)))
				writeSample(&b, f.name+"_sum", key, "", h.Sum())
				writeSample(&b, f.name+"_count", key, "", float64(h.Count()))
			}
		}
	}
	if openMetrics {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels, extra string, v float64) {
	writeSampleExemplar(b, name, labels, extra, v, nil)
}

// exemplarFor returns ex only when it lands in bucket i, so the exemplar
// suffix appears on exactly one bucket line.
func exemplarFor(ex *Exemplar, i int) *Exemplar {
	if ex != nil && ex.bucket == i {
		return ex
	}
	return nil
}

func writeSampleExemplar(b *strings.Builder, name, labels, extra string, v float64, ex *Exemplar) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(fmtFloat(v))
	if ex != nil {
		// OpenMetrics exemplar syntax. Callers pass a non-nil ex only in
		// OpenMetrics mode: the 0.0.4 parser errors on the # suffix.
		b.WriteString(` # {trace_id="`)
		b.WriteString(ex.TraceID)
		b.WriteString(`"} `)
		b.WriteString(fmtFloat(ex.Value))
	}
	b.WriteByte('\n')
}

// HistogramSummary is the /debug/vars view of one histogram series.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// ExemplarTraceID is the trace behind the most recent traced
	// observation, when the histogram has one.
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
}

// Summary returns the count/sum and estimated p50/p90/p99 of h.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if ex := h.exemplar.Load(); ex != nil {
		s.ExemplarTraceID = ex.TraceID
	}
	return s
}

// Snapshot returns every series keyed by "name{labels}": float64 for
// counters and gauges, HistogramSummary for histograms. It backs the
// /debug/vars JSON endpoint.
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]interface{})
	for name, f := range r.families {
		for key, s := range f.series {
			id := name
			if key != "" {
				id = name + "{" + key + "}"
			}
			switch f.kind {
			case counterKind:
				out[id] = s.c.Value()
			case gaugeKind:
				out[id] = s.g.Value()
			case histogramKind:
				out[id] = s.h.Summary()
			}
		}
	}
	return out
}
