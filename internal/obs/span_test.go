package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchyAndNaming(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	ctx, root := StartSpan(ctx, "build")
	cctx, sampling := StartSpan(ctx, "sampling")
	_, inner := StartSpan(cctx, "positives")
	time.Sleep(time.Millisecond)
	inner.End()
	sampling.End()
	_, training := StartSpan(ctx, "training")
	training.End()
	root.End()

	if root.Name() != "build" || sampling.Name() != "build/sampling" ||
		inner.Name() != "build/sampling/positives" {
		t.Errorf("names: %q %q %q", root.Name(), sampling.Name(), inner.Name())
	}
	if len(root.Children()) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children()))
	}
	if root.Child("sampling") != sampling || root.Child("missing") != nil {
		t.Error("Child lookup broken")
	}
	if root.Duration() < sampling.Duration() {
		t.Error("parent shorter than child")
	}
	if root.ChildrenTotal() > root.Duration() {
		t.Error("children total exceeds parent duration")
	}

	// Every ended span landed in the stage histogram.
	for _, stage := range []string{"build", "build/sampling", "build/sampling/positives", "build/training"} {
		h := reg.Histogram("expertfind_stage_seconds", "", nil, L("stage", stage))
		if h.Count() != 1 {
			t.Errorf("stage %q: %d observations, want 1", stage, h.Count())
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	reg := NewRegistry()
	_, s := StartSpan(WithRegistry(context.Background(), reg), "once")
	d1 := s.End()
	time.Sleep(time.Millisecond)
	d2 := s.End()
	if d1 != d2 {
		t.Errorf("End not idempotent: %v vs %v", d1, d2)
	}
	h := reg.Histogram("expertfind_stage_seconds", "", nil, L("stage", "once"))
	if h.Count() != 1 {
		t.Errorf("double End recorded %d observations", h.Count())
	}
}

func TestSpanWithoutRegistry(t *testing.T) {
	// No registry in the context: spans still time, nothing panics.
	ctx, root := StartSpan(context.Background(), "solo")
	_, child := StartSpan(ctx, "step")
	if child.End() < 0 || root.End() < 0 {
		t.Error("negative duration")
	}
}

func TestSpanDurationsSumConsistency(t *testing.T) {
	// The contract QueryStats.Total relies on: a parent span covering
	// back-to-back children is at least their sum.
	ctx, root := StartSpan(context.Background(), "query")
	for _, name := range []string{"encode", "retrieve", "rank"} {
		_, s := StartSpan(ctx, name)
		time.Sleep(2 * time.Millisecond)
		s.End()
	}
	total := root.End()
	if sum := root.ChildrenTotal(); total < sum {
		t.Errorf("total %v < children sum %v", total, sum)
	}
	var names []string
	for _, c := range root.Children() {
		names = append(names, c.Name())
	}
	if got := strings.Join(names, ","); got != "query/encode,query/retrieve,query/rank" {
		t.Errorf("children order: %s", got)
	}
}
