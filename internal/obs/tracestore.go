package obs

import (
	"sync"
	"time"
)

// TracePolicy configures a TraceStore's retention. Tail-based: the keep
// decision is made after the request finishes, when its duration, status
// and shape (hedged? deepened?) are known — the interesting traces are
// exactly the ones head-based sampling would have skipped.
type TracePolicy struct {
	// Capacity is the ring size; the oldest kept trace is evicted when a
	// new one arrives at capacity. 0 selects 512.
	Capacity int
	// SlowestN keeps any trace slower than all but N of the traces
	// currently retained — a self-adjusting latency floor. The rule arms
	// only once the ring holds at least SlowestN records; before that,
	// ordinary traces fall through to the sampling rule. 0 selects 32;
	// negative disables the rule.
	SlowestN int
	// SampleEvery keeps 1 in SampleEvery of the traces no other rule
	// claims, so the store always holds a baseline of ordinary queries
	// to compare outliers against. 0 selects 64; negative disables.
	SampleEvery int
}

func (p TracePolicy) withDefaults() TracePolicy {
	if p.Capacity == 0 {
		p.Capacity = 512
	}
	if p.SlowestN == 0 {
		p.SlowestN = 32
	}
	if p.SampleEvery == 0 {
		p.SampleEvery = 64
	}
	return p
}

// KeepFlags are the shape signals the caller knows at end of request.
type KeepFlags struct {
	// Error: the request failed (5xx or transport-level).
	Error bool
	// Hedged: at least one hedged attempt fired.
	Hedged bool
	// Deepened: the TA merge needed more than one scatter round.
	Deepened bool
}

// Keep reasons, in decision precedence order.
const (
	KeepError   = "error"
	KeepHedged  = "hedged"
	KeepDeepen  = "deepened"
	KeepSlow    = "slow"
	KeepSampled = "sampled"
)

// TraceRecord is one retained trace: identity, request framing, and the
// assembled span tree.
type TraceRecord struct {
	TraceID    string    `json:"trace_id"`
	Route      string    `json:"route"`
	Query      string    `json:"query,omitempty"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	// Kept records which rule retained the trace.
	Kept string   `json:"kept"`
	Root SpanNode `json:"root"`
}

// TraceSummary is the index view of a record — everything but the tree.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Route      string    `json:"route"`
	Query      string    `json:"query,omitempty"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Kept       string    `json:"kept"`
}

// TraceStore retains completed traces in a fixed-size ring under
// tail-based keep rules. All methods are safe for concurrent use.
type TraceStore struct {
	policy TracePolicy

	mu      sync.Mutex
	ring    []TraceRecord // kept records, oldest overwritten first
	next    int           // ring write cursor
	full    bool          // ring has wrapped
	offered uint64        // total records offered, drives sampling

	kept    map[string]*Counter // per-reason kept counters (nil without a registry)
	dropped *Counter
}

// NewTraceStore returns a store with the given policy. reg, when
// non-nil, receives expertfind_traces_kept_total{reason=...} and
// expertfind_traces_dropped_total counters.
func NewTraceStore(policy TracePolicy, reg *Registry) *TraceStore {
	p := policy.withDefaults()
	s := &TraceStore{
		policy: p,
		ring:   make([]TraceRecord, 0, p.Capacity),
	}
	if reg != nil {
		s.kept = make(map[string]*Counter, 5)
		for _, reason := range []string{KeepError, KeepHedged, KeepDeepen, KeepSlow, KeepSampled} {
			s.kept[reason] = reg.Counter("expertfind_traces_kept_total",
				"Traces retained by the trace store, by keep rule.", L("reason", reason))
		}
		s.dropped = reg.Counter("expertfind_traces_dropped_total",
			"Traces offered to the trace store but kept by no rule.")
	}
	return s
}

// Add offers a finished trace to the store. flags supply the shape
// signals; rec.Kept is overwritten with the winning rule. Returns the
// keep reason and whether the record was retained.
func (s *TraceStore) Add(rec TraceRecord, flags KeepFlags) (string, bool) {
	s.mu.Lock()
	s.offered++
	reason := s.decide(rec, flags)
	if reason == "" {
		s.mu.Unlock()
		if s.dropped != nil {
			s.dropped.Inc()
		}
		return "", false
	}
	rec.Kept = reason
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, rec)
	} else {
		s.ring[s.next] = rec
		s.next = (s.next + 1) % cap(s.ring)
		s.full = true
	}
	c := s.kept[reason]
	s.mu.Unlock()
	if c != nil {
		c.Inc()
	}
	return reason, true
}

// decide applies the keep rules in precedence order. Caller holds s.mu.
func (s *TraceStore) decide(rec TraceRecord, flags KeepFlags) string {
	switch {
	case flags.Error:
		return KeepError
	case flags.Hedged:
		return KeepHedged
	case flags.Deepened:
		return KeepDeepen
	}
	if s.policy.SlowestN > 0 && s.isSlow(rec.DurationMs) {
		return KeepSlow
	}
	if s.policy.SampleEvery > 0 && (s.offered-1)%uint64(s.policy.SampleEvery) == 0 {
		return KeepSampled
	}
	return ""
}

// isSlow reports whether durationMs ranks within the SlowestN slowest of
// the currently retained records — a threshold that tracks the live
// latency distribution instead of a fixed cutoff. The rule arms only
// once the ring holds at least SlowestN records: before that every
// trace would trivially rank in the top N, mislabelling ordinary
// cold-start traffic as "slow" (it falls through to the sampling rule
// instead). Caller holds s.mu.
func (s *TraceStore) isSlow(durationMs float64) bool {
	if len(s.ring) < s.policy.SlowestN {
		return false
	}
	slower := 0
	for i := range s.ring {
		if s.ring[i].DurationMs > durationMs {
			slower++
			if slower >= s.policy.SlowestN {
				return false
			}
		}
	}
	return true
}

// Get returns every retained record for a trace id, oldest first. A
// shard node legitimately holds several records per trace (one per RPC
// it served), so the result is a slice.
func (s *TraceStore) Get(traceID string) []TraceRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TraceRecord
	for _, rec := range s.inOrder() {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// Index returns summaries of every retained trace, newest first.
func (s *TraceStore) Index() []TraceSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.inOrder()
	out := make([]TraceSummary, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		out = append(out, TraceSummary{
			TraceID:    r.TraceID,
			Route:      r.Route,
			Query:      r.Query,
			Status:     r.Status,
			Start:      r.Start,
			DurationMs: r.DurationMs,
			Kept:       r.Kept,
		})
	}
	return out
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// inOrder returns the ring's records oldest first. Caller holds s.mu.
func (s *TraceStore) inOrder() []TraceRecord {
	if !s.full {
		return s.ring
	}
	out := make([]TraceRecord, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}
