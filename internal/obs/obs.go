// Package obs is the observability layer of the expert-finding system:
// a concurrency-safe metrics registry with Prometheus text exposition
// (registry.go), lightweight hierarchical trace spans that time pipeline
// phases (span.go), and a levelled key=value structured logger with
// request IDs (log.go). Everything is standard library only.
//
// Metric naming follows the Prometheus conventions under a single
// `expertfind_` prefix: counters end in `_total`, durations are histograms
// in seconds ending in `_seconds`, and bounded label sets (route, code,
// stage) keep cardinality small. All span durations land in one histogram
// family, `expertfind_stage_seconds{stage="<span path>"}`, so the offline
// build phases and the online query stages share an exposition schema.
package obs

import "sync"

var (
	defaultMu  sync.Mutex
	defaultReg *Registry
)

// Default returns the process-wide registry, creating it on first use.
// Library code that is not handed an explicit registry records here.
func Default() *Registry {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultReg == nil {
		defaultReg = NewRegistry()
	}
	return defaultReg
}
