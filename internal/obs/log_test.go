package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2026, 8, 6, 10, 0, 0, 123e6, time.UTC)
}

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.now = fixedNow
	l.Info("access", "route", "/experts", "status", 200, "q", "deep learning")
	got := b.String()
	want := `ts=2026-08-06T10:00:00.123Z level=info msg=access route=/experts status=200 q="deep learning"` + "\n"
	if got != want {
		t.Errorf("line mismatch:\ngot  %q\nwant %q", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 ||
		!strings.Contains(lines[0], "level=warn") ||
		!strings.Contains(lines[1], "level=error") {
		t.Errorf("level filtering wrong: %q", b.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled wrong")
	}
}

func TestLoggerWithFields(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.now = fixedNow
	req := l.With("req_id", "abc123")
	req.Info("start")
	req.Info("done", "status", 200)
	for _, line := range strings.SplitAfter(strings.TrimSpace(b.String()), "\n") {
		if !strings.Contains(line, "req_id=abc123") {
			t.Errorf("line missing bound field: %q", line)
		}
	}
}

func TestLoggerOddPairsAndQuoting(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.Info(`say "hi"`, "dangling")
	got := b.String()
	if !strings.Contains(got, `msg="say \"hi\""`) {
		t.Errorf("msg not quoted: %q", got)
	}
	if !strings.Contains(got, "EXTRA=dangling") {
		t.Errorf("odd trailing value dropped: %q", got)
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	l := NewLogger(safe, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("m", "k", "v")
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	mu.Unlock()
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.HasSuffix(line, "k=v") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRequestIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
