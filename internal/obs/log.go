package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

type logField struct {
	key string
	val interface{}
}

// Logger emits one key=value line per event:
//
//	ts=2026-08-06T10:11:12.123Z level=info msg=access route=/experts status=200
//
// Values containing spaces, quotes or '=' are quoted. Loggers derived
// with With share the parent's writer and serialise on one mutex, so
// concurrent handlers never interleave bytes within a line.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	fields []logField
	now    func() time.Time // injectable for tests
}

// NewLogger returns a logger writing events at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, now: time.Now}
}

// NopLogger returns a logger that discards everything — the default for
// library code, so importing packages stay silent unless wired.
func NopLogger() *Logger { return NewLogger(io.Discard, LevelError+1) }

// With returns a logger that appends the given key/value pairs (given
// alternating) to every line. The derived logger shares the writer lock.
func (l *Logger) With(kv ...interface{}) *Logger {
	d := &Logger{mu: l.mu, w: l.w, level: l.level, now: l.now}
	d.fields = append(append([]logField(nil), l.fields...), pairs(kv)...)
	return d
}

// Enabled reports whether events at lvl would be written.
func (l *Logger) Enabled(lvl Level) bool { return lvl >= l.level }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...interface{}) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...interface{}) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...interface{}) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...interface{}) { l.log(LevelError, msg, kv) }

func pairs(kv []interface{}) []logField {
	out := make([]logField, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		out = append(out, logField{k, kv[i+1]})
	}
	if len(kv)%2 == 1 {
		out = append(out, logField{"EXTRA", kv[len(kv)-1]})
	}
	return out
}

func (l *Logger) log(lvl Level, msg string, kv []interface{}) {
	if !l.Enabled(lvl) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	for _, f := range append(l.fields, pairs(kv)...) {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(quote(fmt.Sprint(f.val)))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func quote(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// reqCounter backs the request-ID fallback when crypto/rand fails.
var reqCounter atomic.Uint64

// NewRequestID returns a 16-hex-character id for correlating one
// request's log lines, response header and traces.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqCounter.Add(1))
	}
	return hex.EncodeToString(buf[:])
}
