package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	// Same name+labels returns the same handle.
	if r.Counter("c_total", "a counter") != c {
		t.Error("counter not deduplicated")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	// Distinct labels create distinct series.
	a := r.Counter("routes_total", "", L("route", "/a"))
	b := r.Counter("routes_total", "", L("route", "/b"))
	if a == b {
		t.Error("labelled series not distinct")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf bucket
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want in (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %v, want in (0.01, 0.1]", p99)
	}
	// Tail in +Inf clamps to the largest finite bound.
	if q := h.Quantile(0.9999); q != 1 {
		t.Errorf("extreme quantile = %v, want clamp to 1", q)
	}
	if q := r.Histogram("empty_seconds", "", []float64{1}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestObserveRouting(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", "", []float64{1, 10})
	r.Gauge("g", "")
	r.Observe("h_seconds", 0.5)
	r.Observe("g", 42)
	r.Observe("new_total", 3) // auto-registered counter
	r.Observe("new_total", 4)
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 1 {
		t.Errorf("histogram observations = %d, want 1", got)
	}
	if got := r.Gauge("g", "").Value(); got != 42 {
		t.Errorf("gauge = %v, want 42", got)
	}
	if got := r.Counter("new_total", "").Value(); got != 7 {
		t.Errorf("auto counter = %v, want 7", got)
	}
}

// TestConcurrentUpdates hammers one histogram, counter and gauge from many
// goroutines; run with -race. The exact sum checks catch lost updates.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("conc_seconds", "", nil, L("route", "/x"))
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_inflight", "")
			for i := 0; i < perWorker; i++ {
				h.Observe(0.001)
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	h := r.Histogram("conc_seconds", "", nil, L("route", "/x"))
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := h.Sum(); math.Abs(got-workers*perWorker*0.001) > 1e-6 {
		t.Errorf("histogram sum = %v", got)
	}
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_inflight", "").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

// TestPrometheusGolden pins the full text exposition of a small registry.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("expertfind_http_requests_total", "HTTP requests.",
		L("route", "/experts"), L("code", "200")).Add(3)
	r.Gauge("expertfind_http_in_flight", "In-flight requests.").Set(1)
	h := r.Histogram("expertfind_http_request_seconds", "Request latency.",
		[]float64{0.1, 1}, L("route", "/experts"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP expertfind_http_in_flight In-flight requests.
# TYPE expertfind_http_in_flight gauge
expertfind_http_in_flight 1
# HELP expertfind_http_request_seconds Request latency.
# TYPE expertfind_http_request_seconds histogram
expertfind_http_request_seconds_bucket{route="/experts",le="0.1"} 1
expertfind_http_request_seconds_bucket{route="/experts",le="1"} 2
expertfind_http_request_seconds_bucket{route="/experts",le="+Inf"} 3
expertfind_http_request_seconds_sum{route="/experts"} 2.55
expertfind_http_request_seconds_count{route="/experts"} 3
# HELP expertfind_http_requests_total HTTP requests.
# TYPE expertfind_http_requests_total counter
expertfind_http_requests_total{code="200",route="/experts"} 3
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("q", `he said "hi"`+"\n")).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `q="he said \"hi\"\n"`) {
		t.Errorf("labels not escaped: %s", b.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("b_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if v, ok := snap["a_total"].(float64); !ok || v != 2 {
		t.Errorf("snapshot a_total = %v", snap["a_total"])
	}
	hs, ok := snap["b_seconds"].(HistogramSummary)
	if !ok || hs.Count != 1 || hs.Sum != 0.5 {
		t.Errorf("snapshot b_seconds = %+v", snap["b_seconds"])
	}
}
