package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Cross-node trace propagation. A trace is one logical query; its spans
// may live in several processes (router, shards, replicas). The trace
// context — a 16-byte trace id naming the whole query plus the 8-byte id
// of the span that issued the outbound request — crosses process
// boundaries in the TraceHeader, traceparent-style, so a shard's spans
// join the router's trace instead of starting their own.

// TraceHeader carries the trace context on inter-node requests:
//
//	X-Trace-Context: 00-<32 hex trace id>-<16 hex span id>-01
//
// The leading "00" is a format version, the trailing "01" a sampled
// flag, mirroring the W3C traceparent layout so the value is readable by
// standard tooling.
const TraceHeader = "X-Trace-Context"

// CollectHeader asks the receiving node to return its completed span
// tree in the response envelope ("1" enables). The router sets it only
// when it has a trace store to graft the result into, so shards do not
// pay the export and wire cost for untraced deployments.
const CollectHeader = "X-Trace-Collect"

// TraceID names one distributed query across every node it touches.
type TraceID [16]byte

// SpanID names one span within a trace.
type SpanID [8]byte

// IsZero reports an unset trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports an unset span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes 32 hex characters.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// ParseSpanID decodes 16 hex characters.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// id generation: a locked math/rand source seeded from crypto/rand once.
// Span creation sits on the query path, so ids must not pay a syscall
// each; one PRNG draw under a mutex is a few tens of nanoseconds.
var (
	idMu  sync.Mutex
	idRng = rand.New(rand.NewSource(randSeed()))
)

func randSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	idMu.Lock()
	for t.IsZero() {
		idRng.Read(t[:])
	}
	idMu.Unlock()
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	idMu.Lock()
	for s.IsZero() {
		idRng.Read(s[:])
	}
	idMu.Unlock()
	return s
}

// TraceContext is the wire-portable part of a trace: which trace the
// request belongs to and which remote span is its parent.
type TraceContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports a usable context (non-zero trace id).
func (tc TraceContext) Valid() bool { return !tc.Trace.IsZero() }

// FormatTraceContext renders tc as the TraceHeader value.
func FormatTraceContext(tc TraceContext) string {
	return "00-" + tc.Trace.String() + "-" + tc.Span.String() + "-01"
}

// ParseTraceContext decodes a TraceHeader value. Unknown versions and
// malformed fields are rejected rather than guessed at.
func ParseTraceContext(s string) (TraceContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 || parts[0] != "00" {
		return TraceContext{}, false
	}
	t, ok := ParseTraceID(parts[1])
	if !ok {
		return TraceContext{}, false
	}
	id, ok := ParseSpanID(parts[2])
	if !ok {
		return TraceContext{}, false
	}
	return TraceContext{Trace: t, Span: id}, true
}

// ContextWithRemote attaches an extracted remote trace context to ctx:
// the next root span started under it joins that trace as a child of the
// remote span instead of minting a fresh trace id.
func ContextWithRemote(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, remoteKey, tc)
}

// RemoteFromContext returns the remote trace context attached to ctx.
func RemoteFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(remoteKey).(TraceContext)
	return tc, ok && tc.Valid()
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// headerSetter is the subset of http.Header the injector needs, kept as
// an interface so obs stays free of net/http.
type headerSetter interface{ Set(key, value string) }

// InjectTrace writes the current trace context into h (typically an
// http.Header) for an outbound request: the active span's coordinates
// when ctx carries one, else any remote context being relayed. Returns
// whether a header was written.
func InjectTrace(ctx context.Context, h headerSetter) bool {
	if s := SpanFromContext(ctx); s != nil {
		h.Set(TraceHeader, FormatTraceContext(TraceContext{Trace: s.TraceID(), Span: s.ID()}))
		return true
	}
	if tc, ok := RemoteFromContext(ctx); ok {
		h.Set(TraceHeader, FormatTraceContext(tc))
		return true
	}
	return false
}

// TraceIDFromContext resolves the trace id visible from ctx: the current
// span's, else a captured root's, else a remote context's; "" when ctx
// carries no trace at all (e.g. a cache hit that started no span).
func TraceIDFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.TraceID().String()
	}
	if c, ok := ctx.Value(captureKey).(*TraceCapture); ok {
		if root := c.Root(); root != nil {
			return root.TraceID().String()
		}
	}
	if tc, ok := RemoteFromContext(ctx); ok {
		return tc.Trace.String()
	}
	return ""
}

// SpanNode is the serialisable form of a completed span subtree — what
// shards return in their response envelopes and what /debug/traces
// serves. Times are wall-clock nanoseconds so trees assembled across
// nodes order correctly (modulo clock skew, which per-node durations do
// not suffer from).
type SpanNode struct {
	Name     string `json:"name"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// StartUnixNano is the span's start in wall-clock nanoseconds.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationNano is the span's measured duration (monotonic clock).
	DurationNano int64             `json:"duration_nano"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Children     []SpanNode        `json:"children,omitempty"`
}

// HasAttr reports whether the node or any descendant carries attr key —
// how keep rules spot hedges and deepening rounds in assembled trees.
func (n SpanNode) HasAttr(key string) bool {
	if _, ok := n.Attrs[key]; ok {
		return true
	}
	for _, c := range n.Children {
		if c.HasAttr(key) {
			return true
		}
	}
	return false
}

// Find returns the first node (pre-order) whose short name matches, or
// nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n.Name == name {
		return n
	}
	for i := range n.Children {
		if f := n.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// TraceCapture receives the root span of work done under a context — how
// the serve middleware gets hold of the span tree the engine builds and
// ends internally, without wrapping queries in an extra span (which
// would rename every stage metric).
type TraceCapture struct {
	mu   sync.Mutex
	root *Span
}

// WithTraceCapture derives a context whose first root span is recorded
// into the returned capture.
func WithTraceCapture(ctx context.Context) (context.Context, *TraceCapture) {
	c := &TraceCapture{}
	return context.WithValue(ctx, captureKey, c), c
}

// Root returns the captured root span, or nil if none started.
func (c *TraceCapture) Root() *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.root
}

func (c *TraceCapture) offer(s *Span) {
	c.mu.Lock()
	if c.root == nil {
		c.root = s
	}
	c.mu.Unlock()
}
