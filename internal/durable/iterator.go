package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// WALIterator walks records in sequence order across sealed segments and
// the active one, starting at the sequence given to ReadFrom. It reads a
// stable prefix of the log: the records it yields are exactly those
// appended before ReadFrom was called, so concurrent appends never tear
// an iteration. An iterator is not itself safe for concurrent use.
type WALIterator struct {
	w       *WAL
	segs    []segmentInfo
	seg     int // index into segs of the segment being read
	f       *os.File
	r       *offsetReader
	from    uint64 // first sequence the caller asked for
	scanSeq uint64 // sequence the next scanned record must carry
	upTo    uint64 // last sequence this iterator will yield
	err     error  // sticky terminal state (io.EOF when exhausted)
	buf     []byte // payload buffer, reused across Next calls
}

// ReadFrom returns an iterator over records with sequence >= from, up to
// the log's last sequence at call time. A from past the last sequence is
// valid and yields an immediately-exhausted iterator — the steady state
// of a caught-up replication follower polling for new records. A from
// below the oldest record on disk fails with ErrCompacted: those records
// were truncated into a snapshot and the caller must bootstrap from the
// snapshot instead. from must be >= 1 (sequence 0 never exists).
func (w *WAL) ReadFrom(from uint64) (*WALIterator, error) {
	if from == 0 {
		return nil, fmt.Errorf("durable: ReadFrom(0): sequences start at 1")
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	upTo := w.nextSeq - 1
	// Under the buffered fsync policies the tail records may not have
	// reached the file yet; flush so the re-read below sees everything
	// the iterator promises. (os.File writes are unbuffered in-process,
	// so this only matters for exotic UpdateLog wrappers — cheap anyway.)
	if w.dirty {
		if err := w.f.Sync(); err != nil {
			w.mu.Unlock()
			return nil, fmt.Errorf("durable: WAL fsync before read: %w", err)
		}
		w.dirty = false
	}
	w.mu.Unlock()

	it := &WALIterator{w: w, from: from, upTo: upTo}
	if from > upTo {
		it.err = io.EOF
		return it, nil
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 || from < segs[0].firstSeq {
		return nil, ErrCompacted
	}
	// The segment containing from is the last one starting at or before it.
	idx := 0
	for i, s := range segs {
		if s.firstSeq <= from {
			idx = i
		}
	}
	it.segs, it.seg = segs, idx
	it.scanSeq = segs[idx].firstSeq
	if err := it.openSegment(); err != nil {
		return nil, err
	}
	return it, nil
}

// Next returns the next record, or io.EOF once every record up to the
// log's last sequence at ReadFrom time has been yielded. The payload
// slice is reused by the following Next call; copy it to retain. A
// segment that vanished under the iterator (snapshot truncation racing a
// slow reader) surfaces as ErrCompacted.
func (it *WALIterator) Next() (seq uint64, payload []byte, err error) {
	for {
		if it.err != nil {
			return 0, nil, it.err
		}
		seq, payload, err = it.scanOne()
		if err == errSegmentDone {
			if aerr := it.advanceSegment(); aerr != nil {
				it.fail(aerr)
				return 0, nil, aerr
			}
			continue
		}
		if err != nil {
			it.fail(err)
			return 0, nil, err
		}
		if seq == it.upTo {
			// Deliver this final record; later calls report exhaustion.
			it.fail(io.EOF)
		}
		if seq < it.from {
			continue // head of the first segment, before the requested start
		}
		return seq, payload, nil
	}
}

// Close releases the iterator's file handle. Safe to call at any point
// and more than once; a closed iterator's Next reports ErrClosed unless
// it had already terminated.
func (it *WALIterator) Close() error {
	var err error
	if it.f != nil {
		err = it.f.Close()
		it.f = nil
	}
	if it.err == nil {
		it.err = ErrClosed
	}
	return err
}

// fail records a terminal state and drops the file handle.
func (it *WALIterator) fail(err error) {
	it.err = err
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
}

// errSegmentDone is an internal signal: the current segment has no more
// complete records and the next one should be opened.
var errSegmentDone = errors.New("durable: segment exhausted")

// openSegment opens it.segs[it.seg] for scanning. The caller has set
// scanSeq to the segment's first sequence.
func (it *WALIterator) openSegment() error {
	seg := it.segs[it.seg]
	f, err := os.Open(seg.path)
	if os.IsNotExist(err) {
		return ErrCompacted // truncated away while we were getting to it
	}
	if err != nil {
		return fmt.Errorf("durable: open WAL segment: %w", err)
	}
	it.f = f
	it.r = &offsetReader{r: f}
	return nil
}

// advanceSegment moves to the segment holding scanSeq. When the listed
// segments are exhausted it re-lists the directory: the log may have
// rotated since ReadFrom and the remaining promised records then live in
// a segment created afterwards.
func (it *WALIterator) advanceSegment() error {
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
	it.seg++
	if it.seg >= len(it.segs) {
		segs, err := listSegments(it.w.dir)
		if err != nil {
			return err
		}
		it.segs, it.seg = segs, -1
		for i, s := range segs {
			if s.firstSeq == it.scanSeq {
				it.seg = i
				break
			}
		}
		if it.seg < 0 {
			if len(segs) > 0 && segs[0].firstSeq > it.scanSeq {
				return ErrCompacted
			}
			return &CorruptError{Path: it.w.dir, Offset: 0, Detail: "WAL segment chain",
				Err: fmt.Errorf("no segment starting at seq %d: %w", it.scanSeq, ErrTruncated)}
		}
		return it.openSegment()
	}
	if it.segs[it.seg].firstSeq != it.scanSeq {
		return &CorruptError{Path: it.segs[it.seg].path, Offset: 0, Detail: "segment sequence",
			Err: fmt.Errorf("segment starts at seq %d, want %d: %w",
				it.segs[it.seg].firstSeq, it.scanSeq, ErrTruncated)}
	}
	return it.openSegment()
}

// scanOne reads and validates one record from the current segment,
// returning errSegmentDone at its end. A short read is a clean segment
// end from this iterator's point of view: every record it promised
// (seq <= upTo) was completely written before ReadFrom returned, so a
// partial record can only be the in-flight tail beyond the promise.
func (it *WALIterator) scanOne() (uint64, []byte, error) {
	start := it.r.off
	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(it.r, hdr[:]); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, errSegmentDone
		}
		return 0, nil, fmt.Errorf("durable: read WAL segment: %w", err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	seq := binary.LittleEndian.Uint64(hdr[8:16])
	if int64(plen) > MaxRecordBytes {
		return 0, nil, &CorruptError{Path: it.segs[it.seg].path, Offset: start,
			Detail: "record length", Err: ErrChecksum}
	}
	if cap(it.buf) < int(plen) {
		it.buf = make([]byte, plen)
	}
	payload := it.buf[:plen]
	if _, err := io.ReadFull(it.r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, errSegmentDone
		}
		return 0, nil, fmt.Errorf("durable: read WAL segment: %w", err)
	}
	if got := recordChecksum(seq, payload); got != crc {
		return 0, nil, &CorruptError{Path: it.segs[it.seg].path, Offset: start,
			Detail: "record checksum", Err: ErrChecksum}
	}
	if seq != it.scanSeq {
		return 0, nil, &CorruptError{Path: it.segs[it.seg].path, Offset: start,
			Detail: "record sequence",
			Err:    fmt.Errorf("found seq %d, want %d: %w", seq, it.scanSeq, ErrChecksum)}
	}
	it.scanSeq++
	return seq, payload, nil
}

// MarshalRecord encodes one record in the WAL's on-disk format — the
// same bytes Append writes. The replication stream ships records in this
// format so a follower can CRC-check and apply them without a second
// framing layer.
func MarshalRecord(seq uint64, payload []byte) []byte {
	return encodeRecord(seq, payload)
}

// RecordReader decodes a stream of records in the WAL wire/on-disk
// format (see MarshalRecord), validating each checksum. It is the
// follower-side counterpart of streaming a WALIterator over HTTP.
type RecordReader struct {
	r   *offsetReader
	buf []byte
}

// NewRecordReader wraps r, which must carry zero or more complete
// records back to back.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{r: &offsetReader{r: r}}
}

// Next returns the next record. io.EOF reports a clean end between
// records; io.ErrUnexpectedEOF a stream cut mid-record (a torn tail on
// the wire — resume from the last applied sequence); a *CorruptError a
// checksum or framing failure. The payload is reused on the following
// call; copy to retain.
func (rr *RecordReader) Next() (seq uint64, payload []byte, err error) {
	start := rr.r.off
	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	seq = binary.LittleEndian.Uint64(hdr[8:16])
	if int64(plen) > MaxRecordBytes {
		return 0, nil, &CorruptError{Path: "<stream>", Offset: start,
			Detail: "record length", Err: ErrChecksum}
	}
	if cap(rr.buf) < int(plen) {
		rr.buf = make([]byte, plen)
	}
	payload = rr.buf[:plen]
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if got := recordChecksum(seq, payload); got != crc {
		return 0, nil, &CorruptError{Path: "<stream>", Offset: start,
			Detail: "record checksum", Err: ErrChecksum}
	}
	return seq, payload, nil
}
