package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	payload := []byte("the engine snapshot payload, opaque to durable")
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 3, payload); err != nil {
		t.Fatal(err)
	}
	v, got, err := ReadContainer(bytes.NewReader(buf.Bytes()), "<stream>", 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: version %d payload %q", v, got)
	}
}

func TestContainerEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadContainer(bytes.NewReader(buf.Bytes()), "<stream>", 1)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %v, %d bytes", err, len(got))
	}
}

func TestContainerRejectsBadMagic(t *testing.T) {
	data := []byte("GOBGOBGOB this is not a container at all........")
	_, _, err := ReadContainer(bytes.NewReader(data), "f", 1)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T", err)
	}
}

func TestContainerRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadContainer(bytes.NewReader(buf.Bytes()), "f", 2)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if ve.Got != 9 || ve.Max != 2 {
		t.Fatalf("version error fields: %+v", ve)
	}
}

func TestContainerRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 1, bytes.Repeat([]byte("p"), 100)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must be rejected as truncated.
	for _, cut := range []int{0, 3, containerHeaderSize - 1, containerHeaderSize, len(full) - 1} {
		_, _, err := ReadContainer(bytes.NewReader(full[:cut]), "f", 1)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestContainerRejectsBitFlips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 1, bytes.Repeat([]byte("payload"), 20)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one byte at every offset; every flip must be detected.
	for off := 0; off < len(full); off++ {
		r := &FlipReader{R: bytes.NewReader(full), Offset: int64(off), Mask: 0x40}
		_, _, err := ReadContainer(r, "f", 1)
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
		var ce *CorruptError
		var ve *VersionError
		if !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("flip at %d: untyped error %T %v", off, err, err)
		}
	}
}

func TestContainerRejectsTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("extra")
	_, _, err := ReadContainer(bytes.NewReader(buf.Bytes()), "f", 1)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for trailing bytes, got %v", err)
	}
}

func TestContainerFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteContainerFile(path, 1, []byte("first"), true); err != nil {
		t.Fatal(err)
	}
	if err := WriteContainerFile(path, 1, []byte("second"), true); err != nil {
		t.Fatal(err)
	}
	_, payload, err := ReadContainerFile(path, 1)
	if err != nil || string(payload) != "second" {
		t.Fatalf("got %q, %v", payload, err)
	}
	// No temp files may linger after successful replaces.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory not clean after atomic writes: %d entries", len(ents))
	}
}

func TestAtomicWriteFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteContainerFile(path, 1, []byte("good"), true); err != nil {
		t.Fatal(err)
	}
	// Writing into a removed directory must fail without touching path.
	bad := filepath.Join(dir, "gone", "snap.bin")
	if err := AtomicWriteFile(bad, []byte("x"), true); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	_, payload, err := ReadContainerFile(path, 1)
	if err != nil || string(payload) != "good" {
		t.Fatalf("old file damaged: %q, %v", payload, err)
	}
}

func TestReadContainerPrefixToleratesTrailer(t *testing.T) {
	payload := []byte("v2 gob payload")
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 2, payload); err != nil {
		t.Fatal(err)
	}
	wantEnd := int64(buf.Len())
	buf.WriteString("columnar section bytes follow the container here")

	v, got, end, err := ReadContainerPrefix(bytes.NewReader(buf.Bytes()), "<stream>", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || !bytes.Equal(got, payload) || end != wantEnd {
		t.Fatalf("prefix read: version %d payload %q end %d (want end %d)", v, got, end, wantEnd)
	}

	// The strict reader must still reject the same bytes.
	if _, _, err := ReadContainer(bytes.NewReader(buf.Bytes()), "<stream>", 2); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadContainer accepted trailing bytes: %v", err)
	}

	// And the prefix reader keeps the full corruption taxonomy.
	torn := buf.Bytes()[:10]
	if _, _, _, err := ReadContainerPrefix(bytes.NewReader(torn), "<s>", 2); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn prefix: %v", err)
	}
	flip := append([]byte(nil), buf.Bytes()...)
	flip[containerHeaderSize+2] ^= 0x10
	if _, _, _, err := ReadContainerPrefix(bytes.NewReader(flip), "<s>", 2); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped prefix: %v", err)
	}
	if _, _, _, err := ReadContainerPrefix(bytes.NewReader(buf.Bytes()), "<s>", 1); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestAtomicWriteToStreams(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.efs")
	if err := AtomicWriteTo(path, true, func(f *os.File) error {
		for i := 0; i < 3; i++ {
			if _, err := f.Write([]byte("chunk-")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "chunk-chunk-chunk-" {
		t.Fatalf("content %q err %v", b, err)
	}

	// A failing producer must leave the old file untouched and no temp
	// files behind.
	if err := AtomicWriteTo(path, false, func(f *os.File) error {
		f.Write([]byte("partial"))
		return errors.New("producer failed")
	}); err == nil {
		t.Fatal("producer error swallowed")
	}
	b, _ = os.ReadFile(path)
	if string(b) != "chunk-chunk-chunk-" {
		t.Fatalf("old file clobbered: %q", b)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}
