package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEpochFreshLogIsEpochZero(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Epoch() != 0 || w.Fenced() {
		t.Fatalf("fresh log: epoch %d fenced %v", w.Epoch(), w.Fenced())
	}
}

func TestFenceRejectsAppendsPersistently(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	if err := w.Fence(5); err != nil {
		t.Fatal(err)
	}
	var fe *FencedError
	if _, err := w.Append([]byte("x")); !errors.As(err, &fe) {
		t.Fatalf("append on fenced log: got %v, want *FencedError", err)
	} else if fe.Epoch != 5 || fe.Op != "append" {
		t.Fatalf("fenced error fields: %+v", fe)
	}
	if err := w.AppendReplicated(4, []byte("x")); !errors.As(err, &fe) {
		t.Fatalf("replicated append on fenced log: got %v, want *FencedError", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The fence survives a restart.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Epoch() != 5 || !w2.Fenced() {
		t.Fatalf("after reopen: epoch %d fenced %v", w2.Epoch(), w2.Fenced())
	}
	if _, err := w2.Append([]byte("x")); !errors.As(err, &fe) {
		t.Fatalf("append after reopen: got %v, want *FencedError", err)
	}
}

func TestFenceStaleEpochRefused(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.BumpEpoch(); err != nil { // epoch 1
		t.Fatal(err)
	}
	var fe *FencedError
	if err := w.Fence(1); !errors.As(err, &fe) {
		t.Fatalf("fence at current epoch: got %v, want *FencedError", err)
	}
	if err := w.Fence(0); !errors.As(err, &fe) {
		t.Fatalf("fence at older epoch: got %v, want *FencedError", err)
	}
	if w.Fenced() {
		t.Fatal("stale fence requests must not depose the leader")
	}
}

func TestBumpEpochClearsFence(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Fence(3); err != nil {
		t.Fatal(err)
	}
	got, err := w.BumpEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 || w.Fenced() {
		t.Fatalf("after bump: epoch %d fenced %v", got, w.Fenced())
	}
	if _, err := w.Append([]byte("promoted")); err != nil {
		t.Fatalf("append after promotion: %v", err)
	}
}

func TestAdoptEpoch(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AdoptEpoch(7); err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != 7 || w.Fenced() {
		t.Fatalf("after adopt: epoch %d fenced %v", w.Epoch(), w.Fenced())
	}
	if err := w.AdoptEpoch(7); err != nil { // no-op
		t.Fatal(err)
	}
	var fe *FencedError
	if err := w.AdoptEpoch(6); !errors.As(err, &fe) {
		t.Fatalf("adopt older epoch: got %v, want *FencedError", err)
	} else if fe.Op != "tail" {
		t.Fatalf("adopt older epoch: op %q", fe.Op)
	}
}

func TestAppendReplicatedSequencing(t *testing.T) {
	dir := t.TempDir()
	// A follower bootstrapped from a snapshot at seq 10 starts at 11.
	w, err := OpenWAL(dir, WALOptions{InitialSeq: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendReplicated(11, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendReplicated(13, []byte("gap")); err == nil {
		t.Fatal("out-of-order replicated append must be rejected")
	}
	if err := w.AppendReplicated(11, []byte("dup")); err == nil {
		t.Fatal("duplicate replicated append must be rejected")
	}
	if err := w.AppendReplicated(12, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 12 {
		t.Fatalf("LastSeq = %d, want 12", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the sequence space continues from the replicated records.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := replayAll(t, w2, 0); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("replay after replicated appends: %v", got)
	}
}

func TestEpochFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Fence(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	path := filepath.Join(dir, epochFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[10] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := OpenWAL(dir, WALOptions{}); !errors.As(err, &ce) {
		t.Fatalf("corrupt epoch file: got %v, want *CorruptError", err)
	}
}
