package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Container format — the on-disk envelope for engine snapshots.
//
//	offset  size  field
//	0       6     magic "EFSNAP"
//	6       2     format version (uint16, little-endian)
//	8       8     payload length (uint64, little-endian)
//	16      4     CRC-32C of the payload (uint32, little-endian)
//	20      n     payload
//
// The header is checked before a single payload byte is interpreted, so
// a truncated, bit-flipped or foreign file is rejected with a typed
// error instead of a cryptic decode failure deep inside gob.

var containerMagic = [6]byte{'E', 'F', 'S', 'N', 'A', 'P'}

const (
	containerHeaderSize = 20
	// ContainerHeaderSize is the fixed byte length of the container
	// header — the offset where the payload begins. Callers that append
	// out-of-band data after the payload (the v2 columnar snapshot
	// section) use it to compute absolute file offsets.
	ContainerHeaderSize = containerHeaderSize
	// MaxPayloadBytes bounds a declared payload length so a corrupt
	// header cannot drive an allocation of hundreds of gigabytes.
	MaxPayloadBytes = int64(1) << 32
)

// WriteContainer writes payload to w wrapped in the versioned,
// checksummed container envelope.
func WriteContainer(w io.Writer, version uint16, payload []byte) error {
	var hdr [containerHeaderSize]byte
	copy(hdr[:6], containerMagic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], Checksum(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("durable: write container header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("durable: write container payload: %w", err)
	}
	return nil
}

// ReadContainer reads and verifies a container from r. name labels the
// source in errors (a path, or "<stream>"). maxVersion is the newest
// format version the caller understands; newer files yield a
// *VersionError so an old binary never misreads a future layout.
// Trailing bytes after the payload are corruption (a concatenated or
// doubly-written file) and are rejected.
func ReadContainer(r io.Reader, name string, maxVersion uint16) (version uint16, payload []byte, err error) {
	var hdr [containerHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, &CorruptError{Path: name, Offset: int64(n),
				Detail: "container header", Err: ErrTruncated}
		}
		return 0, nil, fmt.Errorf("durable: %s: read header: %w", name, err)
	}
	if [6]byte(hdr[:6]) != containerMagic {
		return 0, nil, &CorruptError{Path: name, Offset: 0,
			Detail: "container magic", Err: ErrBadMagic}
	}
	version = binary.LittleEndian.Uint16(hdr[6:8])
	if version == 0 || version > maxVersion {
		return 0, nil, &VersionError{Path: name, Got: version, Max: maxVersion}
	}
	plen := binary.LittleEndian.Uint64(hdr[8:16])
	if int64(plen) < 0 || int64(plen) > MaxPayloadBytes {
		return 0, nil, &CorruptError{Path: name, Offset: 8,
			Detail: "container payload length", Err: ErrChecksum}
	}
	want := binary.LittleEndian.Uint32(hdr[16:20])
	payload = make([]byte, plen)
	n, err = io.ReadFull(r, payload)
	if err != nil {
		return 0, nil, &CorruptError{Path: name, Offset: containerHeaderSize + int64(n),
			Detail: "container payload", Err: ErrTruncated}
	}
	if got := Checksum(payload); got != want {
		return 0, nil, &CorruptError{Path: name, Offset: containerHeaderSize,
			Detail: "container payload", Err: ErrChecksum}
	}
	// One extra readable byte past the payload means the file holds more
	// than its header declares — reject rather than silently ignore.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return 0, nil, &CorruptError{Path: name, Offset: containerHeaderSize + int64(plen),
			Detail: "trailing bytes after payload", Err: ErrChecksum}
	}
	return version, payload, nil
}

// ReadContainerPrefix reads and verifies a container at the head of r
// but — unlike ReadContainer — tolerates bytes after the payload,
// returning the offset where they begin. It exists for the v2 snapshot
// layout, where a columnar section follows the gob container in the
// same file; plain v1 readers keep using ReadContainer, which still
// rejects trailing garbage.
func ReadContainerPrefix(r io.Reader, name string, maxVersion uint16) (version uint16, payload []byte, end int64, err error) {
	var hdr [containerHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, 0, &CorruptError{Path: name, Offset: int64(n),
				Detail: "container header", Err: ErrTruncated}
		}
		return 0, nil, 0, fmt.Errorf("durable: %s: read header: %w", name, err)
	}
	if [6]byte(hdr[:6]) != containerMagic {
		return 0, nil, 0, &CorruptError{Path: name, Offset: 0,
			Detail: "container magic", Err: ErrBadMagic}
	}
	version = binary.LittleEndian.Uint16(hdr[6:8])
	if version == 0 || version > maxVersion {
		return 0, nil, 0, &VersionError{Path: name, Got: version, Max: maxVersion}
	}
	plen := binary.LittleEndian.Uint64(hdr[8:16])
	if int64(plen) < 0 || int64(plen) > MaxPayloadBytes {
		return 0, nil, 0, &CorruptError{Path: name, Offset: 8,
			Detail: "container payload length", Err: ErrChecksum}
	}
	want := binary.LittleEndian.Uint32(hdr[16:20])
	payload = make([]byte, plen)
	n, err = io.ReadFull(r, payload)
	if err != nil {
		return 0, nil, 0, &CorruptError{Path: name, Offset: containerHeaderSize + int64(n),
			Detail: "container payload", Err: ErrTruncated}
	}
	if got := Checksum(payload); got != want {
		return 0, nil, 0, &CorruptError{Path: name, Offset: containerHeaderSize,
			Detail: "container payload", Err: ErrChecksum}
	}
	return version, payload, containerHeaderSize + int64(plen), nil
}

// ReadContainerFile opens path and reads its container.
func ReadContainerFile(path string, maxVersion uint16) (uint16, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	return ReadContainer(f, path, maxVersion)
}

// WriteContainerFile atomically replaces path with a container around
// payload (see AtomicWriteFile for the crash-safety argument).
func WriteContainerFile(path string, version uint16, payload []byte, sync bool) error {
	buf := make([]byte, 0, containerHeaderSize+len(payload))
	var hdr [containerHeaderSize]byte
	copy(hdr[:6], containerMagic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], Checksum(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return AtomicWriteFile(path, buf, sync)
}
