package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// collect drains an iterator into (seq, payload-copy) pairs.
func collect(t *testing.T, it *WALIterator) (seqs []uint64, payloads []string) {
	t.Helper()
	defer it.Close()
	for {
		seq, payload, err := it.Next()
		if err == io.EOF {
			return seqs, payloads
		}
		if err != nil {
			t.Fatalf("iterator: %v", err)
		}
		seqs = append(seqs, seq)
		payloads = append(payloads, string(payload))
	}
}

// openSmallSegments opens a WAL whose tiny segments force several
// rotations for the given record count.
func openSmallSegments(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReadFromMidSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNever}) // one big segment
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 20)

	// from = 7 lands in the middle of the single segment: the head must
	// be skipped, nothing repeated, nothing missing.
	it, err := w.ReadFrom(7)
	if err != nil {
		t.Fatal(err)
	}
	seqs, payloads := collect(t, it)
	if len(seqs) != 14 || seqs[0] != 7 || seqs[13] != 20 {
		t.Fatalf("mid-segment read: seqs %v", seqs)
	}
	if payloads[0] != "record-0006" || payloads[13] != "record-0019" {
		t.Fatalf("mid-segment read: payloads %v", payloads)
	}
}

func TestReadFromSpansSegments(t *testing.T) {
	dir := t.TempDir()
	w := openSmallSegments(t, dir)
	defer w.Close()
	appendN(t, w, 0, 30)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}

	// Start inside the second segment so the iterator crosses at least
	// one sealed→sealed and one sealed→active boundary.
	from := segs[1].firstSeq + 1
	it, err := w.ReadFrom(from)
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, it)
	if uint64(len(seqs)) != 30-from+1 {
		t.Fatalf("got %d records from %d, want %d", len(seqs), from, 30-from+1)
	}
	for i, s := range seqs {
		if s != from+uint64(i) {
			t.Fatalf("gap at %d: %v", i, seqs)
		}
	}
}

func TestReadFromPastLastSeq(t *testing.T) {
	dir := t.TempDir()
	w := openSmallSegments(t, dir)
	defer w.Close()
	appendN(t, w, 0, 5)

	// One past LastSeq: a valid position (a caught-up follower), yielding
	// an immediately-exhausted iterator — not an error.
	it, err := w.ReadFrom(w.LastSeq() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.Next(); err != io.EOF {
		t.Fatalf("past-LastSeq Next: got %v, want io.EOF", err)
	}
	it.Close()

	// Far past is the same story.
	it, err = w.ReadFrom(w.LastSeq() + 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.Next(); err != io.EOF {
		t.Fatalf("far-past Next: got %v, want io.EOF", err)
	}
	it.Close()
}

func TestReadFromCompacted(t *testing.T) {
	dir := t.TempDir()
	w := openSmallSegments(t, dir)
	defer w.Close()
	appendN(t, w, 0, 30)
	if err := w.TruncateThrough(15); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldest := segs[0].firstSeq
	if oldest == 1 {
		t.Fatal("truncation removed nothing; test needs smaller segments")
	}

	if _, err := w.ReadFrom(oldest - 1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("read below oldest: got %v, want ErrCompacted", err)
	}
	// The oldest surviving record is still readable.
	it, err := w.ReadFrom(oldest)
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, it)
	if seqs[0] != oldest || seqs[len(seqs)-1] != 30 {
		t.Fatalf("read from oldest: %v", seqs)
	}
}

func TestReadFromIgnoresConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w := openSmallSegments(t, dir)
	defer w.Close()
	appendN(t, w, 0, 10)

	it, err := w.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	// Records appended after ReadFrom are beyond the iterator's promise.
	appendN(t, w, 10, 10)
	seqs, _ := collect(t, it)
	if len(seqs) != 10 || seqs[9] != 10 {
		t.Fatalf("iterator leaked past its snapshot: %v", seqs)
	}
	// A fresh iterator picks up where the old one stopped.
	it2, err := w.ReadFrom(11)
	if err != nil {
		t.Fatal(err)
	}
	seqs2, _ := collect(t, it2)
	if len(seqs2) != 10 || seqs2[0] != 11 || seqs2[9] != 20 {
		t.Fatalf("resume read: %v", seqs2)
	}
}

func TestRecordReaderRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	for i := 1; i <= 5; i++ {
		wire.Write(MarshalRecord(uint64(i), []byte(fmt.Sprintf("payload-%d", i))))
	}
	rr := NewRecordReader(bytes.NewReader(wire.Bytes()))
	for i := 1; i <= 5; i++ {
		seq, payload, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(i) || string(payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d: seq %d payload %q", i, seq, payload)
		}
	}
	if _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

func TestRecordReaderTornAndCorrupt(t *testing.T) {
	rec := MarshalRecord(7, []byte("payload"))

	// Cut mid-record: a torn tail on the wire, not corruption.
	rr := NewRecordReader(bytes.NewReader(rec[:len(rec)-3]))
	if _, _, err := rr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn record: got %v, want io.ErrUnexpectedEOF", err)
	}
	// Cut mid-header too.
	rr = NewRecordReader(bytes.NewReader(rec[:recordHeaderSize-2]))
	if _, _, err := rr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header: got %v, want io.ErrUnexpectedEOF", err)
	}

	// A flipped payload bit is corruption.
	bad := append([]byte(nil), rec...)
	bad[recordHeaderSize] ^= 0x01
	rr = NewRecordReader(bytes.NewReader(bad))
	var ce *CorruptError
	if _, _, err := rr.Next(); !errors.As(err, &ce) || !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt record: got %v, want *CorruptError(ErrChecksum)", err)
	}
}

func TestReadFromZero(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.ReadFrom(0); err == nil {
		t.Fatal("ReadFrom(0) should be rejected")
	}
}
