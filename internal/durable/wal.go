package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Write-ahead log. Records are appended to segment files named
// wal-<firstSeq, 16 hex digits>.log; a segment seals when it grows past
// SegmentBytes and a new one opens. Each record is self-checking:
//
//	offset  size  field
//	0       4     payload length (uint32, little-endian)
//	4       4     CRC-32C over seq||payload (uint32, little-endian)
//	8       8     sequence number (uint64, little-endian)
//	16      n     payload
//
// Sequence numbers start at 1 and increase by exactly 1 per record
// across segments, so replay can both detect gaps and resume from the
// sequence a snapshot already covers.
//
// Corruption policy: a record that ends early (short header or short
// payload) in the FINAL segment is a torn write — the expected residue
// of a crash mid-append. It is truncated away at open and reported in
// ReplayStats. Everything else — a checksum mismatch anywhere, a torn
// record that is not last, a gap in sequence numbers — is real damage
// and surfaces as a *CorruptError; the caller must fail loudly rather
// than serve a state with silent holes in it.

// recordHeaderSize is the fixed prefix of every WAL record.
const recordHeaderSize = 16

// MaxRecordBytes bounds one record's payload; a longer declared length
// is treated as a corrupt header.
const MaxRecordBytes = 64 << 20

// SyncPolicy selects when appended records are fsynced to stable
// storage, trading acknowledgement latency for durability.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// durable before Append returns. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (WALOptions.SyncEvery):
	// an acknowledged record may be lost if the machine dies within one
	// interval. A process crash (kill -9) alone loses nothing — the
	// bytes are already in the page cache.
	SyncInterval
	// SyncNever leaves flushing to the OS entirely.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -fsync flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
}

// WALOptions configures OpenWAL. The zero value is usable: 4 MiB
// segments, SyncAlways.
type WALOptions struct {
	// SegmentBytes seals a segment once it grows past this (default 4 MiB).
	SegmentBytes int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the flush period under SyncInterval (default 50ms).
	SyncEvery time.Duration
	// InitialSeq is the sequence the first append receives when the log
	// is brand new (no segments on disk). Zero means 1. A replication
	// follower bootstrapping from a snapshot covering sequence S opens
	// its log with InitialSeq S+1 so its records line up with the
	// leader's. Ignored when segments already exist.
	InitialSeq uint64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	return o
}

// ReplayStats reports what opening a WAL found on disk.
type ReplayStats struct {
	// Segments is the number of segment files present at open.
	Segments int
	// Records is the number of valid records found at open.
	Records int
	// LastSeq is the highest sequence number on disk (0 when empty).
	LastSeq uint64
	// TornTail reports that the final segment ended in a partial record,
	// which was truncated away.
	TornTail bool
	// TruncatedBytes is the size of the discarded torn tail.
	TruncatedBytes int64
}

// WAL is an append-only, segmented, checksummed log. All methods are
// safe for concurrent use; appends are serialised internally.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes written to the active segment
	segFirst uint64   // first sequence in the active segment
	segRecs  int      // records in the active segment
	nextSeq  uint64
	dirty    bool // records appended since the last fsync
	closed   bool
	// epoch and fenced are the persisted replication-epoch state (see
	// epoch.go). A fenced log rejects every append with *FencedError.
	epoch  uint64
	fenced bool

	stats ReplayStats

	stopSync chan struct{} // closes the SyncInterval flusher
	syncDone chan struct{}
}

// OpenWAL opens (creating if needed) the log in dir, scans and
// validates every existing record, truncates a torn tail off the final
// segment, and readies the log for appends after the highest sequence
// found. Damage other than a torn tail aborts the open with a typed
// error.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open WAL: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, nextSeq: 1}
	var err error
	if w.epoch, w.fenced, err = loadEpoch(filepath.Join(dir, epochFileName)); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w.stats.Segments = len(segs)
	// Validate every segment; the last may have a torn tail. expect=0 for
	// the first segment: a snapshot may have truncated earlier ones, so
	// the log legitimately starts past sequence 1.
	var expect uint64
	for i, seg := range segs {
		last := i == len(segs)-1
		res, err := scanSegment(seg.path, seg.firstSeq, expect, last, nil)
		if err != nil {
			return nil, err
		}
		if res.lastSeq > 0 {
			expect = res.lastSeq + 1
		}
		w.stats.Records += res.records
		if res.lastSeq > 0 {
			w.nextSeq = res.lastSeq + 1
			w.stats.LastSeq = res.lastSeq
		} else if i == 0 {
			// Empty log whose first segment starts past 1 (post-truncation).
			w.nextSeq = seg.firstSeq
		}
		if res.tornAt >= 0 {
			w.stats.TornTail = true
			w.stats.TruncatedBytes = res.size - res.tornAt
			if err := os.Truncate(seg.path, res.tornAt); err != nil {
				return nil, fmt.Errorf("durable: truncate torn WAL tail %s: %w", seg.path, err)
			}
		}
	}
	// Reopen the last segment for appending, or start a fresh one.
	if len(segs) > 0 {
		seg := segs[len(segs)-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: open WAL segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: stat WAL segment: %w", err)
		}
		w.f, w.size, w.segFirst = f, st.Size(), seg.firstSeq
		w.segRecs = int(w.nextSeq - seg.firstSeq)
	} else {
		if opts.InitialSeq > 1 {
			w.nextSeq = opts.InitialSeq
		}
		if err := w.openSegmentLocked(); err != nil {
			return nil, err
		}
	}
	if opts.Sync == SyncInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// Stats returns what the open-time scan found.
func (w *WAL) Stats() ReplayStats { return w.stats }

// LastSeq returns the sequence of the most recent record (0 if none).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Dir returns the directory the log lives in.
func (w *WAL) Dir() string { return w.dir }

// Append writes one record and returns its sequence number. Under
// SyncAlways the record is on stable storage when Append returns; see
// SyncPolicy for the weaker modes. An error means the record must be
// treated as not written: the caller should refuse the update rather
// than acknowledge something the log may not hold.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.fenced {
		return 0, &FencedError{Op: "append", Epoch: w.epoch}
	}
	seq := w.nextSeq
	if err := w.appendLocked(payload); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendReplicated writes one record a follower received from its
// leader's tail stream, keeping the leader's sequence number. seq must
// be exactly the next sequence — replication delivers records in order
// with no gaps, so anything else means the stream and the local log
// have diverged and the follower must stop rather than fabricate
// history. Fsync semantics match Append.
func (w *WAL) AppendReplicated(seq uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.fenced {
		return &FencedError{Op: "append", Epoch: w.epoch}
	}
	if seq != w.nextSeq {
		return fmt.Errorf("durable: replicated append out of order: got seq %d, want %d", seq, w.nextSeq)
	}
	return w.appendLocked(payload)
}

// appendLocked writes the record for nextSeq and advances it. Caller
// holds w.mu and has checked closed/fenced.
func (w *WAL) appendLocked(payload []byte) error {
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("durable: WAL record too large (%d bytes)", len(payload))
	}
	if w.size > 0 && w.size+recordHeaderSize+int64(len(payload)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	rec := encodeRecord(w.nextSeq, payload)
	if _, err := w.f.Write(rec); err != nil {
		// The segment may now hold a partial record; that is exactly the
		// torn-tail case the next open truncates away.
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	w.size += int64(len(rec))
	w.segRecs++
	w.nextSeq++
	switch w.opts.Sync {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: WAL fsync: %w", err)
		}
	case SyncInterval:
		w.dirty = true
	}
	return nil
}

// Epoch returns the persisted replication epoch (0 for a log that never
// took part in replication).
func (w *WAL) Epoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Fenced reports whether the log has been fenced by a newer epoch.
func (w *WAL) Fenced() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fenced
}

// Fence marks the log deposed as of epoch, persistently: every later
// append fails with *FencedError, across restarts too. epoch must
// exceed the current epoch (re-fencing at the already-fenced epoch is a
// no-op); fencing at or below the current epoch of an unfenced log is
// refused — a stale fence request must not depose a current leader.
func (w *WAL) Fence(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.fenced && epoch <= w.epoch {
		return nil // already fenced at least this hard
	}
	if epoch <= w.epoch {
		return &FencedError{Op: "fence", Epoch: w.epoch}
	}
	if err := writeEpoch(filepath.Join(w.dir, epochFileName), epoch, true); err != nil {
		return err
	}
	w.epoch, w.fenced = epoch, true
	return nil
}

// BumpEpoch advances the epoch by one and clears any fence — the
// promotion step: the node now owns the sequence space under the new
// epoch. The new epoch is persisted before it takes effect.
func (w *WAL) BumpEpoch() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	next := w.epoch + 1
	if err := writeEpoch(filepath.Join(w.dir, epochFileName), next, false); err != nil {
		return 0, err
	}
	w.epoch, w.fenced = next, false
	return next, nil
}

// AdoptEpoch raises the log to a leader's (strictly newer) epoch — the
// follower step when a tail stream reports a higher epoch than the
// follower has seen. Adopting the current epoch is a no-op; adopting a
// LOWER epoch is refused with *FencedError, which is exactly how a
// follower rejects a deposed leader's stream.
func (w *WAL) AdoptEpoch(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if epoch == w.epoch {
		return nil
	}
	if epoch < w.epoch {
		return &FencedError{Op: "tail", Epoch: w.epoch}
	}
	if err := writeEpoch(filepath.Join(w.dir, epochFileName), epoch, false); err != nil {
		return err
	}
	w.epoch, w.fenced = epoch, false
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.dirty = false
	return w.f.Sync()
}

// Replay streams every record with sequence > after, in order, to fn.
// It re-reads the segment files, so it reflects exactly what survived
// on disk. A fn error aborts the replay and is returned unchanged.
func (w *WAL) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	// Replay must not race appends; hold the lock for the scan. Replay
	// runs at recovery time, before serving starts, so this is not a
	// contended path.
	defer w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	var expect uint64
	for i, seg := range segs {
		res, err := scanSegment(seg.path, seg.firstSeq, expect, i == len(segs)-1, func(seq uint64, payload []byte) error {
			if seq <= after {
				return nil
			}
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
		if res.lastSeq > 0 {
			expect = res.lastSeq + 1
		}
	}
	return nil
}

// TruncateThrough removes segments whose records are all covered by a
// snapshot at seq, reclaiming disk. If every record on disk is covered,
// the active segment is sealed and a fresh one opened first so the
// invariant "the active segment holds only live records" is preserved.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.segRecs > 0 && w.nextSeq-1 <= seq {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	removed := false
	for i, s := range segs {
		// A sealed segment's records end where the next segment begins.
		var lastInSeg uint64
		if i+1 < len(segs) {
			lastInSeg = segs[i+1].firstSeq - 1
		} else {
			break // active segment: never removed here
		}
		if lastInSeg <= seq && s.firstSeq <= lastInSeg {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("durable: remove WAL segment: %w", err)
			}
			removed = true
		}
	}
	if removed {
		return syncDir(w.dir)
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Further appends fail with
// ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	stop := w.stopSync
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.syncDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.f != nil {
		if serr := w.f.Sync(); serr != nil {
			err = serr
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}

// syncLoop is the SyncInterval flusher.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty {
				w.f.Sync()
				w.dirty = false
			}
			w.mu.Unlock()
		}
	}
}

// rotateLocked seals the active segment (fsync + close) and opens a new
// one starting at nextSeq. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: seal WAL segment: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("durable: seal WAL segment: %w", err)
		}
		w.f = nil
	}
	return w.openSegmentLocked()
}

// openSegmentLocked creates the segment file for nextSeq.
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.dir, segmentName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create WAL segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.size, w.segFirst, w.segRecs = f, 0, w.nextSeq, 0
	return nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

type segmentInfo struct {
	path     string
	firstSeq uint64
}

// listSegments returns the segment files in dir in sequence order.
func listSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list WAL segments: %w", err)
	}
	var segs []segmentInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		first, perr := strconv.ParseUint(hexPart, 16, 64)
		if perr != nil || len(hexPart) != 16 {
			return nil, &CorruptError{Path: filepath.Join(dir, name), Offset: 0,
				Detail: "segment file name", Err: ErrBadMagic}
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanResult reports one segment's scan.
type scanResult struct {
	records int
	lastSeq uint64
	size    int64
	tornAt  int64 // byte offset of a torn tail, -1 if none
}

// scanSegment validates every record in one segment file, optionally
// delivering payloads to fn. expect is the sequence the first record
// must carry (0 to accept the segment's declared first sequence —
// used when earlier segments were truncated away by a snapshot).
// In the final segment (last=true) a record cut short by EOF is
// reported via tornAt instead of an error; any other damage is a
// *CorruptError.
func scanSegment(path string, firstSeq, expect uint64, last bool, fn func(uint64, []byte) error) (scanResult, error) {
	res := scanResult{tornAt: -1}
	f, err := os.Open(path)
	if err != nil {
		return res, fmt.Errorf("durable: open WAL segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return res, fmt.Errorf("durable: stat WAL segment: %w", err)
	}
	res.size = st.Size()

	if expect == 0 {
		expect = firstSeq
	} else if firstSeq != expect {
		return res, &CorruptError{Path: path, Offset: 0, Detail: "segment sequence",
			Err: fmt.Errorf("segment starts at seq %d, want %d: %w", firstSeq, expect, ErrTruncated)}
	}
	r := &offsetReader{r: f}
	var hdr [recordHeaderSize]byte
	for {
		start := r.off
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return res, nil // clean end
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return tornOrCorrupt(path, start, "record header", last, &res)
		}
		if err != nil {
			return res, fmt.Errorf("durable: read WAL segment %s: %w", path, err)
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if int64(plen) > MaxRecordBytes {
			// An over-large length in the final position is indistinguishable
			// from a torn header; mid-file it is corruption either way.
			return res, &CorruptError{Path: path, Offset: start,
				Detail: "record length", Err: ErrChecksum}
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				return tornOrCorrupt(path, start, "record payload", last, &res)
			}
			return res, fmt.Errorf("durable: read WAL segment %s: %w", path, err)
		}
		if got := recordChecksum(seq, payload); got != crc {
			return res, &CorruptError{Path: path, Offset: start,
				Detail: "record checksum", Err: ErrChecksum}
		}
		if seq != expect {
			return res, &CorruptError{Path: path, Offset: start, Detail: "record sequence",
				Err: fmt.Errorf("found seq %d, want %d: %w", seq, expect, ErrChecksum)}
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return res, err
			}
		}
		res.records++
		res.lastSeq = seq
		expect++
	}
}

// tornOrCorrupt resolves a short read at offset start: a tolerated torn
// tail in the final segment, a typed corruption error anywhere else.
func tornOrCorrupt(path string, start int64, what string, last bool, res *scanResult) (scanResult, error) {
	if last {
		res.tornAt = start
		return *res, nil
	}
	return *res, &CorruptError{Path: path, Offset: start, Detail: what, Err: ErrTruncated}
}

// offsetReader tracks the byte offset of an underlying reader so errors
// can point at the damaged region.
type offsetReader struct {
	r   io.Reader
	off int64
}

func (o *offsetReader) Read(p []byte) (int, error) {
	n, err := o.r.Read(p)
	o.off += int64(n)
	return n, err
}

func encodeRecord(seq uint64, payload []byte) []byte {
	rec := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], recordChecksum(seq, payload))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	copy(rec[recordHeaderSize:], payload)
	return rec
}

// recordChecksum covers the sequence number and the payload, so a
// record copied to the wrong position fails its check.
func recordChecksum(seq uint64, payload []byte) uint32 {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seq)
	crc := crc32.Update(0, castagnoli, s[:])
	return crc32.Update(crc, castagnoli, payload)
}
