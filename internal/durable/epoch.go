package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// Replication epochs fence the WAL's sequence space across leader
// change-overs. Every data directory carries a monotonically increasing
// epoch; promoting a follower bumps it, and any node observing a higher
// epoch than its own knows it has been deposed: its appends (and the
// tail stream it serves) must be rejected so a stale leader can never
// extend a sequence range the new leader now owns.
//
// The epoch lives in a tiny self-checking file next to the WAL segments:
//
//	offset  size  field
//	0       8     magic "EFEPOCH\x01"
//	8       8     epoch (uint64, little-endian)
//	16      1     flags (bit 0: fenced)
//	17      4     CRC-32C over bytes 0..16 (uint32, little-endian)
//
// A missing file means epoch 0, not fenced — the state of every log
// written before replication existed.

// epochFileName is the epoch state file inside a WAL directory.
const epochFileName = "epoch"

var epochMagic = [8]byte{'E', 'F', 'E', 'P', 'O', 'C', 'H', 1}

const epochFileSize = 21

// FencedError reports an operation rejected because this node's WAL has
// been fenced by a newer replication epoch: a follower was promoted and
// now owns the sequence space, so the deposed node must not append (or
// serve a tail stream) lest two histories diverge under the same
// sequence numbers. Recovery is operational — re-provision the node as a
// follower of the new leader — not a retry.
type FencedError struct {
	// Op names the rejected operation: "append", "tail", "fence".
	Op string
	// Epoch is the replication epoch this node is fenced at.
	Epoch uint64
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("durable: %s rejected: WAL fenced at replication epoch %d (a newer leader exists)",
		e.Op, e.Epoch)
}

// ErrCompacted reports a WAL read starting below the oldest record on
// disk: the requested range was truncated into a snapshot. A replication
// follower hitting this must re-bootstrap from the snapshot instead of
// tailing.
var ErrCompacted = errors.New("durable: requested WAL records already compacted into a snapshot")

// loadEpoch reads the epoch file, returning (0, false) when absent.
func loadEpoch(path string) (epoch uint64, fenced bool, err error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("durable: read epoch file: %w", err)
	}
	if len(b) != epochFileSize {
		return 0, false, &CorruptError{Path: path, Offset: int64(len(b)),
			Detail: "epoch file size", Err: ErrTruncated}
	}
	if [8]byte(b[0:8]) != epochMagic {
		return 0, false, &CorruptError{Path: path, Offset: 0,
			Detail: "epoch file magic", Err: ErrBadMagic}
	}
	if got := Checksum(b[0:17]); got != binary.LittleEndian.Uint32(b[17:21]) {
		return 0, false, &CorruptError{Path: path, Offset: 17,
			Detail: "epoch file checksum", Err: ErrChecksum}
	}
	return binary.LittleEndian.Uint64(b[8:16]), b[16]&1 != 0, nil
}

// writeEpoch persists the epoch state atomically and durably: a crash
// leaves either the old epoch or the new one, never a torn file.
func writeEpoch(path string, epoch uint64, fenced bool) error {
	var b [epochFileSize]byte
	copy(b[0:8], epochMagic[:])
	binary.LittleEndian.PutUint64(b[8:16], epoch)
	if fenced {
		b[16] = 1
	}
	binary.LittleEndian.PutUint32(b[17:21], Checksum(b[0:17]))
	return AtomicWriteFile(path, b[:], true)
}
