package durable

import (
	"errors"
	"io"
	"os"
)

// Fault-injection primitives for the recovery test suite. Each wraps an
// io.Writer or io.Reader and manufactures one concrete failure mode a
// production filesystem can produce: a write error mid-stream (disk
// full, I/O error), a torn write (power cut after a partial flush), a
// truncated file, and silent bit rot. The durability layer must turn
// every one of these into either a full recovery or a typed, loud
// error — the tests in fault_test.go and internal/core drive that
// contract.

// ErrInjected is the error fault writers return when they trip.
var ErrInjected = errors.New("durable: injected fault")

// FailingWriter passes writes through until Limit bytes have been
// written, then fails every subsequent write with Err (ErrInjected if
// nil) — a disk that fills or errors mid-stream.
type FailingWriter struct {
	W       io.Writer
	Limit   int64 // bytes accepted before failing
	Err     error // error to return; nil means ErrInjected
	written int64
}

func (f *FailingWriter) Write(p []byte) (int, error) {
	errv := f.Err
	if errv == nil {
		errv = ErrInjected
	}
	if f.written >= f.Limit {
		return 0, errv
	}
	if rem := f.Limit - f.written; int64(len(p)) > rem {
		n, _ := f.W.Write(p[:rem])
		f.written += int64(n)
		return n, errv
	}
	n, err := f.W.Write(p)
	f.written += int64(n)
	return n, err
}

// TornWriter simulates a crash after a partial flush: the first Limit
// bytes reach the underlying writer, everything after silently
// vanishes, yet every Write reports full success — exactly what a
// process sees when the machine dies with data still in a volatile
// cache. The bytes that "made it to disk" are whatever W received.
type TornWriter struct {
	W       io.Writer
	Limit   int64
	written int64
}

func (t *TornWriter) Write(p []byte) (int, error) {
	if rem := t.Limit - t.written; rem > 0 {
		take := int64(len(p))
		if take > rem {
			take = rem
		}
		if _, err := t.W.Write(p[:take]); err != nil {
			return 0, err
		}
		t.written += take
	}
	return len(p), nil // caller believes everything was written
}

// FlipReader streams R unchanged except for one byte: the byte at
// Offset is XORed with Mask — silent single-byte rot. A zero Mask flips
// nothing; use 0xFF to invert the byte.
type FlipReader struct {
	R      io.Reader
	Offset int64
	Mask   byte
	pos    int64
}

func (f *FlipReader) Read(p []byte) (int, error) {
	n, err := f.R.Read(p)
	if n > 0 && f.Offset >= f.pos && f.Offset < f.pos+int64(n) {
		p[f.Offset-f.pos] ^= f.Mask
	}
	f.pos += int64(n)
	return n, err
}

// TruncateReader delivers only the first Limit bytes of R and then
// reports EOF — a file that lost its tail.
type TruncateReader struct {
	R     io.Reader
	Limit int64
	pos   int64
}

func (t *TruncateReader) Read(p []byte) (int, error) {
	if t.pos >= t.Limit {
		return 0, io.EOF
	}
	if rem := t.Limit - t.pos; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := t.R.Read(p)
	t.pos += int64(n)
	return n, err
}

// ErrorAfterNWriter fails the (N+1)th call to Write with Err
// (ErrInjected if nil), regardless of byte counts — for exercising
// failures at exact operation boundaries such as "header written,
// payload not".
type ErrorAfterNWriter struct {
	W     io.Writer
	N     int
	Err   error
	calls int
}

func (e *ErrorAfterNWriter) Write(p []byte) (int, error) {
	if e.calls >= e.N {
		errv := e.Err
		if errv == nil {
			errv = ErrInjected
		}
		return 0, errv
	}
	e.calls++
	return e.W.Write(p)
}

// CorruptFileByte XOR-flips one byte of a file in place — the on-disk
// analogue of FlipReader for tests that damage real snapshot or WAL
// files between runs.
func CorruptFileByte(path string, offset int64, mask byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= mask
	_, err = f.WriteAt(b[:], offset)
	return err
}
