package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendN(t *testing.T, w *WAL, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
	}
}

func replayAll(t *testing.T, w *WAL, after uint64) []string {
	t.Helper()
	var got []string
	err := w.Replay(after, func(seq uint64, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st := w2.Stats()
	if st.Records != 10 || st.LastSeq != 10 || st.TornTail {
		t.Fatalf("stats after reopen: %+v", st)
	}
	got := replayAll(t, w2, 0)
	if len(got) != 10 || got[0] != "record-0000" || got[9] != "record-0009" {
		t.Fatalf("replay: %v", got)
	}
	// Replay after a snapshot point skips covered records.
	if got := replayAll(t, w2, 7); len(got) != 3 || got[0] != "record-0007" {
		t.Fatalf("partial replay: %v", got)
	}
	// Appends continue the sequence.
	seq, err := w2.Append([]byte("record-0010"))
	if err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq %d, %v", seq, err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected many segments, got %d", len(segs))
	}
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := replayAll(t, w2, 0); len(got) != 20 || got[19] != "record-0019" {
		t.Fatalf("replay across segments: %d records", len(got))
	}
}

func TestWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.Close()

	// Simulate a crash mid-append: chop bytes off the final record.
	segs, _ := listSegments(dir)
	path := segs[len(segs)-1].path
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-4); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer w2.Close()
	rs := w2.Stats()
	if !rs.TornTail || rs.Records != 4 || rs.LastSeq != 4 {
		t.Fatalf("stats: %+v", rs)
	}
	if got := replayAll(t, w2, 0); len(got) != 4 {
		t.Fatalf("replay after torn tail: %v", got)
	}
	// The sequence resumes where the surviving records end: the torn
	// record was never acknowledged, so its sequence is reused.
	seq, err := w2.Append([]byte("replacement"))
	if err != nil || seq != 5 {
		t.Fatalf("append after torn tail: seq %d, %v", seq, err)
	}
}

func TestWALBitFlipFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 6)
	w.Close()

	segs, _ := listSegments(dir)
	// Flip a payload byte of the SECOND record: mid-file corruption, not
	// a torn tail, must abort the open with a typed checksum error.
	off := int64(recordHeaderSize + len("record-0000") + recordHeaderSize + 3)
	if err := CorruptFileByte(segs[0].path, off, 0x01); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(dir, WALOptions{})
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != recordHeaderSize+int64(len("record-0000")) {
		t.Fatalf("corrupt error context: %+v", err)
	}
}

func TestWALCorruptionInSealedSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10) // several sealed segments
	w.Close()

	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need sealed segments, got %d", len(segs))
	}
	// Truncating a NON-final segment is damage, not a torn tail.
	st, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestWALTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 12)
	before, _ := listSegments(dir)
	if err := w.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(before) {
		t.Fatalf("no segments reclaimed: %d -> %d", len(before), len(after))
	}
	// Records past the snapshot point must survive.
	got := replayAll(t, w, 6)
	if len(got) != 6 || got[0] != "record-0006" || got[5] != "record-0011" {
		t.Fatalf("post-truncation replay: %v", got)
	}
	w.Close()

	// Reopen after truncation: sequences resume correctly even though
	// the log no longer starts at 1.
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	seq, err := w2.Append([]byte("record-0012"))
	if err != nil || seq != 13 {
		t.Fatalf("append after truncate+reopen: seq %d, %v", seq, err)
	}
}

func TestWALTruncateThroughEverything(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	// Snapshot covers everything: the active segment rotates and the
	// sealed one is removed; nothing replays.
	if err := w.TruncateThrough(5); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, w, 5); len(got) != 0 {
		t.Fatalf("replay after full truncation: %v", got)
	}
	seq, err := w.Append([]byte("next"))
	if err != nil || seq != 6 {
		t.Fatalf("append after full truncation: seq %d, %v", seq, err)
	}
	w.Close()

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := replayAll(t, w2, 5); len(got) != 1 || got[0] != "next" {
		t.Fatalf("replay after reopen: %v", got)
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, WALOptions{Sync: pol, SyncEvery: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 0, 8)
			if pol == SyncInterval {
				time.Sleep(20 * time.Millisecond) // let the flusher run
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if got := replayAll(t, w2, 0); len(got) != 8 {
				t.Fatalf("%v: lost records: %d", pol, len(got))
			}
		})
	}
}

func TestWALClosedOperationsFail(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed WAL: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed WAL: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("%q: %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestWALForeignFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-notanumber.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign segment name: %v", err)
	}
}
