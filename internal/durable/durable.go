// Package durable provides the crash-safety substrate for the online
// engine: a versioned, checksummed container format for snapshots, a
// segmented write-ahead log with configurable fsync policy, atomic
// file replacement, and fault-injection helpers for testing recovery.
//
// The package is deliberately generic — it moves opaque byte payloads
// and knows nothing about engines or papers. internal/core layers the
// engine snapshot format and update records on top, internal/serve and
// cmd/expertserve wire the lifecycle (readiness, periodic snapshots,
// graceful shutdown).
//
// Every failure mode is a typed error: callers distinguish a truncated
// file (ErrTruncated), a checksum mismatch (ErrChecksum), a foreign
// file (ErrBadMagic) and a future format (VersionError) with errors.Is
// / errors.As, and can decide to fail loudly instead of serving partial
// state. Nothing in this package papers over corruption silently; the
// single deliberate exception is a torn tail in the final WAL segment,
// which is the expected artifact of a crash mid-append and is reported,
// truncated, and recovered from.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Sentinel errors for the distinguishable corruption classes. They are
// usually wrapped in a *CorruptError carrying file and offset context.
var (
	// ErrBadMagic reports a file that is not in this package's format.
	ErrBadMagic = errors.New("durable: bad magic (not a snapshot/WAL file)")
	// ErrTruncated reports a file that ends before its declared content.
	ErrTruncated = errors.New("durable: truncated file")
	// ErrChecksum reports payload bytes that do not match their CRC.
	ErrChecksum = errors.New("durable: checksum mismatch")
	// ErrClosed reports an operation on a closed WAL.
	ErrClosed = errors.New("durable: WAL is closed")
)

// CorruptError wraps one of the sentinel corruption errors with the
// file path and byte offset where the damage was detected, so operators
// can locate the bad bytes instead of guessing from a bare gob message.
type CorruptError struct {
	Path   string // file being read ("<stream>" for readers with no path)
	Offset int64  // byte offset of the damaged region
	Detail string // human context, e.g. "record header" or "gob payload"
	Err    error  // the sentinel (or underlying decode error)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("durable: %s: corrupt %s at byte %d: %v",
		e.Path, e.Detail, e.Offset, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// VersionError reports a container written by a newer (or unknown)
// format version than this build understands.
type VersionError struct {
	Path string
	Got  uint16 // version found in the file
	Max  uint16 // newest version this build can read
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("durable: %s: format version %d not supported (max %d)",
		e.Path, e.Got, e.Max)
}

// castagnoli is the CRC-32C table used for all checksums in the package.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// AtomicWriteFile replaces path with data without ever exposing a
// partial file: the bytes land in a temp file in the same directory,
// are (optionally) fsynced, and only then renamed over path. The
// directory entry is fsynced after the rename so the replacement itself
// survives a power cut. A crash at any point leaves either the old file
// or the new one, never a torn mix.
func AtomicWriteFile(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure past this point must not leave the temp file behind.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %s: %w", path, step, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			return fail("fsync", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: rename: %w", path, err)
	}
	if sync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("durable: atomic write %s: sync dir: %w", path, err)
		}
	}
	return nil
}

// AtomicWriteTo is AtomicWriteFile for producers too large to buffer:
// write streams the content directly to the temp file, which is then
// (optionally) fsynced and renamed over path, with the same
// crash-safety guarantee — the old file or the complete new one, never
// a torn mix. A multi-gigabyte snapshot costs no intermediate []byte.
func AtomicWriteTo(path string, sync bool, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %s: %w", path, step, err)
	}
	if err := write(tmp); err != nil {
		return fail("write", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			return fail("fsync", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: rename: %w", path, err)
	}
	if sync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("durable: atomic write %s: sync dir: %w", path, err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable. Some filesystems reject fsync on directories; that is not a
// correctness problem on the platforms we target, so only real errors
// propagate.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}
