package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

// The contract under test: every injected fault either recovers fully
// or fails with a typed error — never a silent partial success.

func TestFailingWriterSurfacesError(t *testing.T) {
	var sink bytes.Buffer
	fw := &FailingWriter{W: &sink, Limit: 10}
	if err := WriteContainer(fw, 1, bytes.Repeat([]byte("x"), 100)); err == nil {
		t.Fatal("write through a failing disk reported success")
	}
	// Whatever did land must be rejected on read, not half-parsed.
	if _, _, err := ReadContainer(bytes.NewReader(sink.Bytes()), "f", 1); err == nil {
		t.Fatal("partial container accepted")
	}
}

func TestErrorAfterNWriter(t *testing.T) {
	var sink bytes.Buffer
	// First write (header) succeeds, second (payload) fails: the classic
	// header-without-body tear.
	ew := &ErrorAfterNWriter{W: &sink, N: 1}
	if err := WriteContainer(ew, 1, []byte("payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	_, _, err := ReadContainer(bytes.NewReader(sink.Bytes()), "f", 1)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("header-only container: want ErrTruncated, got %v", err)
	}
}

func TestTornWriterProducesDetectableTear(t *testing.T) {
	payload := bytes.Repeat([]byte("engine state "), 50)
	var full bytes.Buffer
	if err := WriteContainer(&full, 1, payload); err != nil {
		t.Fatal(err)
	}
	// A torn write reports success to the writer but only a prefix hits
	// disk. Every possible tear point must be detected on read.
	for _, limit := range []int64{0, 5, 19, 20, 21, int64(full.Len()) - 1} {
		var disk bytes.Buffer
		tw := &TornWriter{W: &disk, Limit: limit}
		if err := WriteContainer(tw, 1, payload); err != nil {
			t.Fatalf("torn writer must look successful, got %v", err)
		}
		if _, _, err := ReadContainer(bytes.NewReader(disk.Bytes()), "f", 1); !errors.Is(err, ErrTruncated) {
			t.Fatalf("tear at %d: want ErrTruncated, got %v", limit, err)
		}
	}
}

func TestTruncateReader(t *testing.T) {
	src := bytes.Repeat([]byte("abc"), 10)
	tr := &TruncateReader{R: bytes.NewReader(src), Limit: 7}
	got, err := io.ReadAll(tr)
	if err != nil || len(got) != 7 {
		t.Fatalf("got %d bytes, %v", len(got), err)
	}
}

func TestFlipReaderFlipsExactlyOneByte(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 4)
	fr := &FlipReader{R: bytes.NewReader(src), Offset: 13, Mask: 0xFF}
	got, err := io.ReadAll(fr)
	if err != nil || len(got) != len(src) {
		t.Fatal(err)
	}
	diff := 0
	for i := range src {
		if got[i] != src[i] {
			diff++
			if int64(i) != 13 {
				t.Fatalf("flipped wrong byte %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bytes", diff)
	}
}

func TestWALAppendFaultDoesNotAcknowledge(t *testing.T) {
	// An Append that fails mid-write leaves a torn tail; the next open
	// recovers every acknowledged record and drops the unacknowledged
	// tear. Simulated here by writing a valid log, then appending raw
	// partial-record bytes the way a crashed Append would have.
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("acknowledged")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec := encodeRecord(2, []byte("never finished"))
	if _, err := f.Write(rec[:len(rec)-6]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer w2.Close()
	if st := w2.Stats(); !st.TornTail || st.Records != 1 {
		t.Fatalf("stats: %+v", st)
	}
	var got []string
	w2.Replay(0, func(_ uint64, p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 1 || got[0] != "acknowledged" {
		t.Fatalf("replay: %v", got)
	}
}
