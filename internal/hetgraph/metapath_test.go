package hetgraph

import (
	"sort"
	"testing"
)

// figure2Core builds the co-authorship skeleton of the paper's Figure 2
// inside the package (the richer fixture lives in testgraph, which cannot
// be imported here without a cycle).
func figure2Core(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New()
	n := map[string]NodeID{}
	for _, p := range []string{"p1", "p2", "p3", "p4", "p5", "p6", "p10"} {
		n[p] = g.AddNode(Paper, p)
	}
	for _, a := range []string{"a0", "a1", "a2", "a3", "a7"} {
		n[a] = g.AddNode(Author, a)
	}
	w := func(a, p string) { g.MustAddEdge(n[a], n[p], Write) }
	w("a0", "p1")
	w("a0", "p2")
	w("a0", "p3")
	w("a0", "p4")
	w("a1", "p1")
	w("a1", "p2")
	w("a2", "p4")
	w("a2", "p5")
	w("a3", "p5")
	w("a3", "p6")
	w("a7", "p10")
	return g, n
}

func names(n map[string]NodeID, ids []NodeID) []string {
	rev := map[NodeID]string{}
	for name, id := range n {
		rev[id] = name
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = rev[id]
	}
	sort.Strings(out)
	return out
}

func TestPNeighborsExample2(t *testing.T) {
	g, n := figure2Core(t)
	// (p1, a1, p2) is a path instance of P-A-P: p2 is a P-neighbour of p1.
	got := names(n, g.PNeighbors(n["p1"], PAP))
	want := []string{"p2", "p3", "p4"}
	if len(got) != len(want) {
		t.Fatalf("PNeighbors(p1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PNeighbors(p1) = %v, want %v", got, want)
		}
	}
}

func TestPNeighborsExample4Psi(t *testing.T) {
	g, n := figure2Core(t)
	// Example 4: Ψ[p4] = {p1, p2, p3, p5}.
	got := names(n, g.PNeighbors(n["p4"], PAP))
	want := []string{"p1", "p2", "p3", "p5"}
	if len(got) != len(want) {
		t.Fatalf("PNeighbors(p4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PNeighbors(p4) = %v, want %v", got, want)
		}
	}
	if d := g.PDegree(n["p5"], PAP); d != 2 {
		t.Errorf("deg(p5) = %d, want 2 (Example 4)", d)
	}
	if d := g.PDegree(n["p10"], PAP); d != 0 {
		t.Errorf("deg(p10) = %d, want 0 (isolated paper)", d)
	}
}

func TestPNeighborsNoDuplicatesWithMultipleSharedAuthors(t *testing.T) {
	g, n := figure2Core(t)
	// p1 and p2 share both a0 and a1 but p2 must be reported once.
	cnt := 0
	g.ForEachPNeighbor(n["p1"], PAP, func(v NodeID) bool {
		if v == n["p2"] {
			cnt++
		}
		return true
	})
	if cnt != 1 {
		t.Errorf("p2 visited %d times, want 1", cnt)
	}
}

func TestForEachPNeighborEarlyStop(t *testing.T) {
	g, n := figure2Core(t)
	visits := 0
	g.ForEachPNeighbor(n["p4"], PAP, func(NodeID) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early stop visited %d, want 1", visits)
	}
	if got := g.CountPNeighborsUpTo(n["p4"], PAP, 2); got != 2 {
		t.Errorf("CountPNeighborsUpTo = %d, want 2", got)
	}
}

func TestForEachPNeighborWrongSourceTypePanics(t *testing.T) {
	g, n := figure2Core(t)
	defer func() {
		if recover() == nil {
			t.Error("meta-path from wrong node type did not panic")
		}
	}()
	g.ForEachPNeighbor(n["a0"], PAP, func(NodeID) bool { return true })
}

func TestCitationMetaPathSymmetric(t *testing.T) {
	g := New()
	p1 := g.AddNode(Paper, "")
	p2 := g.AddNode(Paper, "")
	g.MustAddEdge(p1, p2, Cite)
	if got := g.PNeighbors(p1, PP); len(got) != 1 || got[0] != p2 {
		t.Errorf("PNeighbors(p1, PP) = %v", got)
	}
	if got := g.PNeighbors(p2, PP); len(got) != 1 || got[0] != p1 {
		t.Errorf("PNeighbors(p2, PP) = %v (cite-or-cited-by must be symmetric)", got)
	}
}

func TestProjectMatchesPNeighbors(t *testing.T) {
	g, n := figure2Core(t)
	h := Project(g, PAP)
	if h.NumNodes() != 7 {
		t.Fatalf("projected %d nodes, want 7", h.NumNodes())
	}
	for _, p := range h.Nodes {
		want := g.PNeighbors(p, PAP)
		got := h.Adj[p]
		if len(got) != len(want) {
			t.Errorf("projection adjacency of %v: %v vs %v", p, got, want)
		}
	}
	// Undirected edge count: p1-p2, p1-p3, p1-p4, p2-p3, p2-p4, p3-p4,
	// p4-p5, p5-p6 = 8.
	if got := h.NumEdges(); got != 8 {
		t.Errorf("NumEdges = %d, want 8", got)
	}
	if _, ok := h.Index(n["p10"]); !ok {
		t.Error("isolated paper missing from projection")
	}
}

func TestProjectMulti(t *testing.T) {
	g := New()
	p1 := g.AddNode(Paper, "")
	p2 := g.AddNode(Paper, "")
	p3 := g.AddNode(Paper, "")
	a := g.AddNode(Author, "")
	tp := g.AddNode(Topic, "")
	g.MustAddEdge(a, p1, Write)
	g.MustAddEdge(a, p2, Write)
	g.MustAddEdge(p2, tp, Mention)
	g.MustAddEdge(p3, tp, Mention)
	h := ProjectMulti(g, []MetaPath{PAP, PTP})
	if len(h.Adj[p2]) != 2 { // p1 via PAP, p3 via PTP
		t.Errorf("multi projection of p2 = %v, want 2 neighbours", h.Adj[p2])
	}
	if len(h.Adj[p1]) != 1 || len(h.Adj[p3]) != 1 {
		t.Error("multi projection endpoints wrong")
	}
}
