// Package testgraph builds small, hand-checkable heterogeneous graphs for
// tests: most importantly the running example of the paper's Figure 2,
// whose (k,P)-core structure Examples 2-4 work through by hand.
package testgraph

import (
	"fmt"
	"math/rand"

	"expertfind/internal/hetgraph"
)

// Figure2 reconstructs the paper's Figure 2(a) graph, with the properties
// Examples 2-4 rely on (P = P-A-P):
//
//   - papers p1..p4 pairwise share the author a0, so each has exactly 3
//     P-neighbours within {p1..p4}: the (3,P)-core.
//   - a1 writes p1 and p2, so (p1, a1, p2) is a path instance of P-A-P
//     (Example 2).
//   - p5 co-authors with p4 (via a2) and with p6 (via a3): deg(p5) = 2,
//     below k=3, so FastBCore excludes it while Algorithm 1's extension
//     re-admits it as a P-neighbour of the seed p4 (Example 4).
//   - p6..p9 hang off p5 in a chain, reachable only through p5.
//   - p10 is an isolated paper with its own author.
//   - p4 and p5 mention the same topic t1 (Example 4's "same author and
//     topic"); other papers mention t2. Venue and citation edges give the
//     P-V-P and P-P meta-paths something to traverse.
//
// The returned map gives each node by its paper-figure name ("p1".."p10",
// "a0".., "t1", "t2", "v1").
func Figure2() (*hetgraph.Graph, map[string]hetgraph.NodeID) {
	g := hetgraph.New()
	n := map[string]hetgraph.NodeID{}

	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("p%d", i)
		n[name] = g.AddNode(hetgraph.Paper, "paper "+name)
	}
	for i := 0; i <= 7; i++ {
		name := fmt.Sprintf("a%d", i)
		n[name] = g.AddNode(hetgraph.Author, "author "+name)
	}
	n["t1"] = g.AddNode(hetgraph.Topic, "topic t1")
	n["t2"] = g.AddNode(hetgraph.Topic, "topic t2")
	n["v1"] = g.AddNode(hetgraph.Venue, "venue v1")

	write := func(a, p string) { g.MustAddEdge(n[a], n[p], hetgraph.Write) }
	// a0 writes p1..p4: the 3-core clique.
	write("a0", "p1")
	write("a0", "p2")
	write("a0", "p3")
	write("a0", "p4")
	// a1 writes p1, p2 (Example 2's path instance).
	write("a1", "p1")
	write("a1", "p2")
	// a2 links p4 and p5; a3 links p5 and p6.
	write("a2", "p4")
	write("a2", "p5")
	write("a3", "p5")
	write("a3", "p6")
	// The tail chain p6-p7-p8-p9.
	write("a4", "p6")
	write("a4", "p7")
	write("a5", "p7")
	write("a5", "p8")
	write("a6", "p8")
	write("a6", "p9")
	// p10 stands alone.
	write("a7", "p10")

	// Topics: p4 and p5 share t1; the rest mention t2.
	g.MustAddEdge(n["p4"], n["t1"], hetgraph.Mention)
	g.MustAddEdge(n["p5"], n["t1"], hetgraph.Mention)
	for _, p := range []string{"p1", "p2", "p3", "p6", "p7", "p8", "p9", "p10"} {
		g.MustAddEdge(n[p], n["t2"], hetgraph.Mention)
	}
	// One venue for everything, and a couple of citations.
	for i := 1; i <= 10; i++ {
		g.MustAddEdge(n[fmt.Sprintf("p%d", i)], n["v1"], hetgraph.Publish)
	}
	g.MustAddEdge(n["p1"], n["p2"], hetgraph.Cite)
	g.MustAddEdge(n["p2"], n["p3"], hetgraph.Cite)

	return g, n
}

// Random builds a random heterogeneous graph with nPapers papers,
// nAuthors authors, nTopics topics and approximately edgeFactor write
// edges per paper, for property tests. All randomness comes from rng.
func Random(rng *rand.Rand, nPapers, nAuthors, nTopics, edgeFactor int) *hetgraph.Graph {
	g := hetgraph.New()
	papers := make([]hetgraph.NodeID, nPapers)
	authors := make([]hetgraph.NodeID, nAuthors)
	topics := make([]hetgraph.NodeID, nTopics)
	for i := range papers {
		papers[i] = g.AddNode(hetgraph.Paper, fmt.Sprintf("paper %d text", i))
	}
	for i := range authors {
		authors[i] = g.AddNode(hetgraph.Author, fmt.Sprintf("author %d", i))
	}
	for i := range topics {
		topics[i] = g.AddNode(hetgraph.Topic, fmt.Sprintf("topic %d", i))
	}
	v := g.AddNode(hetgraph.Venue, "venue")
	seen := map[[2]hetgraph.NodeID]bool{}
	for _, p := range papers {
		for e := 0; e < edgeFactor; e++ {
			a := authors[rng.Intn(len(authors))]
			key := [2]hetgraph.NodeID{a, p}
			if seen[key] {
				continue
			}
			seen[key] = true
			g.MustAddEdge(a, p, hetgraph.Write)
		}
		if nTopics > 0 {
			tp := topics[rng.Intn(len(topics))]
			key := [2]hetgraph.NodeID{tp, p}
			if !seen[key] {
				seen[key] = true
				g.MustAddEdge(p, tp, hetgraph.Mention)
			}
		}
		g.MustAddEdge(p, v, hetgraph.Publish)
		if len(papers) > 1 && rng.Intn(2) == 0 {
			q := papers[rng.Intn(len(papers))]
			key := [2]hetgraph.NodeID{p, q}
			rkey := [2]hetgraph.NodeID{q, p}
			if q != p && !seen[key] && !seen[rkey] {
				seen[key] = true
				g.MustAddEdge(p, q, hetgraph.Cite)
			}
		}
	}
	return g
}
