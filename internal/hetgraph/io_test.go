package hetgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g, n := figure2Core(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("nodes %d != %d", g2.NumNodes(), g.NumNodes())
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		if g2.Type(id) != g.Type(id) || g2.Label(id) != g.Label(id) {
			t.Fatalf("node %d type/label mismatch after round trip", id)
		}
	}
	// Author order (ranks) must survive the round trip.
	for _, p := range g.NodesOfType(Paper) {
		a1 := g.AuthorsOf(p)
		a2 := g2.AuthorsOf(p)
		if len(a1) != len(a2) {
			t.Fatalf("paper %d author count changed", p)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("paper %d author order changed at rank %d", p, i+1)
			}
		}
	}
	_ = n
}

// TestJSONRoundTripAuthorsBeforePapers pins the regression where edges
// were emitted from their lower-id endpoint: with authors inserted before
// papers (the dataset generator's layout), that rebuilt every paper's
// author list in author-id order instead of rank order, silently changing
// the Zipf contribution ranks of any corpus loaded from JSON.
func TestJSONRoundTripAuthorsBeforePapers(t *testing.T) {
	g := New()
	var authors []NodeID
	for i := 0; i < 6; i++ {
		authors = append(authors, g.AddNode(Author, "name"))
	}
	rng := rand.New(rand.NewSource(42))
	var papers []NodeID
	for i := 0; i < 10; i++ {
		p := g.AddNode(Paper, "text")
		papers = append(papers, p)
		// Author ranks deliberately not in ascending id order.
		perm := rng.Perm(len(authors))[:3]
		for _, j := range perm {
			g.MustAddEdge(p, authors[j], Write)
		}
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range papers {
		want := g.AuthorsOf(p)
		got := g2.AuthorsOf(p)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("paper %d: author rank %d is %d after round trip, want %d",
					p, i+1, got[i], want[i])
			}
		}
	}
}

func TestJSONRoundTripRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: size mismatch after round trip", seed)
		}
		for _, p := range g.NodesOfType(Paper) {
			w := g.PNeighbors(p, PAP)
			got := g2.PNeighbors(p, PAP)
			if len(w) != len(got) {
				t.Fatalf("seed %d: P-neighbours of %d changed", seed, p)
			}
		}
	}
}

func randomGraph(rng *rand.Rand) *Graph {
	g := New()
	var papers, authors []NodeID
	for i := 0; i < 20; i++ {
		papers = append(papers, g.AddNode(Paper, "text"))
	}
	for i := 0; i < 8; i++ {
		authors = append(authors, g.AddNode(Author, "name"))
	}
	seen := map[[2]NodeID]bool{}
	for _, p := range papers {
		for j := 0; j < 2; j++ {
			a := authors[rng.Intn(len(authors))]
			if !seen[[2]NodeID{a, p}] {
				seen[[2]NodeID{a, p}] = true
				g.MustAddEdge(a, p, Write)
			}
		}
	}
	return g
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"type":"Z"}],"edges":[]}`)); err == nil {
		t.Error("unknown node type accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"type":"P"}],"edges":[{"u":0,"v":5,"t":"Cite"}]}`)); err == nil {
		t.Error("out-of-range edge accepted")
	}
}
