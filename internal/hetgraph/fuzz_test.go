package hetgraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON asserts the loader never panics and either errors cleanly
// or yields a graph that round-trips.
func FuzzReadJSON(f *testing.F) {
	// Seed with a valid serialisation plus near-misses.
	g, _ := figure2Core(&testing.T{})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"nodes":[],"edges":[]}`)
	f.Add(`{"nodes":[{"type":"P"}],"edges":[{"u":0,"v":0,"t":"Cite"}]}`)
	f.Add(`{"nodes":[{"type":"A"},{"type":"P"}],"edges":[{"u":0,"v":1,"t":"Publish"}]}`)
	f.Add(`{`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return // clean rejection is fine
		}
		// Accepted graphs must round-trip consistently.
		var out bytes.Buffer
		if err := g.WriteJSON(&out); err != nil {
			t.Fatalf("accepted graph failed to serialise: %v", err)
		}
		g2, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("own serialisation rejected: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzMetaPathParse asserts the meta-path parser never panics.
func FuzzMetaPathParse(f *testing.F) {
	for _, seed := range []string{"P-A-P", "P-T-P", "P-P", "P-V-P", "", "-", "P--P", "X-Y", "P-A-P-A-P"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		mp, err := ParseMetaPath(s)
		if err != nil {
			return
		}
		if mp.Len() < 1 {
			t.Fatalf("accepted meta-path %q with %d hops", s, mp.Len())
		}
	})
}
