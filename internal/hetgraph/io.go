package hetgraph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the serialised form of a Graph: a node list followed by an
// edge list, both in insertion order so the round trip preserves NodeIDs
// and author ranks.
type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	Type  string `json:"type"`
	Label string `json:"label,omitempty"`
}

type edgeJSON struct {
	U    NodeID `json:"u"`
	V    NodeID `json:"v"`
	Type string `json:"t"`
}

// WriteJSON serialises g as JSON. The encoding preserves node insertion
// order (hence NodeIDs and paper author order) and edge insertion order.
func (g *Graph) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	doc := graphJSON{Nodes: make([]nodeJSON, g.NumNodes())}
	for i := range doc.Nodes {
		doc.Nodes[i] = nodeJSON{Type: g.types[i].String(), Label: g.labels[i]}
	}
	// Re-derive edges from adjacency, emitting each undirected edge once
	// FROM ITS PAPER ENDPOINT (every schema edge type touches a paper):
	// the reader appends neighbours in edge order, so walking each paper's
	// typed partitions reproduces its adjacency order exactly — in
	// particular the author list, whose positions are the Zipf
	// contribution ranks of expert scoring. Emitting from the lower
	// endpoint instead (authors usually precede papers in id order) would
	// rebuild author lists in author-id order and silently change every
	// loaded corpus's expert scores. Cite edges (paper-paper) are
	// deduplicated by emitting only towards the higher id.
	for u := range g.adj {
		uid := NodeID(u)
		if g.types[uid] != Paper {
			continue
		}
		for t := NodeType(0); t < numNodeTypes; t++ {
			for _, v := range g.adj[u][t] {
				if g.types[v] == Paper && v < uid {
					continue // Cite edge, emitted from the lower paper
				}
				et, err := edgeTypeFor(g.types[uid], g.types[v])
				if err != nil {
					return err
				}
				doc.Edges = append(doc.Edges, edgeJSON{U: uid, V: v, Type: et.String()})
			}
		}
	}
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSON parses a graph previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc graphJSON
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("hetgraph: decode: %w", err)
	}
	g := New()
	for _, n := range doc.Nodes {
		t, err := ParseNodeType(n.Type)
		if err != nil {
			return nil, err
		}
		g.AddNode(t, n.Label)
	}
	for _, e := range doc.Edges {
		et, err := parseEdgeType(e.Type)
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(e.U, e.V, et); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// edgeTypeFor returns the schema edge type joining two node types.
func edgeTypeFor(a, b NodeType) (EdgeType, error) {
	for et, want := range edgeSchema {
		if (want[0] == a && want[1] == b) || (want[0] == b && want[1] == a) {
			return EdgeType(et), nil
		}
	}
	return 0, fmt.Errorf("hetgraph: no edge type joins %s and %s", a, b)
}

func parseEdgeType(s string) (EdgeType, error) {
	switch s {
	case "Write":
		return Write, nil
	case "Publish":
		return Publish, nil
	case "Mention":
		return Mention, nil
	case "Cite":
		return Cite, nil
	default:
		return 0, fmt.Errorf("hetgraph: unknown edge type %q", s)
	}
}
