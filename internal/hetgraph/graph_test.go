package hetgraph

import (
	"testing"
)

func TestNodeTypeStringRoundTrip(t *testing.T) {
	for _, nt := range []NodeType{Author, Paper, Venue, Topic} {
		got, err := ParseNodeType(nt.String())
		if err != nil {
			t.Fatalf("ParseNodeType(%q): %v", nt.String(), err)
		}
		if got != nt {
			t.Errorf("round trip %v -> %v", nt, got)
		}
	}
	if _, err := ParseNodeType("X"); err == nil {
		t.Error("ParseNodeType accepted unknown type")
	}
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	a := g.AddNode(Author, "alice")
	p := g.AddNode(Paper, "a paper")
	if a != 0 || p != 1 {
		t.Errorf("ids = %d, %d; want 0, 1", a, p)
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.Type(a) != Author || g.Label(p) != "a paper" {
		t.Error("type or label not recorded")
	}
}

func TestAddEdgeSchemaValidation(t *testing.T) {
	g := New()
	a := g.AddNode(Author, "")
	p := g.AddNode(Paper, "")
	v := g.AddNode(Venue, "")
	tp := g.AddNode(Topic, "")

	cases := []struct {
		u, v NodeID
		et   EdgeType
		ok   bool
	}{
		{a, p, Write, true},
		{p, a, Write, true}, // direction-agnostic
		{p, v, Publish, true},
		{p, tp, Mention, true},
		{a, v, Write, false},
		{a, p, Publish, false},
		{a, a, Write, false},
		{p, p, Cite, false}, // self edge
	}
	for _, c := range cases {
		err := g.AddEdge(c.u, c.v, c.et)
		if (err == nil) != c.ok {
			t.Errorf("AddEdge(%d,%d,%s): err=%v, want ok=%v", c.u, c.v, c.et, err, c.ok)
		}
	}
	if err := g.AddEdge(99, p, Write); err == nil {
		t.Error("AddEdge accepted out-of-range node")
	}
}

func TestAuthorOrderPreserved(t *testing.T) {
	g := New()
	p := g.AddNode(Paper, "")
	var want []NodeID
	for i := 0; i < 5; i++ {
		a := g.AddNode(Author, "")
		g.MustAddEdge(a, p, Write)
		want = append(want, a)
	}
	got := g.AuthorsOf(p)
	if len(got) != len(want) {
		t.Fatalf("got %d authors, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("author rank %d = %d, want %d (Zipf weights depend on this order)", i+1, got[i], want[i])
		}
	}
}

func TestAuthorsOfPanicsOnNonPaper(t *testing.T) {
	g := New()
	a := g.AddNode(Author, "")
	defer func() {
		if recover() == nil {
			t.Error("AuthorsOf on author did not panic")
		}
	}()
	g.AuthorsOf(a)
}

func TestStatsAndCounts(t *testing.T) {
	g := New()
	a := g.AddNode(Author, "")
	p1 := g.AddNode(Paper, "")
	p2 := g.AddNode(Paper, "")
	v := g.AddNode(Venue, "")
	tp := g.AddNode(Topic, "")
	g.MustAddEdge(a, p1, Write)
	g.MustAddEdge(a, p2, Write)
	g.MustAddEdge(p1, v, Publish)
	g.MustAddEdge(p1, tp, Mention)
	g.MustAddEdge(p1, p2, Cite)

	st := g.Stats()
	if st.Papers != 2 || st.Experts != 1 || st.Venues != 1 || st.Topics != 1 || st.Relations != 5 {
		t.Errorf("Stats = %+v", st)
	}
	if g.NumEdgesOfType(Write) != 2 || g.NumEdgesOfType(Cite) != 1 {
		t.Error("per-type edge counts wrong")
	}
	if g.Degree(p1, Author) != 1 || g.Degree(a, Paper) != 2 {
		t.Error("typed degrees wrong")
	}
	if len(g.NodesOfType(Paper)) != 2 {
		t.Error("NodesOfType(Paper) wrong")
	}
}

func TestMetaPathParse(t *testing.T) {
	mp, err := ParseMetaPath("P-A-P")
	if err != nil {
		t.Fatal(err)
	}
	if mp.Len() != 2 || mp.Source() != Paper || mp.Target() != Paper || !mp.IsPaperPaper() {
		t.Errorf("P-A-P parsed wrong: %+v", mp)
	}
	if mp.String() != "P-A-P" {
		t.Errorf("String = %q", mp.String())
	}
	if _, err := ParseMetaPath("P"); err == nil {
		t.Error("single-type meta-path accepted")
	}
	if _, err := ParseMetaPath("P-Q-P"); err == nil {
		t.Error("unknown node type accepted")
	}
	if _, err := ParseMetaPath("A-V"); err == nil {
		t.Error("schema-invalid hop accepted (no Author-Venue edge)")
	}
	if _, err := ParseMetaPath("A-P-A"); err != nil {
		t.Errorf("A-P-A should be valid on the schema: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, n := figure2Core(t)
	// Keep p1..p4: their authors a0, a1, a2 come along (a2 via p4).
	keep := []NodeID{n["p1"], n["p2"], n["p3"], n["p4"]}
	sub, mapping, err := InducedSubgraph(g, keep)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.NumNodesOfType(Paper); got != 4 {
		t.Fatalf("papers = %d, want 4", got)
	}
	if got := sub.NumNodesOfType(Author); got != 3 {
		t.Fatalf("authors = %d, want 3 (a0, a1, a2)", got)
	}
	// p5 and its exclusive author a3 are gone.
	if _, ok := mapping[n["p5"]]; ok {
		t.Error("p5 leaked into the subgraph")
	}
	// Edges among kept nodes survive: p4 keeps authors a0 and a2, in the
	// original rank order.
	p4 := mapping[n["p4"]]
	authors := sub.AuthorsOf(p4)
	if len(authors) != 2 {
		t.Fatalf("p4 has %d authors in subgraph, want 2", len(authors))
	}
	if sub.Label(authors[0]) != "a0" || sub.Label(authors[1]) != "a2" {
		t.Errorf("author order broken: %s, %s", sub.Label(authors[0]), sub.Label(authors[1]))
	}
	// P-neighbour structure restricted to kept papers is intact.
	if d := sub.PDegree(p4, PAP); d != 3 {
		t.Errorf("deg(p4) in subgraph = %d, want 3", d)
	}
}

func TestInducedSubgraphRejectsNonPaper(t *testing.T) {
	g, n := figure2Core(t)
	if _, _, err := InducedSubgraph(g, []NodeID{n["a0"]}); err == nil {
		t.Error("author accepted as subgraph seed")
	}
	if _, _, err := InducedSubgraph(g, []NodeID{9999}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestPVPMetaPath(t *testing.T) {
	// The venue meta-path P-V-P parses and traverses — it is the noisy
	// relationship Figure 1(a) warns about, supported but not a default.
	pvp := MustParseMetaPath("P-V-P")
	g := New()
	p1 := g.AddNode(Paper, "")
	p2 := g.AddNode(Paper, "")
	p3 := g.AddNode(Paper, "")
	v1 := g.AddNode(Venue, "")
	v2 := g.AddNode(Venue, "")
	g.MustAddEdge(p1, v1, Publish)
	g.MustAddEdge(p2, v1, Publish)
	g.MustAddEdge(p3, v2, Publish)
	got := g.PNeighbors(p1, pvp)
	if len(got) != 1 || got[0] != p2 {
		t.Errorf("P-V-P neighbours of p1 = %v, want [p2]", got)
	}
}
