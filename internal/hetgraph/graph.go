// Package hetgraph implements the heterogeneous academic graph of the paper
// (Definition 1): typed nodes (Author, Paper, Venue, Topic), typed edges
// (Write, Publish, Mention, Cite), a textual label function L, plus the
// meta-path machinery (Definitions 3-4) used by the (k,P)-core search and
// the homogeneous projection used by the baselines.
//
// The graph is append-only: nodes and edges are added during construction
// and never removed, matching the offline-build / online-query split of the
// paper. All query methods are safe for concurrent use once construction is
// finished.
package hetgraph

import (
	"fmt"
)

// NodeType identifies the type φ(v) of a node (Definition 1).
type NodeType uint8

// The node types of the DBLP-style schema (Example 1).
const (
	Author NodeType = iota
	Paper
	Venue
	Topic
	numNodeTypes
)

// String returns the single-letter name used in meta-path notation
// (A, P, V, T).
func (t NodeType) String() string {
	switch t {
	case Author:
		return "A"
	case Paper:
		return "P"
	case Venue:
		return "V"
	case Topic:
		return "T"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// ParseNodeType converts the single-letter meta-path notation back to a
// NodeType.
func ParseNodeType(s string) (NodeType, error) {
	switch s {
	case "A":
		return Author, nil
	case "P":
		return Paper, nil
	case "V":
		return Venue, nil
	case "T":
		return Topic, nil
	default:
		return 0, fmt.Errorf("hetgraph: unknown node type %q", s)
	}
}

// EdgeType identifies the type ψ(e) of an edge (Definition 1).
type EdgeType uint8

// The edge types of the DBLP-style schema.
const (
	Write   EdgeType = iota // Author - Paper
	Publish                 // Paper - Venue
	Mention                 // Paper - Topic
	Cite                    // Paper - Paper
	numEdgeTypes
)

// String returns the schema name of the edge type.
func (t EdgeType) String() string {
	switch t {
	case Write:
		return "Write"
	case Publish:
		return "Publish"
	case Mention:
		return "Mention"
	case Cite:
		return "Cite"
	default:
		return fmt.Sprintf("EdgeType(%d)", uint8(t))
	}
}

// NodeID indexes a node within a Graph. IDs are dense, assigned in
// insertion order starting from 0.
type NodeID int32

// Graph is a heterogeneous graph G = (V, E, L). Adjacency is partitioned by
// neighbour node type, which makes meta-path hops O(degree of that type)
// without filtering. Within one partition, neighbours keep insertion order;
// for Paper→Author this order is the paper's author list and defines the
// author rank I(a) used by the Zipf contribution weight (Eq. 5).
type Graph struct {
	types  []NodeType
	labels []string
	// adj[u][t] lists the neighbours of u having node type t.
	adj [][numNodeTypes][]NodeID
	// edgeCount counts undirected edges, by type.
	edgeCount [numEdgeTypes]int
	// nodesByType indexes all nodes of each type, in insertion order.
	nodesByType [numNodeTypes][]NodeID
}

// New returns an empty heterogeneous graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node of type t with textual label L(v)=label and
// returns its id. For papers the label is title+abstract; for authors their
// name; venues and topics their names.
func (g *Graph) AddNode(t NodeType, label string) NodeID {
	if t >= numNodeTypes {
		panic(fmt.Sprintf("hetgraph: invalid node type %d", t))
	}
	id := NodeID(len(g.types))
	g.types = append(g.types, t)
	g.labels = append(g.labels, label)
	g.adj = append(g.adj, [numNodeTypes][]NodeID{})
	g.nodesByType[t] = append(g.nodesByType[t], id)
	return id
}

// edgeSchema gives the unordered endpoint types allowed for each edge type.
var edgeSchema = [numEdgeTypes][2]NodeType{
	Write:   {Author, Paper},
	Publish: {Paper, Venue},
	Mention: {Paper, Topic},
	Cite:    {Paper, Paper},
}

// AddEdge adds an undirected edge of type et between u and v. The edge is
// validated against the schema (Definition 2): Write joins Author-Paper,
// Publish joins Paper-Venue, Mention joins Paper-Topic, Cite joins
// Paper-Paper. Citation direction is not preserved because the paper's P-P
// meta-path treats "cites or is cited by" symmetrically.
func (g *Graph) AddEdge(u, v NodeID, et EdgeType) error {
	if et >= numEdgeTypes {
		return fmt.Errorf("hetgraph: invalid edge type %d", et)
	}
	if err := g.checkNode(u); err != nil {
		return err
	}
	if err := g.checkNode(v); err != nil {
		return err
	}
	tu, tv := g.types[u], g.types[v]
	want := edgeSchema[et]
	if !(tu == want[0] && tv == want[1]) && !(tu == want[1] && tv == want[0]) {
		return fmt.Errorf("hetgraph: edge %s cannot join %s and %s", et, tu, tv)
	}
	if u == v {
		return fmt.Errorf("hetgraph: self edge on node %d", u)
	}
	g.adj[u][tv] = append(g.adj[u][tv], v)
	g.adj[v][tu] = append(g.adj[v][tu], u)
	g.edgeCount[et]++
	return nil
}

// MustAddEdge is AddEdge that panics on schema violations; it is intended
// for generators and tests where edges are constructed programmatically.
func (g *Graph) MustAddEdge(u, v NodeID, et EdgeType) {
	if err := g.AddEdge(u, v, et); err != nil {
		panic(err)
	}
}

func (g *Graph) checkNode(u NodeID) error {
	if u < 0 || int(u) >= len(g.types) {
		return fmt.Errorf("hetgraph: node %d out of range [0,%d)", u, len(g.types))
	}
	return nil
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.types) }

// NumEdges returns the total number of undirected edges |E|.
func (g *Graph) NumEdges() int {
	n := 0
	for _, c := range g.edgeCount {
		n += c
	}
	return n
}

// NumEdgesOfType returns the number of undirected edges of type et.
func (g *Graph) NumEdgesOfType(et EdgeType) int { return g.edgeCount[et] }

// Type returns φ(u).
func (g *Graph) Type(u NodeID) NodeType { return g.types[u] }

// Label returns L(u).
func (g *Graph) Label(u NodeID) string { return g.labels[u] }

// SetLabel replaces L(u); generators use it to attach text after wiring
// structure.
func (g *Graph) SetLabel(u NodeID, label string) { g.labels[u] = label }

// NodesOfType returns all nodes with type t in insertion order. The
// returned slice is owned by the graph and must not be modified.
func (g *Graph) NodesOfType(t NodeType) []NodeID { return g.nodesByType[t] }

// NumNodesOfType returns the number of nodes with type t.
func (g *Graph) NumNodesOfType(t NodeType) int { return len(g.nodesByType[t]) }

// Neighbors returns the neighbours of u having node type t, in insertion
// order. The returned slice is owned by the graph and must not be modified.
// For a paper node and t == Author, the order is the paper's author list.
func (g *Graph) Neighbors(u NodeID, t NodeType) []NodeID { return g.adj[u][t] }

// Degree returns the number of neighbours of u having node type t.
func (g *Graph) Degree(u NodeID, t NodeType) int { return len(g.adj[u][t]) }

// AuthorsOf returns the ordered author list of a paper (rank 1 first).
// It panics if p is not a paper.
func (g *Graph) AuthorsOf(p NodeID) []NodeID {
	if g.types[p] != Paper {
		panic(fmt.Sprintf("hetgraph: AuthorsOf on non-paper node %d (%s)", p, g.types[p]))
	}
	return g.adj[p][Author]
}

// PapersOf returns the papers authored by author a, in insertion order.
// It panics if a is not an author.
func (g *Graph) PapersOf(a NodeID) []NodeID {
	if g.types[a] != Author {
		panic(fmt.Sprintf("hetgraph: PapersOf on non-author node %d (%s)", a, g.types[a]))
	}
	return g.adj[a][Paper]
}

// Stats summarises the graph in the shape of the paper's Table I.
type Stats struct {
	Papers, Experts, Venues, Topics, Relations int
}

// Stats returns Table I-style counts for the graph.
func (g *Graph) Stats() Stats {
	return Stats{
		Papers:    g.NumNodesOfType(Paper),
		Experts:   g.NumNodesOfType(Author),
		Venues:    g.NumNodesOfType(Venue),
		Topics:    g.NumNodesOfType(Topic),
		Relations: g.NumEdges(),
	}
}
