package hetgraph

import (
	"fmt"
	"strings"
)

// MetaPath is a path on the schema (Definition 3), written with node types
// only (the edge type between two node types is unambiguous in the DBLP
// schema). The paper's three paper-paper meta-paths are PAP (co-authorship),
// PTP (same topic) and PP (citation).
type MetaPath struct {
	types []NodeType
	name  string
}

// Predefined paper-paper meta-paths used throughout the paper.
var (
	PAP = MustParseMetaPath("P-A-P") // co-authorship
	PTP = MustParseMetaPath("P-T-P") // same topic
	PP  = MustParseMetaPath("P-P")   // citation (either direction)
)

// ParseMetaPath parses notation such as "P-A-P" into a MetaPath. A valid
// meta-path has at least two node types, and each consecutive pair must be
// joinable under the schema.
func ParseMetaPath(s string) (MetaPath, error) {
	parts := strings.Split(s, "-")
	if len(parts) < 2 {
		return MetaPath{}, fmt.Errorf("hetgraph: meta-path %q needs at least 2 node types", s)
	}
	types := make([]NodeType, len(parts))
	for i, p := range parts {
		t, err := ParseNodeType(strings.TrimSpace(p))
		if err != nil {
			return MetaPath{}, err
		}
		types[i] = t
	}
	for i := 0; i+1 < len(types); i++ {
		if !schemaJoinable(types[i], types[i+1]) {
			return MetaPath{}, fmt.Errorf("hetgraph: meta-path %q has no edge type joining %s-%s",
				s, types[i], types[i+1])
		}
	}
	return MetaPath{types: types, name: strings.Join(parts, "-")}, nil
}

// MustParseMetaPath is ParseMetaPath that panics on error; for package-level
// constants and tests.
func MustParseMetaPath(s string) MetaPath {
	mp, err := ParseMetaPath(s)
	if err != nil {
		panic(err)
	}
	return mp
}

func schemaJoinable(a, b NodeType) bool {
	for _, want := range edgeSchema {
		if (want[0] == a && want[1] == b) || (want[0] == b && want[1] == a) {
			return true
		}
	}
	return false
}

// String returns the "P-A-P" notation of the meta-path.
func (mp MetaPath) String() string { return mp.name }

// Len returns the number of hops l (a meta-path A1-...-A(l+1) has l hops).
func (mp MetaPath) Len() int { return len(mp.types) - 1 }

// Source returns the first node type of the meta-path.
func (mp MetaPath) Source() NodeType { return mp.types[0] }

// Target returns the last node type of the meta-path.
func (mp MetaPath) Target() NodeType { return mp.types[len(mp.types)-1] }

// IsPaperPaper reports whether the meta-path joins papers to papers, the
// only shape the (k,P)-core definition uses.
func (mp MetaPath) IsPaperPaper() bool { return mp.Source() == Paper && mp.Target() == Paper }

// ForEachPNeighbor calls fn once for every distinct P-neighbour of u via
// mp (Definition 4): every node v != u reachable from u by a path instance
// of mp. Iteration stops early if fn returns false. The visit order is
// deterministic for a given graph.
//
// The expansion is a layered walk: frontier_0 = {u}; frontier_{i+1} is the
// set of type-A_{i+1} neighbours of frontier_i, deduplicated per layer so a
// node is expanded once per hop even when reachable via many instances.
func (g *Graph) ForEachPNeighbor(u NodeID, mp MetaPath, fn func(v NodeID) bool) {
	if g.Type(u) != mp.Source() {
		panic(fmt.Sprintf("hetgraph: node %d has type %s, meta-path %s starts at %s",
			u, g.Type(u), mp, mp.Source()))
	}
	frontier := []NodeID{u}
	seen := map[NodeID]bool{}
	for hop := 1; hop <= mp.Len(); hop++ {
		next := frontier[:0:0]
		clear(seen)
		last := hop == mp.Len()
		for _, x := range frontier {
			for _, y := range g.Neighbors(x, mp.types[hop]) {
				if seen[y] || (last && y == u) {
					continue
				}
				seen[y] = true
				if last {
					if !fn(y) {
						return
					}
				} else {
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
}

// PNeighbors returns the distinct P-neighbours of u via mp as a slice.
func (g *Graph) PNeighbors(u NodeID, mp MetaPath) []NodeID {
	var out []NodeID
	g.ForEachPNeighbor(u, mp, func(v NodeID) bool {
		out = append(out, v)
		return true
	})
	return out
}

// PDegree returns deg(u), the number of P-neighbours of u via mp
// (Definition 5 counts this against k).
func (g *Graph) PDegree(u NodeID, mp MetaPath) int {
	n := 0
	g.ForEachPNeighbor(u, mp, func(NodeID) bool {
		n++
		return true
	})
	return n
}

// CountPNeighborsUpTo counts P-neighbours of u, stopping once the count
// reaches limit. The (k,P)-core search uses it to test the k-constraint in
// O(k)·degree instead of enumerating all neighbours of high-degree hubs.
func (g *Graph) CountPNeighborsUpTo(u NodeID, mp MetaPath, limit int) int {
	n := 0
	g.ForEachPNeighbor(u, mp, func(NodeID) bool {
		n++
		return n < limit
	})
	return n
}
