package hetgraph

import "fmt"

// HomoGraph is the homogeneous paper-paper graph G' obtained by projecting
// a heterogeneous graph along a meta-path (the "straightforward solution"
// of §III-A, and the substrate of the homogeneous-embedding baselines).
// Nodes are paper NodeIDs of the source graph; adjacency is deduplicated
// and symmetric.
type HomoGraph struct {
	// Nodes lists the projected nodes (papers) in source-graph order.
	Nodes []NodeID
	// Adj maps each node to its deduplicated neighbour list.
	Adj map[NodeID][]NodeID
	// index maps a NodeID to its position in Nodes.
	index map[NodeID]int
}

// Project materialises the full homogeneous graph for meta-path mp,
// enumerating every paper's P-neighbours. This is the expensive step the
// paper's community search avoids; it is provided for the naive (k,P)-core
// baseline and for baselines that genuinely need the whole projection.
func Project(g *Graph, mp MetaPath) *HomoGraph {
	if !mp.IsPaperPaper() {
		panic(fmt.Sprintf("hetgraph: projection requires a paper-paper meta-path, got %s", mp))
	}
	papers := g.NodesOfType(Paper)
	h := &HomoGraph{
		Nodes: papers,
		Adj:   make(map[NodeID][]NodeID, len(papers)),
		index: make(map[NodeID]int, len(papers)),
	}
	for i, p := range papers {
		h.index[p] = i
		h.Adj[p] = g.PNeighbors(p, mp)
	}
	return h
}

// ProjectMulti materialises the homogeneous graph whose edge set is the
// union of the projections along each meta-path (used by baselines that
// treat all relationships equally, the very noise source §I criticises).
func ProjectMulti(g *Graph, mps []MetaPath) *HomoGraph {
	papers := g.NodesOfType(Paper)
	h := &HomoGraph{
		Nodes: papers,
		Adj:   make(map[NodeID][]NodeID, len(papers)),
		index: make(map[NodeID]int, len(papers)),
	}
	seen := map[NodeID]bool{}
	for i, p := range papers {
		h.index[p] = i
		clear(seen)
		var nbrs []NodeID
		for _, mp := range mps {
			g.ForEachPNeighbor(p, mp, func(q NodeID) bool {
				if !seen[q] {
					seen[q] = true
					nbrs = append(nbrs, q)
				}
				return true
			})
		}
		h.Adj[p] = nbrs
	}
	return h
}

// NumNodes returns the number of projected nodes.
func (h *HomoGraph) NumNodes() int { return len(h.Nodes) }

// NumEdges returns the number of undirected projected edges.
func (h *HomoGraph) NumEdges() int {
	n := 0
	for _, nbrs := range h.Adj {
		n += len(nbrs)
	}
	return n / 2
}

// Index returns the dense position of node p in Nodes, and whether p is a
// projected node.
func (h *HomoGraph) Index(p NodeID) (int, bool) {
	i, ok := h.index[p]
	return i, ok
}
