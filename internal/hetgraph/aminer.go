package hetgraph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadAminer parses the Aminer citation-network text format (the format
// of the paper's real Aminer/DBLP dumps, aminer.org/citation) into a
// heterogeneous graph. Each paper is a block of tagged lines:
//
//	#* title
//	#@ author1, author2, ...     (order defines the Zipf ranks)
//	#t year                      (ignored)
//	#c venue
//	#index id
//	#% id of a cited paper       (repeatable)
//	#! abstract                  (optional)
//
// Blocks are separated by blank lines. Citations may reference papers that
// appear later; they are resolved after the whole input is read, and
// references to unknown ids are dropped (the public dumps contain them).
// Topic nodes are not part of the format; AttachTopics can add them from a
// separate mapping keyed by the returned #index → paper translation, or
// the P-A-P/P-P meta-paths can be used alone.
func ReadAminer(r io.Reader) (*Graph, map[string]NodeID, error) {
	g := New()
	authors := map[string]NodeID{}
	venues := map[string]NodeID{}
	papersByKey := map[string]NodeID{}

	type pending struct {
		paper NodeID
		cites []string
	}
	var cites []pending

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var (
		title, abstract, venue, index string
		authorList                    []string
		citedKeys                     []string
		sawAny                        bool
		line                          int
	)
	flush := func() error {
		if title == "" && index == "" && len(authorList) == 0 {
			return nil // empty block
		}
		if index == "" {
			return fmt.Errorf("hetgraph: aminer block ending at line %d has no #index", line)
		}
		if _, dup := papersByKey[index]; dup {
			return fmt.Errorf("hetgraph: duplicate paper index %q", index)
		}
		label := title
		if abstract != "" {
			label = title + ". " + abstract
		}
		p := g.AddNode(Paper, label)
		papersByKey[index] = p
		for _, name := range authorList {
			a, ok := authors[name]
			if !ok {
				a = g.AddNode(Author, name)
				authors[name] = a
			}
			// The format can repeat an author within one block; the simple
			// graph keeps the first occurrence (the better rank).
			if !containsID(g.Neighbors(p, Author), a) {
				g.MustAddEdge(a, p, Write)
			}
		}
		if venue != "" {
			v, ok := venues[venue]
			if !ok {
				v = g.AddNode(Venue, venue)
				venues[venue] = v
			}
			g.MustAddEdge(p, v, Publish)
		}
		if len(citedKeys) > 0 {
			cites = append(cites, pending{paper: p, cites: citedKeys})
		}
		title, abstract, venue, index = "", "", "", ""
		authorList, citedKeys = nil, nil
		return nil
	}

	for sc.Scan() {
		line++
		raw := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(raw) == "" {
			if err := flush(); err != nil {
				return nil, nil, err
			}
			continue
		}
		sawAny = true
		tag, rest := splitAminerTag(raw)
		switch tag {
		case "#*":
			// Some dumps omit blank lines between records; a new title
			// while a block is in flight starts the next record.
			if index != "" || title != "" {
				if err := flush(); err != nil {
					return nil, nil, err
				}
			}
			title = rest
		case "#@":
			for _, name := range strings.Split(rest, ",") {
				if name = strings.TrimSpace(name); name != "" {
					authorList = append(authorList, name)
				}
			}
		case "#c":
			venue = rest
		case "#index":
			index = rest
		case "#%":
			if rest != "" {
				citedKeys = append(citedKeys, rest)
			}
		case "#!":
			abstract = rest
		case "#t", "#year":
			// Year: not represented in the schema.
		default:
			// Unknown tags (e.g. #conf variants) are skipped, matching the
			// tolerance the public dumps require.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("hetgraph: aminer scan: %w", err)
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	if !sawAny {
		return nil, nil, fmt.Errorf("hetgraph: empty aminer input")
	}

	// Resolve citations, dropping unknown targets and duplicates.
	for _, pc := range cites {
		for _, key := range pc.cites {
			q, ok := papersByKey[key]
			if !ok || q == pc.paper {
				continue
			}
			if !containsID(g.Neighbors(pc.paper, Paper), q) {
				g.MustAddEdge(pc.paper, q, Cite)
			}
		}
	}
	return g, papersByKey, nil
}

// splitAminerTag separates a tagged line into its tag and payload.
// "#index123" and "#index 123" are both accepted, as in the wild.
func splitAminerTag(s string) (tag, rest string) {
	for _, t := range []string{"#index", "#year", "#*", "#@", "#t", "#c", "#%", "#!"} {
		if strings.HasPrefix(s, t) {
			return t, strings.TrimSpace(s[len(t):])
		}
	}
	return "", strings.TrimSpace(s)
}

func containsID(ids []NodeID, x NodeID) bool {
	for _, id := range ids {
		if id == x {
			return true
		}
	}
	return false
}

// AttachTopics adds topic nodes and Mention edges from an external
// paper-to-topics mapping (Aminer dumps ship topic labels separately).
// Keys are the #index values used at parse time; the byIndex map returned
// by ReadAminer translates them. Unknown paper keys are reported.
func AttachTopics(g *Graph, byIndex map[string]NodeID, topics map[string][]string) error {
	topicNodes := map[string]NodeID{}
	var missing []string
	for key, names := range topics {
		p, ok := byIndex[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		for _, name := range names {
			t, ok := topicNodes[name]
			if !ok {
				t = g.AddNode(Topic, name)
				topicNodes[name] = t
			}
			if !containsID(g.Neighbors(p, Topic), t) {
				g.MustAddEdge(p, t, Mention)
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("hetgraph: %d topic entries reference unknown papers (first: %q)",
			len(missing), missing[0])
	}
	return nil
}
