package hetgraph

import (
	"strings"
	"testing"
)

const aminerSample = `#*Community Search Over Big Graphs
#@Alice Smith, Bob Jones
#t2019
#cICDE
#index1
#%2
#%404
#!We study community search at scale.

#*Graph Embedding Methods
#@Bob Jones, Carol White
#t2020
#cKDD
#index2
#%1

#*An Isolated Survey
#@Dan Green
#index3
`

func TestReadAminerBasic(t *testing.T) {
	g, byIndex, err := ReadAminer(strings.NewReader(aminerSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumNodesOfType(Paper); got != 3 {
		t.Fatalf("papers = %d, want 3", got)
	}
	if got := g.NumNodesOfType(Author); got != 4 {
		t.Fatalf("authors = %d, want 4", got)
	}
	if got := g.NumNodesOfType(Venue); got != 2 {
		t.Fatalf("venues = %d, want 2", got)
	}

	p1 := byIndex["1"]
	if !strings.Contains(g.Label(p1), "Community Search") ||
		!strings.Contains(g.Label(p1), "community search at scale") {
		t.Errorf("label lost title or abstract: %q", g.Label(p1))
	}
	// Author order = Zipf ranks.
	authors := g.AuthorsOf(p1)
	if len(authors) != 2 || g.Label(authors[0]) != "Alice Smith" || g.Label(authors[1]) != "Bob Jones" {
		t.Errorf("author order wrong: %v", authors)
	}
	// Bob Jones is shared between papers 1 and 2: P-A-P neighbourhood.
	p2 := byIndex["2"]
	if ns := g.PNeighbors(p1, PAP); len(ns) != 1 || ns[0] != p2 {
		t.Errorf("PAP neighbours of p1 = %v, want [p2]", ns)
	}
	// Citation 1->2 resolved (despite 2 appearing later); 404 dropped;
	// the mutual cite 2->1 deduplicated into one undirected edge.
	if g.NumEdgesOfType(Cite) != 1 {
		t.Errorf("cite edges = %d, want 1", g.NumEdgesOfType(Cite))
	}
	// Paper 3 has no venue: allowed.
	if g.Degree(byIndex["3"], Venue) != 0 {
		t.Error("venue invented for paper 3")
	}
}

func TestReadAminerWithoutBlankSeparators(t *testing.T) {
	in := "#*First\n#@A One\n#index10\n#*Second\n#@B Two\n#index11\n"
	g, byIndex, err := ReadAminer(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodesOfType(Paper) != 2 {
		t.Fatalf("papers = %d, want 2", g.NumNodesOfType(Paper))
	}
	if _, ok := byIndex["11"]; !ok {
		t.Error("second record lost")
	}
}

func TestReadAminerErrors(t *testing.T) {
	if _, _, err := ReadAminer(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ReadAminer(strings.NewReader("#*T\n#@A\n")); err == nil {
		t.Error("block without #index accepted")
	}
	dup := "#*X\n#index5\n\n#*Y\n#index5\n"
	if _, _, err := ReadAminer(strings.NewReader(dup)); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestAttachTopics(t *testing.T) {
	g, byIndex, err := ReadAminer(strings.NewReader(aminerSample))
	if err != nil {
		t.Fatal(err)
	}
	err = AttachTopics(g, byIndex, map[string][]string{
		"1": {"databases", "graphs"},
		"2": {"graphs"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodesOfType(Topic) != 2 {
		t.Fatalf("topics = %d, want 2", g.NumNodesOfType(Topic))
	}
	// P-T-P now connects papers 1 and 2 through "graphs".
	if ns := g.PNeighbors(byIndex["1"], PTP); len(ns) != 1 || ns[0] != byIndex["2"] {
		t.Errorf("PTP neighbours = %v", ns)
	}
	// Unknown paper keys are reported.
	if err := AttachTopics(g, byIndex, map[string][]string{"999": {"x"}}); err == nil {
		t.Error("unknown paper key accepted")
	}
}

func TestReadAminerRoundTripThroughJSON(t *testing.T) {
	g, _, err := ReadAminer(strings.NewReader(aminerSample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Error("aminer graph does not survive the JSON round trip")
	}
}
