package hetgraph

import "fmt"

// InducedSubgraph returns the subgraph of g induced by keeping the given
// papers plus every author, venue and topic adjacent to them, with all
// edges among the kept nodes. Node ids are renumbered densely; the mapping
// from old to new ids is returned alongside. Author order on papers (and
// hence Zipf ranks) is preserved.
//
// Table VI extracts shrinking subgraphs G1..G4 from the original corpus
// this way, as the paper does, instead of generating smaller corpora.
func InducedSubgraph(g *Graph, papers []NodeID) (*Graph, map[NodeID]NodeID, error) {
	keep := map[NodeID]bool{}
	for _, p := range papers {
		if err := g.checkNode(p); err != nil {
			return nil, nil, err
		}
		if g.Type(p) != Paper {
			return nil, nil, fmt.Errorf("hetgraph: induced subgraph seed %d is a %s, not a paper", p, g.Type(p))
		}
		keep[p] = true
	}
	// Pull in the neighbourhood of the kept papers.
	for _, p := range papers {
		for _, t := range []NodeType{Author, Venue, Topic} {
			for _, v := range g.Neighbors(p, t) {
				keep[v] = true
			}
		}
	}

	// Renumber in original insertion order so determinism carries over.
	sub := New()
	mapping := make(map[NodeID]NodeID, len(keep))
	for old := NodeID(0); int(old) < g.NumNodes(); old++ {
		if keep[old] {
			mapping[old] = sub.AddNode(g.Type(old), g.Label(old))
		}
	}

	// Copy edges among kept nodes, each exactly once, always emitting from
	// the paper side: for Write edges this walks the paper's author list
	// in order, preserving Zipf ranks. Cite edges (paper-paper) are
	// deduplicated by emitting only towards higher ids.
	for old := NodeID(0); int(old) < g.NumNodes(); old++ {
		if !keep[old] || g.Type(old) != Paper {
			continue
		}
		add := func(v NodeID, et EdgeType) error {
			if !keep[v] {
				return nil
			}
			return sub.AddEdge(mapping[old], mapping[v], et)
		}
		for _, a := range g.adj[old][Author] {
			if err := add(a, Write); err != nil {
				return nil, nil, err
			}
		}
		for _, v := range g.adj[old][Venue] {
			if err := add(v, Publish); err != nil {
				return nil, nil, err
			}
		}
		for _, t := range g.adj[old][Topic] {
			if err := add(t, Mention); err != nil {
				return nil, nil, err
			}
		}
		for _, q := range g.adj[old][Paper] {
			if q < old {
				continue
			}
			if err := add(q, Cite); err != nil {
				return nil, nil, err
			}
		}
	}
	return sub, mapping, nil
}
