package ta

import (
	"context"
	"sort"
)

// This file holds the generic threshold-algorithm core: an NRA-style
// aggregation over m descending-sorted score lists, independent of graphs
// and expert semantics. TopExperts adapts it to the paper's setting; tests
// can drive it with hand-built lists like the paper's Figure 6/Example 5.

// ListEntry is one (key, score) pair of a ranked list. Keys are dense
// candidate indices assigned by the caller.
type ListEntry struct {
	Key   int32
	Score float64
}

// KeyScore is one aggregated result.
type KeyScore struct {
	Key   int32
	Score float64
}

// Aggregate returns the n keys with the largest summed scores across the
// lists, assuming every list is sorted descending by score and scores are
// non-negative (absent keys contribute zero — the S(a,p)=0 convention).
// numKeys bounds the key space; exact(key) must return the key's true
// total. It is called for keys whose accumulated sum is incomplete when
// the threshold test fires (Theorem 2), and once more for each returned
// key so published scores carry exact()'s summation-order bits rather
// than the scan's (see the canonicalisation note below).
//
// Results are sorted by score descending, ties by key ascending. Stats
// reports the sorted accesses performed and whether the scan stopped
// before exhausting the lists.
func Aggregate(lists [][]ListEntry, numKeys, n int, exact func(int32) float64) ([]KeyScore, Stats) {
	out, st, _ := AggregateCtx(context.Background(), lists, numKeys, n, exact)
	return out, st
}

// AggregateCtx is Aggregate with cooperative cancellation: the round-robin
// descent over the lists checks ctx once per depth round (one sorted
// access per list) and returns ctx.Err() with the partial stats when the
// caller's deadline passes.
func AggregateCtx(ctx context.Context, lists [][]ListEntry, numKeys, n int,
	exact func(int32) float64) ([]KeyScore, Stats, error) {
	st := Stats{Candidates: numKeys}
	if n <= 0 || len(lists) == 0 || numKeys == 0 {
		return nil, st, ctx.Err()
	}

	acc := make([]float64, numKeys)
	seen := make([]bool, numKeys)
	seenLists := make([][]int32, numKeys)
	occur := make([]int32, numKeys)
	for _, l := range lists {
		for _, e := range l {
			occur[e.Key]++
		}
	}
	frontier := make([]float64, len(lists))

	maxDepth := 0
	for _, l := range lists {
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}

	depth := 0
	for depth < maxDepth {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		for j, l := range lists {
			if depth < len(l) {
				e := l[depth]
				st.SortedAccesses++
				acc[e.Key] += e.Score
				seen[e.Key] = true
				seenLists[e.Key] = append(seenLists[e.Key], int32(j))
				frontier[j] = e.Score
			} else {
				frontier[j] = 0
			}
		}
		depth++
		st.Depth = depth
		if terminated(acc, seen, seenLists, frontier, n) {
			st.EarlyTermination = depth < maxDepth
			break
		}
	}

	out := make([]KeyScore, 0, numKeys)
	for k := int32(0); int(k) < numKeys; k++ {
		if !seen[k] {
			continue
		}
		score := acc[k]
		if int32(len(seenLists[k])) != occur[k] {
			score = exact(k)
		}
		out = append(out, KeyScore{Key: k, Score: score})
	}
	sortKeyScoresDesc(out)
	if len(out) > n {
		out = out[:n]
	}
	// Canonicalise the returned scores: the accumulated sums above depend
	// on the order the scan happened to consume entries (and whether the
	// threshold fired before a key's last entry), so two runs reaching the
	// same winners can disagree in the last ulp. Re-scoring every returned
	// key through exact() — whose summation order is fixed by the caller —
	// makes the published scores a pure function of the input, which is
	// what lets a distributed merge reproduce them bit for bit.
	for i := range out {
		out[i].Score = exact(out[i].Key)
	}
	sortKeyScoresDesc(out)
	return out, st, nil
}

func sortKeyScoresDesc(out []KeyScore) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key < out[j].Key
	})
}
