package ta

import (
	"context"
	"slices"
	"sort"
	"sync"
)

// This file holds the generic threshold-algorithm core: an NRA-style
// aggregation over m descending-sorted score lists, independent of graphs
// and expert semantics. TopExperts adapts it to the paper's setting; tests
// can drive it with hand-built lists like the paper's Figure 6/Example 5.

// ListEntry is one (key, score) pair of a ranked list. Keys are dense
// candidate indices assigned by the caller.
type ListEntry struct {
	Key   int32
	Score float64
}

// KeyScore is one aggregated result.
type KeyScore struct {
	Key   int32
	Score float64
}

// aggScratch holds the per-run working arrays of AggregateCtx, pooled so a
// hot query path does not reallocate them per request. The seen-list sets
// live in one CSR buffer (offsets from the per-key occurrence counts)
// instead of a slice per key.
type aggScratch struct {
	acc       []float64
	seen      []bool
	occur     []int32
	offsets   []int32
	seenCount []int32
	seenBuf   []int32
	frontier  []float64
	lows      []float64
}

var aggPool = sync.Pool{New: func() any { return new(aggScratch) }}

func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}

// Aggregate returns the n keys with the largest summed scores across the
// lists, assuming every list is sorted descending by score and scores are
// non-negative (absent keys contribute zero — the S(a,p)=0 convention).
// numKeys bounds the key space; exact(key) must return the key's true
// total. It is called for keys whose accumulated sum is incomplete when
// the threshold test fires (Theorem 2), and once more for each returned
// key so published scores carry exact()'s summation-order bits rather
// than the scan's (see the canonicalisation note below).
//
// Results are sorted by score descending, ties by key ascending. Stats
// reports the sorted accesses performed and whether the scan stopped
// before exhausting the lists.
func Aggregate(lists [][]ListEntry, numKeys, n int, exact func(int32) float64) ([]KeyScore, Stats) {
	out, st, _ := AggregateCtx(context.Background(), lists, numKeys, n, exact)
	return out, st
}

// AggregateCtx is Aggregate with cooperative cancellation: the round-robin
// descent over the lists checks ctx once per depth round (one sorted
// access per list) and returns ctx.Err() with the partial stats when the
// caller's deadline passes.
func AggregateCtx(ctx context.Context, lists [][]ListEntry, numKeys, n int,
	exact func(int32) float64) ([]KeyScore, Stats, error) {
	st := Stats{Candidates: numKeys}
	if n <= 0 || len(lists) == 0 || numKeys == 0 {
		return nil, st, ctx.Err()
	}

	sc := aggPool.Get().(*aggScratch)
	defer aggPool.Put(sc)
	sc.acc = grow(sc.acc, numKeys)
	sc.seen = grow(sc.seen, numKeys)
	sc.occur = grow(sc.occur, numKeys)
	sc.offsets = grow(sc.offsets, numKeys)
	sc.seenCount = grow(sc.seenCount, numKeys)
	sc.frontier = grow(sc.frontier, len(lists))
	acc, seen, frontier := sc.acc, sc.seen, sc.frontier

	total := 0
	maxDepth := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}
	for _, l := range lists {
		for _, e := range l {
			sc.occur[e.Key]++
		}
	}
	var off int32
	for k := 0; k < numKeys; k++ {
		sc.offsets[k] = off
		off += sc.occur[k]
	}
	if cap(sc.seenBuf) < total {
		sc.seenBuf = make([]int32, total)
	}
	seenBuf := sc.seenBuf[:total]

	depth := 0
	var maxAcc float64 // largest accumulated sum so far: caps every LB
	for depth < maxDepth {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		for j, l := range lists {
			if depth < len(l) {
				e := l[depth]
				st.SortedAccesses++
				acc[e.Key] += e.Score
				if acc[e.Key] > maxAcc {
					maxAcc = acc[e.Key]
				}
				seen[e.Key] = true
				seenBuf[sc.offsets[e.Key]+sc.seenCount[e.Key]] = int32(j)
				sc.seenCount[e.Key]++
				frontier[j] = e.Score
			} else {
				frontier[j] = 0
			}
		}
		depth++
		st.Depth = depth
		if terminated(sc, n, maxAcc) {
			st.EarlyTermination = depth < maxDepth
			break
		}
	}

	out := make([]KeyScore, 0, numKeys)
	for k := int32(0); int(k) < numKeys; k++ {
		if !seen[k] {
			continue
		}
		score := acc[k]
		if sc.seenCount[k] != sc.occur[k] {
			score = exact(k)
		}
		out = append(out, KeyScore{Key: k, Score: score})
	}
	sortKeyScoresDesc(out)
	if len(out) > n {
		out = out[:n]
	}
	// Canonicalise the returned scores: the accumulated sums above depend
	// on the order the scan happened to consume entries (and whether the
	// threshold fired before a key's last entry), so two runs reaching the
	// same winners can disagree in the last ulp. Re-scoring every returned
	// key through exact() — whose summation order is fixed by the caller —
	// makes the published scores a pure function of the input, which is
	// what lets a distributed merge reproduce them bit for bit.
	for i := range out {
		out[i].Score = exact(out[i].Key)
	}
	sortKeyScoresDesc(out)
	return out, st, nil
}

// terminated applies the NRA termination check: LB (the n-th largest lower
// bound) must be >= UB (the greatest upper bound among all other
// candidates, including the bound Σ_j frontier_j on never-seen keys).
func terminated(sc *aggScratch, n int, maxAcc float64) bool {
	acc, seen, frontier := sc.acc, sc.seen, sc.frontier

	// Cheap O(lists) pre-check: UB is at least the frontier sum (an unseen
	// key could sit just below every frontier), and LB is at most the
	// largest accumulated sum, so if Σ frontier exceeds max(acc) the full
	// test cannot fire. Early rounds, where the frontiers are still fat,
	// skip the O(candidates) passes below entirely.
	var totalFrontier float64
	for _, f := range frontier {
		totalFrontier += f
	}
	if totalFrontier > maxAcc {
		return false
	}

	lows := sc.lows[:0]
	for k, lo := range acc {
		if seen[k] {
			lows = append(lows, lo)
		}
	}
	sc.lows = lows
	if len(lows) < n {
		return false
	}
	sort.Float64s(lows)
	lb := lows[len(lows)-n]

	// Upper bound of an unseen key: it could sit just below the frontier
	// of every list.
	ub := totalFrontier

	// Identify the provisional top-n: everyone strictly above lb, plus
	// enough lb-tied keys (smallest first) to fill n slots.
	above := 0
	for k, lo := range acc {
		if seen[k] && lo > lb {
			above++
		}
	}
	ties := n - above

	// Upper bound of each seen key outside the provisional top-n: its
	// accumulated part plus the frontier of every list it has not
	// appeared in, i.e. lo + totalFrontier - Σ_{j seen} frontier_j.
	for k, lo := range acc {
		if !seen[k] || lo > lb {
			continue
		}
		if lo == lb && ties > 0 {
			ties--
			continue
		}
		u := lo + totalFrontier
		for _, j := range sc.seenBuf[sc.offsets[k] : sc.offsets[k]+sc.seenCount[k]] {
			u -= frontier[j]
		}
		if u > ub {
			ub = u
		}
	}
	return lb >= ub
}

func sortKeyScoresDesc(out []KeyScore) {
	slices.SortFunc(out, func(a, b KeyScore) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
}
