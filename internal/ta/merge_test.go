package ta

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"expertfind/internal/hetgraph"
)

func rankings(pairs ...interface{}) []Ranking {
	out := make([]Ranking, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Ranking{
			Expert: hetgraph.NodeID(pairs[i].(int)),
			Score:  pairs[i+1].(float64),
		})
	}
	return out
}

func TestMergePartialsExhausted(t *testing.T) {
	// Two exhausted shards: the merge is a plain per-expert sum and is
	// always certified.
	parts := []Partial{
		{Entries: rankings(1, 0.5, 2, 0.25), Exhausted: true},
		{Entries: rankings(2, 0.5, 3, 0.125), Exhausted: true},
	}
	top, st := MergePartials(parts, 3)
	if !st.Satisfied {
		t.Fatal("exhausted partials must satisfy the bound")
	}
	want := rankings(2, 0.75, 1, 0.5, 3, 0.125)
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("merged = %v, want %v", top, want)
	}
	if st.Candidates != 3 || st.Inexact != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMergePartialsBoundSatisfied(t *testing.T) {
	// Expert 1 is present in both truncated shards with a total far above
	// anything the thresholds could assemble, so one round certifies it.
	parts := []Partial{
		{Entries: rankings(1, 10.0), Threshold: 0.5},
		{Entries: rankings(1, 8.0), Threshold: 0.5},
	}
	top, st := MergePartials(parts, 1)
	if !st.Satisfied {
		t.Fatalf("bound should be satisfied: %+v", st)
	}
	if len(top) != 1 || top[0].Expert != 1 || top[0].Score != 18.0 {
		t.Fatalf("top = %v", top)
	}
}

func TestMergePartialsNeedsDeeperFetch(t *testing.T) {
	// Expert 2 is missing from shard 1's truncated list; its upper bound
	// (6+3=9) beats expert 1's exact 4+4=8, so the merge must refuse.
	parts := []Partial{
		{Entries: rankings(2, 6.0, 1, 4.0), Threshold: 4.0},
		{Entries: rankings(1, 4.0, 3, 3.0), Threshold: 3.0},
	}
	_, st := MergePartials(parts, 1)
	if st.Satisfied {
		t.Fatal("bound must not be satisfied while expert 2's upper bound dominates")
	}
	if st.Inexact == 0 {
		t.Fatalf("expected inexact candidates, stats %+v", st)
	}
}

func TestMergePartialsUnseenCandidateBlocks(t *testing.T) {
	// Thresholds alone could hide an unseen expert with up to 3.0 total,
	// above the best exact score — not certifiable.
	parts := []Partial{
		{Entries: rankings(1, 1.0), Threshold: 1.5},
		{Entries: rankings(1, 1.0), Threshold: 1.5},
	}
	_, st := MergePartials(parts, 1)
	if st.Satisfied {
		t.Fatal("unseen-candidate bound must block certification")
	}
}

func TestMergePartialsBoundaryTieIsConservative(t *testing.T) {
	// Expert 9's upper bound (2+1=3) exactly touches expert 10's exact
	// score 3: a true tie would be won by the smaller id, so the merge
	// must deepen rather than certify.
	parts := []Partial{
		{Entries: rankings(10, 2.0), Threshold: 1.0},
		{Entries: rankings(9, 2.0, 10, 1.0), Threshold: 2.0},
	}
	_, st := MergePartials(parts, 1)
	if st.Satisfied {
		t.Fatal("boundary-touching upper bound must not certify")
	}
}

func TestMergePartialsTieOrder(t *testing.T) {
	// Equal merged scores must come back ordered by expert id ascending.
	parts := []Partial{
		{Entries: rankings(7, 0.5, 3, 0.5, 5, 0.5), Exhausted: true},
		{Entries: rankings(5, 0.5, 3, 0.5, 7, 0.5), Exhausted: true},
	}
	top, st := MergePartials(parts, 3)
	if !st.Satisfied {
		t.Fatal("exhausted partials must satisfy")
	}
	want := rankings(3, 1.0, 5, 1.0, 7, 1.0)
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("tie order = %v, want %v", top, want)
	}
}

func TestMergePartialsEdgeCases(t *testing.T) {
	if top, st := MergePartials(nil, 5); top != nil || !st.Satisfied {
		t.Fatalf("nil parts: %v %+v", top, st)
	}
	if top, st := MergePartials([]Partial{{Exhausted: true}}, 0); top != nil || !st.Satisfied {
		t.Fatalf("n=0: %v %+v", top, st)
	}
	// Fewer candidates than n, all exhausted: return everyone, certified.
	top, st := MergePartials([]Partial{{Entries: rankings(1, 1.0), Exhausted: true}}, 10)
	if !st.Satisfied || len(top) != 1 {
		t.Fatalf("short exhausted merge: %v %+v", top, st)
	}
	// Fewer exact candidates than n with a truncated shard: must deepen.
	_, st = MergePartials([]Partial{{Entries: rankings(1, 1.0), Threshold: 0.5}}, 10)
	if st.Satisfied {
		t.Fatal("short truncated merge must not certify")
	}
}

// TestMergePartialsMatchesFullMergeRandom cross-checks the certified merge
// against the trivial exhaustive merge on random per-shard score tables:
// whenever a truncated merge certifies, its answer must equal the
// exhaustive one, bit for bit and in the same order.
func TestMergePartialsMatchesFullMergeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		shards := 2 + rng.Intn(3)
		experts := 4 + rng.Intn(12)
		n := 1 + rng.Intn(4)

		// Random per-shard partial scores; ~half the (shard, expert)
		// pairs are zero so absence is common.
		scores := make([][]float64, shards)
		for s := range scores {
			scores[s] = make([]float64, experts)
			for a := range scores[s] {
				if rng.Intn(2) == 0 {
					scores[s][a] = float64(1+rng.Intn(8)) / 8
				}
			}
		}
		full := func(s int) []Ranking {
			var l []Ranking
			for a := 0; a < experts; a++ {
				if scores[s][a] > 0 {
					l = append(l, Ranking{Expert: hetgraph.NodeID(a), Score: scores[s][a]})
				}
			}
			sort.Slice(l, func(i, j int) bool {
				if l[i].Score != l[j].Score {
					return l[i].Score > l[j].Score
				}
				return l[i].Expert < l[j].Expert
			})
			return l
		}

		exhaustive := make([]Partial, shards)
		for s := range exhaustive {
			exhaustive[s] = Partial{Entries: full(s), Exhausted: true}
		}
		want, st := MergePartials(exhaustive, n)
		if !st.Satisfied {
			t.Fatalf("trial %d: exhaustive merge not satisfied", trial)
		}

		// Truncate each shard to a random depth and merge; a certified
		// answer must match the exhaustive one exactly.
		limit := 1 + rng.Intn(experts)
		truncated := make([]Partial, shards)
		for s := range truncated {
			l := full(s)
			if len(l) > limit {
				truncated[s] = Partial{Entries: l[:limit], Threshold: l[limit].Score}
			} else {
				truncated[s] = Partial{Entries: l, Exhausted: true}
			}
		}
		got, st := MergePartials(truncated, n)
		if st.Satisfied && !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: certified merge %v != exhaustive %v", trial, got, want)
		}
	}
}
