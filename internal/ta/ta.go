// Package ta implements §IV-C: expert scoring over the retrieved top-m
// papers (Eq. 4-6, with Zipf-distributed author-contribution weights) and
// the threshold-algorithm (TA/NRA) top-n expert finding that terminates
// without scanning and ranking all candidates. A full-scan ranker is the
// "w/o TA" baseline of Figure 7. The generic list-aggregation core lives
// in aggregate.go.
//
// Note on polarity: Problem 1 writes arg min R(a), but the score of Eq. 4-6
// accumulates reciprocal ranks, so larger R means a better expert, and the
// paper's own TA walkthrough (Example 5) returns the experts with the
// greatest R. We follow the walkthrough: top-n means the n largest R(a).
package ta

import (
	"context"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"expertfind/internal/hetgraph"
)

// Ranking is one returned expert with its ranking score R(a).
type Ranking struct {
	Expert hetgraph.NodeID
	Score  float64
}

// Stats reports the work done by a TA run, for the efficiency evaluation.
type Stats struct {
	// Candidates is |C|, the number of distinct candidate experts.
	Candidates int
	// SortedAccesses counts entries read from the ranked lists before
	// termination.
	SortedAccesses int
	// Depth is the list depth reached when the threshold test fired.
	Depth int
	// EarlyTermination reports whether TA stopped before exhausting the
	// lists.
	EarlyTermination bool
}

// ContributionWeight returns w(a,p) of Eq. 5 for the author at 1-based
// rank within a paper having numAuthors authors: a Zipf distribution over
// author positions, normalised by the harmonic number H(numAuthors).
func ContributionWeight(rank, numAuthors int) float64 {
	if rank < 1 || numAuthors < 1 || rank > numAuthors {
		return 0
	}
	return 1 / (float64(rank) * harmonic(numAuthors))
}

// ExpertScore returns S(a,p) of Eq. 4 for the author at 1-based authorRank
// of the paper at 1-based paperRank in the retrieved list.
func ExpertScore(paperRank, authorRank, numAuthors int) float64 {
	if paperRank < 1 {
		return 0
	}
	return ContributionWeight(authorRank, numAuthors) / float64(paperRank)
}

// harmonic returns H(n), memoised: every H(i) extends H(i-1) by 1/i, the
// same ascending summation the direct loop performs, so cached and
// uncached values are bit-identical. The table is tiny (author counts),
// swapped atomically so concurrent rankings read without locking.
func harmonic(n int) float64 {
	if n < 1 {
		return 0
	}
	tab, _ := harmonicVal.Load().([]float64)
	if n < len(tab) {
		return tab[n]
	}
	harmonicMu.Lock()
	defer harmonicMu.Unlock()
	tab, _ = harmonicVal.Load().([]float64)
	if n < len(tab) {
		return tab[n]
	}
	nt := make([]float64, n+1)
	copy(nt, tab)
	start := len(tab)
	if start < 1 {
		start = 1
	}
	for i := start; i <= n; i++ {
		nt[i] = nt[i-1] + 1/float64(i)
	}
	harmonicVal.Store(nt)
	return nt[n]
}

var (
	harmonicMu  sync.Mutex
	harmonicVal atomic.Value // []float64; index i holds H(i)
)

// candidateIndex interns expert NodeIDs as dense keys for Aggregate: the
// key of id is its position in the sorted ids slice.
type candidateIndex struct {
	ids []hetgraph.NodeID
}

// buildLists materialises the m ranked lists of Figure 6, one per
// retrieved paper, restricted to experts with non-zero score (a paper's
// own authors; all other candidates implicitly score zero, exactly the
// S(a,p_j)=0 convention of the paper). The Zipf weight is strictly
// decreasing in author rank, so each list is already in descending score
// order. All entries live in one flat arena sliced per paper.
func buildLists(g *hetgraph.Graph, papers []hetgraph.NodeID) ([][]ListEntry, *candidateIndex) {
	// Assign dense keys in ascending NodeID order so Aggregate's key
	// tie-break coincides with the package's NodeID tie-break — otherwise
	// equal-score experts at the top-n boundary could differ from the
	// full-scan ranking. Sort-and-compact plus binary search beats a hash
	// map here: candidate sets are a few hundred ids.
	total := 0
	for _, p := range papers {
		total += len(g.AuthorsOf(p))
	}
	all := make([]hetgraph.NodeID, 0, total)
	for _, p := range papers {
		all = append(all, g.AuthorsOf(p)...)
	}
	slices.Sort(all)
	all = slices.Compact(all)
	cands := &candidateIndex{ids: all}

	arena := make([]ListEntry, 0, total)
	lists := make([][]ListEntry, 0, len(papers))
	for j, p := range papers {
		authors := g.AuthorsOf(p)
		start := len(arena)
		for i, a := range authors {
			k, _ := slices.BinarySearch(all, a)
			arena = append(arena, ListEntry{Key: int32(k), Score: ExpertScore(j+1, i+1, len(authors))})
		}
		lists = append(lists, arena[start:len(arena):len(arena)])
	}
	return lists, cands
}

// TopExperts runs the TA-based top-n expert finding of §IV-C over the
// ranked retrieved papers (rank 1 first). It maintains upper and lower
// bounds of R(a) per visited expert (Eq. 7) and terminates as soon as the
// n-th largest lower bound is at least every other candidate's upper bound
// (Theorem 2). The returned experts carry their exact scores, descending.
func TopExperts(g *hetgraph.Graph, papers []hetgraph.NodeID, n int) ([]Ranking, Stats) {
	out, st, _ := TopExpertsCtx(context.Background(), g, papers, n)
	return out, st
}

// TopExpertsCtx is TopExperts with cooperative cancellation, checked once
// per TA depth round. On cancellation it returns ctx.Err() and the work
// stats accumulated so far; no partial ranking is returned, because a
// truncated TA scan carries no correctness guarantee.
func TopExpertsCtx(ctx context.Context, g *hetgraph.Graph, papers []hetgraph.NodeID, n int) ([]Ranking, Stats, error) {
	lists, cands := buildLists(g, papers)

	// Random-access scorer: recompute R(a) by walking the retrieved list
	// in ASCENDING PAPER RANK. This order is the package's canonical
	// summation order — Aggregate re-scores every returned winner through
	// it, and cluster routers re-sum cross-shard contributions in the
	// same order, so single-node and distributed scores agree bit for
	// bit. The per-key contribution index (CSR over one flat buffer,
	// filled in ascending paper rank so the prefix order IS the canonical
	// order) is built lazily on the first call — TA often terminates
	// without needing random access at all.
	var coff, ccnt []int32
	var cbuf []float64
	exact := func(key int32) float64 {
		if cbuf == nil {
			total := 0
			ccnt = make([]int32, len(cands.ids))
			for _, l := range lists {
				total += len(l)
				for _, e := range l {
					ccnt[e.Key]++
				}
			}
			coff = make([]int32, len(cands.ids))
			var off int32
			for k := range coff {
				coff[k] = off
				off += ccnt[k]
				ccnt[k] = 0
			}
			cbuf = make([]float64, total)
			for _, l := range lists {
				for _, e := range l {
					cbuf[coff[e.Key]+ccnt[e.Key]] = e.Score
					ccnt[e.Key]++
				}
			}
		}
		var r float64
		for _, s := range cbuf[coff[key] : coff[key]+ccnt[key]] {
			r += s
		}
		return r
	}

	top, st, err := AggregateCtx(ctx, lists, len(cands.ids), n, exact)
	st.record()
	if err != nil {
		return nil, st, err
	}
	if len(top) == 0 {
		return nil, st, nil
	}
	out := make([]Ranking, len(top))
	for i, ks := range top {
		out[i] = Ranking{Expert: cands.ids[ks.Key], Score: ks.Score}
	}
	// Aggregate breaks ties by dense key; re-break by NodeID for a stable
	// public contract.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Expert < out[j].Expert
	})
	return out, st, nil
}

// TopExpertsFullScan computes R(a) for every candidate expert of the
// retrieved papers and returns the n largest — the "w/o TA" baseline.
func TopExpertsFullScan(g *hetgraph.Graph, papers []hetgraph.NodeID, n int) []Ranking {
	scores := map[hetgraph.NodeID]float64{}
	for j, p := range papers {
		authors := g.AuthorsOf(p)
		for i, a := range authors {
			scores[a] += ExpertScore(j+1, i+1, len(authors))
		}
	}
	out := make([]Ranking, 0, len(scores))
	for a, s := range scores {
		out = append(out, Ranking{Expert: a, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Expert < out[j].Expert
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
