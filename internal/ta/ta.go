// Package ta implements §IV-C: expert scoring over the retrieved top-m
// papers (Eq. 4-6, with Zipf-distributed author-contribution weights) and
// the threshold-algorithm (TA/NRA) top-n expert finding that terminates
// without scanning and ranking all candidates. A full-scan ranker is the
// "w/o TA" baseline of Figure 7. The generic list-aggregation core lives
// in aggregate.go.
//
// Note on polarity: Problem 1 writes arg min R(a), but the score of Eq. 4-6
// accumulates reciprocal ranks, so larger R means a better expert, and the
// paper's own TA walkthrough (Example 5) returns the experts with the
// greatest R. We follow the walkthrough: top-n means the n largest R(a).
package ta

import (
	"context"
	"sort"

	"expertfind/internal/hetgraph"
)

// Ranking is one returned expert with its ranking score R(a).
type Ranking struct {
	Expert hetgraph.NodeID
	Score  float64
}

// Stats reports the work done by a TA run, for the efficiency evaluation.
type Stats struct {
	// Candidates is |C|, the number of distinct candidate experts.
	Candidates int
	// SortedAccesses counts entries read from the ranked lists before
	// termination.
	SortedAccesses int
	// Depth is the list depth reached when the threshold test fired.
	Depth int
	// EarlyTermination reports whether TA stopped before exhausting the
	// lists.
	EarlyTermination bool
}

// ContributionWeight returns w(a,p) of Eq. 5 for the author at 1-based
// rank within a paper having numAuthors authors: a Zipf distribution over
// author positions, normalised by the harmonic number H(numAuthors).
func ContributionWeight(rank, numAuthors int) float64 {
	if rank < 1 || numAuthors < 1 || rank > numAuthors {
		return 0
	}
	return 1 / (float64(rank) * harmonic(numAuthors))
}

// ExpertScore returns S(a,p) of Eq. 4 for the author at 1-based authorRank
// of the paper at 1-based paperRank in the retrieved list.
func ExpertScore(paperRank, authorRank, numAuthors int) float64 {
	if paperRank < 1 {
		return 0
	}
	return ContributionWeight(authorRank, numAuthors) / float64(paperRank)
}

func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// candidateIndex interns expert NodeIDs as dense keys for Aggregate.
type candidateIndex struct {
	ids []hetgraph.NodeID
	idx map[hetgraph.NodeID]int32
}

func (c *candidateIndex) intern(a hetgraph.NodeID) int32 {
	if i, ok := c.idx[a]; ok {
		return i
	}
	i := int32(len(c.ids))
	c.ids = append(c.ids, a)
	c.idx[a] = i
	return i
}

// buildLists materialises the m ranked lists of Figure 6, one per
// retrieved paper, restricted to experts with non-zero score (a paper's
// own authors; all other candidates implicitly score zero, exactly the
// S(a,p_j)=0 convention of the paper). The Zipf weight is strictly
// decreasing in author rank, so each list is already in descending score
// order.
func buildLists(g *hetgraph.Graph, papers []hetgraph.NodeID) ([][]ListEntry, *candidateIndex) {
	// Assign dense keys in ascending NodeID order so Aggregate's key
	// tie-break coincides with the package's NodeID tie-break — otherwise
	// equal-score experts at the top-n boundary could differ from the
	// full-scan ranking.
	cands := &candidateIndex{idx: map[hetgraph.NodeID]int32{}}
	var all []hetgraph.NodeID
	for _, p := range papers {
		for _, a := range g.AuthorsOf(p) {
			if _, ok := cands.idx[a]; !ok {
				cands.idx[a] = -1 // placeholder
				all = append(all, a)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cands.idx = make(map[hetgraph.NodeID]int32, len(all))
	for _, a := range all {
		cands.intern(a)
	}

	lists := make([][]ListEntry, 0, len(papers))
	for j, p := range papers {
		authors := g.AuthorsOf(p)
		l := make([]ListEntry, len(authors))
		for i, a := range authors {
			l[i] = ListEntry{Key: cands.idx[a], Score: ExpertScore(j+1, i+1, len(authors))}
		}
		lists = append(lists, l)
	}
	return lists, cands
}

// TopExperts runs the TA-based top-n expert finding of §IV-C over the
// ranked retrieved papers (rank 1 first). It maintains upper and lower
// bounds of R(a) per visited expert (Eq. 7) and terminates as soon as the
// n-th largest lower bound is at least every other candidate's upper bound
// (Theorem 2). The returned experts carry their exact scores, descending.
func TopExperts(g *hetgraph.Graph, papers []hetgraph.NodeID, n int) ([]Ranking, Stats) {
	out, st, _ := TopExpertsCtx(context.Background(), g, papers, n)
	return out, st
}

// TopExpertsCtx is TopExperts with cooperative cancellation, checked once
// per TA depth round. On cancellation it returns ctx.Err() and the work
// stats accumulated so far; no partial ranking is returned, because a
// truncated TA scan carries no correctness guarantee.
func TopExpertsCtx(ctx context.Context, g *hetgraph.Graph, papers []hetgraph.NodeID, n int) ([]Ranking, Stats, error) {
	lists, cands := buildLists(g, papers)

	// Random-access scorer: recompute R(a) by walking the retrieved list
	// in ASCENDING PAPER RANK. This order is the package's canonical
	// summation order — Aggregate re-scores every returned winner through
	// it, and cluster routers re-sum cross-shard contributions in the
	// same order, so single-node and distributed scores agree bit for
	// bit. The per-author contribution index is built lazily on the first
	// call — TA often terminates without needing random access at all.
	var contribs map[int32][]float64
	exact := func(key int32) float64 {
		if contribs == nil {
			contribs = make(map[int32][]float64, len(cands.ids))
			for j, p := range papers {
				authors := g.AuthorsOf(p)
				for i, a := range authors {
					k := cands.idx[a]
					contribs[k] = append(contribs[k], ExpertScore(j+1, i+1, len(authors)))
				}
			}
		}
		var r float64
		for _, s := range contribs[key] {
			r += s
		}
		return r
	}

	top, st, err := AggregateCtx(ctx, lists, len(cands.ids), n, exact)
	st.record()
	if err != nil {
		return nil, st, err
	}
	if len(top) == 0 {
		return nil, st, nil
	}
	out := make([]Ranking, len(top))
	for i, ks := range top {
		out[i] = Ranking{Expert: cands.ids[ks.Key], Score: ks.Score}
	}
	// Aggregate breaks ties by dense key; re-break by NodeID for a stable
	// public contract.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Expert < out[j].Expert
	})
	return out, st, nil
}

// terminated applies the NRA termination check: LB (the n-th largest lower
// bound) must be >= UB (the greatest upper bound among all other
// candidates, including the bound Σ_j frontier_j on never-seen keys).
func terminated(acc []float64, seen []bool, seenLists [][]int32,
	frontier []float64, n int) bool {
	lows := make([]float64, 0, len(acc))
	for k, lo := range acc {
		if seen[k] {
			lows = append(lows, lo)
		}
	}
	if len(lows) < n {
		return false
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(lows)))
	lb := lows[n-1]

	// Upper bound of an unseen key: it could sit just below the frontier
	// of every list.
	var totalFrontier float64
	for _, f := range frontier {
		totalFrontier += f
	}
	ub := totalFrontier

	// Identify the provisional top-n: everyone strictly above lb, plus
	// enough lb-tied keys (smallest first) to fill n slots.
	above := 0
	for k, lo := range acc {
		if seen[k] && lo > lb {
			above++
		}
	}
	ties := n - above

	// Upper bound of each seen key outside the provisional top-n: its
	// accumulated part plus the frontier of every list it has not
	// appeared in, i.e. lo + totalFrontier - Σ_{j seen} frontier_j.
	for k, lo := range acc {
		if !seen[k] || lo > lb {
			continue
		}
		if lo == lb && ties > 0 {
			ties--
			continue
		}
		u := lo + totalFrontier
		for _, j := range seenLists[k] {
			u -= frontier[j]
		}
		if u > ub {
			ub = u
		}
	}
	return lb >= ub
}

// TopExpertsFullScan computes R(a) for every candidate expert of the
// retrieved papers and returns the n largest — the "w/o TA" baseline.
func TopExpertsFullScan(g *hetgraph.Graph, papers []hetgraph.NodeID, n int) []Ranking {
	scores := map[hetgraph.NodeID]float64{}
	for j, p := range papers {
		authors := g.AuthorsOf(p)
		for i, a := range authors {
			scores[a] += ExpertScore(j+1, i+1, len(authors))
		}
	}
	out := make([]Ranking, 0, len(scores))
	for a, s := range scores {
		out = append(out, Ranking{Expert: a, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Expert < out[j].Expert
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
