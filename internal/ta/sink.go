package ta

import "sync/atomic"

// Sink receives named measurements from every TopExperts run, so a
// service can watch candidate-set sizes and termination depths across
// requests (obs.Registry satisfies the interface). Stats remains the
// per-call report.
type Sink interface {
	Observe(name string, v float64)
}

type sinkBox struct{ s Sink }

var sinkHolder atomic.Value

// SetSink installs the package-wide measurement sink; nil disables
// recording. Safe to call concurrently with rankings.
func SetSink(s Sink) { sinkHolder.Store(sinkBox{s}) }

func currentSink() Sink {
	if b, ok := sinkHolder.Load().(sinkBox); ok {
		return b.s
	}
	return nil
}

// record forwards one run's stats to the sink, if installed.
func (st Stats) record() {
	s := currentSink()
	if s == nil {
		return
	}
	s.Observe("expertfind_ta_runs_total", 1)
	s.Observe("expertfind_ta_candidates_total", float64(st.Candidates))
	s.Observe("expertfind_ta_depth_total", float64(st.Depth))
	s.Observe("expertfind_ta_sorted_accesses_total", float64(st.SortedAccesses))
	if st.EarlyTermination {
		s.Observe("expertfind_ta_early_terminations_total", 1)
	}
}
