package ta

import (
	"math"
	"math/rand"
	"testing"
)

// bruteAggregate is the reference: sum every key's scores, sort, cut.
func bruteAggregate(lists [][]ListEntry, numKeys, n int) []KeyScore {
	acc := make([]float64, numKeys)
	present := make([]bool, numKeys)
	for _, l := range lists {
		for _, e := range l {
			acc[e.Key] += e.Score
			present[e.Key] = true
		}
	}
	var out []KeyScore
	for k := int32(0); int(k) < numKeys; k++ {
		if present[k] {
			out = append(out, KeyScore{Key: k, Score: acc[k]})
		}
	}
	sortKeyScores(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func sortKeyScores(out []KeyScore) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Score > a.Score || (b.Score == a.Score && b.Key < a.Key) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
}

// exactFor builds the random-access oracle from the lists themselves.
func exactFor(lists [][]ListEntry, numKeys int) func(int32) float64 {
	acc := make([]float64, numKeys)
	for _, l := range lists {
		for _, e := range l {
			acc[e.Key] += e.Score
		}
	}
	return func(k int32) float64 { return acc[k] }
}

// TestAggregateWalkthrough drives the generic TA with a hand-built
// instance in the spirit of the paper's Figure 6 / Example 5: three
// ranked lists, a dominant pair of experts, early termination.
func TestAggregateWalkthrough(t *testing.T) {
	// Keys: 0..4. Lists sorted descending.
	lists := [][]ListEntry{
		{{Key: 0, Score: 0.83}, {Key: 1, Score: 0.40}, {Key: 2, Score: 0.05}},
		{{Key: 3, Score: 0.83}, {Key: 0, Score: 0.45}, {Key: 4, Score: 0.02}},
		{{Key: 1, Score: 0.71}, {Key: 3, Score: 0.30}, {Key: 2, Score: 0.01}},
	}
	got, st := Aggregate(lists, 5, 2, exactFor(lists, 5))
	want := bruteAggregate(lists, 5, 2)
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range want {
		if got[i].Key != want[i].Key || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if st.Candidates != 5 || st.Depth == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	if out, _ := Aggregate(nil, 0, 3, nil); out != nil {
		t.Error("no lists returned results")
	}
	if out, _ := Aggregate([][]ListEntry{{{Key: 0, Score: 1}}}, 1, 0, nil); out != nil {
		t.Error("n=0 returned results")
	}
	// Empty individual lists are fine.
	lists := [][]ListEntry{{}, {{Key: 0, Score: 1}}, {}}
	out, _ := Aggregate(lists, 1, 5, exactFor(lists, 1))
	if len(out) != 1 || out[0].Key != 0 || out[0].Score != 1 {
		t.Errorf("out = %v", out)
	}
}

// Property: Aggregate matches the brute-force reference on random
// instances, for every n.
func TestAggregateMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numKeys := 1 + rng.Intn(40)
		numLists := 1 + rng.Intn(25)
		lists := make([][]ListEntry, numLists)
		for j := range lists {
			entries := rng.Intn(6)
			perm := rng.Perm(numKeys)
			if entries > numKeys {
				entries = numKeys
			}
			l := make([]ListEntry, entries)
			for i := 0; i < entries; i++ {
				l[i] = ListEntry{Key: int32(perm[i]), Score: rng.Float64()}
			}
			// Sort descending as the contract requires.
			sortEntriesDesc(l)
			lists[j] = l
		}
		oracle := exactFor(lists, numKeys)
		for _, n := range []int{1, 2, 5, 50} {
			got, _ := Aggregate(lists, numKeys, n, oracle)
			want := bruteAggregate(lists, numKeys, n)
			if len(got) != len(want) {
				t.Fatalf("seed %d n=%d: sizes %d vs %d", seed, n, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("seed %d n=%d rank %d: got %+v, want %+v", seed, n, i, got[i], want[i])
				}
			}
		}
	}
}

func sortEntriesDesc(l []ListEntry) {
	for i := 1; i < len(l); i++ {
		for j := i; j > 0 && l[j].Score > l[j-1].Score; j-- {
			l[j], l[j-1] = l[j-1], l[j]
		}
	}
}

func TestAggregateEarlyTerminationOnDominantKey(t *testing.T) {
	// 30 lists, key 0 leads all of them by a wide margin; the tail keys
	// are all distinct, so TA should stop well before depth 3.
	var lists [][]ListEntry
	key := int32(1)
	for j := 0; j < 30; j++ {
		lists = append(lists, []ListEntry{
			{Key: 0, Score: 1.0},
			{Key: key, Score: 0.01},
			{Key: key + 1, Score: 0.005},
		})
		key += 2
	}
	numKeys := int(key + 1)
	got, st := Aggregate(lists, numKeys, 1, exactFor(lists, numKeys))
	if len(got) != 1 || got[0].Key != 0 {
		t.Fatalf("got %v", got)
	}
	if !st.EarlyTermination {
		t.Error("no early termination on a dominated instance")
	}
}
