package ta

import (
	"reflect"
	"testing"

	"expertfind/internal/hetgraph"
)

// The cluster router merges per-shard rankings and asserts bit-identical
// results against the single-node path, so equal-score candidates must
// rank deterministically everywhere: score descending, then key/NodeID
// ascending. These tests pin that contract at every layer.

func TestAggregateTieOrderDeterministic(t *testing.T) {
	// Four keys with identical totals (0.5 each), fed through lists in an
	// order chosen to disagree with key order.
	lists := [][]ListEntry{
		{{Key: 3, Score: 0.5}, {Key: 1, Score: 0.5}},
		{{Key: 0, Score: 0.5}, {Key: 2, Score: 0.5}},
	}
	exact := func(k int32) float64 { return 0.5 }
	for n := 1; n <= 4; n++ {
		out, _ := Aggregate(lists, 4, n, exact)
		if len(out) != n {
			t.Fatalf("n=%d: got %d results", n, len(out))
		}
		for i, ks := range out {
			if ks.Key != int32(i) {
				t.Fatalf("n=%d: tie order broken: result %d is key %d, want %d (out=%v)",
					n, i, ks.Key, i, out)
			}
			if ks.Score != 0.5 {
				t.Fatalf("n=%d: score %v, want 0.5", n, ks.Score)
			}
		}
	}
}

func TestAggregateTieAtTruncationBoundary(t *testing.T) {
	// Keys 1 and 2 tie below key 0; with n=2 the smaller key must win the
	// last slot regardless of list order.
	lists := [][]ListEntry{
		{{Key: 0, Score: 1.0}, {Key: 2, Score: 0.25}},
		{{Key: 2, Score: 0.25}, {Key: 1, Score: 0.5}},
	}
	exact := map[int32]float64{0: 1.0, 1: 0.5, 2: 0.5}
	out, _ := Aggregate(lists, 3, 2, func(k int32) float64 { return exact[k] })
	want := []KeyScore{{Key: 0, Score: 1.0}, {Key: 1, Score: 0.5}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("boundary tie: got %v, want %v", out, want)
	}
}

// tieGraph builds two 2-author papers whose Zipf/rank arithmetic yields an
// exact score tie: S(rank-1 paper, author 2) = 1/(2·H(2)) = S(rank-2
// paper, author 1). tiedFirst selects which of the two tied authors gets
// the smaller NodeID, so tests can show the order is decided by NodeID,
// not by which paper the score came from.
func tieGraph(t *testing.T, tiedFirst bool) (*hetgraph.Graph, []hetgraph.NodeID, [2]hetgraph.NodeID) {
	t.Helper()
	g := hetgraph.New()
	a0 := g.AddNode(hetgraph.Author, "lead1")
	x := g.AddNode(hetgraph.Author, "tiedA") // ids 1 and 2: the tied pair
	y := g.AddNode(hetgraph.Author, "tiedB")
	a3 := g.AddNode(hetgraph.Author, "tail2")
	p1 := g.AddNode(hetgraph.Paper, "p1")
	p2 := g.AddNode(hetgraph.Paper, "p2")
	second, first2 := x, y // p1's 2nd author, p2's 1st author
	if !tiedFirst {
		second, first2 = y, x
	}
	g.MustAddEdge(p1, a0, hetgraph.Write)
	g.MustAddEdge(p1, second, hetgraph.Write)
	g.MustAddEdge(p2, first2, hetgraph.Write)
	g.MustAddEdge(p2, a3, hetgraph.Write)
	return g, []hetgraph.NodeID{p1, p2}, [2]hetgraph.NodeID{x, y}
}

func TestTopExpertsTieOrderMatchesFullScan(t *testing.T) {
	for _, tiedFirst := range []bool{true, false} {
		g, papers, tied := tieGraph(t, tiedFirst)
		fs := TopExpertsFullScan(g, papers, 4)
		res, _ := TopExperts(g, papers, 4)
		if !reflect.DeepEqual(fs, res) {
			t.Fatalf("tiedFirst=%v: TA %v != full scan %v", tiedFirst, res, fs)
		}
		// Positions 2 and 3 (after the rank-1 lead author) carry the tied
		// score 1/(2·H(2)); the smaller NodeID must always come first,
		// regardless of which paper produced its score.
		if res[1].Score != res[2].Score {
			t.Fatalf("tiedFirst=%v: expected tie at positions 1,2: %v", tiedFirst, res)
		}
		if res[1].Expert != tied[0] || res[2].Expert != tied[1] {
			t.Fatalf("tiedFirst=%v: tie order %v, want experts %v then %v",
				tiedFirst, res, tied[0], tied[1])
		}
	}
}

func TestTopExpertsTieTruncation(t *testing.T) {
	// Truncating inside the tied pair must keep the smaller NodeID — the
	// same one a merged cluster ranking keeps.
	g, papers, tied := tieGraph(t, false)
	full, _ := TopExperts(g, papers, 4)
	for n := 1; n < 4; n++ {
		got, _ := TopExperts(g, papers, n)
		if !reflect.DeepEqual(got, full[:n]) {
			t.Fatalf("n=%d: got %v, want prefix %v", n, got, full[:n])
		}
	}
	if top2, _ := TopExperts(g, papers, 2); top2[1].Expert != tied[0] {
		t.Fatalf("truncation dropped the smaller tied NodeID: %v", top2)
	}
}
