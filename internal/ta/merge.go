package ta

import (
	"sort"

	"expertfind/internal/hetgraph"
)

// This file holds the distributed counterpart of the threshold algorithm:
// merging bounded per-shard partial rankings into a global top-n with a
// provable stopping bound, in the style of the TPUT family of distributed
// top-k algorithms. Each shard owns a disjoint subset of the retrieved
// papers, so an expert's global score R(a) is the sum of per-shard partial
// scores, and a shard that truncates its list to its top-t entries can
// still bound every absent expert's contribution by the largest score it
// omitted.

// Partial is one shard's bounded contribution to a distributed ranking:
// its experts with non-zero partial scores, sorted by score descending
// (ties by expert id ascending), possibly truncated.
type Partial struct {
	// Entries holds the shard's top partial scores, each expert at most
	// once. Expert ids are global, shared across shards.
	Entries []Ranking
	// Threshold is an inclusive upper bound on the partial score of any
	// expert absent from Entries. A truncating shard reports the largest
	// score it omitted; an exhaustive shard reports 0.
	Threshold float64
	// Exhausted reports that Entries is the shard's complete non-zero
	// list, so an absent expert's partial score there is exactly 0.
	Exhausted bool
}

// MergeStats reports the outcome of one MergePartials evaluation.
type MergeStats struct {
	// Candidates counts distinct experts across all partials.
	Candidates int
	// Inexact counts candidates whose global score is not fully
	// determined — they are absent from at least one truncated shard.
	Inexact int
	// Satisfied reports that the global threshold bound certified the
	// returned ranking as the exact global top-n. When false the caller
	// must fetch deeper per-shard lists (larger t) and merge again;
	// fully exhausted partials always satisfy the bound.
	Satisfied bool
}

// MergePartials combines per-shard partial rankings into the global top-n.
//
// A candidate's lower bound is the sum of its reported partials (absent
// shards contribute at least 0); its upper bound adds each truncated
// shard's Threshold where it is absent. An expert reported by no shard is
// bounded above by the sum of all truncated thresholds. The merge is
// certified (Satisfied) when at least n candidates have exact scores —
// present in every shard that is not exhausted — and the n-th exact score
// strictly dominates every other candidate's upper bound. Strictness makes
// boundary ties conservative: a candidate whose upper bound merely touches
// the n-th score could tie and win the id tie-break, so the caller must
// deepen instead.
//
// The returned ranking is sorted by score descending, ties by expert id
// ascending — the same contract as TopExperts — and is exact whenever
// Satisfied is true. Per-expert sums accumulate in ascending shard order,
// so the result is deterministic for a given set of partials.
func MergePartials(parts []Partial, n int) ([]Ranking, MergeStats) {
	var st MergeStats
	if n <= 0 || len(parts) == 0 {
		st.Satisfied = true
		return nil, st
	}

	idx := map[hetgraph.NodeID]int{}
	var ids []hetgraph.NodeID
	var lowers []float64
	var seen [][]bool
	for si, p := range parts {
		for _, e := range p.Entries {
			ci, ok := idx[e.Expert]
			if !ok {
				ci = len(ids)
				idx[e.Expert] = ci
				ids = append(ids, e.Expert)
				lowers = append(lowers, 0)
				seen = append(seen, make([]bool, len(parts)))
			}
			lowers[ci] += e.Score
			seen[ci][si] = true
		}
	}
	st.Candidates = len(ids)

	// Upper bound on an expert no shard reported at all. Fully exhausted
	// partials leave nothing unknown, so the merge is certified whatever
	// the scores — this is what guarantees the caller's deepening loop
	// terminates once it requests unbounded lists.
	var unseenUB float64
	allExhausted := true
	for _, p := range parts {
		if !p.Exhausted {
			allExhausted = false
			unseenUB += p.Threshold
		}
	}

	exacts := make([]Ranking, 0, len(ids))
	var inexactUB []float64
	for ci, id := range ids {
		exact := true
		ub := lowers[ci]
		for si, p := range parts {
			if !seen[ci][si] && !p.Exhausted {
				exact = false
				ub += p.Threshold
			}
		}
		if exact {
			exacts = append(exacts, Ranking{Expert: id, Score: lowers[ci]})
		} else {
			st.Inexact++
			inexactUB = append(inexactUB, ub)
		}
	}
	sort.Slice(exacts, func(i, j int) bool {
		if exacts[i].Score != exacts[j].Score {
			return exacts[i].Score > exacts[j].Score
		}
		return exacts[i].Expert < exacts[j].Expert
	})

	if len(exacts) < n {
		// Not enough certain candidates to fill n slots: complete only
		// when nothing anywhere remains hidden.
		st.Satisfied = st.Inexact == 0 && unseenUB == 0
		return exacts, st
	}

	ln := exacts[n-1].Score
	ok := allExhausted || unseenUB < ln
	for _, ub := range inexactUB {
		if ub >= ln {
			ok = false
			break
		}
	}
	st.Satisfied = ok
	top := make([]Ranking, n)
	copy(top, exacts[:n])
	return top, st
}
