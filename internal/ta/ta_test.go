package ta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expertfind/internal/hetgraph"
	"expertfind/internal/hetgraph/testgraph"
)

func TestContributionWeightZipf(t *testing.T) {
	// Eq. 5 with 3 authors: H(3) = 1 + 1/2 + 1/3 = 11/6.
	h3 := 1.0 + 0.5 + 1.0/3
	for rank, want := range map[int]float64{1: 1 / h3, 2: 1 / (2 * h3), 3: 1 / (3 * h3)} {
		if got := ContributionWeight(rank, 3); math.Abs(got-want) > 1e-12 {
			t.Errorf("w(rank %d) = %v, want %v", rank, got, want)
		}
	}
	if ContributionWeight(0, 3) != 0 || ContributionWeight(4, 3) != 0 || ContributionWeight(1, 0) != 0 {
		t.Error("out-of-range ranks must weigh 0")
	}
}

// Property: author contributions of one paper sum to 1 (Zipf normalised
// by the harmonic number), so papers contribute equally regardless of
// author count.
func TestContributionWeightsSumToOne(t *testing.T) {
	f := func(n uint8) bool {
		num := int(n%20) + 1
		var sum float64
		for r := 1; r <= num; r++ {
			sum += ContributionWeight(r, num)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpertScore(t *testing.T) {
	// S(a,p) = w(a,p)/I(p).
	w := ContributionWeight(2, 3)
	if got := ExpertScore(4, 2, 3); math.Abs(got-w/4) > 1e-12 {
		t.Errorf("ExpertScore = %v, want %v", got, w/4)
	}
	if ExpertScore(0, 1, 1) != 0 {
		t.Error("paper rank 0 must score 0")
	}
}

func buildScoredGraph() (*hetgraph.Graph, []hetgraph.NodeID) {
	g, n := testgraph.Figure2()
	// Retrieved ranking: p4, p1, p5, p2.
	return g, []hetgraph.NodeID{n["p4"], n["p1"], n["p5"], n["p2"]}
}

func TestFullScanScores(t *testing.T) {
	g, papers := buildScoredGraph()
	ranked := TopExpertsFullScan(g, papers, 0)
	if len(ranked) == 0 {
		t.Fatal("no experts")
	}
	// Scores descending.
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Fatal("full scan not sorted")
		}
	}
	// Recompute one score by hand: a0 is rank-1 author of p4 (2 authors
	// on p4: a0, a2) at paper rank 1; rank-1 of p1 (authors a0, a1) at
	// paper rank 2; rank-1 of p2 at paper rank 4.
	want := ExpertScore(1, 1, 2) + ExpertScore(2, 1, 2) + ExpertScore(4, 1, 2)
	var a0 hetgraph.NodeID = -1
	for _, r := range ranked {
		if g.Label(r.Expert) == "author a0" {
			a0 = r.Expert
			if math.Abs(r.Score-want) > 1e-12 {
				t.Errorf("R(a0) = %v, want %v", r.Score, want)
			}
		}
	}
	if a0 < 0 {
		t.Fatal("a0 missing from candidates")
	}
}

func TestTAMatchesFullScanOnFigure2(t *testing.T) {
	g, papers := buildScoredGraph()
	for n := 1; n <= 6; n++ {
		taRes, st := TopExperts(g, papers, n)
		fsRes := TopExpertsFullScan(g, papers, n)
		if len(taRes) != len(fsRes) {
			t.Fatalf("n=%d: TA %d experts, full scan %d", n, len(taRes), len(fsRes))
		}
		for i := range taRes {
			if taRes[i].Expert != fsRes[i].Expert ||
				math.Abs(taRes[i].Score-fsRes[i].Score) > 1e-9 {
				t.Fatalf("n=%d rank %d: TA %+v != full scan %+v", n, i, taRes[i], fsRes[i])
			}
		}
		if st.Candidates == 0 {
			t.Error("stats missing candidates")
		}
	}
}

// Property: on random graphs and random retrieved lists, TA returns
// exactly the full-scan top-n (Theorem 2's correctness), for every n.
func TestTAMatchesFullScanOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testgraph.Random(rng, 50, 30, 3, 3)
		papers := g.NodesOfType(hetgraph.Paper)
		perm := rng.Perm(len(papers))
		m := 5 + rng.Intn(20)
		retrieved := make([]hetgraph.NodeID, m)
		for i := 0; i < m; i++ {
			retrieved[i] = papers[perm[i]]
		}
		for _, n := range []int{1, 3, 10} {
			taRes, _ := TopExperts(g, retrieved, n)
			fsRes := TopExpertsFullScan(g, retrieved, n)
			if len(taRes) != len(fsRes) {
				t.Fatalf("seed %d n=%d: sizes differ (%d vs %d)", seed, n, len(taRes), len(fsRes))
			}
			for i := range taRes {
				if taRes[i].Expert != fsRes[i].Expert ||
					math.Abs(taRes[i].Score-fsRes[i].Score) > 1e-9 {
					t.Fatalf("seed %d n=%d rank %d: TA %+v != full scan %+v",
						seed, n, i, taRes[i], fsRes[i])
				}
			}
		}
	}
}

func TestTAEarlyTermination(t *testing.T) {
	// A long retrieved list with a dominant expert: TA should stop before
	// exhausting the lists.
	g := hetgraph.New()
	star := g.AddNode(hetgraph.Author, "star")
	var retrieved []hetgraph.NodeID
	for i := 0; i < 40; i++ {
		p := g.AddNode(hetgraph.Paper, "")
		g.MustAddEdge(star, p, hetgraph.Write)
		// Two co-authors per paper, all distinct.
		for j := 0; j < 2; j++ {
			a := g.AddNode(hetgraph.Author, "")
			g.MustAddEdge(a, p, hetgraph.Write)
		}
		retrieved = append(retrieved, p)
	}
	res, st := TopExperts(g, retrieved, 1)
	if len(res) != 1 || res[0].Expert != star {
		t.Fatalf("top expert = %+v, want the star author", res)
	}
	if !st.EarlyTermination {
		t.Error("TA did not terminate early on a dominated instance")
	}
	if st.Depth >= 3 {
		t.Errorf("TA depth = %d, expected to stop within a couple of rounds", st.Depth)
	}
}

func TestTAEdgeCases(t *testing.T) {
	g, papers := buildScoredGraph()
	if res, _ := TopExperts(g, papers, 0); res != nil {
		t.Error("n=0 returned experts")
	}
	if res, _ := TopExperts(g, nil, 5); res != nil {
		t.Error("no retrieved papers returned experts")
	}
	// n larger than the candidate pool returns everyone.
	res, _ := TopExperts(g, papers, 100)
	fs := TopExpertsFullScan(g, papers, 100)
	if len(res) != len(fs) {
		t.Errorf("overshoot n: TA %d vs full scan %d", len(res), len(fs))
	}
}

func TestPaperWithNoAuthors(t *testing.T) {
	g := hetgraph.New()
	p := g.AddNode(hetgraph.Paper, "orphan")
	a := g.AddNode(hetgraph.Author, "x")
	p2 := g.AddNode(hetgraph.Paper, "authored")
	g.MustAddEdge(a, p2, hetgraph.Write)
	res, _ := TopExperts(g, []hetgraph.NodeID{p, p2}, 5)
	if len(res) != 1 || res[0].Expert != a {
		t.Errorf("res = %+v", res)
	}
}
