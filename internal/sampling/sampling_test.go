package sampling

import (
	"math/rand"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/hetgraph/testgraph"
	"expertfind/internal/kpcore"
)

func TestStrategyString(t *testing.T) {
	if NearNegative.String() != "near" || RandomNegative.String() != "random" {
		t.Error("strategy names wrong")
	}
}

func TestGenerateEmptyGraph(t *testing.T) {
	g := hetgraph.New()
	triples, rep := Generate(g, Config{}, rand.New(rand.NewSource(1)))
	if len(triples) != 0 || rep.Triples != 0 {
		t.Error("empty graph produced triples")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testgraph.Random(rng, 80, 30, 3, 3)
	cfg := Config{K: 2, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP}}
	t1, _ := Generate(g, cfg, rand.New(rand.NewSource(9)))
	t2, _ := Generate(g, cfg, rand.New(rand.NewSource(9)))
	if len(t1) != len(t2) {
		t.Fatalf("lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
}

// TestTripleValidity checks Definitions 6 and 7 against an independent
// community search: positives are community members, negatives are not.
func TestTripleValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testgraph.Random(rng, 120, 90, 3, 2)
	cfg := Config{K: 3, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP}, Fraction: 0.2, NegPerPos: 2}
	triples, rep := Generate(g, cfg, rand.New(rand.NewSource(11)))
	if len(triples) == 0 {
		t.Fatal("no triples generated")
	}
	if rep.Triples != len(triples) {
		t.Errorf("report says %d triples, got %d", rep.Triples, len(triples))
	}
	coms := map[hetgraph.NodeID]*kpcore.Community{}
	for _, tr := range triples {
		com := coms[tr.Seed]
		if com == nil {
			com = kpcore.SearchMulti(g, tr.Seed, cfg.K, cfg.MetaPaths)
			coms[tr.Seed] = com
		}
		if !com.Contains(tr.Pos) {
			t.Fatalf("positive %d not in the community of seed %d", tr.Pos, tr.Seed)
		}
		if tr.Pos == tr.Seed {
			t.Fatal("positive equals seed")
		}
		if com.Contains(tr.Neg) {
			t.Fatalf("negative %d inside the community of seed %d", tr.Neg, tr.Seed)
		}
		if g.Type(tr.Pos) != hetgraph.Paper || g.Type(tr.Neg) != hetgraph.Paper {
			t.Fatal("triple contains a non-paper node")
		}
	}
}

func TestNegPerPosRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testgraph.Random(rng, 120, 90, 3, 2)
	for _, s := range []int{1, 2, 4} {
		cfg := Config{K: 3, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP}, Fraction: 0.2, NegPerPos: s}
		triples, _ := Generate(g, cfg, rand.New(rand.NewSource(13)))
		if len(triples) == 0 {
			t.Fatal("no triples generated")
		}
		// Count triples per (seed, pos) pair: must be exactly s when a
		// negative could be drawn (always true on this graph).
		counts := map[[2]hetgraph.NodeID]int{}
		for _, tr := range triples {
			counts[[2]hetgraph.NodeID{tr.Seed, tr.Pos}]++
		}
		for k, c := range counts {
			if c != s {
				t.Fatalf("s=%d: pair %v has %d negatives", s, k, c)
			}
		}
	}
}

func TestMaxPositivesPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testgraph.Random(rng, 60, 25, 3, 3)
	cfg := Config{K: 1, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP},
		Fraction: 0.1, NegPerPos: 1, MaxPositivesPerSeed: 2}
	triples, _ := Generate(g, cfg, rand.New(rand.NewSource(17)))
	perSeed := map[hetgraph.NodeID]map[hetgraph.NodeID]bool{}
	for _, tr := range triples {
		if perSeed[tr.Seed] == nil {
			perSeed[tr.Seed] = map[hetgraph.NodeID]bool{}
		}
		perSeed[tr.Seed][tr.Pos] = true
	}
	for s, pos := range perSeed {
		if len(pos) > 2 {
			t.Fatalf("seed %d has %d positives, cap is 2", s, len(pos))
		}
	}
}

func TestNearNegativesComeFromPrunedPool(t *testing.T) {
	// On Figure 2 with k=3, seeding at p1, the near pool is exactly {p5}
	// (pruned, and not re-admitted by p1's extension); every near
	// negative for seed p1 must be p5.
	g, n := testgraph.Figure2()
	com := kpcore.Search(g, n["p1"], 3, hetgraph.PAP)
	if len(com.Near) != 1 || com.Near[0] != n["p5"] {
		t.Fatalf("fixture near pool = %v, want {p5}", com.Near)
	}
	cfg := Config{K: 3, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP},
		Fraction: 1.0, Strategy: NearNegative, NegPerPos: 1}
	triples, _ := Generate(g, cfg, rand.New(rand.NewSource(2)))
	sawP1 := false
	for _, tr := range triples {
		if tr.Seed != n["p1"] {
			continue
		}
		sawP1 = true
		if tr.Neg != n["p5"] {
			t.Fatalf("negative for seed p1 = %d, want p5 (%d)", tr.Neg, n["p5"])
		}
	}
	if !sawP1 {
		t.Fatal("no triples for seed p1 (fraction 1.0 should cover it)")
	}
}

func TestReportCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := testgraph.Random(rng, 120, 90, 3, 2)
	cfg := Config{K: 3, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP}, Fraction: 0.3}
	triples, rep := Generate(g, cfg, rand.New(rand.NewSource(23)))
	if len(triples) == 0 {
		t.Fatal("no triples generated")
	}
	covered := map[hetgraph.NodeID]bool{}
	for _, tr := range triples {
		covered[tr.Pos] = true
		covered[tr.Seed] = true
		covered[tr.Neg] = true
	}
	if rep.CoveredPapers != len(covered) {
		t.Errorf("CoveredPapers = %d, want %d", rep.CoveredPapers, len(covered))
	}
	if rep.Seeds == 0 || rep.MeanCommunity <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Fraction != 0.3 || cfg.K != 4 || cfg.NegPerPos != 3 || len(cfg.MetaPaths) != 2 {
		t.Errorf("paper defaults wrong: %+v", cfg)
	}
}

func TestUseCoreIndexEquivalentCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testgraph.Random(rng, 120, 90, 3, 2)
	base := Config{K: 3, MetaPaths: []hetgraph.MetaPath{hetgraph.PAP}, Fraction: 0.3, NegPerPos: 2}
	fast := base
	fast.UseCoreIndex = true
	slow, repSlow := Generate(g, base, rand.New(rand.NewSource(11)))
	quick, repFast := Generate(g, fast, rand.New(rand.NewSource(11)))
	if repSlow.Communities != repFast.Communities || repSlow.Seeds != repFast.Seeds {
		t.Errorf("community counts differ: %+v vs %+v", repSlow, repFast)
	}
	// Positive structure is identical (same seeds, same communities);
	// only the near pools — hence the drawn negatives — may differ.
	type sp struct{ s, p hetgraph.NodeID }
	pairsOf := func(ts []Triple) map[sp]int {
		out := map[sp]int{}
		for _, tr := range ts {
			out[sp{tr.Seed, tr.Pos}]++
		}
		return out
	}
	a, b := pairsOf(slow), pairsOf(quick)
	if len(a) != len(b) {
		t.Fatalf("positive pair sets differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("pair %v count %d vs %d", k, v, b[k])
		}
	}
}
