// Package sampling implements §III-B: sampling-based training-data
// generation. It selects a fraction f of papers as seeds, searches a
// (k,P)-core community around each (one per meta-path, intersected per §V),
// and emits training triples ⟨p+, p_s, p-⟩ with positives drawn from the
// community (Definition 6) and negatives drawn either uniformly from
// outside it (random negative) or from the papers Algorithm 1 pruned
// (near negative, the strategy the paper finds superior).
package sampling

import (
	"fmt"
	"math/rand"

	"expertfind/internal/hetgraph"
	"expertfind/internal/kpcore"
)

// Strategy selects how negative samples are collected (§III-B).
type Strategy uint8

const (
	// NearNegative samples negatives from the papers pruned by the
	// community search — close to the community but outside it. The
	// paper's default.
	NearNegative Strategy = iota
	// RandomNegative samples negatives uniformly from papers outside the
	// community.
	RandomNegative
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case NearNegative:
		return "near"
	case RandomNegative:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Triple is one training example ⟨p+, p_s, p-⟩.
type Triple struct {
	Pos, Seed, Neg hetgraph.NodeID
}

// Config controls training-data generation. Zero values select the paper's
// defaults where one exists.
type Config struct {
	// Fraction is the seed sampling ratio f over all papers (default 0.3).
	Fraction float64
	// K is the core cohesiveness threshold k (default 4).
	K int
	// MetaPaths are the relationships considered simultaneously (§V);
	// default is {P-A-P, P-T-P}, the paper's best combination.
	MetaPaths []hetgraph.MetaPath
	// Strategy selects negative collection (default NearNegative).
	Strategy Strategy
	// NegPerPos is s, negatives per positive (default 3).
	NegPerPos int
	// MaxPositivesPerSeed bounds positives taken from one community, 0 for
	// no bound. Large communities otherwise dominate the training set.
	MaxPositivesPerSeed int
	// UseCoreIndex answers community queries from one precomputed core
	// decomposition per meta-path instead of per-seed searches —
	// identical communities, boundary-style near pools, and much faster
	// when the seed count is large (see kpcore.CoreIndex).
	UseCoreIndex bool
}

// withDefaults fills in the paper's default parameters.
func (c Config) withDefaults() Config {
	if c.Fraction <= 0 {
		c.Fraction = 0.3
	}
	if c.K == 0 {
		c.K = 4
	}
	if len(c.MetaPaths) == 0 {
		c.MetaPaths = []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}
	}
	if c.NegPerPos <= 0 {
		c.NegPerPos = 3
	}
	return c
}

// Report summarises a generation run for logging and the experiment
// harness.
type Report struct {
	Seeds          int
	Communities    int // seeds whose community had at least one positive
	Triples        int
	CoveredPapers  int // distinct papers appearing in any triple
	MeanCommunity  float64
	MeanNearPool   float64
	EmptyCommunity int // seeds with no positives
	EmptyNearPool  int // seeds that fell back to random negatives
	Strategy       Strategy
	NegPerPos      int
}

// Generate produces the training triples for graph g using rng for all
// sampling decisions. The same (g, cfg, seed) always yields the same
// triples.
func Generate(g *hetgraph.Graph, cfg Config, rng *rand.Rand) ([]Triple, *Report) {
	cfg = cfg.withDefaults()
	papers := g.NodesOfType(hetgraph.Paper)
	if len(papers) == 0 {
		return nil, &Report{Strategy: cfg.Strategy, NegPerPos: cfg.NegPerPos}
	}

	// (1) Seed papers selection: simple random sample of r = f·|V(P)|.
	r := int(cfg.Fraction * float64(len(papers)))
	if r < 1 {
		r = 1
	}
	if r > len(papers) {
		r = len(papers)
	}
	seeds := samplePapers(papers, r, rng)

	rep := &Report{Seeds: len(seeds), Strategy: cfg.Strategy, NegPerPos: cfg.NegPerPos}
	var triples []Triple
	covered := map[hetgraph.NodeID]bool{}

	var indexes []*kpcore.CoreIndex
	if cfg.UseCoreIndex {
		for _, mp := range cfg.MetaPaths {
			indexes = append(indexes, kpcore.NewCoreIndex(g, cfg.K, mp))
		}
	}

	for _, seed := range seeds {
		var com *kpcore.Community
		if cfg.UseCoreIndex {
			com = kpcore.SearchMultiIndexed(indexes, seed)
		} else {
			com = kpcore.SearchMulti(g, seed, cfg.K, cfg.MetaPaths)
		}
		rep.MeanCommunity += float64(len(com.Members))
		rep.MeanNearPool += float64(len(com.Near))

		// (2) Positive samples: community members except the seed itself
		// (Definition 6, plus the extension papers of §III-A).
		var pos []hetgraph.NodeID
		for _, p := range com.Members {
			if p != seed {
				pos = append(pos, p)
			}
		}
		if len(pos) == 0 {
			rep.EmptyCommunity++
			continue
		}
		rep.Communities++
		if cfg.MaxPositivesPerSeed > 0 && len(pos) > cfg.MaxPositivesPerSeed {
			rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
			pos = pos[:cfg.MaxPositivesPerSeed]
		}

		// Negative pool per strategy.
		nearPool := com.Near
		if cfg.Strategy == NearNegative && len(nearPool) == 0 {
			rep.EmptyNearPool++
		}

		for _, p := range pos {
			for s := 0; s < cfg.NegPerPos; s++ {
				neg, ok := drawNegative(cfg.Strategy, com, nearPool, papers, rng)
				if !ok {
					continue
				}
				triples = append(triples, Triple{Pos: p, Seed: seed, Neg: neg})
				covered[p] = true
				covered[seed] = true
				covered[neg] = true
			}
		}
	}

	if rep.Seeds > 0 {
		rep.MeanCommunity /= float64(rep.Seeds)
		rep.MeanNearPool /= float64(rep.Seeds)
	}
	rep.Triples = len(triples)
	rep.CoveredPapers = len(covered)
	return triples, rep
}

// drawNegative picks one negative for the community, falling back from the
// near pool to uniform sampling when the pool is empty.
func drawNegative(st Strategy, com *kpcore.Community, nearPool, papers []hetgraph.NodeID,
	rng *rand.Rand) (hetgraph.NodeID, bool) {
	if st == NearNegative && len(nearPool) > 0 {
		return nearPool[rng.Intn(len(nearPool))], true
	}
	// Random negative: rejection-sample a paper outside the community.
	// Communities are small relative to the corpus, so this terminates
	// quickly; cap attempts to stay robust on degenerate graphs.
	for attempt := 0; attempt < 64; attempt++ {
		p := papers[rng.Intn(len(papers))]
		if !com.Contains(p) {
			return p, true
		}
	}
	return 0, false
}

// samplePapers draws n distinct papers uniformly via a partial
// Fisher-Yates shuffle of a copy.
func samplePapers(papers []hetgraph.NodeID, n int, rng *rand.Rand) []hetgraph.NodeID {
	cp := make([]hetgraph.NodeID, len(papers))
	copy(cp, papers)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:n]
}
