package core

import (
	"strconv"
	"strings"
	"unicode"
)

// NormalizeQueryKey canonicalises free-form query text for cache lookup:
// Unicode-lowercased, with every run of whitespace (including leading and
// trailing) collapsed to a single space. Two queries that differ only in
// case or spacing therefore share one cache entry, matching the encoder,
// whose tokenizer is itself case- and whitespace-insensitive. The function
// is idempotent: NormalizeQueryKey(NormalizeQueryKey(q)) == NormalizeQueryKey(q).
func NormalizeQueryKey(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	space := false
	for _, r := range q {
		if unicode.IsSpace(r) {
			space = b.Len() > 0
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// queryKind distinguishes the cached result families so an /experts fill
// can never satisfy a /papers lookup with the same text.
type queryKind byte

const (
	kindExperts queryKind = 'e'
	kindPapers  queryKind = 'p'
)

// cacheKey builds the full cache key for a normalized query: the kind and
// the m/n bounds are part of the identity, because they change the result.
// The '\x00' separator cannot appear in normalized text (NUL is not
// whitespace but is preserved; itoa output never contains it), so distinct
// (kind, q, m, n) triples map to distinct keys.
func cacheKey(kind queryKind, normalized string, m, n int) string {
	var b strings.Builder
	b.Grow(len(normalized) + 16)
	b.WriteByte(byte(kind))
	b.WriteByte(0)
	b.WriteString(normalized)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(m))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(n))
	return b.String()
}
