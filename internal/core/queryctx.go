package core

import (
	"context"

	"expertfind/internal/hetgraph"
	"expertfind/internal/ta"
)

// This file is the concurrent query-serving layer over the engine: the
// public TopExperts/RetrievePapers entry points, their context-aware
// variants, and the cache + singleflight orchestration between them.
//
// A cached entry is only ever published for the engine state it was
// computed on: fills capture the cache generation before taking the read
// lock, updates bump the generation after mutating, and Put/Get refuse
// mismatched generations. See cache.go for the full invariant.

// EnableQueryCache attaches a sharded LRU query cache to the engine.
// Queries with identical normalized text and bounds (see
// NormalizeQueryKey) are then answered from memory until an update
// invalidates them or their TTL lapses; concurrent identical misses are
// coalesced into one fill through singleflight. A MaxEntries <= 0 config
// detaches the cache. Not safe to call concurrently with queries: enable
// the cache before serving.
func (e *Engine) EnableQueryCache(cfg CacheConfig) {
	e.qcache = newQueryCache(cfg, e.reg)
}

// QueryCacheEnabled reports whether a query cache is attached.
func (e *Engine) QueryCacheEnabled() bool { return e.qcache != nil }

// QueryCacheLen returns the resident entry count (0 when disabled).
func (e *Engine) QueryCacheLen() int {
	if e.qcache == nil {
		return 0
	}
	return e.qcache.Len()
}

// InvalidateQueryCache drops every cached query result. Updates call this
// automatically; it is exported for operators whose out-of-band changes
// (e.g. swapping label data) also invalidate rankings.
func (e *Engine) InvalidateQueryCache() {
	if e.qcache != nil {
		e.qcache.Invalidate()
	}
}

// TopExperts answers a query (§IV-C): retrieve the top-m papers, extract
// candidate experts, and return the top-n by ranking score — through the
// threshold algorithm by default, or a full scan when disabled. m and n
// must be positive; a *BadParamError reports violations instead of
// silently ranking over zero papers.
func (e *Engine) TopExperts(query string, m, n int) ([]ta.Ranking, QueryStats, error) {
	return e.TopExpertsCtx(context.Background(), query, m, n)
}

// TopExpertsCtx is TopExperts with cooperative cancellation: ctx is
// checked between the encode, PG-Index and TA stages and inside the
// PG-Index expansion and TA descent loops, so an expired deadline
// surfaces as ctx.Err() within a few hundred distance computations.
func (e *Engine) TopExpertsCtx(ctx context.Context, query string, m, n int) ([]ta.Ranking, QueryStats, error) {
	if m <= 0 {
		return nil, QueryStats{}, &BadParamError{Param: "m", Value: m}
	}
	if n <= 0 {
		return nil, QueryStats{}, &BadParamError{Param: "n", Value: n}
	}
	// A caller whose deadline already passed gets ctx.Err() even when the
	// answer sits in the cache: nobody is waiting for it.
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	if e.qcache == nil {
		return e.topExpertsLocked(ctx, query, m, n)
	}
	v, st, err := e.cachedQuery(ctx, cacheKey(kindExperts, NormalizeQueryKey(query), m, n),
		func(ctx context.Context) (cachedResult, error) {
			experts, st, err := e.topExpertsLocked(ctx, query, m, n)
			return cachedResult{experts: experts, stats: st}, err
		})
	if err != nil {
		return nil, st, err
	}
	return v.experts, st, nil
}

// RetrievePapers returns the top-m papers semantically similar to the
// query text (§IV-B), via the PG-Index or, when disabled, a brute-force
// scan. m must be positive (*BadParamError otherwise).
func (e *Engine) RetrievePapers(query string, m int) ([]hetgraph.NodeID, QueryStats, error) {
	return e.RetrievePapersCtx(context.Background(), query, m)
}

// RetrievePapersCtx is RetrievePapers with cooperative cancellation,
// checked between and inside the encode and retrieval stages.
func (e *Engine) RetrievePapersCtx(ctx context.Context, query string, m int) ([]hetgraph.NodeID, QueryStats, error) {
	if m <= 0 {
		return nil, QueryStats{}, &BadParamError{Param: "m", Value: m}
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	if e.qcache == nil {
		return e.retrievePapersQuery(ctx, query, m)
	}
	v, st, err := e.cachedQuery(ctx, cacheKey(kindPapers, NormalizeQueryKey(query), m, 0),
		func(ctx context.Context) (cachedResult, error) {
			ids, st, err := e.retrievePapersQuery(ctx, query, m)
			return cachedResult{papers: ids, stats: st}, err
		})
	if err != nil {
		return nil, st, err
	}
	return v.papers, st, nil
}

// retrievePapersQuery runs the uncached paper-retrieval pipeline under a
// read lock with its own root span.
func (e *Engine) retrievePapersQuery(ctx context.Context, query string, m int) ([]hetgraph.NodeID, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sctx, root := e.startQuery(ctx)
	ids, st, err := e.retrievePapersLocked(sctx, query, m)
	if err != nil {
		e.abandonQuery(root)
		return nil, st, err
	}
	e.finishQuery(root, st)
	return ids, st, nil
}

// cachedQuery is the shared cache + singleflight path: lookup, coalesced
// fill, publish. Only successful fills are published, and only under the
// generation captured before the fill read any engine state.
func (e *Engine) cachedQuery(ctx context.Context, key string,
	fill func(context.Context) (cachedResult, error)) (cachedResult, QueryStats, error) {
	if v, ok := e.qcache.Get(key); ok {
		st := v.stats
		st.CacheHit = true
		return v, st, nil
	}
	gen := e.qcache.generation()
	v, err, shared := e.flights.Do(ctx, key, func() (cachedResult, error) {
		return fill(ctx)
	})
	if shared {
		e.reg.Counter("expertfind_singleflight_shared_total",
			"Queries answered by piggybacking on a concurrent identical query.").Inc()
		if err != nil && ctx.Err() == nil {
			// The leader died on ITS context, not ours: run the query
			// ourselves rather than propagating a foreign cancellation.
			// gen was captured before this fill reads engine state, so
			// publishing under it is safe.
			v, err = fill(ctx)
			if err != nil {
				return cachedResult{}, v.stats, err
			}
			e.qcache.Put(key, v, gen)
			return v, v.stats, nil
		}
	}
	if err != nil {
		return cachedResult{}, v.stats, err
	}
	if !shared {
		e.qcache.Put(key, v, gen)
	}
	st := v.stats
	st.Coalesced = shared
	return v, st, nil
}
