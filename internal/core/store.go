package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"expertfind/internal/colstore"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// Store is the durable home of a live engine: a snapshot file holding
// the last checkpointed state and a write-ahead log holding every
// update accepted since. Opening a store recovers exactly the state
// that was acknowledged before the previous process died — snapshot
// first, then WAL replay — and attaches the log so new updates keep
// the invariant. Periodic snapshots bound replay time and let old WAL
// segments be reclaimed.
//
// Layout under Dir:
//
//	snapshot.efs   versioned, checksummed engine snapshot (atomic writes)
//	wal/           segmented write-ahead log of accepted updates
//
// Corrupt state is never served silently: a damaged snapshot or a
// damaged WAL interior aborts OpenStore with a typed error (see
// internal/durable); only a torn tail on the final WAL segment — the
// signature of a crash mid-append, by definition unacknowledged — is
// truncated and recovered past.
type Store struct {
	dir    string
	engine *Engine
	wal    *durable.WAL
	reg    *obs.Registry
	log    *obs.Logger
	info   RecoveryInfo

	mu       sync.Mutex // serialises Snapshot/Close
	closed   bool
	lastSnap time.Time

	stopLoop chan struct{}
	loopDone chan struct{}

	// followers tracks the last sequence each live replication follower
	// has applied, so Snapshot never truncates WAL records a follower
	// still needs. Entries expire after followerTTL without a report — a
	// dead follower must not pin the log forever.
	fmu         sync.Mutex
	followers   map[string]followerPos
	followerTTL time.Duration
}

// followerPos is one follower's replication position as last reported.
type followerPos struct {
	applied uint64    // last WAL sequence the follower has applied
	seen    time.Time // when it last reported
}

// DefaultFollowerTTL is how long a silent follower keeps holding back
// WAL truncation before it is presumed dead.
const DefaultFollowerTTL = 30 * time.Second

// StoreOptions configures OpenStore. Zero values mean: SyncAlways,
// 4 MiB WAL segments, the process-wide metrics registry, no logging.
type StoreOptions struct {
	// Sync is the WAL fsync policy; it decides what "acknowledged" buys
	// (see durable.SyncPolicy).
	Sync durable.SyncPolicy
	// SyncEvery is the flush period under SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes caps WAL segment size before rotation.
	SegmentBytes int64
	// Metrics receives recovery and snapshot metrics (nil: obs.Default()).
	Metrics *obs.Registry
	// Logger receives recovery progress lines (nil: silent).
	Logger *obs.Logger
	// FollowerTTL overrides how long a silent replication follower pins
	// WAL truncation (zero: DefaultFollowerTTL).
	FollowerTTL time.Duration
	// Mmap selects how a v2 snapshot's columnar section is materialised
	// on recovery (see LoadOptions.Mmap): the zero value maps it when
	// the platform allows, ModeOff forces heap reads, ModeOn fails if
	// the mapping cannot be established.
	Mmap colstore.Mode
}

// RecoveryInfo reports what OpenStore found and did.
type RecoveryInfo struct {
	// SnapshotLoaded is true when a snapshot file was restored (false:
	// the engine came from the build function).
	SnapshotLoaded bool
	// SnapshotSeq is the WAL sequence the snapshot covered.
	SnapshotSeq uint64
	// SnapshotMapped is true when the loaded snapshot's columnar
	// section is mmap'd (engine state served from the page cache).
	SnapshotMapped bool
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// TornWALTail reports a truncated partial record on the final WAL
	// segment — expected after a crash mid-append.
	TornWALTail bool
	// Duration is the wall time of the whole recovery.
	Duration time.Duration
}

// SnapshotFileName is the snapshot's name inside a store directory.
const SnapshotFileName = "snapshot.efs"

// OpenStore opens (creating if absent) the durable store in dir and
// recovers the engine: load the snapshot if one exists, otherwise run
// build (typically a fresh offline Build); then replay WAL records past
// the snapshot's sequence; then attach the WAL so subsequent AddPaper
// calls are logged before they apply. When the store is brand new an
// initial snapshot is written immediately, so a later restart never
// repeats the expensive build.
func OpenStore(dir string, g *hetgraph.Graph, build func() (*Engine, error), o StoreOptions) (*Store, error) {
	reg := o.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	log := o.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: open store: %w", err)
	}
	s := &Store{dir: dir, reg: reg, log: log,
		followers: make(map[string]followerPos), followerTTL: o.FollowerTTL}
	if s.followerTTL <= 0 {
		s.followerTTL = DefaultFollowerTTL
	}
	ctx, root := obs.StartSpan(obs.WithRegistry(context.Background(), reg), "recover")

	// Phase 1: restore the checkpointed state.
	snapPath := filepath.Join(dir, SnapshotFileName)
	_, sp := obs.StartSpan(ctx, "snapshot")
	hadSnapshot := false
	if st, err := os.Stat(snapPath); err == nil {
		e, err := LoadFileWith(snapPath, g, LoadOptions{Mmap: o.Mmap})
		if err != nil {
			root.End()
			return nil, err // typed: checksum/truncation/version context intact
		}
		s.engine, hadSnapshot = e, true
		s.info.SnapshotLoaded = true
		s.info.SnapshotSeq = e.LastUpdateSeq()
		s.info.SnapshotMapped = e.SnapshotMapped()
		s.lastSnap = st.ModTime()
		reg.Gauge("expertfind_snapshot_mmap",
			"1 when the engine's columnar state is an mmap'd snapshot view.").
			Set(b2f(s.info.SnapshotMapped))
		log.Info("store_snapshot_loaded", "file", snapPath,
			"seq", s.info.SnapshotSeq, "mmap", s.info.SnapshotMapped,
			"age", time.Since(st.ModTime()).Round(time.Second))
	} else if !os.IsNotExist(err) {
		root.End()
		return nil, fmt.Errorf("core: open store: %w", err)
	} else {
		e, err := build()
		if err != nil {
			root.End()
			return nil, err
		}
		s.engine = e
		log.Info("store_built_fresh", "dir", dir)
	}
	sp.End()

	// Phase 2: open the log (validating every record) and replay what
	// the snapshot does not cover.
	_, sp = obs.StartSpan(ctx, "wal_replay")
	wal, err := durable.OpenWAL(filepath.Join(dir, "wal"), durable.WALOptions{
		Sync:         o.Sync,
		SyncEvery:    o.SyncEvery,
		SegmentBytes: o.SegmentBytes,
	})
	if err != nil {
		root.End()
		return nil, err
	}
	s.wal = wal
	s.info.TornWALTail = wal.Stats().TornTail
	after := s.engine.LastUpdateSeq()
	err = wal.Replay(after, func(seq uint64, payload []byte) error {
		p, derr := DecodeUpdate(payload)
		if derr != nil {
			return &durable.CorruptError{Path: wal.Dir(), Offset: 0,
				Detail: fmt.Sprintf("update record seq %d", seq), Err: derr}
		}
		if _, aerr := s.engine.ApplyLogged(p, seq); aerr != nil {
			return fmt.Errorf("core: replay of update seq %d failed: %w", seq, aerr)
		}
		s.info.Replayed++
		return nil
	})
	if err != nil {
		wal.Close()
		root.End()
		return nil, err
	}
	sp.End()
	s.engine.SetUpdateLog(wal)
	s.info.Duration = root.End()

	reg.Counter("expertfind_recovery_wal_records_replayed_total",
		"WAL records re-applied during store recovery.").Add(float64(s.info.Replayed))
	reg.Counter("expertfind_recovery_torn_wal_tails_total",
		"Torn WAL tails truncated during store recovery.").Add(b2f(s.info.TornWALTail))
	reg.Gauge("expertfind_recovery_seconds",
		"Duration of the most recent store recovery.").Set(s.info.Duration.Seconds())
	s.setSnapshotGauges()
	log.Info("store_recovered",
		"snapshot", s.info.SnapshotLoaded,
		"replayed", s.info.Replayed,
		"torn_tail", s.info.TornWALTail,
		"dur", s.info.Duration.Round(time.Millisecond))

	// A fresh store checkpoints immediately: the build is deterministic
	// but expensive, and the next boot should not pay for it again.
	if !hadSnapshot {
		if err := s.Snapshot(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return s, nil
}

// Engine returns the recovered engine. Updates through it are logged.
func (s *Store) Engine() *Engine { return s.engine }

// Recovery reports what OpenStore found and did.
func (s *Store) Recovery() RecoveryInfo { return s.info }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Snapshot checkpoints the live engine: it serialises the engine plus
// its update journal into the versioned container, atomically replaces
// the snapshot file (temp + fsync + rename), and only then truncates
// WAL segments the new snapshot covers. A crash at any point leaves
// either the old snapshot with its WAL or the new snapshot with a
// shorter one — both recover to the same state.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return durable.ErrClosed
	}
	start := time.Now()
	// Stream the snapshot straight into the temp file: a corpus-sized
	// engine must not be buffered in memory on the way out. Atomicity
	// is unchanged — temp + fsync + rename.
	path := filepath.Join(s.dir, SnapshotFileName)
	var seq uint64
	var nbytes int64
	err := durable.AtomicWriteTo(path, true, func(f *os.File) error {
		cw := &countingWriter{w: f}
		var serr error
		seq, serr = s.engine.SaveSnapshot(cw)
		nbytes = cw.n
		return serr
	})
	if err != nil {
		return err
	}
	// Never truncate past a live follower: a follower that has applied
	// through sequence L still needs L+1, so reclamation stops at
	// min(snapshot seq, follower low-water).
	trunc := seq
	if lw, ok := s.FollowerLowWater(); ok && lw < trunc {
		trunc = lw
	}
	if err := s.wal.TruncateThrough(trunc); err != nil {
		return err
	}
	s.lastSnap = time.Now()
	s.reg.Counter("expertfind_snapshots_total", "Engine snapshots written.").Inc()
	s.reg.Gauge("expertfind_snapshot_bytes", "Size of the most recent snapshot.").
		Set(float64(nbytes))
	s.reg.Histogram("expertfind_snapshot_seconds",
		"Time to serialise and persist one snapshot.", nil).
		Observe(time.Since(start).Seconds())
	s.setSnapshotGauges()
	s.log.Info("store_snapshot_written", "file", path, "bytes", nbytes,
		"seq", seq, "dur", time.Since(start).Round(time.Millisecond))
	return nil
}

// countingWriter counts bytes for the snapshot size gauge while the
// snapshot streams to disk.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// StartSnapshotLoop checkpoints every interval until Close. Errors are
// logged and counted, not fatal — the WAL still holds everything, so a
// failed snapshot costs replay time, not data.
func (s *Store) StartSnapshotLoop(interval time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.stopLoop != nil || interval <= 0 {
		return
	}
	s.stopLoop = make(chan struct{})
	s.loopDone = make(chan struct{})
	go s.snapshotLoop(interval, s.stopLoop, s.loopDone)
}

func (s *Store) snapshotLoop(interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.reg.Counter("expertfind_snapshot_failures_total",
					"Periodic snapshots that failed.").Inc()
				s.log.Error("store_snapshot_failed", "err", err.Error())
			}
		}
	}
}

// Close writes a final snapshot, then flushes and closes the WAL. The
// store is unusable afterwards. Safe to call twice.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	stop, done := s.stopLoop, s.loopDone
	s.stopLoop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}

	err := s.Snapshot()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if cerr := s.wal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// setSnapshotGauges publishes snapshot freshness; callers hold s.mu or
// run before the store is shared.
func (s *Store) setSnapshotGauges() {
	if s.lastSnap.IsZero() {
		return
	}
	s.reg.Gauge("expertfind_snapshot_last_unix_seconds",
		"Unix time of the most recent snapshot.").Set(float64(s.lastSnap.Unix()))
	s.reg.Gauge("expertfind_snapshot_age_seconds",
		"Age of the most recent snapshot at the last store event.").
		Set(time.Since(s.lastSnap).Seconds())
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// newAttachedStore builds a Store around an engine and WAL a replication
// follower has already assembled (snapshot fetched and loaded, log
// opened at the right sequence). The WAL is NOT attached to the engine
// as an update log — a follower records replicated sequences explicitly,
// and only Promote wires the engine to log its own writes.
func newAttachedStore(dir string, e *Engine, wal *durable.WAL, reg *obs.Registry, log *obs.Logger) *Store {
	return &Store{
		dir: dir, engine: e, wal: wal, reg: reg, log: log,
		followers: make(map[string]followerPos), followerTTL: DefaultFollowerTTL,
	}
}

// SnapshotPath returns the snapshot file's path inside the store.
func (s *Store) SnapshotPath() string { return filepath.Join(s.dir, SnapshotFileName) }

// LastSeq returns the WAL's most recent sequence (0 when empty).
func (s *Store) LastSeq() uint64 { return s.wal.LastSeq() }

// Epoch returns the store's persisted replication epoch.
func (s *Store) Epoch() uint64 { return s.wal.Epoch() }

// Fenced reports whether the store's WAL is fenced by a newer epoch.
func (s *Store) Fenced() bool { return s.wal.Fenced() }

// Fence deposes this store at the given (strictly newer) epoch; see
// durable.WAL.Fence. A fenced leader rejects all further writes.
func (s *Store) Fence(epoch uint64) error {
	err := s.wal.Fence(epoch)
	if err == nil {
		s.reg.Counter("expertfind_replication_fences_total",
			"Times this node's WAL was fenced by a newer replication epoch.").Inc()
		s.setEpochGauge()
		s.log.Info("store_fenced", "epoch", epoch)
	}
	return err
}

// ReadWALFrom streams this store's log from a sequence; see
// durable.WAL.ReadFrom.
func (s *Store) ReadWALFrom(from uint64) (*durable.WALIterator, error) {
	return s.wal.ReadFrom(from)
}

// ObserveFollower records a follower's replication position: it has
// applied every sequence up to and including applied. The report pins
// WAL truncation (see Snapshot) until the follower goes silent for the
// store's follower TTL.
func (s *Store) ObserveFollower(id string, applied uint64) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	s.followers[id] = followerPos{applied: applied, seen: time.Now()}
}

// FollowerLowWater returns the lowest applied sequence among live
// followers, and whether any follower is live at all. Expired entries
// are dropped as a side effect.
func (s *Store) FollowerLowWater() (uint64, bool) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	now := time.Now()
	low, ok := uint64(0), false
	for id, p := range s.followers {
		if now.Sub(p.seen) > s.followerTTL {
			delete(s.followers, id)
			continue
		}
		if !ok || p.applied < low {
			low, ok = p.applied, true
		}
	}
	s.reg.Gauge("expertfind_replication_followers",
		"Live replication followers tracked by this leader.").Set(float64(len(s.followers)))
	if ok {
		s.reg.Gauge("expertfind_replication_low_water_seq",
			"Lowest WAL sequence applied by any live follower.").Set(float64(low))
	}
	return low, ok
}

// setEpochGauge publishes the replication epoch and fence state.
func (s *Store) setEpochGauge() {
	s.reg.Gauge("expertfind_replication_epoch",
		"Persisted replication epoch of this node's WAL.").Set(float64(s.wal.Epoch()))
	s.reg.Gauge("expertfind_replication_fenced",
		"1 when this node's WAL is fenced by a newer epoch.").Set(b2f(s.wal.Fenced()))
}
