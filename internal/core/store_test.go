package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// storeFixture regenerates the deterministic base graph and the build
// function a store needs. Every call returns a FRESH graph, exactly as
// a restarted process would reload it from disk.
func storeFixture() (*dataset.Dataset, func(g *hetgraph.Graph) func() (*Engine, error)) {
	mk := func(g *hetgraph.Graph) func() (*Engine, error) {
		return func() (*Engine, error) {
			// UseKPCore=false skips sampling+training: fast and fully
			// deterministic, which is what restart tests need.
			return Build(g, Options{Dim: 8, Seed: 5, UseKPCore: Bool(false)})
		}
	}
	ds := dataset.Generate(dataset.AminerSim(120))
	return ds, mk
}

// addTestPapers accepts n updates through the engine, returning the ids.
func addTestPapers(t *testing.T, e *Engine, n int) []hetgraph.NodeID {
	t.Helper()
	authors := e.Graph().NodesOfType(hetgraph.Author)
	if len(authors) < 2 {
		t.Fatal("fixture has too few authors")
	}
	ids := make([]hetgraph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		id, err := e.AddPaper(NewPaper{
			Text:    "durable graph embedding recovery study " + string(rune('a'+i)),
			Authors: []hetgraph.NodeID{authors[i%len(authors)], authors[(i+1)%len(authors)]},
		})
		if err != nil {
			t.Fatalf("add paper %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

// rankingsOf runs a fixed query set and returns the expert id lists.
func rankingsOf(t *testing.T, e *Engine, ds *dataset.Dataset) [][]hetgraph.NodeID {
	t.Helper()
	var out [][]hetgraph.NodeID
	for _, q := range ds.Queries(3, randSource(9)) {
		ranked, _, err := e.TopExperts(q.Text, 40, 10)
		if err != nil {
			t.Fatalf("query %q: %v", q.Text, err)
		}
		ids := make([]hetgraph.NodeID, len(ranked))
		for i, r := range ranked {
			ids[i] = r.Expert
		}
		out = append(out, ids)
	}
	return out
}

func sameRankings(a, b [][]hetgraph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func openTestStore(t *testing.T, dir string) (*Store, *dataset.Dataset) {
	t.Helper()
	ds, mk := storeFixture()
	st, err := OpenStore(dir, ds.Graph, mk(ds.Graph), StoreOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return st, ds
}

// TestStoreCrashRecovery is the core durability contract: acknowledged
// updates survive a crash (no Close, no final snapshot) and rankings
// are identical after restart-plus-replay.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, ds := openTestStore(t, dir)
	ids := addTestPapers(t, st.Engine(), 5)
	before := rankingsOf(t, st.Engine(), ds)
	papersBefore := st.Engine().Graph().NumNodesOfType(hetgraph.Paper)
	// Crash: the store is abandoned without Close — the only durability
	// it gets is what Append already put on disk.

	st2, ds2 := openTestStore(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if !rec.SnapshotLoaded {
		t.Error("initial snapshot was not used on restart")
	}
	if rec.Replayed != 5 {
		t.Errorf("replayed %d records, want 5", rec.Replayed)
	}
	e2 := st2.Engine()
	if got := e2.Graph().NumNodesOfType(hetgraph.Paper); got != papersBefore {
		t.Errorf("paper count after recovery: %d, want %d", got, papersBefore)
	}
	for _, id := range ids {
		if e2.Graph().Type(id) != hetgraph.Paper {
			t.Errorf("acknowledged paper %d missing after recovery", id)
		}
		if _, ok := e2.Embeddings[id]; !ok {
			t.Errorf("acknowledged paper %d has no embedding after recovery", id)
		}
	}
	if after := rankingsOf(t, e2, ds2); !sameRankings(before, after) {
		t.Error("rankings differ after crash recovery")
	}
	if e2.LastUpdateSeq() != 5 {
		t.Errorf("last seq %d, want 5", e2.LastUpdateSeq())
	}
}

// TestStoreSnapshotCoversUpdates: after an explicit snapshot, restart
// needs no WAL replay, and the covered segments are reclaimed.
func TestStoreSnapshotCoversUpdates(t *testing.T) {
	dir := t.TempDir()
	st, ds := openTestStore(t, dir)
	addTestPapers(t, st.Engine(), 4)
	before := rankingsOf(t, st.Engine(), ds)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The WAL must have been truncated down to (at most) one empty
	// active segment.
	walFiles, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	var walBytes int64
	for _, f := range walFiles {
		fi, _ := f.Info()
		walBytes += fi.Size()
	}
	if walBytes != 0 {
		t.Errorf("WAL holds %d bytes after covering snapshot", walBytes)
	}

	st2, ds2 := openTestStore(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Replayed != 0 {
		t.Errorf("replayed %d records, want 0 after snapshot", rec.Replayed)
	}
	if rec.SnapshotSeq != 4 {
		t.Errorf("snapshot seq %d, want 4", rec.SnapshotSeq)
	}
	if st2.Engine().AppliedUpdates() != 4 {
		t.Errorf("journalled updates %d, want 4", st2.Engine().AppliedUpdates())
	}
	if after := rankingsOf(t, st2.Engine(), ds2); !sameRankings(before, after) {
		t.Error("rankings differ after snapshot restart")
	}
}

// TestStoreMixedSnapshotAndWAL: updates both before and after the
// snapshot all survive.
func TestStoreMixedSnapshotAndWAL(t *testing.T) {
	dir := t.TempDir()
	st, ds := openTestStore(t, dir)
	addTestPapers(t, st.Engine(), 3)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	addTestPapers(t, st.Engine(), 2) // live only in the WAL
	before := rankingsOf(t, st.Engine(), ds)
	// Crash without Close.

	st2, ds2 := openTestStore(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if rec.SnapshotSeq != 3 || rec.Replayed != 2 {
		t.Errorf("recovery: %+v, want snapshot seq 3 + 2 replayed", rec)
	}
	if st2.Engine().AppliedUpdates() != 5 {
		t.Errorf("applied updates %d, want 5", st2.Engine().AppliedUpdates())
	}
	if after := rankingsOf(t, st2.Engine(), ds2); !sameRankings(before, after) {
		t.Error("rankings differ after mixed recovery")
	}
}

// TestStoreCorruptSnapshotFailsLoudly: a flipped byte in the snapshot
// must abort recovery with a typed checksum error, not serve bad state.
func TestStoreCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	addTestPapers(t, st.Engine(), 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, SnapshotFileName)
	fi, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.CorruptFileByte(snap, fi.Size()/2, 0x20); err != nil {
		t.Fatal(err)
	}

	ds, mk := storeFixture()
	_, err = OpenStore(dir, ds.Graph, mk(ds.Graph), StoreOptions{Metrics: obs.NewRegistry()})
	if !errors.Is(err, durable.ErrChecksum) {
		t.Fatalf("corrupt snapshot: want ErrChecksum, got %v", err)
	}
	var ce *durable.CorruptError
	if !errors.As(err, &ce) || ce.Path == "" {
		t.Fatalf("corrupt snapshot error lacks file context: %v", err)
	}
}

// TestStoreTornWALTailRecovered: a partial record at the WAL tail (a
// crash mid-append, never acknowledged) is dropped; everything
// acknowledged before it survives.
func TestStoreTornWALTailRecovered(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	addTestPapers(t, st.Engine(), 3)
	// Crash without Close, then a torn half-record at the tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("PARTIAL")); err != nil { // 7 bytes < record header
		t.Fatal(err)
	}
	f.Close()

	st2, _ := openTestStore(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if !rec.TornWALTail {
		t.Error("torn tail not reported")
	}
	if rec.Replayed != 3 {
		t.Errorf("replayed %d, want 3", rec.Replayed)
	}
}

// TestStoreCorruptWALInteriorFailsLoudly: damage that is not a tail
// tear aborts recovery with a typed error.
func TestStoreCorruptWALInteriorFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	addTestPapers(t, st.Engine(), 3)
	// Crash without Close; flip a byte inside the FIRST record.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err := durable.CorruptFileByte(segs[0], 20, 0x80); err != nil {
		t.Fatal(err)
	}

	ds, mk := storeFixture()
	_, err := OpenStore(dir, ds.Graph, mk(ds.Graph), StoreOptions{Metrics: obs.NewRegistry()})
	if !errors.Is(err, durable.ErrChecksum) {
		t.Fatalf("corrupt WAL interior: want ErrChecksum, got %v", err)
	}
}

// failingUpdateLog refuses every append.
type failingUpdateLog struct{}

func (failingUpdateLog) Append([]byte) (uint64, error) { return 0, durable.ErrInjected }

// TestAddPaperRejectedWhenLogFails: a WAL failure must reject the
// update entirely — nothing applied, typed error out.
func TestAddPaperRejectedWhenLogFails(t *testing.T) {
	ds, mk := storeFixture()
	e, err := mk(ds.Graph)()
	if err != nil {
		t.Fatal(err)
	}
	e.SetUpdateLog(failingUpdateLog{})
	papers := e.Graph().NumNodesOfType(hetgraph.Paper)
	authors := e.Graph().NodesOfType(hetgraph.Author)
	_, err = e.AddPaper(NewPaper{Text: "x", Authors: authors[:1]})
	var ule *UpdateLogError
	if !errors.As(err, &ule) {
		t.Fatalf("want *UpdateLogError, got %v", err)
	}
	if !errors.Is(err, durable.ErrInjected) {
		t.Fatalf("cause lost: %v", err)
	}
	if got := e.Graph().NumNodesOfType(hetgraph.Paper); got != papers {
		t.Errorf("update applied despite log failure: %d papers, want %d", got, papers)
	}
	if e.AppliedUpdates() != 0 {
		t.Error("journal grew despite log failure")
	}
}

// TestStoreCloseWritesFinalSnapshot: Close checkpoints, so the next
// open replays nothing.
func TestStoreCloseWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	addTestPapers(t, st.Engine(), 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	st2, _ := openTestStore(t, dir)
	defer st2.Close()
	if rec := st2.Recovery(); rec.Replayed != 0 || rec.SnapshotSeq != 2 {
		t.Errorf("recovery after clean close: %+v", rec)
	}
}
