package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleflightDedup(t *testing.T) {
	var g flightGroup
	var fills atomic.Int64
	release := make(chan struct{})
	const callers = 16

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do(context.Background(), "k", func() (cachedResult, error) {
				fills.Add(1)
				<-release // hold every follower in the waiting path
				return resultWithPapers(7), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if len(v.papers) != 1 || v.papers[0] != 7 {
				t.Errorf("wrong value %+v", v)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let the goroutines pile up on the leader before releasing it.
	for {
		if fills.Load() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if sharedCount.Load() != callers-1 {
		t.Fatalf("shared callers = %d, want %d", sharedCount.Load(), callers-1)
	}
}

func TestSingleflightSequentialCallsEachExecute(t *testing.T) {
	var g flightGroup
	var fills int
	for i := 0; i < 3; i++ {
		_, err, shared := g.Do(context.Background(), "k", func() (cachedResult, error) {
			fills++
			return cachedResult{}, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
	}
	if fills != 3 {
		t.Fatalf("sequential calls should each run fn, got %d", fills)
	}
}

func TestSingleflightWaiterCancellation(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	leaderStarted := make(chan struct{})
	go g.Do(context.Background(), "k", func() (cachedResult, error) {
		close(leaderStarted)
		<-release
		return cachedResult{}, nil
	})
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", func() (cachedResult, error) {
			t.Error("waiter must not execute fn")
			return cachedResult{}, nil
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
}

func TestSingleflightLeaderErrorShared(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do(context.Background(), "k", func() (cachedResult, error) {
			close(started)
			<-release
			return cachedResult{}, boom
		})
	}()
	<-started
	errs := make(chan error, 1)
	go func() {
		// The fallback fn also errors, so the assertion holds even if this
		// goroutine loses the registration race and becomes a fresh leader.
		_, err, _ := g.Do(context.Background(), "k", func() (cachedResult, error) {
			return cachedResult{}, boom
		})
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	if err := <-errs; !errors.Is(err, boom) {
		t.Fatalf("waiter got %v, want leader's error", err)
	}
	wg.Wait()
}
