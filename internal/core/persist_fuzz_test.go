package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
)

// snapshotFixture builds one tiny engine and serialises it, shared by
// the corruption tests and the fuzzer. The build skips fine-tuning so
// the fixture is cheap; Save/Load exercise exactly the same paths.
var snapshotFixture = struct {
	once  sync.Once
	ds    *dataset.Dataset
	bytes []byte
	err   error
}{}

func validSnapshotBytes(t testing.TB) ([]byte, *dataset.Dataset) {
	f := &snapshotFixture
	f.once.Do(func() {
		f.ds = dataset.Generate(dataset.AminerSim(60))
		e, err := Build(f.ds.Graph, Options{Dim: 4, Seed: 3, UseKPCore: Bool(false)})
		if err != nil {
			f.err = err
			return
		}
		// Include a journalled update so the Updates path is covered.
		authors := f.ds.Graph.NodesOfType(hetgraph.Author)
		if _, err := e.AddPaper(NewPaper{Text: "journalled paper", Authors: authors[:1]}); err != nil {
			f.err = err
			return
		}
		var buf bytes.Buffer
		f.err = e.Save(&buf)
		f.bytes = buf.Bytes()
	})
	if f.err != nil {
		t.Fatal(f.err)
	}
	return f.bytes, f.ds
}

// typedLoadError reports whether err is one of the durability layer's
// deliberate error classes, as opposed to a raw decoder message or a
// panic converted to a failure.
func typedLoadError(err error) bool {
	var ce *durable.CorruptError
	var ve *durable.VersionError
	return errors.As(err, &ce) || errors.As(err, &ve) ||
		errors.Is(err, durable.ErrTruncated) ||
		errors.Is(err, durable.ErrChecksum) ||
		errors.Is(err, durable.ErrBadMagic)
}

// TestLoadCorruptionsAreTyped damages a valid snapshot every way the
// fault model covers and asserts each one is rejected with a typed,
// contextual error — never a bare "gob: ..." string, never a partially
// loaded engine.
func TestLoadCorruptionsAreTyped(t *testing.T) {
	valid, ds := validSnapshotBytes(t)
	freshGraph := func() *hetgraph.Graph {
		return dataset.Generate(dataset.AminerSim(60)).Graph
	}
	_ = ds

	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 1, 5, 19, 20, 21, len(valid) / 2, len(valid) - 1} {
			_, err := Load(bytes.NewReader(valid[:cut]), freshGraph())
			if err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
			if !errors.Is(err, durable.ErrTruncated) {
				t.Fatalf("truncation at %d: want ErrTruncated, got %v", cut, err)
			}
		}
	})

	t.Run("bit flips", func(t *testing.T) {
		// A sweep over the header plus samples through the payload.
		offsets := []int{0, 3, 6, 7, 9, 17, 20, 40, len(valid) / 3, len(valid) / 2, len(valid) - 1}
		for _, off := range offsets {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0x04
			_, err := Load(bytes.NewReader(mut), freshGraph())
			if err == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
			if !typedLoadError(err) {
				t.Fatalf("bit flip at %d: untyped error %v", off, err)
			}
			if strings.HasPrefix(err.Error(), "gob:") {
				t.Fatalf("bit flip at %d surfaces raw gob error: %v", off, err)
			}
		}
	})

	t.Run("foreign file", func(t *testing.T) {
		_, err := Load(strings.NewReader("not a snapshot at all, definitely long enough"), freshGraph())
		if !errors.Is(err, durable.ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})

	t.Run("future version", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[6] = 0xFF // version field low byte
		_, err := Load(bytes.NewReader(mut), freshGraph())
		var ve *durable.VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("want *VersionError, got %v", err)
		}
	})

	t.Run("gob damage carries offset context", func(t *testing.T) {
		// A container that checks out (header and CRC consistent) but whose
		// gob stream stops early — the shape of an incompatible or buggy
		// writer rather than bit rot. The typed error must say the payload
		// was the problem and carry the offset where decoding stopped.
		// Cut inside the gob payload (before the columnar section), and
		// re-seal the shortened container so only gob decoding can object.
		plen := int(binary.LittleEndian.Uint64(valid[8:16]))
		mut := append([]byte(nil), valid[:20+plen-10]...)
		binary.LittleEndian.PutUint64(mut[8:16], uint64(plen-10))
		binary.LittleEndian.PutUint32(mut[16:20], durable.Checksum(mut[20:]))
		_, err := Load(bytes.NewReader(mut), freshGraph())
		var ce *durable.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("want *CorruptError, got %v", err)
		}
		if ce.Detail != "engine gob payload" {
			t.Fatalf("wrong detail: %+v", ce)
		}
		if ce.Offset <= 0 {
			t.Fatalf("no offset context: %+v", ce)
		}
	})
}

// FuzzLoadCorrupt mutates valid snapshot bytes at an arbitrary position
// and asserts the invariant behind the whole durability layer: Load
// never panics on damaged input and always rejects it with a typed
// error. The container checksum makes any single-byte change
// detectable, so err must be non-nil whenever the bytes differ.
func FuzzLoadCorrupt(f *testing.F) {
	valid, _ := validSnapshotBytes(f)
	g := dataset.Generate(dataset.AminerSim(60)).Graph
	f.Add(uint32(0), byte(0xFF))
	f.Add(uint32(7), byte(0x01))
	f.Add(uint32(25), byte(0x80))
	f.Add(uint32(len(valid)-1), byte(0x40))
	f.Fuzz(func(t *testing.T, pos uint32, mask byte) {
		if mask == 0 {
			t.Skip("identity mutation")
		}
		mut := append([]byte(nil), valid...)
		mut[int(pos)%len(mut)] ^= mask
		_, err := Load(bytes.NewReader(mut), g)
		if err == nil {
			t.Fatalf("mutation at %d (mask %#x) went undetected", int(pos)%len(mut), mask)
		}
		if !typedLoadError(err) {
			t.Fatalf("mutation at %d: untyped error %T: %v", int(pos)%len(mut), err, err)
		}
	})
}
