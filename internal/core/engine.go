// Package core assembles the paper's complete system: the offline
// (k,P)-core based document-embedding pipeline (§III) and the online
// PG-Index + threshold-algorithm top-n expert finding (§IV), behind one
// build/query API. Every stage can be ablated through Options, which is
// how the experiment harness produces the paper's Ours-1..Ours-4 variants
// and the "w/o (k,P)-core" row of Table IV.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"expertfind/internal/hetgraph"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
	"expertfind/internal/ta"
	"expertfind/internal/textenc"
	"expertfind/internal/train"
	"expertfind/internal/vec"
)

// Options configures an Engine build. Zero values select the paper's
// defaults (§VI-A): k=4, P-A-P ∩ P-T-P, f=0.3, near-negative 1:3, mean
// pooling, margin 1, 4 epochs.
type Options struct {
	// K is the (k,P)-core cohesiveness threshold.
	K int
	// MetaPaths are the relationships used simultaneously (§V).
	MetaPaths []hetgraph.MetaPath
	// SampleFraction is the seed ratio f of §III-B.
	SampleFraction float64
	// NegStrategy and NegPerPos configure negative collection.
	NegStrategy sampling.Strategy
	NegPerPos   int
	// MaxPositivesPerSeed bounds positives drawn from one community
	// (default 64; 0 keeps the default, -1 removes the bound). Topic-wide
	// P-T-P communities would otherwise dominate the training set.
	MaxPositivesPerSeed int
	// FastSampling answers community queries from precomputed core
	// decompositions (kpcore.CoreIndex) instead of per-seed searches.
	FastSampling bool
	// Dim is the embedding dimensionality d.
	Dim int
	// Pooling selects Φ_P (mean by default).
	Pooling textenc.Pooling
	// Train carries the optimiser hyper-parameters.
	Train train.Config
	// Index configures PG-Index construction.
	Index pgindex.Config
	// EF is the search-pool size for PG-Index retrieval (0: 2m).
	EF int
	// UseKPCore gates the structural fine-tuning; false freezes the
	// pre-trained encoder (the "w/o (k,P)-core" ablation).
	UseKPCore *bool
	// UsePGIndex gates approximate retrieval; false scans all embeddings
	// (Ours-3/Ours-4).
	UsePGIndex *bool
	// UseTA gates the threshold algorithm; false ranks every candidate
	// expert (Ours-2/Ours-4).
	UseTA *bool
	// Seed drives sampling, shuffling and index construction.
	Seed int64
	// VocabConfig tunes vocabulary induction.
	Vocab textenc.VocabConfig
}

func boolOpt(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}

// Bool is a convenience for setting the Use* option pointers.
func Bool(b bool) *bool { return &b }

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if len(o.MetaPaths) == 0 {
		o.MetaPaths = []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}
	}
	if o.SampleFraction <= 0 {
		o.SampleFraction = 0.3
	}
	if o.NegPerPos <= 0 {
		o.NegPerPos = 3
	}
	if o.MaxPositivesPerSeed == 0 {
		o.MaxPositivesPerSeed = 64
	}
	if o.MaxPositivesPerSeed < 0 {
		o.MaxPositivesPerSeed = 0 // sampling.Config: 0 means unbounded
	}
	if o.Dim <= 0 {
		o.Dim = 64
	}
	if o.Index == (pgindex.Config{}) {
		o.Index = pgindex.DefaultConfig()
		o.Index.Seed = o.Seed
	}
	return o
}

// BuildStats reports the offline pipeline's work, phase by phase.
type BuildStats struct {
	VocabSize     int
	Sampling      *sampling.Report
	Training      *train.Result
	CommunityTime time.Duration // (k,P)-core search + sampling
	TrainTime     time.Duration
	EmbedTime     time.Duration
	IndexTime     time.Duration
	IndexEdges    int
	IndexMemory   int64
	TotalTime     time.Duration
}

// Engine is a built expert-finding system: fine-tuned embeddings E, the
// PG-Index over them, and the TA ranker.
type Engine struct {
	g     *hetgraph.Graph
	opts  Options
	enc   *textenc.Encoder
	cache train.TokenCache
	// Embeddings is E, the representation of every paper.
	Embeddings map[hetgraph.NodeID]vec.Vector
	index      *pgindex.Index
	stats      BuildStats
}

// Build runs the offline pipeline over g: vocabulary induction,
// pre-trained encoding, (k,P)-core community sampling, triplet fine-tuning,
// embedding of all papers, and PG-Index construction.
func Build(g *hetgraph.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if g.NumNodesOfType(hetgraph.Paper) == 0 {
		return nil, fmt.Errorf("core: graph has no papers")
	}
	start := time.Now()
	e := &Engine{g: g, opts: opts}

	// Vocabulary + pre-trained encoder.
	corpus := make([]string, 0, g.NumNodesOfType(hetgraph.Paper))
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		corpus = append(corpus, g.Label(p))
	}
	vocab := textenc.BuildVocab(corpus, opts.Vocab)
	e.enc = textenc.NewEncoder(vocab, opts.Dim, opts.Seed)
	textenc.PretrainDistributional(e.enc, corpus)
	e.enc.Pooling = opts.Pooling
	e.cache = train.BuildTokenCache(g, e.enc)
	e.stats.VocabSize = vocab.Size()

	// Offline stage 1: (k,P)-core communities and training triples.
	if boolOpt(opts.UseKPCore, true) {
		t0 := time.Now()
		rng := rand.New(rand.NewSource(opts.Seed))
		triples, rep := sampling.Generate(g, sampling.Config{
			Fraction:            opts.SampleFraction,
			K:                   opts.K,
			MetaPaths:           opts.MetaPaths,
			Strategy:            opts.NegStrategy,
			NegPerPos:           opts.NegPerPos,
			MaxPositivesPerSeed: opts.MaxPositivesPerSeed,
			UseCoreIndex:        opts.FastSampling,
		}, rng)
		e.stats.Sampling = rep
		e.stats.CommunityTime = time.Since(t0)

		// Offline stage 2: triplet-loss fine-tuning (Eq. 3).
		t0 = time.Now()
		e.stats.Training = train.FineTune(e.enc, e.cache, triples, opts.Train,
			rand.New(rand.NewSource(opts.Seed+1)))
		e.stats.TrainTime = time.Since(t0)
	}

	// Offline stage 3: embed all papers, build the PG-Index.
	t0 := time.Now()
	e.Embeddings = train.EmbedAll(e.enc, e.cache)
	e.stats.EmbedTime = time.Since(t0)

	if boolOpt(opts.UsePGIndex, true) {
		t0 = time.Now()
		e.index = pgindex.Build(e.Embeddings, opts.Index)
		e.stats.IndexTime = time.Since(t0)
		e.stats.IndexEdges = e.index.NumEdges()
		e.stats.IndexMemory = e.index.MemoryBytes()
	}
	e.stats.TotalTime = time.Since(start)
	return e, nil
}

// Stats returns the build statistics.
func (e *Engine) Stats() BuildStats { return e.stats }

// Graph returns the underlying heterogeneous graph.
func (e *Engine) Graph() *hetgraph.Graph { return e.g }

// Encoder returns the (fine-tuned) document encoder.
func (e *Engine) Encoder() *textenc.Encoder { return e.enc }

// Index returns the PG-Index, or nil when disabled.
func (e *Engine) Index() *pgindex.Index { return e.index }

// QueryStats reports the online work of one query.
type QueryStats struct {
	EncodeTime   time.Duration
	RetrieveTime time.Duration
	RankTime     time.Duration
	Search       pgindex.SearchStats
	TA           ta.Stats
	UsedPGIndex  bool
	UsedTA       bool
}

// Total returns the end-to-end response time of the query.
func (s QueryStats) Total() time.Duration { return s.EncodeTime + s.RetrieveTime + s.RankTime }

// RetrievePapers returns the top-m papers semantically similar to the
// query text (§IV-B), via the PG-Index or, when disabled, a brute-force
// scan.
func (e *Engine) RetrievePapers(query string, m int) ([]hetgraph.NodeID, QueryStats) {
	var st QueryStats
	t0 := time.Now()
	qv := e.enc.Encode(query)
	st.EncodeTime = time.Since(t0)

	t0 = time.Now()
	var ids []hetgraph.NodeID
	if e.index != nil {
		st.UsedPGIndex = true
		var res []pgindex.Result
		res, st.Search = e.index.Search(qv, m, e.opts.EF)
		ids = make([]hetgraph.NodeID, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
	} else {
		res := pgindex.BruteForce(e.Embeddings, qv, m)
		ids = make([]hetgraph.NodeID, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
	}
	st.RetrieveTime = time.Since(t0)
	return ids, st
}

// TopExperts answers a query (§IV-C): retrieve the top-m papers, extract
// candidate experts, and return the top-n by ranking score — through the
// threshold algorithm by default, or a full scan when disabled.
func (e *Engine) TopExperts(query string, m, n int) ([]ta.Ranking, QueryStats) {
	papers, st := e.RetrievePapers(query, m)
	t0 := time.Now()
	var experts []ta.Ranking
	if boolOpt(e.opts.UseTA, true) {
		st.UsedTA = true
		experts, st.TA = ta.TopExperts(e.g, papers, n)
	} else {
		experts = ta.TopExpertsFullScan(e.g, papers, n)
	}
	st.RankTime = time.Since(t0)
	return experts, st
}

// EncodeQuery exposes the query representation v_T, which the experiment
// harness reuses for the ADS metric.
func (e *Engine) EncodeQuery(query string) vec.Vector { return e.enc.Encode(query) }
