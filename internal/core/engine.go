// Package core assembles the paper's complete system: the offline
// (k,P)-core based document-embedding pipeline (§III) and the online
// PG-Index + threshold-algorithm top-n expert finding (§IV), behind one
// build/query API. Every stage can be ablated through Options, which is
// how the experiment harness produces the paper's Ours-1..Ours-4 variants
// and the "w/o (k,P)-core" row of Table IV.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"expertfind/internal/colstore"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
	"expertfind/internal/ta"
	"expertfind/internal/textenc"
	"expertfind/internal/train"
	"expertfind/internal/vec"
)

// Options configures an Engine build. Zero values select the paper's
// defaults (§VI-A): k=4, P-A-P ∩ P-T-P, f=0.3, near-negative 1:3, mean
// pooling, margin 1, 4 epochs.
type Options struct {
	// K is the (k,P)-core cohesiveness threshold.
	K int
	// MetaPaths are the relationships used simultaneously (§V).
	MetaPaths []hetgraph.MetaPath
	// SampleFraction is the seed ratio f of §III-B.
	SampleFraction float64
	// NegStrategy and NegPerPos configure negative collection.
	NegStrategy sampling.Strategy
	NegPerPos   int
	// MaxPositivesPerSeed bounds positives drawn from one community
	// (default 64; 0 keeps the default, -1 removes the bound). Topic-wide
	// P-T-P communities would otherwise dominate the training set.
	MaxPositivesPerSeed int
	// FastSampling answers community queries from precomputed core
	// decompositions (kpcore.CoreIndex) instead of per-seed searches.
	FastSampling bool
	// Dim is the embedding dimensionality d.
	Dim int
	// Pooling selects Φ_P (mean by default).
	Pooling textenc.Pooling
	// Train carries the optimiser hyper-parameters.
	Train train.Config
	// Index configures PG-Index construction.
	Index pgindex.Config
	// EF is the search-pool size for PG-Index retrieval (0: 2m).
	EF int
	// UseKPCore gates the structural fine-tuning; false freezes the
	// pre-trained encoder (the "w/o (k,P)-core" ablation).
	UseKPCore *bool
	// UsePGIndex gates approximate retrieval; false scans all embeddings
	// (Ours-3/Ours-4).
	UsePGIndex *bool
	// UseTA gates the threshold algorithm; false ranks every candidate
	// expert (Ours-2/Ours-4).
	UseTA *bool
	// Seed drives sampling, shuffling and index construction.
	Seed int64
	// VocabConfig tunes vocabulary induction.
	Vocab textenc.VocabConfig
	// Metrics receives build-phase spans and online query counters; nil
	// selects the process-wide obs.Default() registry.
	Metrics *obs.Registry
}

func boolOpt(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}

// Bool is a convenience for setting the Use* option pointers.
func Bool(b bool) *bool { return &b }

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if len(o.MetaPaths) == 0 {
		o.MetaPaths = []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}
	}
	if o.SampleFraction <= 0 {
		o.SampleFraction = 0.3
	}
	if o.NegPerPos <= 0 {
		o.NegPerPos = 3
	}
	if o.MaxPositivesPerSeed == 0 {
		o.MaxPositivesPerSeed = 64
	}
	if o.MaxPositivesPerSeed < 0 {
		o.MaxPositivesPerSeed = 0 // sampling.Config: 0 means unbounded
	}
	if o.Dim <= 0 {
		o.Dim = 64
	}
	if o.Index == (pgindex.Config{}) {
		o.Index = pgindex.DefaultConfig()
		o.Index.Seed = o.Seed
	}
	return o
}

// BuildStats reports the offline pipeline's work, phase by phase.
type BuildStats struct {
	VocabSize     int
	Sampling      *sampling.Report
	Training      *train.Result
	CommunityTime time.Duration // (k,P)-core search + sampling
	TrainTime     time.Duration
	EmbedTime     time.Duration
	IndexTime     time.Duration
	IndexEdges    int
	IndexMemory   int64
	TotalTime     time.Duration
}

// Engine is a built expert-finding system: fine-tuned embeddings E, the
// PG-Index over them, and the TA ranker.
//
// Queries and online updates may run concurrently: query paths hold mu
// for reading, AddPaper holds it for writing. The optional query cache
// (EnableQueryCache) memoises answers and is invalidated by every update,
// so a cached ranking never outlives the graph state it was computed on.
type Engine struct {
	g     *hetgraph.Graph
	opts  Options
	enc   *textenc.Encoder
	cache train.TokenCache
	// Embeddings is E, the representation of every paper. Treat as
	// read-only outside the engine; AddPaper mutates it under mu.
	Embeddings map[hetgraph.NodeID]vec.Vec32
	index      *pgindex.Index
	stats      BuildStats
	reg        *obs.Registry

	// mu serialises online updates against queries.
	mu sync.RWMutex
	// qcache is the optional sharded query cache; nil when disabled.
	qcache *queryCache
	// flights coalesces concurrent identical cache misses.
	flights flightGroup

	// wal, when attached, records every accepted update before it is
	// applied (see SetUpdateLog); nil runs memory-only.
	wal UpdateLog
	// updates journals every accepted online update since the offline
	// build, in order — Save embeds it so snapshots capture live state.
	updates []NewPaper
	// walSeq is the WAL sequence of the most recent applied update.
	walSeq uint64

	// colsec is the columnar snapshot section backing a v2 load (nil
	// for built or v1-loaded engines). It anchors the mmap'd views the
	// embedding matrix and index adjacency alias; see CloseSnapshot.
	colsec *colstore.Section
}

// Build runs the offline pipeline over g: vocabulary induction,
// pre-trained encoding, (k,P)-core community sampling, triplet fine-tuning,
// embedding of all papers, and PG-Index construction. Each phase runs
// under an obs span, so its duration lands both in BuildStats and in the
// registry's expertfind_stage_seconds histogram (stage="build/...").
func Build(g *hetgraph.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if g.NumNodesOfType(hetgraph.Paper) == 0 {
		return nil, fmt.Errorf("core: graph has no papers")
	}
	e := &Engine{g: g, opts: opts, reg: opts.Metrics}
	if e.reg == nil {
		e.reg = obs.Default()
	}
	ctx, root := obs.StartSpan(obs.WithRegistry(context.Background(), e.reg), "build")

	// Vocabulary + pre-trained encoder.
	_, sp := obs.StartSpan(ctx, "pretrain")
	corpus := make([]string, 0, g.NumNodesOfType(hetgraph.Paper))
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		corpus = append(corpus, g.Label(p))
	}
	vocab := textenc.BuildVocab(corpus, opts.Vocab)
	e.enc = textenc.NewEncoder(vocab, opts.Dim, opts.Seed)
	textenc.PretrainDistributional(e.enc, corpus)
	e.enc.Pooling = opts.Pooling
	e.cache = train.BuildTokenCache(g, e.enc)
	e.stats.VocabSize = vocab.Size()
	sp.End()

	// Offline stage 1: (k,P)-core communities and training triples.
	if boolOpt(opts.UseKPCore, true) {
		_, sp = obs.StartSpan(ctx, "sampling")
		rng := rand.New(rand.NewSource(opts.Seed))
		triples, rep := sampling.Generate(g, sampling.Config{
			Fraction:            opts.SampleFraction,
			K:                   opts.K,
			MetaPaths:           opts.MetaPaths,
			Strategy:            opts.NegStrategy,
			NegPerPos:           opts.NegPerPos,
			MaxPositivesPerSeed: opts.MaxPositivesPerSeed,
			UseCoreIndex:        opts.FastSampling,
		}, rng)
		e.stats.Sampling = rep
		e.stats.CommunityTime = sp.End()
		e.reg.Counter("expertfind_build_triples_sampled_total",
			"Training triples produced by (k,P)-core sampling.").Add(float64(len(triples)))

		// Offline stage 2: triplet-loss fine-tuning (Eq. 3).
		_, sp = obs.StartSpan(ctx, "training")
		e.stats.Training = train.FineTune(e.enc, e.cache, triples, opts.Train,
			rand.New(rand.NewSource(opts.Seed+1)))
		e.stats.TrainTime = sp.End()
	}

	// Offline stage 3: embed all papers, build the PG-Index.
	_, sp = obs.StartSpan(ctx, "embedding")
	e.Embeddings = train.EmbedAll(e.enc, e.cache)
	e.stats.EmbedTime = sp.End()
	e.reg.Counter("expertfind_build_papers_embedded_total",
		"Papers embedded by offline builds.").Add(float64(len(e.Embeddings)))

	if boolOpt(opts.UsePGIndex, true) {
		_, sp = obs.StartSpan(ctx, "indexing")
		e.index = pgindex.BuildWithRand(e.Embeddings, opts.Index,
			rand.New(rand.NewSource(opts.Index.Seed)))
		e.stats.IndexTime = sp.End()
		e.stats.IndexEdges = e.index.NumEdges()
		e.stats.IndexMemory = e.index.MemoryBytes()
	}
	e.stats.TotalTime = root.End()

	e.reg.Counter("expertfind_builds_total", "Offline engine builds completed.").Inc()
	e.reg.Gauge("expertfind_vocab_size", "Vocabulary size of the built encoder.").
		Set(float64(e.stats.VocabSize))
	e.reg.Gauge("expertfind_index_edges", "Directed proximity edges in the PG-Index.").
		Set(float64(e.stats.IndexEdges))
	e.reg.Gauge("expertfind_index_bytes", "Estimated resident size of the PG-Index.").
		Set(float64(e.stats.IndexMemory))
	return e, nil
}

// Stats returns the build statistics.
func (e *Engine) Stats() BuildStats { return e.stats }

// Metrics returns the registry the engine records into (never nil).
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Graph returns the underlying heterogeneous graph.
func (e *Engine) Graph() *hetgraph.Graph { return e.g }

// Encoder returns the (fine-tuned) document encoder.
func (e *Engine) Encoder() *textenc.Encoder { return e.enc }

// Index returns the PG-Index, or nil when disabled.
func (e *Engine) Index() *pgindex.Index { return e.index }

// QueryStats reports the online work of one query.
type QueryStats struct {
	EncodeTime   time.Duration
	RetrieveTime time.Duration
	RankTime     time.Duration
	Search       pgindex.SearchStats
	TA           ta.Stats
	UsedPGIndex  bool
	UsedTA       bool
	// CacheHit reports that the answer came from the query cache; the
	// remaining fields then describe the original fill, not this lookup.
	CacheHit bool
	// Coalesced reports that this call piggybacked on a concurrent
	// identical query through singleflight.
	Coalesced bool
}

// Total returns the end-to-end response time of the query.
func (s QueryStats) Total() time.Duration { return s.EncodeTime + s.RetrieveTime + s.RankTime }

// startQuery opens the root span of one online request, derived from the
// caller's ctx so cancellation flows into the pipeline stages.
func (e *Engine) startQuery(ctx context.Context) (context.Context, *obs.Span) {
	return obs.StartSpan(obs.WithRegistry(ctx, e.reg), "query")
}

// finishQuery closes the root span and records the request in the
// registry's query counters and latency histogram.
func (e *Engine) finishQuery(root *obs.Span, st QueryStats) {
	root.End()
	e.reg.Counter("expertfind_queries_total", "Online queries answered.").Inc()
	e.reg.Histogram("expertfind_query_seconds",
		"End-to-end online query latency.", nil).
		ObserveWithExemplar(st.Total().Seconds(), root.TraceID().String())
}

// abandonQuery closes the root span of a query that died on cancellation
// and bumps the abandonment counter.
func (e *Engine) abandonQuery(root *obs.Span) {
	root.End()
	e.reg.Counter("expertfind_query_abandoned_total",
		"Queries abandoned because their context was cancelled or timed out.").Inc()
}

// retrievePapersLocked is the span-instrumented retrieval stage shared by
// the public entry points; the caller holds e.mu for reading. The encode
// and retrieve spans populate QueryStats, so Total() is by construction
// the sum of the span durations.
func (e *Engine) retrievePapersLocked(ctx context.Context, query string, m int) ([]hetgraph.NodeID, QueryStats, error) {
	var st QueryStats
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	_, sp := obs.StartSpan(ctx, "encode")
	qv := e.enc.Encode(query)
	st.EncodeTime = sp.End()
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	_, sp = obs.StartSpan(ctx, "retrieve")
	var ids []hetgraph.NodeID
	if e.index != nil {
		st.UsedPGIndex = true
		res, sst, err := e.index.SearchCtx(ctx, qv, m, e.opts.EF)
		st.Search = sst
		if err != nil {
			st.RetrieveTime = sp.End()
			return nil, st, err
		}
		ids = make([]hetgraph.NodeID, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
	} else {
		res := pgindex.BruteForce(e.Embeddings, qv, m)
		ids = make([]hetgraph.NodeID, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
	}
	st.RetrieveTime = sp.End()
	return ids, st, ctx.Err()
}

// topExpertsLocked runs the full uncached pipeline under a read lock.
func (e *Engine) topExpertsLocked(ctx context.Context, query string, m, n int) ([]ta.Ranking, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sctx, root := e.startQuery(ctx)
	papers, st, err := e.retrievePapersLocked(sctx, query, m)
	if err != nil {
		e.abandonQuery(root)
		return nil, st, err
	}
	_, sp := obs.StartSpan(sctx, "rank")
	var experts []ta.Ranking
	if boolOpt(e.opts.UseTA, true) {
		st.UsedTA = true
		experts, st.TA, err = ta.TopExpertsCtx(sctx, e.g, papers, n)
	} else {
		experts = ta.TopExpertsFullScan(e.g, papers, n)
	}
	st.RankTime = sp.End()
	if err != nil {
		e.abandonQuery(root)
		return nil, st, err
	}
	e.finishQuery(root, st)
	return experts, st, nil
}

// Errors returned by the query entry points.
var (
	// ErrUnknownPaper reports an id with no indexed embedding.
	ErrUnknownPaper = errors.New("core: unknown paper id")
	// ErrNoIndex reports that the engine was built without a PG-Index.
	ErrNoIndex = errors.New("core: PG-Index disabled on this engine")
)

// BadParamError reports a query parameter outside its valid range, such
// as a non-positive m or n; callers can map it to a 400 with errors.As.
type BadParamError struct {
	Param string
	Value int
}

func (e *BadParamError) Error() string {
	return fmt.Sprintf("core: parameter %s must be positive, got %d", e.Param, e.Value)
}

// SimilarPapers returns the m papers nearest to an already-indexed paper,
// excluding the paper itself — the related-work lookup behind /similar.
// The search honours the engine's configured EF option, exactly like
// query retrieval.
func (e *Engine) SimilarPapers(id hetgraph.NodeID, m int) ([]hetgraph.NodeID, QueryStats, error) {
	return e.SimilarPapersCtx(context.Background(), id, m)
}

// SimilarPapersCtx is SimilarPapers with cooperative cancellation.
func (e *Engine) SimilarPapersCtx(ctx context.Context, id hetgraph.NodeID, m int) ([]hetgraph.NodeID, QueryStats, error) {
	if m <= 0 {
		return nil, QueryStats{}, &BadParamError{Param: "m", Value: m}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	emb, ok := e.Embeddings[id]
	if !ok {
		return nil, QueryStats{}, ErrUnknownPaper
	}
	if e.index == nil {
		return nil, QueryStats{}, ErrNoIndex
	}
	sctx, root := e.startQuery(ctx)
	var st QueryStats
	_, sp := obs.StartSpan(sctx, "retrieve")
	st.UsedPGIndex = true
	// +1: the paper itself ranks first in its own neighbourhood.
	res, sst, err := e.index.SearchCtx(sctx, emb, m+1, e.opts.EF)
	st.Search = sst
	if err != nil {
		st.RetrieveTime = sp.End()
		e.abandonQuery(root)
		return nil, st, err
	}
	ids := make([]hetgraph.NodeID, 0, m)
	for _, r := range res {
		if r.ID == id {
			continue
		}
		ids = append(ids, r.ID)
		if len(ids) == m {
			break
		}
	}
	st.RetrieveTime = sp.End()
	e.finishQuery(root, st)
	return ids, st, nil
}

// EncodeQuery exposes the query representation v_T, which the experiment
// harness reuses for the ADS metric.
func (e *Engine) EncodeQuery(query string) vec.Vec32 { return e.enc.Encode(query) }
