package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"expertfind/internal/colstore"
	"expertfind/internal/dataset"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// The mmap equivalence suite: the same snapshot loaded heap-decoded and
// mmap'd must produce bit-for-bit identical rankings — expert ids,
// order, and Float64bits of every score. The corpus is built once with
// the PG-Index on (so the CSR, entry-point, and quantization segments
// are all exercised) and includes journalled updates, covering the
// graph-only replay path of the columnar loader.

var mmapEquivFixture = struct {
	once sync.Once
	ds   *dataset.Dataset
	eng  *Engine
	snap string // saved v2 snapshot path
	err  error
}{}

func mmapEquivSetup(t testing.TB) (*dataset.Dataset, *Engine, string) {
	f := &mmapEquivFixture
	f.once.Do(func() {
		f.ds = dataset.Generate(dataset.AminerSim(120))
		e, err := Build(f.ds.Graph, Options{
			Dim: 8, Seed: 11, UseKPCore: Bool(false), Metrics: obs.NewRegistry(),
		})
		if err != nil {
			f.err = err
			return
		}
		// Journalled updates ride in the snapshot and are replayed
		// graph-only by the columnar loader — their embeddings must come
		// from the matrix, not a re-embed.
		authors := f.ds.Graph.NodesOfType(hetgraph.Author)
		for i := 0; i < 3; i++ {
			_, err := e.AddPaper(NewPaper{
				Text:    fmt.Sprintf("journalled mmap paper %d on expert finding", i),
				Authors: []hetgraph.NodeID{authors[i], authors[i+2]},
			})
			if err != nil {
				f.err = err
				return
			}
		}
		dir, err := os.MkdirTemp("", "mmapequiv")
		if err != nil {
			f.err = err
			return
		}
		f.snap = filepath.Join(dir, "engine.snap")
		w, err := os.Create(f.snap)
		if err != nil {
			f.err = err
			return
		}
		if err := e.Save(w); err != nil {
			f.err = err
			return
		}
		if err := w.Close(); err != nil {
			f.err = err
			return
		}
		f.eng = e
	})
	if f.err != nil {
		t.Fatal(f.err)
	}
	return f.ds, f.eng, f.snap
}

func freshEquivGraph() *hetgraph.Graph {
	return dataset.Generate(dataset.AminerSim(120)).Graph
}

// assertRankingsIdentical compares TopExperts and SimilarPapers between
// two engines bit for bit across a deterministic query set.
func assertRankingsIdentical(t *testing.T, ds *dataset.Dataset, label string, want, got *Engine) {
	t.Helper()
	for _, q := range ds.Queries(6, rand.New(rand.NewSource(21))) {
		w, _, err := want.TopExperts(q.Text, 40, 10)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := got.TopExperts(q.Text, 40, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(g) {
			t.Fatalf("%s: query %q: %d vs %d experts", label, q.Text, len(w), len(g))
		}
		for i := range w {
			if w[i].Expert != g[i].Expert {
				t.Fatalf("%s: query %q rank %d: expert %d vs %d",
					label, q.Text, i+1, w[i].Expert, g[i].Expert)
			}
			if math.Float64bits(w[i].Score) != math.Float64bits(g[i].Score) {
				t.Fatalf("%s: query %q rank %d: score bits %x vs %x", label, q.Text, i+1,
					math.Float64bits(w[i].Score), math.Float64bits(g[i].Score))
			}
		}
	}
	papers := want.Graph().NodesOfType(hetgraph.Paper)
	for _, id := range []hetgraph.NodeID{papers[0], papers[len(papers)/2], papers[len(papers)-1]} {
		w, _, err := want.SimilarPapers(id, 8)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := got.SimilarPapers(id, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(g) {
			t.Fatalf("%s: similar(%d): %d vs %d papers", label, id, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: similar(%d) rank %d: paper %d vs %d", label, id, i+1, w[i], g[i])
			}
		}
	}
}

// TestMmapEquivalenceSingleNode is the single-node acceptance check:
// the built engine, the heap-decoded load (-mmap off), and the mmap'd
// load (-mmap on) must rank identically, and the mmap'd engine must
// keep ranking identically after accepting new papers (which grow the
// matrix onto the heap — never into the read-only mapping).
func TestMmapEquivalenceSingleNode(t *testing.T) {
	ds, built, snap := mmapEquivSetup(t)

	heap, err := LoadFileWith(snap, freshEquivGraph(), LoadOptions{Mmap: colstore.ModeOff})
	if err != nil {
		t.Fatal(err)
	}
	if heap.SnapshotMapped() {
		t.Fatal("ModeOff load reports a mapped snapshot")
	}
	mapped, err := LoadFileWith(snap, freshEquivGraph(), LoadOptions{Mmap: colstore.ModeOn})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.CloseSnapshot()
	if !mapped.SnapshotMapped() {
		t.Fatal("ModeOn load did not map the snapshot")
	}

	assertRankingsIdentical(t, ds, "built vs heap", built, heap)
	assertRankingsIdentical(t, ds, "heap vs mmap", heap, mapped)

	// Online updates on top of the mapping: identical writes to both
	// loaded engines must keep them bit-identical, and must not touch
	// the read-only mapping (a write through it would SIGSEGV).
	for _, e := range []*Engine{heap, mapped} {
		authors := e.Graph().NodesOfType(hetgraph.Author)
		for i := 0; i < 4; i++ {
			_, err := e.AddPaper(NewPaper{
				Text:    fmt.Sprintf("post-load paper %d on graph embeddings", i),
				Authors: []hetgraph.NodeID{authors[(i*3)%len(authors)]},
			})
			if err != nil {
				t.Fatalf("add paper %d: %v", i, err)
			}
		}
	}
	assertRankingsIdentical(t, ds, "heap vs mmap after updates", heap, mapped)
}

// TestMmapEquivalenceModeAuto pins the default: ModeAuto behaves like
// ModeOn where the platform supports mapping and like ModeOff where it
// does not — and ranks identically either way.
func TestMmapEquivalenceModeAuto(t *testing.T) {
	ds, built, snap := mmapEquivSetup(t)
	auto, err := LoadFileWith(snap, freshEquivGraph(), LoadOptions{Mmap: colstore.ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.CloseSnapshot()
	assertRankingsIdentical(t, ds, "built vs auto", built, auto)
}

// TestV1SnapshotStillLoads is the backward-compatibility gate: a
// version-1 container (all-gob, no columnar section) written the way
// pre-columnar builds wrote it must load and rank exactly like the v2
// snapshot of the same engine.
func TestV1SnapshotStillLoads(t *testing.T) {
	ds, built, snap := mmapEquivSetup(t)

	// Reconstruct the v1 bytes from the v2 snapshot: same gob payload
	// minus the columnar shapes, sealed as container version 1.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := durable.ReadContainerPrefix(bytes.NewReader(raw), snap, snapshotVersionV2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := decodePayload(payload, snap)
	if err != nil {
		t.Fatal(err)
	}
	p.Col = nil
	var v1Payload bytes.Buffer
	if err := gob.NewEncoder(&v1Payload).Encode(p); err != nil {
		t.Fatal(err)
	}
	v1Path := filepath.Join(t.TempDir(), "v1.snap")
	w, err := os.Create(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.WriteContainer(w, snapshotVersionV1, v1Payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []colstore.Mode{colstore.ModeAuto, colstore.ModeOn, colstore.ModeOff} {
		v1, err := LoadFileWith(v1Path, freshEquivGraph(), LoadOptions{Mmap: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if v1.SnapshotMapped() {
			t.Fatalf("mode %v: v1 snapshot has nothing to map", mode)
		}
		assertRankingsIdentical(t, ds, fmt.Sprintf("v1 mode %v", mode), built, v1)
	}
}

// TestVerifySnapshotFile pins the follower-bootstrap validator: a valid
// v2 file passes, and truncation, trailing junk, or a flipped byte in
// any region (header, gob payload, columnar payload, padding) fails
// with a typed error.
func TestVerifySnapshotFile(t *testing.T) {
	_, _, snap := mmapEquivSetup(t)
	if err := VerifySnapshotFile(snap); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if err := VerifySnapshotFile(write("trunc", raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated snapshot verified")
	}
	if err := VerifySnapshotFile(write("trail", append(append([]byte(nil), raw...), 0xEE))); err == nil {
		t.Fatal("trailing-junk snapshot verified")
	}
	for _, off := range []int{3, 17, 40, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		if err := VerifySnapshotFile(write(fmt.Sprintf("flip%d", off), mut)); err == nil {
			t.Fatalf("bit flip at %d verified", off)
		}
	}
}
