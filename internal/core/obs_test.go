package core

import (
	"math"
	"testing"
	"time"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// buildObserved builds a small engine recording into a private registry.
func buildObserved(t *testing.T) (*Engine, *obs.Registry, *dataset.Dataset) {
	t.Helper()
	reg := obs.NewRegistry()
	ds := dataset.Generate(dataset.AminerSim(200))
	e, err := Build(ds.Graph, Options{Dim: 16, Seed: 9, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return e, reg, ds
}

// stageSum reads the recorded duration of one span path from the
// registry, in seconds.
func stageSum(reg *obs.Registry, stage string) float64 {
	return reg.Histogram("expertfind_stage_seconds", "", nil, obs.L("stage", stage)).Sum()
}

// TestBuildStatsDerivedFromSpans checks that the phase timings the public
// BuildStats API reports are exactly what the build spans recorded into
// the registry — the old hand-rolled time.Since bookkeeping and the new
// span layer must not drift apart.
func TestBuildStatsDerivedFromSpans(t *testing.T) {
	e, reg, _ := buildObserved(t)
	st := e.Stats()

	for _, c := range []struct {
		stage string
		field time.Duration
	}{
		{"build/sampling", st.CommunityTime},
		{"build/training", st.TrainTime},
		{"build/embedding", st.EmbedTime},
		{"build/indexing", st.IndexTime},
		{"build", st.TotalTime},
	} {
		if c.field <= 0 {
			t.Errorf("stage %s: zero duration in BuildStats", c.stage)
		}
		got := stageSum(reg, c.stage)
		if math.Abs(got-c.field.Seconds()) > 1e-9 {
			t.Errorf("stage %s: registry %.9fs, BuildStats %.9fs", c.stage, got, c.field.Seconds())
		}
	}
	// The named phases never exceed the whole build.
	phases := st.CommunityTime + st.TrainTime + st.EmbedTime + st.IndexTime
	if phases > st.TotalTime {
		t.Errorf("phases sum %v exceeds total %v", phases, st.TotalTime)
	}
	if got := reg.Counter("expertfind_builds_total", "").Value(); got != 1 {
		t.Errorf("builds counter = %v", got)
	}
	if got := reg.Counter("expertfind_build_papers_embedded_total", "").Value(); got != 200 {
		t.Errorf("papers embedded counter = %v, want 200", got)
	}
}

// TestQueryStatsSpanConsistency pins the QueryStats contract: Total() is
// the sum of the per-stage durations, and each stage duration equals the
// span duration recorded into the registry.
func TestQueryStatsSpanConsistency(t *testing.T) {
	e, reg, ds := buildObserved(t)
	_, st, _ := e.TopExperts(ds.Corpus()[0][:40], 50, 10)

	if st.Total() != st.EncodeTime+st.RetrieveTime+st.RankTime {
		t.Errorf("Total %v != %v + %v + %v", st.Total(), st.EncodeTime, st.RetrieveTime, st.RankTime)
	}
	for _, c := range []struct {
		stage string
		field time.Duration
	}{
		{"query/encode", st.EncodeTime},
		{"query/retrieve", st.RetrieveTime},
		{"query/rank", st.RankTime},
	} {
		got := stageSum(reg, c.stage)
		if math.Abs(got-c.field.Seconds()) > 1e-9 {
			t.Errorf("stage %s: registry %.9fs, QueryStats %.9fs", c.stage, got, c.field.Seconds())
		}
	}
	// The query histogram saw exactly this one query, with the same total.
	h := reg.Histogram("expertfind_query_seconds", "", nil)
	if h.Count() != 1 {
		t.Fatalf("query histogram count = %d, want 1", h.Count())
	}
	if math.Abs(h.Sum()-st.Total().Seconds()) > 1e-9 {
		t.Errorf("query histogram sum %.9fs, Total %.9fs", h.Sum(), st.Total().Seconds())
	}
	if got := reg.Counter("expertfind_queries_total", "").Value(); got != 1 {
		t.Errorf("queries counter = %v, want 1", got)
	}
}

// TestSimilarPapersErrors pins the sentinel errors /similar maps to HTTP
// statuses.
func TestSimilarPapersErrors(t *testing.T) {
	e, _, ds := buildObserved(t)
	if _, _, err := e.SimilarPapers(999999, 5); err != ErrUnknownPaper {
		t.Errorf("unknown id: %v", err)
	}
	noIdx, err := Build(ds.Graph, Options{Dim: 16, Seed: 9, UsePGIndex: Bool(false),
		Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	var some hetgraph.NodeID
	for id := range noIdx.Embeddings {
		some = id
		break
	}
	if _, _, err := noIdx.SimilarPapers(some, 5); err != ErrNoIndex {
		t.Errorf("no index: %v", err)
	}
}
