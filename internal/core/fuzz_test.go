package core

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzQueryKey drives NormalizeQueryKey and cacheKey with arbitrary
// bytes: normalization must never panic, must be idempotent, must be
// insensitive to case and surrounding whitespace, and two distinct
// (kind, query, m, n) tuples must never share a cache key.
func FuzzQueryKey(f *testing.F) {
	for _, seed := range []string{
		"", " ", "graph embedding", "Graph\tEmbedding\n", "研究  论文",
		"q\x0010,5", strings.Repeat("a ", 100), "\xff\xfe invalid utf8",
	} {
		f.Add(seed, 10, 5)
	}
	f.Fuzz(func(t *testing.T, q string, m, n int) {
		norm := NormalizeQueryKey(q)
		if again := NormalizeQueryKey(norm); again != norm {
			t.Fatalf("not idempotent: %q -> %q -> %q", q, norm, again)
		}
		// Simple Unicode lowercasing is idempotent, so a pre-lowercased
		// variant must land on the same key. (ToUpper is NOT safe to fold
		// here: ı/ſ-style characters round-trip to different letters.)
		if NormalizeQueryKey(strings.ToLower(q)) != norm {
			t.Fatalf("lowercase variant of %q normalizes differently", q)
		}
		if NormalizeQueryKey("  "+q+"\t") != norm {
			t.Fatalf("surrounding whitespace changes the key for %q", q)
		}
		if strings.ContainsFunc(norm, func(r rune) bool { return unicode.IsSpace(r) && r != ' ' }) {
			t.Fatalf("normalized form %q keeps non-space whitespace", norm)
		}
		if strings.Contains(norm, "  ") {
			t.Fatalf("normalized form %q keeps a whitespace run", norm)
		}

		ke := cacheKey(kindExperts, norm, m, n)
		kp := cacheKey(kindPapers, norm, m, n)
		if ke == kp {
			t.Fatalf("experts and papers keys collide for %q", norm)
		}
		if cacheKey(kindExperts, norm, m+1, n) == ke || cacheKey(kindExperts, norm, m, n+1) == ke {
			t.Fatalf("bound change does not change the key for %q", norm)
		}
	})
}
