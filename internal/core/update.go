package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"expertfind/internal/hetgraph"
)

// NewPaper describes a paper to add to a built engine: its text, its
// ordered author list (rank 1 first), and optional venue, topics and
// citations. Authors, venue and topics must be existing nodes of the
// engine's graph.
type NewPaper struct {
	Text    string
	Authors []hetgraph.NodeID
	Venues  []hetgraph.NodeID // usually one; empty for venue-less papers
	Topics  []hetgraph.NodeID
	Cites   []hetgraph.NodeID
}

// InvalidUpdateError reports an update rejected during validation, with
// nothing applied; servers map it to a 400.
type InvalidUpdateError struct {
	Reason string
}

func (e *InvalidUpdateError) Error() string { return "core: invalid update: " + e.Reason }

// UpdateLogError reports that the write-ahead log refused to record an
// update. The update was NOT applied: acknowledging a mutation the log
// does not hold would make it vanish on restart, so the engine rejects
// it instead. Servers should answer 503 — durability is temporarily
// unavailable, the request itself may be fine.
type UpdateLogError struct {
	Err error
}

func (e *UpdateLogError) Error() string {
	return fmt.Sprintf("core: update rejected, write-ahead log append failed: %v", e.Err)
}

func (e *UpdateLogError) Unwrap() error { return e.Err }

// UpdateLog records an encoded update before it mutates the engine.
// *durable.WAL satisfies it directly.
type UpdateLog interface {
	Append(payload []byte) (seq uint64, err error)
}

// SetUpdateLog attaches a write-ahead log to the engine: from now on
// every AddPaper is recorded (and fsynced, per the log's policy) before
// it mutates any state, so an acknowledged update survives kill -9.
// Attach the log before serving; it must already be replayed.
func (e *Engine) SetUpdateLog(l UpdateLog) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wal = l
}

// LastUpdateSeq returns the WAL sequence of the most recent applied
// update (0 if none carried a sequence).
func (e *Engine) LastUpdateSeq() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.walSeq
}

// AppliedUpdates returns how many online updates the engine has
// accepted since its offline build (journalled + replayed).
func (e *Engine) AppliedUpdates() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.updates)
}

// EncodeUpdate serialises an update for the write-ahead log.
func EncodeUpdate(p NewPaper) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(toPersistUpdate(p)); err != nil {
		return nil, fmt.Errorf("core: encode update: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeUpdate reverses EncodeUpdate for WAL replay.
func DecodeUpdate(b []byte) (NewPaper, error) {
	var u persistUpdate
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&u); err != nil {
		return NewPaper{}, fmt.Errorf("core: decode update: %w", err)
	}
	return u.toNewPaper(), nil
}

// AddPaper appends a paper to the engine's graph, embeds it with the
// fine-tuned encoder, and inserts it into the PG-Index, making it
// immediately retrievable — the incremental path between offline rebuilds.
// The encoder is not retrained and the vocabulary is frozen: unseen words
// segment into subword pieces (or [UNK]), exactly as unseen query words
// do. It returns the new paper's node id.
//
// When an update log is attached (SetUpdateLog), the paper is recorded
// there after validation and before any mutation: by the time AddPaper
// returns, the update is as durable as the log's fsync policy promises,
// and a crash at any point either replays it fully or never
// acknowledged it. A log failure rejects the update with a typed
// *UpdateLogError instead of applying it unlogged.
//
// AddPaper is safe to call concurrently with queries: it holds the
// engine's write lock for the duration of the mutation and then
// invalidates the query cache, so a query started after AddPaper returns
// always sees the new paper and never a memoised pre-update ranking.
func (e *Engine) AddPaper(p NewPaper) (hetgraph.NodeID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.validateNewPaper(p); err != nil {
		return 0, err
	}
	var seq uint64
	if e.wal != nil {
		payload, err := EncodeUpdate(p)
		if err != nil {
			return 0, err
		}
		seq, err = e.wal.Append(payload)
		if err != nil {
			return 0, &UpdateLogError{Err: err}
		}
	}
	return e.applyUpdateLocked(p, seq)
}

// ApplyLogged applies an update replayed from the write-ahead log: the
// same mutation as AddPaper without re-logging it. seq is the record's
// WAL sequence, so snapshots taken later know what the engine covers.
func (e *Engine) ApplyLogged(p NewPaper, seq uint64) (hetgraph.NodeID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.validateNewPaper(p); err != nil {
		return 0, err
	}
	return e.applyUpdateLocked(p, seq)
}

// validateNewPaper checks every referenced node before anything
// mutates; callers hold e.mu.
func (e *Engine) validateNewPaper(p NewPaper) error {
	g := e.g
	if len(p.Authors) == 0 {
		return &InvalidUpdateError{Reason: "a paper needs at least one author"}
	}
	for _, a := range p.Authors {
		if err := expectType(g, a, hetgraph.Author); err != nil {
			return err
		}
	}
	for _, v := range p.Venues {
		if err := expectType(g, v, hetgraph.Venue); err != nil {
			return err
		}
	}
	for _, t := range p.Topics {
		if err := expectType(g, t, hetgraph.Topic); err != nil {
			return err
		}
	}
	for _, c := range p.Cites {
		if err := expectType(g, c, hetgraph.Paper); err != nil {
			return err
		}
	}
	return nil
}

// applyUpdateLocked performs the validated mutation: graph, embedding,
// index, journal. Caller holds e.mu for writing and has validated p.
func (e *Engine) applyUpdateLocked(p NewPaper, seq uint64) (hetgraph.NodeID, error) {
	g := e.g
	// From here on the graph mutates; invalidate even on a partial failure
	// so no cached ranking outlives a half-applied update.
	defer e.InvalidateQueryCache()
	id := g.AddNode(hetgraph.Paper, p.Text)
	for _, a := range p.Authors {
		if err := g.AddEdge(a, id, hetgraph.Write); err != nil {
			return 0, err
		}
	}
	for _, v := range p.Venues {
		if err := g.AddEdge(id, v, hetgraph.Publish); err != nil {
			return 0, err
		}
	}
	for _, t := range p.Topics {
		if err := g.AddEdge(id, t, hetgraph.Mention); err != nil {
			return 0, err
		}
	}
	for _, c := range p.Cites {
		if err := g.AddEdge(id, c, hetgraph.Cite); err != nil {
			return 0, err
		}
	}

	tokens := e.enc.Tokenizer().Tokenize(p.Text)
	e.cache[id] = tokens
	emb := e.enc.EncodeTokens(tokens)
	e.Embeddings[id] = emb
	if e.index != nil {
		if err := e.index.Insert(id, emb); err != nil {
			return 0, fmt.Errorf("core: index insert: %w", err)
		}
	}
	e.updates = append(e.updates, p)
	if seq > e.walSeq {
		e.walSeq = seq
	}
	e.reg.Counter("expertfind_updates_total", "Online papers added to a built engine.").Inc()
	return id, nil
}

func expectType(g *hetgraph.Graph, id hetgraph.NodeID, want hetgraph.NodeType) error {
	if id < 0 || int(id) >= g.NumNodes() {
		return &InvalidUpdateError{Reason: fmt.Sprintf("node %d out of range", id)}
	}
	if got := g.Type(id); got != want {
		return &InvalidUpdateError{Reason: fmt.Sprintf("node %d is a %s, want %s", id, got, want)}
	}
	return nil
}
