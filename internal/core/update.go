package core

import (
	"fmt"

	"expertfind/internal/hetgraph"
)

// NewPaper describes a paper to add to a built engine: its text, its
// ordered author list (rank 1 first), and optional venue, topics and
// citations. Authors, venue and topics must be existing nodes of the
// engine's graph.
type NewPaper struct {
	Text    string
	Authors []hetgraph.NodeID
	Venues  []hetgraph.NodeID // usually one; empty for venue-less papers
	Topics  []hetgraph.NodeID
	Cites   []hetgraph.NodeID
}

// AddPaper appends a paper to the engine's graph, embeds it with the
// fine-tuned encoder, and inserts it into the PG-Index, making it
// immediately retrievable — the incremental path between offline rebuilds.
// The encoder is not retrained and the vocabulary is frozen: unseen words
// segment into subword pieces (or [UNK]), exactly as unseen query words
// do. It returns the new paper's node id.
//
// AddPaper is safe to call concurrently with queries: it holds the
// engine's write lock for the duration of the mutation and then
// invalidates the query cache, so a query started after AddPaper returns
// always sees the new paper and never a memoised pre-update ranking.
func (e *Engine) AddPaper(p NewPaper) (hetgraph.NodeID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g := e.g
	if len(p.Authors) == 0 {
		return 0, fmt.Errorf("core: a paper needs at least one author")
	}
	for _, a := range p.Authors {
		if err := expectType(g, a, hetgraph.Author); err != nil {
			return 0, err
		}
	}
	for _, v := range p.Venues {
		if err := expectType(g, v, hetgraph.Venue); err != nil {
			return 0, err
		}
	}
	for _, t := range p.Topics {
		if err := expectType(g, t, hetgraph.Topic); err != nil {
			return 0, err
		}
	}
	for _, c := range p.Cites {
		if err := expectType(g, c, hetgraph.Paper); err != nil {
			return 0, err
		}
	}

	// From here on the graph mutates; invalidate even on a partial failure
	// so no cached ranking outlives a half-applied update.
	defer e.InvalidateQueryCache()
	id := g.AddNode(hetgraph.Paper, p.Text)
	for _, a := range p.Authors {
		if err := g.AddEdge(a, id, hetgraph.Write); err != nil {
			return 0, err
		}
	}
	for _, v := range p.Venues {
		if err := g.AddEdge(id, v, hetgraph.Publish); err != nil {
			return 0, err
		}
	}
	for _, t := range p.Topics {
		if err := g.AddEdge(id, t, hetgraph.Mention); err != nil {
			return 0, err
		}
	}
	for _, c := range p.Cites {
		if err := g.AddEdge(id, c, hetgraph.Cite); err != nil {
			return 0, err
		}
	}

	tokens := e.enc.Tokenizer().Tokenize(p.Text)
	e.cache[id] = tokens
	emb := e.enc.EncodeTokens(tokens)
	e.Embeddings[id] = emb
	if e.index != nil {
		if err := e.index.Insert(id, emb); err != nil {
			return 0, fmt.Errorf("core: index insert: %w", err)
		}
	}
	e.reg.Counter("expertfind_updates_total", "Online papers added to a built engine.").Inc()
	return id, nil
}

func expectType(g *hetgraph.Graph, id hetgraph.NodeID, want hetgraph.NodeType) error {
	if id < 0 || int(id) >= g.NumNodes() {
		return fmt.Errorf("core: node %d out of range", id)
	}
	if got := g.Type(id); got != want {
		return fmt.Errorf("core: node %d is a %s, want %s", id, got, want)
	}
	return nil
}
