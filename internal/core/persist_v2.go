package core

import (
	"fmt"
	"io"
	"os"
	"sort"

	"expertfind/internal/colstore"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/train"
	"expertfind/internal/vec"
)

// Version 2 of the snapshot container splits the engine into two parts:
// the gob payload keeps the small state (encoder table, options,
// update journal), and a page-aligned columnar section (internal/
// colstore) carries the big fixed-width blocks — the float32 embedding
// matrix, the PG-Index CSR adjacency, and the int8 quantization shadow.
//
// The payoff is the load path: a v1 snapshot re-embeds every paper and
// rebuilds the index from scratch; a v2 snapshot adopts the saved
// blocks directly, and when the file is mmap'd (LoadOptions.Mmap) the
// matrix and adjacency are zero-copy views of the page cache — the
// corpus never has to fit in RAM, pages fault in on demand and the
// kernel evicts them under pressure. Rankings are bit-identical either
// way: the bytes are the bytes.
//
// File layout (v2):
//
//	0                durable container header (version 2)
//	20               gob(snapshotPayload)   — includes Col metadata
//	20+len(payload)  colstore section       — page-aligned segments
//
// A v1-only binary rejects a v2 file with a typed *durable.VersionError
// instead of misreading it; this binary still loads v1 files through
// the original materialising path.

const (
	// snapshotVersionV1 is the original all-gob container format.
	snapshotVersionV1 = 1
	// snapshotVersionV2 appends the columnar section; see above.
	snapshotVersionV2 = 2
)

// Columnar segment names inside the v2 section.
const (
	segEmbs    = "embs"    // float32, Rows x Dim row-major embedding matrix
	segIDs     = "ids"     // int32, paper node id of each row
	segNbrOff  = "nbroff"  // uint64, Rows+1 CSR offsets
	segNbrDat  = "nbrdat"  // int32, concatenated neighbour lists
	segEntries = "entries" // int32, PG-Index entry points
	segDead    = "dead"    // uint8, tombstone flags (present iff NumDead > 0)
	segQCodes  = "qcodes"  // int8, quantized codes (present iff quantized)
	segQScales = "qscales" // float32, per-row quantization scales
	segQNorms  = "qnorms"  // float32, per-row exact squared norms
)

// colPersist is the gob-side metadata describing the columnar section:
// the shapes the segments must agree with, and the index scalars that
// are not worth a segment of their own.
type colPersist struct {
	Rows      int
	Dim       int
	HasIndex  bool
	ExactOnly bool
	Nav       int32
	NumDead   int
}

// LoadOptions configures how LoadFileWith materialises a snapshot.
type LoadOptions struct {
	// Mmap selects how the v2 columnar section is accessed:
	// ModeAuto (zero value) maps it when the platform supports mmap and
	// falls back to heap reads otherwise, ModeOn requires the mapping,
	// ModeOff forces heap reads. Ignored for v1 snapshots, which have
	// no columnar section.
	Mmap colstore.Mode
}

// columnSegmentsLocked decomposes the engine's large state into
// columnar segments. Caller holds e.mu (read). The returned slices
// view live engine storage — they are only valid until the lock is
// released, which is exactly long enough to write them out.
func (e *Engine) columnSegmentsLocked() ([]colstore.SegmentData, *colPersist, error) {
	if e.index != nil {
		c := e.index.Columns()
		col := &colPersist{
			Rows:      len(c.IDs),
			Dim:       c.Dim,
			HasIndex:  true,
			ExactOnly: c.ExactOnly,
			Nav:       c.Nav,
			NumDead:   c.NumDead,
		}
		segs := []colstore.SegmentData{
			colstore.F32Seg(segEmbs, c.Embs),
			colstore.I32Seg(segIDs, idsToInt32(c.IDs)),
			colstore.U64Seg(segNbrOff, c.NbrOff),
			colstore.I32Seg(segNbrDat, c.NbrDat),
			colstore.I32Seg(segEntries, c.Entries),
		}
		if c.NumDead > 0 {
			segs = append(segs, colstore.U8Seg(segDead, c.Dead))
		}
		if len(c.QCodes) > 0 {
			segs = append(segs,
				colstore.I8Seg(segQCodes, c.QCodes),
				colstore.F32Seg(segQScales, c.QScales),
				colstore.F32Seg(segQNorms, c.QNorms))
		}
		return segs, col, nil
	}

	// No index (UsePGIndex=false): persist the embedding map as a
	// matrix in ascending id order, so brute-force engines get the same
	// rebuild-free, mmap-able load path.
	n := len(e.Embeddings)
	if n == 0 {
		return nil, nil, nil
	}
	dim := e.opts.Dim
	ids := make([]hetgraph.NodeID, 0, n)
	for id := range e.Embeddings {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	flat := make([]float32, 0, n*dim)
	for _, id := range ids {
		v := e.Embeddings[id]
		if len(v) != dim {
			return nil, nil, fmt.Errorf("core: save: paper %d embedding has %d dims, engine %d", id, len(v), dim)
		}
		flat = append(flat, v...)
	}
	col := &colPersist{Rows: n, Dim: dim}
	segs := []colstore.SegmentData{
		colstore.F32Seg(segEmbs, flat),
		colstore.I32Seg(segIDs, idsToInt32(ids)),
	}
	return segs, col, nil
}

// LoadFileWith is LoadFile with explicit materialisation options: o.Mmap
// decides whether a v2 snapshot's columnar section is mmap'd (zero-copy
// views, corpus larger than RAM) or read onto the heap. The two modes
// produce bit-identical engines; only residency behaviour differs.
func LoadFileWith(path string, g *hetgraph.Graph, o LoadOptions) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	// The file handle is only needed during the load: a mapping
	// survives Close, and heap mode materialises every segment before
	// engineFromColumns returns.
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	version, payload, end, err := durable.ReadContainerPrefix(f, path, snapshotVersionV2)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if version == snapshotVersionV1 {
		// v1 keeps its original strictness: nothing may follow the payload.
		if end != fi.Size() {
			return nil, trailingErr(path, end)
		}
		return loadPayload(payload, path, g)
	}
	p, err := decodePayload(payload, path)
	if err != nil {
		return nil, err
	}
	if p.Col == nil {
		if end != fi.Size() {
			return nil, trailingErr(path, end)
		}
		return engineFromPayload(p, path, g)
	}
	sec, err := colstore.Open(f, end, o.Mmap)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if aligned := colstore.AlignUp(sec.End()); fi.Size() > aligned {
		sec.Close()
		return nil, trailingErr(path, aligned)
	}
	e, err := engineFromColumns(p, sec, path, g)
	if err != nil {
		sec.Close()
		return nil, err
	}
	e.colsec = sec
	return e, nil
}

// loadV2Bytes restores a v2 engine from in-memory bytes (the streaming
// Load path): payload is the verified gob container payload, rest every
// byte after it, base the file offset where rest begins. Heap mode
// only — there is no file to map.
func loadV2Bytes(payload, rest []byte, base int64, name string, g *hetgraph.Graph) (*Engine, error) {
	p, err := decodePayload(payload, name)
	if err != nil {
		return nil, err
	}
	if p.Col == nil {
		if len(rest) != 0 {
			return nil, trailingErr(name, base)
		}
		return engineFromPayload(p, name, g)
	}
	ra := &offsetReaderAt{base: base, data: rest}
	sec, err := colstore.OpenReaderAt(ra, name, base+int64(len(rest)), base)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	return engineFromColumns(p, sec, name, g)
}

// engineFromColumns assembles an engine from the decoded payload plus
// an opened, CRC-verified columnar section — the v2 load path. Nothing
// is recomputed: the embedding matrix and the index adjacency are
// adopted as-is (zero-copy when sec is mapped), and the journalled
// updates are replayed against the graph only, because their embeddings
// and index entries are already inside the saved blocks.
func engineFromColumns(p *snapshotPayload, sec *colstore.Section, name string, g *hetgraph.Graph) (*Engine, error) {
	col := p.Col
	corrupt := func(detail string, err error) error {
		return fmt.Errorf("core: load: %w", &durable.CorruptError{
			Path: name, Offset: 0, Detail: detail, Err: err})
	}
	if col.Rows < 0 || col.Dim != p.Engine.Dim {
		return nil, corrupt("columnar shape",
			fmt.Errorf("%d rows x %d dims vs engine dim %d", col.Rows, col.Dim, p.Engine.Dim))
	}

	opts, err := optionsFromPersist(&p.Engine)
	if err != nil {
		return nil, err
	}
	enc, err := restoreEncoder(&p.Engine)
	if err != nil {
		return nil, err
	}

	// Residency discipline: the assembly below walks the small metadata
	// columns (row ids, CSR offsets, entry points, tombstones) in full,
	// so zero-copy views of them would fault their pages resident during
	// load for no benefit — read those through the file onto the heap.
	// The blocks that actually pay off lazily — the embedding matrix,
	// the concatenated neighbour lists, and the quantization shadow —
	// stay views of the mapping and page in on first query touch.
	meta := sec.Materialized()
	embs, err := sec.Float32s(segEmbs)
	if err != nil {
		return nil, corrupt("embedding matrix", err)
	}
	ids32, err := meta.Int32s(segIDs)
	if err != nil {
		return nil, corrupt("row ids", err)
	}
	if len(ids32) != col.Rows || len(embs) != col.Rows*col.Dim {
		return nil, corrupt("columnar shape",
			fmt.Errorf("%d ids, %d weights for %d x %d", len(ids32), len(embs), col.Rows, col.Dim))
	}
	ids := int32ToIDs(ids32)

	e := &Engine{g: g, opts: opts, enc: enc, reg: obs.Default()}
	// The token cache is rebuilt lazily: journalled updates repopulate
	// their entries below, and new AddPapers write theirs. Eagerly
	// re-tokenising the whole corpus would defeat the point of the
	// rebuild-free load.
	e.cache = make(train.TokenCache)
	e.stats.VocabSize = len(p.Engine.Tokens)

	var dead []byte
	if col.HasIndex {
		nbrOff, err := meta.Uint64s(segNbrOff)
		if err != nil {
			return nil, corrupt("CSR offsets", err)
		}
		nbrDat, err := sec.Int32s(segNbrDat)
		if err != nil {
			return nil, corrupt("CSR neighbours", err)
		}
		entries, err := meta.Int32s(segEntries)
		if err != nil {
			return nil, corrupt("index entry points", err)
		}
		if col.NumDead > 0 {
			if dead, err = meta.Bytes(segDead); err != nil {
				return nil, corrupt("tombstones", err)
			}
		}
		c := pgindex.Columns{
			IDs: ids, Dim: col.Dim, Embs: embs,
			ExactOnly: col.ExactOnly,
			NbrOff:    nbrOff, NbrDat: nbrDat,
			Nav: col.Nav, Entries: entries,
			Dead: dead, NumDead: col.NumDead,
		}
		if sec.Has(segQCodes) {
			if c.QCodes, err = sec.Int8s(segQCodes); err != nil {
				return nil, corrupt("quantized codes", err)
			}
			if c.QScales, err = sec.Float32s(segQScales); err != nil {
				return nil, corrupt("quantization scales", err)
			}
			if c.QNorms, err = sec.Float32s(segQNorms); err != nil {
				return nil, corrupt("quantization norms", err)
			}
		}
		idx, err := pgindex.FromColumns(c)
		if err != nil {
			return nil, corrupt("columnar index", err)
		}
		e.index = idx
		e.stats.IndexEdges = idx.NumEdges()
		e.stats.IndexMemory = idx.MemoryBytes()
	}

	// The Embeddings map holds full-capacity row views of the shared
	// matrix: cap == len, so anything that appends to a row reallocates
	// onto the heap instead of writing through a read-only mapping.
	e.Embeddings = make(map[hetgraph.NodeID]vec.Vec32, col.Rows)
	for i, id := range ids {
		if len(dead) > 0 && dead[i] != 0 {
			continue
		}
		lo, hi := i*col.Dim, (i+1)*col.Dim
		e.Embeddings[id] = embs[lo:hi:hi]
	}

	// Re-apply journalled updates to the graph and token cache only:
	// their embeddings and index rows are already in the columnar
	// blocks. Each replayed paper must land on a row id the snapshot
	// knows — a mismatch means the snapshot and journal disagree.
	for i, u := range p.Updates {
		np := u.toNewPaper()
		e.mu.Lock()
		err := func() error {
			if verr := e.validateNewPaper(np); verr != nil {
				return verr
			}
			id, aerr := e.applyUpdateGraphOnly(np)
			if aerr != nil {
				return aerr
			}
			if _, ok := e.Embeddings[id]; !ok {
				return fmt.Errorf("replayed paper %d has no row in the columnar matrix", id)
			}
			return nil
		}()
		e.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: load: %w", &durable.CorruptError{
				Path: name, Offset: 0,
				Detail: fmt.Sprintf("journalled update %d/%d", i+1, len(p.Updates)),
				Err:    err})
		}
	}
	e.mu.Lock()
	e.walSeq = p.LastSeq
	e.mu.Unlock()
	return e, nil
}

// applyUpdateGraphOnly is applyUpdateLocked for the v2 replay: the
// graph mutation, token cache entry, journal append and update counter
// — but no embedding or index insert, because the saved columnar
// blocks already contain the update's row. Caller holds e.mu for
// writing and has validated p.
func (e *Engine) applyUpdateGraphOnly(p NewPaper) (hetgraph.NodeID, error) {
	g := e.g
	defer e.InvalidateQueryCache()
	id := g.AddNode(hetgraph.Paper, p.Text)
	for _, a := range p.Authors {
		if err := g.AddEdge(a, id, hetgraph.Write); err != nil {
			return 0, err
		}
	}
	for _, v := range p.Venues {
		if err := g.AddEdge(id, v, hetgraph.Publish); err != nil {
			return 0, err
		}
	}
	for _, t := range p.Topics {
		if err := g.AddEdge(id, t, hetgraph.Mention); err != nil {
			return 0, err
		}
	}
	for _, c := range p.Cites {
		if err := g.AddEdge(id, c, hetgraph.Cite); err != nil {
			return 0, err
		}
	}
	e.cache[id] = e.enc.Tokenizer().Tokenize(p.Text)
	e.updates = append(e.updates, p)
	e.reg.Counter("expertfind_updates_total", "Online papers added to a built engine.").Inc()
	return id, nil
}

// SnapshotMapped reports whether this engine's embedding matrix and
// index adjacency are zero-copy views of an mmap'd snapshot file
// (false: heap-resident, either a v1 load, a fresh build, or -mmap=off).
func (e *Engine) SnapshotMapped() bool {
	return e.colsec != nil && e.colsec.Mapped
}

// CloseSnapshot releases the mmap'd columnar section backing this
// engine, if any. The engine must not be used afterwards — its matrix
// and adjacency views become invalid. Intended for tests and orderly
// process teardown; leaving the mapping open for the process lifetime
// is also fine.
func (e *Engine) CloseSnapshot() error {
	if e.colsec == nil {
		return nil
	}
	sec := e.colsec
	e.colsec = nil
	return sec.Close()
}

// VerifySnapshotFile checks a snapshot file's integrity without
// materialising an engine: container magic, version, payload CRC, and
// — for v2 — the columnar section directory and every segment CRC.
// This is what a replication follower runs on a freshly downloaded
// snapshot before letting it replace anything: a torn or bit-flipped
// download fails here, with a typed error, not at some later boot.
func VerifySnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	version, _, end, err := durable.ReadContainerPrefix(f, path, snapshotVersionV2)
	if err != nil {
		return err
	}
	if version == snapshotVersionV1 || end == fi.Size() {
		if end != fi.Size() {
			return trailingErr(path, end)
		}
		return nil
	}
	secEnd, err := colstore.VerifySection(f, path, fi.Size(), end)
	if err != nil {
		return err
	}
	if fi.Size() != colstore.AlignUp(secEnd) {
		return trailingErr(path, colstore.AlignUp(secEnd))
	}
	return nil
}

// trailingErr reports readable bytes past where a snapshot should end —
// a concatenated or doubly-written file, never legitimate.
func trailingErr(name string, at int64) error {
	return fmt.Errorf("core: load: %w", &durable.CorruptError{
		Path: name, Offset: at,
		Detail: "trailing bytes after snapshot", Err: durable.ErrChecksum})
}

// offsetReaderAt serves a byte slice as an io.ReaderAt whose offsets
// start at base instead of zero — the tail of a streamed v2 snapshot,
// addressed with the absolute file offsets the section directory uses.
type offsetReaderAt struct {
	base int64
	data []byte
}

func (o *offsetReaderAt) ReadAt(p []byte, off int64) (int, error) {
	off -= o.base
	if off < 0 || off > int64(len(o.data)) {
		return 0, io.EOF
	}
	n := copy(p, o.data[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}
