package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/sampling"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(200))
	g := ds.Graph
	built, err := Build(g, Options{
		Dim:         16,
		Seed:        11,
		K:           3,
		NegStrategy: sampling.RandomNegative,
		MetaPaths:   []hetgraph.MetaPath{hetgraph.PAP},
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}

	// Restored embeddings must be bit-identical: same vocabulary, same
	// fine-tuned table, same pooling.
	if len(loaded.Embeddings) != len(built.Embeddings) {
		t.Fatalf("embedding count %d != %d", len(loaded.Embeddings), len(built.Embeddings))
	}
	for p, v := range built.Embeddings {
		w := loaded.Embeddings[p]
		for i := range v {
			if v[i] != w[i] {
				t.Fatalf("embedding of paper %d differs after reload", p)
			}
		}
	}

	// Queries must return identical experts.
	for _, q := range ds.Queries(5, randSource(3)) {
		r1, _, _ := built.TopExperts(q.Text, 40, 10)
		r2, _, _ := loaded.TopExperts(q.Text, 40, 10)
		if len(r1) != len(r2) {
			t.Fatalf("result sizes differ: %d vs %d", len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Expert != r2[i].Expert {
				t.Fatalf("rank %d: %d vs %d", i, r1[i].Expert, r2[i].Expert)
			}
		}
	}

	// Options survive the round trip.
	if loaded.opts.K != 3 || loaded.opts.NegStrategy != sampling.RandomNegative {
		t.Errorf("options lost: %+v", loaded.opts)
	}
	if len(loaded.opts.MetaPaths) != 1 || loaded.opts.MetaPaths[0].String() != "P-A-P" {
		t.Errorf("meta-paths lost: %v", loaded.opts.MetaPaths)
	}
}

// TestSaveLoadAfterUpdates: a snapshot taken after online AddPaper
// mutations restores the complete live state — the updates are
// journalled inside the snapshot and re-applied on Load, so rankings
// are identical across the restart even though Load starts from the
// base graph.
func TestSaveLoadAfterUpdates(t *testing.T) {
	gen := func() *dataset.Dataset { return dataset.Generate(dataset.AminerSim(150)) }
	ds := gen()
	built, err := Build(ds.Graph, Options{Dim: 8, Seed: 2, UseKPCore: Bool(false)})
	if err != nil {
		t.Fatal(err)
	}
	authors := ds.Graph.NodesOfType(hetgraph.Author)
	var added []hetgraph.NodeID
	for i := 0; i < 4; i++ {
		id, err := built.AddPaper(NewPaper{
			Text:    "spectral clustering of citation networks revisited",
			Authors: []hetgraph.NodeID{authors[i], authors[i+1]},
		})
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
	}

	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore against a FRESH base graph, as a restarted process would.
	ds2 := gen()
	loaded, err := Load(&buf, ds2.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AppliedUpdates() != 4 {
		t.Fatalf("journalled updates: %d, want 4", loaded.AppliedUpdates())
	}
	for _, id := range added {
		if loaded.g.Type(id) != hetgraph.Paper {
			t.Fatalf("added paper %d missing after reload", id)
		}
		if _, ok := loaded.Embeddings[id]; !ok {
			t.Fatalf("added paper %d lost its embedding after reload", id)
		}
	}
	for _, q := range ds.Queries(4, randSource(5)) {
		r1, _, err1 := built.TopExperts(q.Text, 40, 10)
		r2, _, err2 := loaded.TopExperts(q.Text, 40, 10)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("result sizes differ: %d vs %d", len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Expert != r2[i].Expert {
				t.Fatalf("query %q rank %d: %d vs %d", q.Text, i, r1[i].Expert, r2[i].Expert)
			}
		}
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(100))
	if _, err := Load(strings.NewReader("garbage"), ds.Graph); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil), ds.Graph); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSaveEmbeddings(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(100))
	e, err := Build(ds.Graph, Options{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveEmbeddings(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("nothing written")
	}
}

// randSource is a tiny helper for deterministic query sampling in tests.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
