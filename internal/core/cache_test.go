package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/ta"
)

func newTestCache(t *testing.T, cfg CacheConfig) (*queryCache, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c := newQueryCache(cfg, reg)
	if c == nil {
		t.Fatalf("cache disabled for cfg %+v", cfg)
	}
	return c, reg
}

func resultWithPapers(ids ...hetgraph.NodeID) cachedResult {
	return cachedResult{papers: ids}
}

func TestNormalizeQueryKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Graph Embedding", "graph embedding"},
		{"  graph\t\tembedding \n", "graph embedding"},
		{"GRAPH  EMBEDDING", "graph embedding"},
		{"", ""},
		{"   ", ""},
		{"Naïve Gráph 研究", "naïve gráph 研究"},
		{"a", "a"},
	}
	for _, c := range cases {
		if got := NormalizeQueryKey(c.in); got != c.want {
			t.Errorf("NormalizeQueryKey(%q) = %q, want %q", c.in, got, c.want)
		}
		// Idempotence is part of the contract.
		if once := NormalizeQueryKey(c.in); NormalizeQueryKey(once) != once {
			t.Errorf("NormalizeQueryKey not idempotent on %q", c.in)
		}
	}
}

func TestCacheKeyDistinguishesKindAndBounds(t *testing.T) {
	keys := map[string]string{}
	for _, k := range []struct {
		kind queryKind
		q    string
		m, n int
	}{
		{kindExperts, "q", 10, 5},
		{kindPapers, "q", 10, 5},
		{kindExperts, "q", 11, 5},
		{kindExperts, "q", 10, 6},
		{kindExperts, "q2", 10, 5},
	} {
		key := cacheKey(k.kind, k.q, k.m, k.n)
		id := fmt.Sprintf("%c|%s|%d|%d", k.kind, k.q, k.m, k.n)
		if prev, dup := keys[key]; dup {
			t.Fatalf("key collision between %s and %s", prev, id)
		}
		keys[key] = id
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c, reg := newTestCache(t, CacheConfig{MaxEntries: 8, Shards: 2})
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", resultWithPapers(1, 2), c.generation())
	if v, ok := c.Get("a"); !ok || len(v.papers) != 2 {
		t.Fatalf("expected hit with 2 papers, got ok=%v v=%+v", ok, v)
	}
	if got := reg.Counter("expertfind_qcache_hits_total", "").Value(); got != 1 {
		t.Errorf("hits = %v, want 1", got)
	}
	if got := reg.Counter("expertfind_qcache_misses_total", "").Value(); got != 1 {
		t.Errorf("misses = %v, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard of capacity 4 so the LRU order is fully observable.
	c, reg := newTestCache(t, CacheConfig{MaxEntries: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), resultWithPapers(hetgraph.NodeID(i)), c.generation())
	}
	// Touch k0 so k1 is the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k4", resultWithPapers(4), c.generation())
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if got := reg.Counter("expertfind_qcache_evictions_total", "").Value(); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c, reg := newTestCache(t, CacheConfig{MaxEntries: 8, Shards: 1, TTL: 10 * time.Millisecond})
	c.Put("a", resultWithPapers(1), c.generation())
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry should hit")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if got := reg.Counter("expertfind_qcache_expired_total", "").Value(); got != 1 {
		t.Errorf("expirations = %v, want 1", got)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after expiry, want 0", c.Len())
	}
}

func TestCacheInvalidateDropsEverythingAndBlocksStalePut(t *testing.T) {
	c, reg := newTestCache(t, CacheConfig{MaxEntries: 32, Shards: 4})
	gen := c.generation()
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), resultWithPapers(hetgraph.NodeID(i)), gen)
	}
	c.Invalidate()
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d survived invalidation", i)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after invalidation, want 0", c.Len())
	}
	// A fill computed against the pre-invalidation state must be refused.
	c.Put("stale", resultWithPapers(9), gen)
	if _, ok := c.Get("stale"); ok {
		t.Fatal("stale-generation Put was published")
	}
	if got := reg.Counter("expertfind_qcache_invalidations_total", "").Value(); got != 1 {
		t.Errorf("invalidations = %v, want 1", got)
	}
}

func TestCacheStaleGenerationEntryRejectedByGet(t *testing.T) {
	// Simulate the Put-vs-Invalidate race: an entry carrying an old
	// generation that the purge missed must still be rejected at Get.
	c, _ := newTestCache(t, CacheConfig{MaxEntries: 8, Shards: 1})
	gen := c.generation()
	c.Put("a", resultWithPapers(1), gen)
	// Bump the generation WITHOUT purging (not possible through the public
	// surface; poke the field to model the in-flight insert).
	c.gen.Add(1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry from a superseded generation served")
	}
}

func TestCacheGetReturnsIsolatedCopies(t *testing.T) {
	c, _ := newTestCache(t, CacheConfig{MaxEntries: 8, Shards: 1})
	c.Put("a", cachedResult{
		papers:  []hetgraph.NodeID{1, 2},
		experts: []ta.Ranking{{Expert: 3, Score: 1}},
	}, c.generation())
	v1, _ := c.Get("a")
	v1.papers[0] = 99
	v1.experts[0].Expert = 99
	v2, _ := c.Get("a")
	if v2.papers[0] != 1 || v2.experts[0].Expert != 3 {
		t.Fatal("cache handed out aliased slices; later hits see caller mutations")
	}
}

func TestCacheShardCountRounding(t *testing.T) {
	reg := obs.NewRegistry()
	for _, tc := range []struct {
		entries, shards, wantShards int
	}{
		{64, 0, 16}, // default
		{64, 3, 4},  // rounded up to a power of two
		{4, 16, 4},  // clamped so every shard holds at least one entry
		{1, 16, 1},
	} {
		c := newQueryCache(CacheConfig{MaxEntries: tc.entries, Shards: tc.shards}, reg)
		if len(c.shards) != tc.wantShards {
			t.Errorf("entries=%d shards=%d: got %d shards, want %d",
				tc.entries, tc.shards, len(c.shards), tc.wantShards)
		}
	}
	if c := newQueryCache(CacheConfig{MaxEntries: 0}, reg); c != nil {
		t.Error("MaxEntries=0 should disable the cache")
	}
}

func TestCacheKeyNoSeparatorInjection(t *testing.T) {
	// A query containing the textual form of another key's suffix must not
	// collide, thanks to the NUL separators.
	a := cacheKey(kindExperts, "q\x0010,5", 10, 5)
	b := cacheKey(kindExperts, "q", 10, 5)
	if a == b {
		t.Fatal("separator injection collides keys")
	}
	if !strings.Contains(a, "\x00") {
		t.Fatal("expected NUL separators in key")
	}
}
