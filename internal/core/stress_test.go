package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

// The Stress tests are the race-hunting suite: CI runs them under -race
// with -count=2 (see ci.yml). They hammer one shared engine with every
// concurrent entry point at once and assert the cache coherence contract
// — a query issued after AddPaper returns always sees the new paper.

func TestStressConcurrentQueriesAndUpdates(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(120))
	g := ds.Graph
	e, err := Build(g, Options{Dim: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableQueryCache(CacheConfig{MaxEntries: 256, Shards: 4})

	queries := []string{
		"graph embedding", "neural ranking", "community detection",
		"Graph  Embedding", // normalization variant of the first
	}
	papers := g.NodesOfType(hetgraph.Paper)
	authors := g.NodesOfType(hetgraph.Author)
	stop := make(chan struct{})
	var wg, ready sync.WaitGroup
	var queriesRun atomic.Int64

	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Query workers: experts, papers and similar lookups over a small
	// query set so cache hits, misses and coalesced fills all occur. Each
	// signals ready after its first query so the checker below genuinely
	// races them even on GOMAXPROCS=1, where an un-yielding main goroutine
	// could otherwise finish before any worker is scheduled.
	const workers = 6
	ready.Add(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			first := true
			// A worker that errors out before its first success must not
			// leave ready.Wait() hanging.
			defer func() {
				if first {
					ready.Done()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[rng.Intn(len(queries))]
				switch rng.Intn(3) {
				case 0:
					if _, _, err := e.TopExperts(q, 20, 5); err != nil {
						fail("TopExperts: %v", err)
						return
					}
				case 1:
					if _, _, err := e.RetrievePapers(q, 10); err != nil {
						fail("RetrievePapers: %v", err)
						return
					}
				default:
					p := papers[rng.Intn(len(papers))]
					if _, _, err := e.SimilarPapers(p, 5); err != nil {
						fail("SimilarPapers: %v", err)
						return
					}
				}
				queriesRun.Add(1)
				if first {
					first = false
					ready.Done()
				}
			}
		}(int64(w))
	}

	// An operator goroutine invalidating out of band, racing the fills.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				e.InvalidateQueryCache()
			}
		}
	}()

	// The coherence checker: warm the cache for a unique query, mutate the
	// engine with a paper matching it exactly, and require the very next
	// query to surface that paper. A stale cached ranking cannot contain
	// the id, so any cache bug fails loudly here.
	ready.Wait()
	const updates = 8
	for i := 0; i < updates; i++ {
		// Yield between rounds so the workers keep interleaving with the
		// updates on a single-CPU runtime.
		time.Sleep(time.Millisecond)
		text := fmt.Sprintf("stress coherence manuscript %d about %s", i, g.Label(papers[i]))
		if _, _, err := e.RetrievePapers(text, 5); err != nil {
			t.Fatalf("warm query %d: %v", i, err)
		}
		id, err := e.AddPaper(NewPaper{Text: text, Authors: authors[i : i+1]})
		if err != nil {
			t.Fatalf("AddPaper %d: %v", i, err)
		}
		got, st, err := e.RetrievePapers(text, 5)
		if err != nil {
			t.Fatalf("post-update query %d: %v", i, err)
		}
		found := false
		for _, p := range got {
			if p == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("update %d: stale result after AddPaper (CacheHit=%v): %v misses %d",
				i, st.CacheHit, got, id)
		}
	}

	close(stop)
	wg.Wait()
	if n := queriesRun.Load(); n == 0 {
		t.Fatal("workers never ran a query")
	}
	if n, max := e.QueryCacheLen(), 256; n > max {
		t.Fatalf("cache grew past its bound: %d > %d", n, max)
	}
}

func TestStressCacheFillInvalidate(t *testing.T) {
	c, _ := newTestCache(t, CacheConfig{MaxEntries: 64, Shards: 4, TTL: 5 * time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", rng.Intn(128))
				switch rng.Intn(4) {
				case 0:
					c.Put(key, resultWithPapers(hetgraph.NodeID(rng.Intn(64))), c.generation())
				case 1:
					c.Invalidate()
				default:
					if v, ok := c.Get(key); ok && len(v.papers) != 1 {
						t.Error("corrupted cached value")
						return
					}
				}
			}
		}(int64(w))
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("cache size %d exceeds bound 64", n)
	}
}

func TestStressDeadlineLeavesNoGoroutines(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(120))
	e, err := Build(ds.Graph, Options{Dim: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableQueryCache(CacheConfig{MaxEntries: 64})

	before := runtime.NumGoroutine()

	// A burst of concurrent queries whose deadlines are already expired,
	// interleaved with live ones so the singleflight path sees both leader
	// cancellations and healthy fills.
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 1)
					_, _, err := e.TopExpertsCtx(ctx, "graph embedding", 20, 5)
					cancel()
					if !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("expired query returned %v, want DeadlineExceeded", err)
						return
					}
				} else if _, _, err := e.TopExpertsCtx(context.Background(), "graph embedding", 20, 5); err != nil {
					t.Errorf("live query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Goroutines parked in the scheduler take a moment to unwind; poll
	// instead of asserting instantly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
