package core

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent identical work: while one caller
// (the leader) executes fn for a key, later callers for the same key
// block on the leader's result instead of repeating the encode + search +
// rank. A hand-rolled analogue of x/sync/singleflight, kept dependency-free.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  cachedResult
	err  error
}

// Do runs fn once per concurrent set of callers with the same key and
// returns the shared result. shared reports whether this caller
// piggybacked on another's execution. A waiter whose own ctx expires
// stops waiting and returns ctx.Err(); the leader's fn keeps running for
// the remaining waiters.
//
// The leader runs fn under its own ctx, so if the LEADER is cancelled,
// waiters receive its context error; the caller is expected to fall back
// to executing the query itself when its own context is still live (see
// Engine.cachedQuery).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (cachedResult, error)) (v cachedResult, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return cachedResult{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
