package core

import (
	"math/rand"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/metrics"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
)

func buildSmall(t *testing.T, mutate func(*Options)) (*dataset.Dataset, *Engine) {
	t.Helper()
	ds := dataset.Generate(dataset.AminerSim(250))
	opts := Options{Dim: 24, Seed: 7}
	if mutate != nil {
		mutate(&opts)
	}
	e, err := Build(ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, e
}

func TestBuildRejectsPaperlessGraph(t *testing.T) {
	g := hetgraph.New()
	g.AddNode(hetgraph.Author, "lonely")
	if _, err := Build(g, Options{}); err == nil {
		t.Fatal("graph without papers accepted")
	}
}

func TestBuildProducesAllArtifacts(t *testing.T) {
	ds, e := buildSmall(t, nil)
	st := e.Stats()
	if st.VocabSize == 0 {
		t.Error("no vocabulary")
	}
	if st.Sampling == nil || st.Sampling.Triples == 0 {
		t.Error("no training triples")
	}
	if st.Training == nil || st.Training.Steps == 0 {
		t.Error("no training steps")
	}
	if len(e.Embeddings) != ds.Graph.NumNodesOfType(hetgraph.Paper) {
		t.Error("not all papers embedded")
	}
	if e.Index() == nil || st.IndexEdges == 0 {
		t.Error("no PG-Index built")
	}
	if st.TotalTime <= 0 {
		t.Error("no timing recorded")
	}
	if e.Graph() != ds.Graph || e.Encoder() == nil {
		t.Error("accessors broken")
	}
}

func TestTopExpertsEndToEnd(t *testing.T) {
	ds, e := buildSmall(t, nil)
	rng := rand.New(rand.NewSource(3))
	queries := ds.Queries(8, rng)
	var p20 float64
	for _, q := range queries {
		ranked, st, _ := e.TopExperts(q.Text, 50, 20)
		if len(ranked) == 0 {
			t.Fatal("no experts returned")
		}
		if !st.UsedPGIndex || !st.UsedTA {
			t.Error("default engine should use PG-Index and TA")
		}
		if st.Total() <= 0 {
			t.Error("query stats missing timings")
		}
		ids := make([]hetgraph.NodeID, len(ranked))
		for i, r := range ranked {
			ids[i] = r.Expert
			if ds.Graph.Type(r.Expert) != hetgraph.Author {
				t.Fatal("returned a non-author")
			}
		}
		p20 += metrics.PrecisionAtN(ids, q.Truth, 20)
	}
	p20 /= float64(len(queries))
	// 7 topics: random guessing would score ~1/7 ≈ 0.14, and at this size
	// truth sets (~18 authors) cap P@20 near 0.9. The engine must land far
	// above chance on planted communities.
	if p20 < 0.35 {
		t.Errorf("P@20 = %.3f, want >= 0.35 on planted communities", p20)
	}
}

func TestAblationsChangeThePipeline(t *testing.T) {
	_, noCore := buildSmall(t, func(o *Options) { o.UseKPCore = Bool(false) })
	if noCore.Stats().Training != nil {
		t.Error("w/o (k,P)-core still trained")
	}
	_, noIdx := buildSmall(t, func(o *Options) { o.UsePGIndex = Bool(false) })
	if noIdx.Index() != nil {
		t.Error("w/o PG-Index still built one")
	}
	ranked, st, _ := noIdx.TopExperts("some query text", 30, 10)
	if st.UsedPGIndex {
		t.Error("stats claim PG-Index was used")
	}
	if len(ranked) == 0 {
		t.Error("brute-force fallback returned nothing")
	}
	_, noTA := buildSmall(t, func(o *Options) { o.UseTA = Bool(false) })
	_, st2, _ := noTA.TopExperts("some query text", 30, 10)
	if st2.UsedTA {
		t.Error("stats claim TA was used")
	}
}

func TestBuildDeterministic(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(200))
	e1, err := Build(ds.Graph, Options{Dim: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Build(ds.Graph, Options{Dim: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for p, v1 := range e1.Embeddings {
		v2 := e2.Embeddings[p]
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("embedding of paper %d differs between identical builds", p)
			}
		}
	}
	q := "community search graph embedding"
	r1, _, _ := e1.TopExperts(q, 30, 10)
	r2, _, _ := e2.TopExperts(q, 30, 10)
	for i := range r1 {
		if r1[i].Expert != r2[i].Expert {
			t.Fatal("query results differ between identical builds")
		}
	}
}

func TestRetrievePapersAgreesWithBruteForceOnSelf(t *testing.T) {
	ds, e := buildSmall(t, nil)
	// Querying with a paper's exact text must retrieve that paper first.
	papers := ds.Graph.NodesOfType(hetgraph.Paper)
	hits := 0
	for _, p := range papers[:10] {
		got, _, _ := e.RetrievePapers(ds.Graph.Label(p), 5)
		if len(got) > 0 && got[0] == p {
			hits++
		}
	}
	if hits < 8 {
		t.Errorf("self-retrieval hit %d/10, want >= 8", hits)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.K != 4 || o.SampleFraction != 0.3 || o.NegPerPos != 3 || o.Dim != 64 {
		t.Errorf("paper defaults wrong: %+v", o)
	}
	if len(o.MetaPaths) != 2 {
		t.Errorf("default meta-paths = %v, want PAP+PTP", o.MetaPaths)
	}
	if o.NegStrategy != sampling.NearNegative {
		t.Error("default negative strategy must be near")
	}
}

func TestCustomMetaPathOptions(t *testing.T) {
	_, e := buildSmall(t, func(o *Options) {
		o.MetaPaths = []hetgraph.MetaPath{hetgraph.PP}
		o.K = 2
	})
	if e.Stats().Sampling.Triples == 0 {
		t.Error("citation-only configuration produced no training data")
	}
}

func TestExplicitRawIndexConfigRespected(t *testing.T) {
	// Requesting an unrefined index must not be clobbered by defaults.
	ds := dataset.Generate(dataset.AminerSim(120))
	e, err := Build(ds.Graph, Options{
		Dim:   8,
		Seed:  2,
		Index: pgindex.Config{K: 5, Refine: false, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := e.Index().NumEdges()
	e2, err := Build(ds.Graph, Options{Dim: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if raw == e2.Index().NumEdges() {
		t.Error("raw and refined index configurations produced identical graphs")
	}
}

func TestFastSamplingMatchesCommunityStructure(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(200))
	slow, err := Build(ds.Graph, Options{Dim: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Build(ds.Graph, Options{Dim: 8, Seed: 3, FastSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds, same communities: identical positive coverage.
	if slow.Stats().Sampling.Communities != fast.Stats().Sampling.Communities {
		t.Errorf("community counts differ: %d vs %d",
			slow.Stats().Sampling.Communities, fast.Stats().Sampling.Communities)
	}
}
