package core

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/ta"
)

// CacheConfig configures the engine's query cache (EnableQueryCache).
type CacheConfig struct {
	// MaxEntries bounds the total number of cached queries across all
	// shards; <= 0 disables the cache.
	MaxEntries int
	// TTL expires entries this long after their fill; 0 means no expiry.
	TTL time.Duration
	// Shards is the number of independently locked segments (default 16,
	// rounded up to a power of two).
	Shards int
}

// cachedResult is one memoised query answer. Slices are never handed out
// directly: Get copies, so a caller mutating its result cannot corrupt
// later hits.
type cachedResult struct {
	papers  []hetgraph.NodeID
	experts []ta.Ranking
	stats   QueryStats
}

func (r cachedResult) clone() cachedResult {
	out := r
	if r.papers != nil {
		out.papers = append([]hetgraph.NodeID(nil), r.papers...)
	}
	if r.experts != nil {
		out.experts = append([]ta.Ranking(nil), r.experts...)
	}
	return out
}

// cacheEntry is one shard-resident entry. gen pins the engine state the
// fill observed; Get rejects entries from a superseded generation even if
// a concurrent purge has not swept them yet.
type cacheEntry struct {
	key     string
	val     cachedResult
	gen     uint64
	expires time.Time // zero: never
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List // front: most recent; values are *cacheEntry
	pos map[string]*list.Element
	cap int
}

// queryCache is a sharded, concurrency-safe LRU over normalized query
// keys with TTL and generation-based invalidation. Hit/miss/eviction
// traffic lands in the engine's obs registry under the
// expertfind_qcache_* families.
type queryCache struct {
	shards []*cacheShard
	seed   maphash.Seed
	ttl    time.Duration
	gen    atomic.Uint64
	size   atomic.Int64

	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	expirations   *obs.Counter
	invalidations *obs.Counter
	entries       *obs.Gauge
}

func newQueryCache(cfg CacheConfig, reg *obs.Registry) *queryCache {
	if cfg.MaxEntries <= 0 {
		return nil
	}
	ns := cfg.Shards
	if ns <= 0 {
		ns = 16
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < ns {
		p <<= 1
	}
	ns = p
	if ns > cfg.MaxEntries {
		ns = 1
		for ns*2 <= cfg.MaxEntries {
			ns <<= 1
		}
	}
	c := &queryCache{
		shards: make([]*cacheShard, ns),
		seed:   maphash.MakeSeed(),
		ttl:    cfg.TTL,

		hits:          reg.Counter("expertfind_qcache_hits_total", "Query-cache lookups answered from the cache."),
		misses:        reg.Counter("expertfind_qcache_misses_total", "Query-cache lookups that fell through to a full query."),
		evictions:     reg.Counter("expertfind_qcache_evictions_total", "Query-cache entries evicted by the LRU size bound."),
		expirations:   reg.Counter("expertfind_qcache_expired_total", "Query-cache entries dropped because their TTL elapsed."),
		invalidations: reg.Counter("expertfind_qcache_invalidations_total", "Whole-cache invalidations triggered by graph updates."),
		entries:       reg.Gauge("expertfind_qcache_entries", "Query-cache entries currently resident."),
	}
	per := cfg.MaxEntries / ns
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{lru: list.New(), pos: map[string]*list.Element{}, cap: per}
	}
	return c
}

func (c *queryCache) shard(key string) *cacheShard {
	return c.shards[maphash.String(c.seed, key)&uint64(len(c.shards)-1)]
}

// generation returns the current invalidation epoch. Callers capture it
// BEFORE reading engine state; Put then refuses results computed against
// a superseded epoch, so a fill racing an update can never publish stale
// experts.
func (c *queryCache) generation() uint64 { return c.gen.Load() }

// Get returns the cached result for key, if present, unexpired and from
// the current generation.
func (c *queryCache) Get(key string) (cachedResult, bool) {
	s := c.shard(key)
	now := time.Now()
	gen := c.gen.Load()
	s.mu.Lock()
	el, ok := s.pos[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Inc()
		return cachedResult{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		s.removeLocked(el)
		s.mu.Unlock()
		c.size.Add(-1)
		c.entries.Add(-1)
		c.misses.Inc()
		return cachedResult{}, false
	}
	if !e.expires.IsZero() && now.After(e.expires) {
		s.removeLocked(el)
		s.mu.Unlock()
		c.size.Add(-1)
		c.entries.Add(-1)
		c.expirations.Inc()
		c.misses.Inc()
		return cachedResult{}, false
	}
	s.lru.MoveToFront(el)
	out := e.val.clone()
	s.mu.Unlock()
	c.hits.Inc()
	return out, true
}

// Put stores a result computed while the cache was at generation gen. A
// stale gen (an update landed meanwhile) discards the value instead.
func (c *queryCache) Put(key string, v cachedResult, gen uint64) {
	if c.gen.Load() != gen {
		return
	}
	e := &cacheEntry{key: key, val: v.clone(), gen: gen}
	if c.ttl > 0 {
		e.expires = time.Now().Add(c.ttl)
	}
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.pos[key]; ok {
		el.Value = e
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.pos[key] = s.lru.PushFront(e)
	var evicted bool
	if s.lru.Len() > s.cap {
		s.removeLocked(s.lru.Back())
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	} else {
		c.size.Add(1)
		c.entries.Add(1)
	}
}

// removeLocked unlinks el from the shard; the caller holds s.mu and owns
// the size accounting.
func (s *cacheShard) removeLocked(el *list.Element) {
	delete(s.pos, el.Value.(*cacheEntry).key)
	s.lru.Remove(el)
}

// Invalidate drops every entry. The generation bump happens first, so a
// racing Put (or a Get of an entry the sweep has not reached) observes
// the new epoch and refuses the stale value.
func (c *queryCache) Invalidate() {
	c.gen.Add(1)
	var dropped int64
	for _, s := range c.shards {
		s.mu.Lock()
		dropped += int64(s.lru.Len())
		s.lru.Init()
		s.pos = map[string]*list.Element{}
		s.mu.Unlock()
	}
	c.size.Add(-dropped)
	c.entries.Add(float64(-dropped))
	c.invalidations.Inc()
}

// Len returns the resident entry count (approximate under concurrency).
func (c *queryCache) Len() int { return int(c.size.Load()) }
