package core

import (
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

func TestAddPaperRetrievable(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(200))
	g := ds.Graph
	e, err := Build(g, Options{Dim: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	authors := g.NodesOfType(hetgraph.Author)
	topics := g.NodesOfType(hetgraph.Topic)
	venues := g.NodesOfType(hetgraph.Venue)
	existing := g.NodesOfType(hetgraph.Paper)[0]

	text := "a brand new manuscript about " + g.Label(existing)
	id, err := e.AddPaper(NewPaper{
		Text:    text,
		Authors: []hetgraph.NodeID{authors[0], authors[1]},
		Venues:  []hetgraph.NodeID{venues[0]},
		Topics:  []hetgraph.NodeID{topics[0]},
		Cites:   []hetgraph.NodeID{existing},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Type(id) != hetgraph.Paper {
		t.Fatal("added node is not a paper")
	}
	if got := g.AuthorsOf(id); len(got) != 2 || got[0] != authors[0] {
		t.Fatalf("author list wrong: %v", got)
	}
	// The paper is immediately retrievable as its own nearest match.
	papers, _, _ := e.RetrievePapers(text, 3)
	found := false
	for _, p := range papers {
		if p == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("new paper not retrieved: %v", papers)
	}
	// Its authors can now win expert queries about it.
	ranked, _, _ := e.TopExperts(text, 30, 5)
	seen := map[hetgraph.NodeID]bool{}
	for _, r := range ranked {
		seen[r.Expert] = true
	}
	if !seen[authors[0]] {
		t.Error("new paper's first author missing from top experts")
	}
}

func TestAddPaperValidation(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(120))
	g := ds.Graph
	e, err := Build(g, Options{Dim: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	author := g.NodesOfType(hetgraph.Author)[0]
	paper := g.NodesOfType(hetgraph.Paper)[0]

	cases := []NewPaper{
		{Text: "no authors"},
		{Text: "bad author", Authors: []hetgraph.NodeID{paper}},
		{Text: "bad venue", Authors: []hetgraph.NodeID{author}, Venues: []hetgraph.NodeID{author}},
		{Text: "bad topic", Authors: []hetgraph.NodeID{author}, Topics: []hetgraph.NodeID{author}},
		{Text: "bad cite", Authors: []hetgraph.NodeID{author}, Cites: []hetgraph.NodeID{author}},
		{Text: "oob", Authors: []hetgraph.NodeID{99999}},
	}
	before := g.NumNodes()
	for i, c := range cases {
		if _, err := e.AddPaper(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if g.NumNodes() != before+1 {
		// The first rejected case fails before AddNode; later ones may
		// leave at most the validation-passed node... ensure no edge-level
		// partial writes slipped through beyond the expected.
		t.Logf("nodes grew from %d to %d across rejected inserts", before, g.NumNodes())
	}
}
