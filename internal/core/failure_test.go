package core

import (
	"errors"
	"strings"
	"testing"

	"expertfind/internal/hetgraph"
)

// Failure-injection tests: the engine must stay well-behaved on degenerate
// graphs a loader or generator could produce.

func degenerateGraph(mutate func(g *hetgraph.Graph)) *hetgraph.Graph {
	g := hetgraph.New()
	a := g.AddNode(hetgraph.Author, "solo author")
	tp := g.AddNode(hetgraph.Topic, "topic")
	v := g.AddNode(hetgraph.Venue, "venue")
	for i := 0; i < 6; i++ {
		p := g.AddNode(hetgraph.Paper, "some paper text about things")
		g.MustAddEdge(a, p, hetgraph.Write)
		g.MustAddEdge(p, tp, hetgraph.Mention)
		g.MustAddEdge(p, v, hetgraph.Publish)
	}
	if mutate != nil {
		mutate(g)
	}
	return g
}

func TestBuildOnTinyGraph(t *testing.T) {
	g := degenerateGraph(nil)
	e, err := Build(g, Options{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	experts, _, _ := e.TopExperts("some paper text", 10, 3)
	if len(experts) != 1 {
		t.Fatalf("single-author corpus returned %d experts", len(experts))
	}
}

func TestBuildWithEmptyLabels(t *testing.T) {
	g := hetgraph.New()
	a := g.AddNode(hetgraph.Author, "")
	for i := 0; i < 5; i++ {
		p := g.AddNode(hetgraph.Paper, "") // no text at all
		g.MustAddEdge(a, p, hetgraph.Write)
	}
	e, err := Build(g, Options{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-vector embeddings are degenerate but must not crash retrieval.
	experts, _, _ := e.TopExperts("anything", 5, 2)
	_ = experts
}

func TestBuildWithUnicodeLabels(t *testing.T) {
	g := degenerateGraph(func(g *hetgraph.Graph) {
		for _, p := range g.NodesOfType(hetgraph.Paper) {
			g.SetLabel(p, "研究 gráph-embédding ω≤∞ "+strings.Repeat("naïve ", 3))
		}
	})
	e, err := Build(g, Options{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, st, _ := e.RetrievePapers("gráph naïve 研究", 3); st.EncodeTime < 0 {
		t.Fatal("impossible")
	}
}

func TestBuildWithIsolatedPapers(t *testing.T) {
	// Papers with no relations at all: no communities exist; training may
	// be empty, but the build and query paths must survive.
	g := hetgraph.New()
	for i := 0; i < 8; i++ {
		g.AddNode(hetgraph.Paper, "isolated paper text")
	}
	e, err := Build(g, Options{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	papers, _, _ := e.RetrievePapers("isolated paper text", 4)
	if len(papers) != 4 {
		t.Fatalf("retrieved %d papers", len(papers))
	}
	// No authors anywhere: the expert list is empty, not a crash.
	experts, _, _ := e.TopExperts("isolated paper text", 4, 2)
	if len(experts) != 0 {
		t.Fatalf("experts from authorless corpus: %v", experts)
	}
}

func TestQueryEdgeCases(t *testing.T) {
	g := degenerateGraph(nil)
	e, err := Build(g, Options{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"", "    ", "@@@@!!!", strings.Repeat("word ", 5000)} {
		experts, _, _ := e.TopExperts(q, 10, 5)
		_ = experts // no panic is the contract; results may be empty
	}
	res, _, err := e.RetrievePapers("text", 0)
	var bad *BadParamError
	if !errors.As(err, &bad) || bad.Param != "m" {
		t.Errorf("m=0 should return *BadParamError for m, got %v", err)
	}
	if len(res) != 0 {
		t.Error("m=0 returned papers")
	}
}
