package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"expertfind/internal/colstore"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
)

// Replication wire protocol, shared between the leader's HTTP handlers
// (internal/serve) and the follower's client below. The stream body is
// raw WAL records in the on-disk format (durable.MarshalRecord), so the
// follower CRC-checks and appends the very bytes the leader logged.
const (
	// ReplWALPath streams WAL records: GET ?from=<seq>.
	ReplWALPath = "/replication/wal"
	// ReplSnapshotPath streams the leader's current snapshot file.
	ReplSnapshotPath = "/replication/snapshot"
	// ReplStatusPath reports replication state as JSON.
	ReplStatusPath = "/replication/status"
	// ReplFencePath deposes the receiving node: POST {"epoch": N}.
	ReplFencePath = "/replication/fence"
	// ReplPromotePath promotes the receiving follower to leader: POST.
	ReplPromotePath = "/replication/promote"

	// ReplEpochHeader carries a replication epoch in both directions: the
	// follower's epoch on requests (a higher one fences the leader), the
	// leader's on responses (a higher one is adopted by the follower).
	ReplEpochHeader = "X-Replication-Epoch"
	// ReplFollowerHeader identifies the follower on tail requests, for
	// low-water tracking.
	ReplFollowerHeader = "X-Replication-Follower"
	// ReplLastSeqHeader carries the leader's last WAL sequence at the
	// moment the response started, so the follower can compute lag.
	ReplLastSeqHeader = "X-Replication-Last-Seq"
)

// ErrBehindLeader reports a tail request the leader could not serve
// because the requested records were already compacted: the follower
// fell below the leader's truncation point (it was presumed dead past
// the follower TTL) and must re-bootstrap from a fresh snapshot.
var ErrBehindLeader = errors.New("core: follower fell behind leader's compacted WAL; re-bootstrap required")

// FollowerOptions configures OpenFollower. Zero values mean: 200ms
// poll, lag bound 0 (ready only when fully caught up at the last poll),
// SyncAlways WAL, process-wide metrics, no logging.
type FollowerOptions struct {
	// ID names this follower to the leader for low-water tracking.
	// Empty: derived from hostname and pid.
	ID string
	// PollInterval is the delay between tail polls once caught up.
	PollInterval time.Duration
	// MaxLag is the largest leader-minus-applied sequence distance at
	// which the follower still reports Ready.
	MaxLag uint64
	// Client performs the HTTP requests (nil: a client with sane timeouts).
	Client *http.Client
	// BootstrapTimeout bounds how long a fresh follower keeps retrying
	// the initial snapshot download when the leader is unreachable or
	// has no snapshot yet (0: 2 minutes). Followers commonly start
	// before or alongside their leader; dying on the first refused
	// connection would make orderly fleet bring-up impossible.
	BootstrapTimeout time.Duration
	// Sync, SyncEvery, SegmentBytes configure the follower's own WAL.
	Sync         durable.SyncPolicy
	SyncEvery    time.Duration
	SegmentBytes int64
	// Mmap selects how the snapshot's columnar section is materialised
	// (see LoadOptions.Mmap); zero value maps when the platform allows.
	Mmap colstore.Mode
	// Metrics receives replication metrics (nil: obs.Default()).
	Metrics *obs.Registry
	// Logger receives replication progress lines (nil: silent).
	Logger *obs.Logger
}

// Follower replicates a leader's store: it bootstraps from the leader's
// snapshot, tails the leader's WAL over HTTP, and applies each record
// log-before-apply exactly as the leader did, so at every moment its
// engine equals the leader's engine at some recent sequence. Queries
// are served from the local engine; writes are refused until Promote.
type Follower struct {
	store  *Store
	id     string
	opts   FollowerOptions
	client *http.Client
	reg    *obs.Registry
	log    *obs.Logger

	mu        sync.Mutex
	leader    string // base URL, e.g. http://10.0.0.1:7080
	applied   uint64 // last sequence logged and applied locally
	leaderSeq uint64 // leader's last sequence as of the last poll
	polled    bool   // at least one successful poll completed
	promoted  bool
	lastErr   error

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// OpenFollower opens (creating if needed) a follower store in dir,
// replicating leaderURL. A fresh directory bootstraps by downloading
// the leader's snapshot (CRC-validated before it replaces anything); a
// directory with prior state recovers locally — snapshot plus WAL
// replay — and resumes tailing from where it stopped, which is how a
// follower killed mid-catch-up converges after restart. g must be the
// same base graph the leader was built over.
//
// OpenFollower returns with the engine consistent; call Start to begin
// tailing.
func OpenFollower(dir string, g *hetgraph.Graph, leaderURL string, o FollowerOptions) (*Follower, error) {
	reg := o.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	log := o.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 200 * time.Millisecond
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	id := o.ID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: open follower: %w", err)
	}

	f := &Follower{
		id: id, opts: o, client: client, reg: reg, log: log,
		leader: leaderURL,
		stop:   make(chan struct{}), done: make(chan struct{}),
	}

	// Phase 1: obtain a snapshot — local if present, else the leader's.
	snapPath := filepath.Join(dir, SnapshotFileName)
	var leaderEpoch uint64
	if _, err := os.Stat(snapPath); os.IsNotExist(err) {
		start := time.Now()
		ep, err := f.fetchSnapshotRetry(snapPath)
		if err != nil {
			return nil, err
		}
		leaderEpoch = ep
		reg.Gauge("expertfind_replication_bootstrap_seconds",
			"Duration of the most recent follower snapshot bootstrap.").
			Set(time.Since(start).Seconds())
		log.Info("follower_bootstrapped", "leader", leaderURL,
			"dur", time.Since(start).Round(time.Millisecond))
	} else if err != nil {
		return nil, fmt.Errorf("core: open follower: %w", err)
	}

	// Phase 2: load the snapshot and recover the local log over it,
	// exactly as a leader would — minus attaching the engine's update
	// log, because a follower's writes come only from replication.
	e, err := LoadFileWith(snapPath, g, LoadOptions{Mmap: o.Mmap})
	if err != nil {
		return nil, err
	}
	wal, err := durable.OpenWAL(filepath.Join(dir, "wal"), durable.WALOptions{
		Sync: o.Sync, SyncEvery: o.SyncEvery, SegmentBytes: o.SegmentBytes,
		InitialSeq: e.LastUpdateSeq() + 1,
	})
	if err != nil {
		return nil, err
	}
	replayed := 0
	err = wal.Replay(e.LastUpdateSeq(), func(seq uint64, payload []byte) error {
		p, derr := DecodeUpdate(payload)
		if derr != nil {
			return &durable.CorruptError{Path: wal.Dir(), Offset: 0,
				Detail: fmt.Sprintf("update record seq %d", seq), Err: derr}
		}
		if _, aerr := e.ApplyLogged(p, seq); aerr != nil {
			return fmt.Errorf("core: replay of update seq %d failed: %w", seq, aerr)
		}
		replayed++
		return nil
	})
	if err != nil {
		wal.Close()
		return nil, err
	}
	if leaderEpoch > 0 {
		if err := wal.AdoptEpoch(leaderEpoch); err != nil {
			wal.Close()
			return nil, err
		}
	}
	f.store = newAttachedStore(dir, e, wal, reg, log)
	f.applied = wal.LastSeq()
	if f.applied == 0 {
		f.applied = e.LastUpdateSeq()
	}
	f.store.setEpochGauge()
	f.setGauges()
	log.Info("follower_recovered", "applied", f.applied,
		"replayed", replayed, "epoch", wal.Epoch())
	return f, nil
}

// fetchSnapshotRetry keeps trying the snapshot download until it
// succeeds or BootstrapTimeout elapses. A refused connection or a 404
// just means the leader is still booting (or has not snapshotted yet) —
// both routine during fleet bring-up, neither a reason to die.
func (f *Follower) fetchSnapshotRetry(path string) (uint64, error) {
	timeout := f.opts.BootstrapTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	deadline := time.Now().Add(timeout)
	backoff := 100 * time.Millisecond
	for {
		epoch, err := f.fetchSnapshot(path)
		if err == nil {
			return epoch, nil
		}
		if time.Now().After(deadline) {
			return 0, err
		}
		f.log.Info("follower_bootstrap_retry", "err", err, "backoff", backoff)
		time.Sleep(time.Duration(rand.Int63n(int64(backoff))) + time.Millisecond)
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// fetchSnapshot downloads the leader's snapshot to path, validating the
// container's checksums before anything replaces path. Returns the
// leader's epoch as reported on the response.
func (f *Follower) fetchSnapshot(path string) (uint64, error) {
	resp, err := f.client.Get(f.leaderURL() + ReplSnapshotPath)
	if err != nil {
		return 0, fmt.Errorf("core: bootstrap snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("core: bootstrap snapshot: leader answered %s", resp.Status)
	}
	epoch, _ := strconv.ParseUint(resp.Header.Get(ReplEpochHeader), 10, 64)
	tmp, err := os.CreateTemp(filepath.Dir(path), "snapshot.boot-*")
	if err != nil {
		return 0, fmt.Errorf("core: bootstrap snapshot: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(step string, err error) (uint64, error) {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("core: bootstrap snapshot: %s: %w", step, err)
	}
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		return fail("download", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	// Validate every checksum — container header, payload CRC, and for
	// v2 the columnar section directory and each segment — before the
	// file is allowed to become the snapshot: a torn download must fail
	// here, not at some later boot. The caller's load then validates
	// the payload in depth.
	if err := VerifySnapshotFile(tmpName); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("core: bootstrap snapshot: rename: %w", err)
	}
	return epoch, nil
}

// Store exposes the follower's store (engine, snapshots, epoch).
func (f *Follower) Store() *Store { return f.store }

// Engine returns the replicated engine for serving queries.
func (f *Follower) Engine() *Engine { return f.store.Engine() }

// ID returns the follower's identity as reported to the leader.
func (f *Follower) ID() string { return f.id }

func (f *Follower) leaderURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// SetLeader re-points the follower at a new leader — the runbook step
// after promoting a different follower. Takes effect on the next poll.
func (f *Follower) SetLeader(url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.leader = url
}

// Start launches the tail loop: poll the leader's WAL from the next
// needed sequence, apply what arrives, repeat — reconnecting with
// jittered exponential backoff on any failure. Call once.
func (f *Follower) Start() {
	go f.run()
}

func (f *Follower) run() {
	defer close(f.done)
	const (
		backoffMin = 50 * time.Millisecond
		backoffMax = 5 * time.Second
	)
	backoff := backoffMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		n, err := f.streamOnce()
		f.mu.Lock()
		f.lastErr = err
		promoted := f.promoted
		f.mu.Unlock()
		if promoted {
			return
		}
		var wait time.Duration
		if err != nil {
			f.reg.Counter("expertfind_replication_reconnects_total",
				"Tail stream failures followed by a backoff and reconnect.").Inc()
			f.log.Warn("follower_stream_error", "err", err.Error(),
				"backoff", backoff.Round(time.Millisecond))
			// Full jitter: uniform in (0, backoff], then grow the cap.
			wait = time.Duration(rand.Int63n(int64(backoff))) + time.Millisecond
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		} else {
			backoff = backoffMin
			if n == 0 {
				wait = f.opts.PollInterval // caught up; poll gently
			}
		}
		if wait > 0 {
			select {
			case <-f.stop:
				return
			case <-time.After(wait):
			}
		}
	}
}

// streamOnce performs one tail request and applies every record it
// carries, returning how many were applied. A stream cut mid-record is
// not an error — the applied prefix is kept and the next call resumes
// after it.
func (f *Follower) streamOnce() (int, error) {
	f.mu.Lock()
	from := f.applied + 1
	leader := f.leader
	f.mu.Unlock()

	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s%s?from=%d", leader, ReplWALPath, from), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(ReplEpochHeader, strconv.FormatUint(f.store.Epoch(), 10))
	req.Header.Set(ReplFollowerHeader, f.id)
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return 0, ErrBehindLeader
	case http.StatusConflict:
		// The leader saw our (higher) epoch and fenced itself: it is
		// stale. Keep backing off until SetLeader re-points us.
		return 0, fmt.Errorf("core: tail rejected: leader is fenced below our epoch %d", f.store.Epoch())
	default:
		return 0, fmt.Errorf("core: tail request: leader answered %s", resp.Status)
	}

	// Epoch exchange: a newer leader epoch is adopted, an older one
	// rejected — a deposed leader must not feed us records.
	if leaderEpoch, perr := strconv.ParseUint(resp.Header.Get(ReplEpochHeader), 10, 64); perr == nil {
		if leaderEpoch < f.store.Epoch() {
			return 0, &durable.FencedError{Op: "tail", Epoch: f.store.Epoch()}
		}
		if leaderEpoch > f.store.Epoch() {
			if err := f.store.wal.AdoptEpoch(leaderEpoch); err != nil {
				return 0, err
			}
			f.store.setEpochGauge()
		}
	}
	if last, perr := strconv.ParseUint(resp.Header.Get(ReplLastSeqHeader), 10, 64); perr == nil {
		f.mu.Lock()
		f.leaderSeq = last
		f.mu.Unlock()
	}

	applied := 0
	rr := durable.NewRecordReader(resp.Body)
	for {
		seq, payload, err := rr.Next()
		if err == io.EOF {
			break // clean end of this batch
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn tail on the wire: keep the applied prefix, resume later.
			f.reg.Counter("expertfind_replication_stream_tears_total",
				"Tail streams cut mid-record (resumed from the applied prefix).").Inc()
			break
		}
		if err != nil {
			return applied, err
		}
		if err := f.applyRecord(seq, payload); err != nil {
			return applied, err
		}
		applied++
	}
	f.mu.Lock()
	f.polled = true
	f.mu.Unlock()
	f.setGauges()
	return applied, nil
}

// applyRecord logs then applies one replicated record — the same
// log-before-apply order the leader used, so a crash between the two
// replays the record instead of losing it.
func (f *Follower) applyRecord(seq uint64, payload []byte) error {
	if err := f.store.wal.AppendReplicated(seq, payload); err != nil {
		return err
	}
	p, err := DecodeUpdate(payload)
	if err != nil {
		return fmt.Errorf("core: replicated record seq %d: %w", seq, err)
	}
	if _, err := f.store.engine.ApplyLogged(p, seq); err != nil {
		return fmt.Errorf("core: apply replicated record seq %d: %w", seq, err)
	}
	f.mu.Lock()
	f.applied = seq
	f.mu.Unlock()
	f.reg.Counter("expertfind_replication_records_applied_total",
		"WAL records received from the leader and applied.").Inc()
	return nil
}

// Lag returns how many sequences the follower trails the leader by, as
// of the last successful poll.
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.leaderSeq <= f.applied {
		return 0
	}
	return f.leaderSeq - f.applied
}

// CaughtUp reports whether the follower had applied everything the
// leader acknowledged as of the last successful poll.
func (f *Follower) CaughtUp() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.polled && f.leaderSeq <= f.applied
}

// Ready reports whether the follower should serve reads: bootstrap and
// at least one poll completed, and lag within the configured bound.
func (f *Follower) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return true
	}
	if !f.polled {
		return false
	}
	lag := uint64(0)
	if f.leaderSeq > f.applied {
		lag = f.leaderSeq - f.applied
	}
	return lag <= f.opts.MaxLag
}

// FollowerStatus is the JSON shape of /replication/status on a follower.
type FollowerStatus struct {
	Role      string `json:"role"`
	Leader    string `json:"leader"`
	Epoch     uint64 `json:"epoch"`
	Applied   uint64 `json:"applied_seq"`
	LeaderSeq uint64 `json:"leader_seq"`
	Lag       uint64 `json:"lag_seq"`
	CaughtUp  bool   `json:"caught_up"`
	Ready     bool   `json:"ready"`
	LastError string `json:"last_error,omitempty"`
}

// Status snapshots the follower's replication state.
func (f *Follower) Status() FollowerStatus {
	ready, caught := f.Ready(), f.CaughtUp()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStatus{
		Role: "follower", Leader: f.leader, Epoch: f.store.Epoch(),
		Applied: f.applied, LeaderSeq: f.leaderSeq,
		CaughtUp: caught, Ready: ready,
	}
	if f.promoted {
		st.Role = "leader"
	}
	if f.leaderSeq > f.applied {
		st.Lag = f.leaderSeq - f.applied
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// Promote turns the follower into a leader: the tail loop stops, the
// replication epoch is bumped (persisted before anything else), and the
// engine starts logging its own writes to the local WAL — which now
// extends the replicated sequence space under the new epoch. Returns
// the new epoch; the caller re-points surviving followers and fences
// the old leader if it is still reachable.
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	if f.promoted {
		epoch := f.store.Epoch()
		f.mu.Unlock()
		return epoch, nil
	}
	f.promoted = true
	f.mu.Unlock()
	f.stopTail()
	epoch, err := f.store.wal.BumpEpoch()
	if err != nil {
		return 0, err
	}
	f.store.engine.SetUpdateLog(f.store.wal)
	f.store.setEpochGauge()
	f.reg.Counter("expertfind_replication_promotions_total",
		"Times this node was promoted from follower to leader.").Inc()
	f.log.Info("follower_promoted", "epoch", epoch, "applied", f.applied)
	return epoch, nil
}

// stopTail stops the tail loop and waits for it to exit.
func (f *Follower) stopTail() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Close stops tailing and closes the store (final snapshot included).
func (f *Follower) Close() error {
	f.stopTail()
	return f.store.Close()
}

// setGauges publishes the follower's replication position.
func (f *Follower) setGauges() {
	f.mu.Lock()
	applied, leaderSeq, polled := f.applied, f.leaderSeq, f.polled
	f.mu.Unlock()
	lag := uint64(0)
	if leaderSeq > applied {
		lag = leaderSeq - applied
	}
	f.reg.Gauge("expertfind_replication_lag_seq",
		"WAL sequences this follower trails its leader by.").Set(float64(lag))
	f.reg.Gauge("expertfind_replication_applied_seq",
		"Last WAL sequence this follower has applied.").Set(float64(applied))
	f.reg.Gauge("expertfind_replication_caught_up",
		"1 when the follower has applied everything the leader acknowledged.").
		Set(b2f(polled && leaderSeq <= applied))
}
