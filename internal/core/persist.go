package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
	"expertfind/internal/textenc"
	"expertfind/internal/train"
	"expertfind/internal/vec"
)

// The offline pipeline (§III) runs once; the online stage (§IV) serves
// queries. Save and Load split the two across process lifetimes: Save
// writes the fine-tuned parameters Θ_B and configuration after a build,
// and Load restores a query-ready engine against the same graph,
// re-deriving the embeddings E and the PG-Index deterministically from
// Θ_B (cheap next to training, and far smaller on disk).

// enginePersist is the gob-encoded on-disk form of an engine.
type enginePersist struct {
	// Options echoes the build configuration (function-typed and pointer
	// fields excluded).
	K                   int
	MetaPaths           []string
	SampleFraction      float64
	NegStrategy         uint8
	NegPerPos           int
	MaxPositivesPerSeed int
	Dim                 int
	Pooling             uint8
	EF                  int
	Seed                int64
	UsePGIndex          bool
	UseTA               bool
	IndexConfig         pgindex.Config

	// Tokens is the vocabulary in id order; EmbData the fine-tuned table.
	Tokens  []string
	EmbData []float64
	// DocFreqs and NumDocs restore the IDF weights.
	DocFreqs []int
	NumDocs  int
}

// Save serialises the engine's fine-tuned encoder and configuration. It
// holds the engine's read lock, so it can run while queries are served
// but not mid-update.
func (e *Engine) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := e.enc
	vocab := enc.Vocab()
	p := enginePersist{
		K:                   e.opts.K,
		SampleFraction:      e.opts.SampleFraction,
		NegStrategy:         uint8(e.opts.NegStrategy),
		NegPerPos:           e.opts.NegPerPos,
		MaxPositivesPerSeed: e.opts.MaxPositivesPerSeed,
		Dim:                 e.opts.Dim,
		Pooling:             uint8(e.opts.Pooling),
		EF:                  e.opts.EF,
		Seed:                e.opts.Seed,
		UsePGIndex:          boolOpt(e.opts.UsePGIndex, true),
		UseTA:               boolOpt(e.opts.UseTA, true),
		IndexConfig:         e.opts.Index,
		EmbData:             enc.Emb.Data,
		NumDocs:             vocab.NumDocs(),
	}
	for _, mp := range e.opts.MetaPaths {
		p.MetaPaths = append(p.MetaPaths, mp.String())
	}
	p.Tokens = make([]string, vocab.Size())
	p.DocFreqs = make([]int, vocab.Size())
	for id := 0; id < vocab.Size(); id++ {
		p.Tokens[id] = vocab.Token(textencTokenID(id))
		p.DocFreqs[id] = vocab.DocFreq(textencTokenID(id))
	}
	if err := gob.NewEncoder(bw).Encode(&p); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return bw.Flush()
}

// Load restores an engine saved with Save, re-embedding every paper of g
// with the restored fine-tuned encoder and rebuilding the PG-Index. The
// graph must be the one the engine was built over (same node ids); Load
// cannot verify that beyond basic shape checks.
func Load(r io.Reader, g *hetgraph.Graph) (*Engine, error) {
	var p enginePersist
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if p.Dim <= 0 || len(p.Tokens) == 0 || len(p.EmbData) != len(p.Tokens)*p.Dim {
		return nil, fmt.Errorf("core: load: corrupt engine file (dim %d, %d tokens, %d weights)",
			p.Dim, len(p.Tokens), len(p.EmbData))
	}

	opts := Options{
		K:                   p.K,
		SampleFraction:      p.SampleFraction,
		NegPerPos:           p.NegPerPos,
		MaxPositivesPerSeed: p.MaxPositivesPerSeed,
		Dim:                 p.Dim,
		EF:                  p.EF,
		Seed:                p.Seed,
		Index:               p.IndexConfig,
		UsePGIndex:          Bool(p.UsePGIndex),
		UseTA:               Bool(p.UseTA),
	}
	opts.NegStrategy = samplingStrategy(p.NegStrategy)
	for _, s := range p.MetaPaths {
		mp, err := hetgraph.ParseMetaPath(s)
		if err != nil {
			return nil, fmt.Errorf("core: load: %w", err)
		}
		opts.MetaPaths = append(opts.MetaPaths, mp)
	}

	enc, err := restoreEncoder(&p)
	if err != nil {
		return nil, err
	}

	e := &Engine{g: g, opts: opts, enc: enc, reg: obs.Default()}
	e.cache = train.BuildTokenCache(g, enc)
	e.Embeddings = train.EmbedAll(enc, e.cache)
	e.stats.VocabSize = len(p.Tokens)
	if p.UsePGIndex {
		e.index = pgindex.Build(e.Embeddings, opts.Index)
		e.stats.IndexEdges = e.index.NumEdges()
		e.stats.IndexMemory = e.index.MemoryBytes()
	}
	return e, nil
}

// SaveEmbeddings writes E itself (paper id, vector) with gob, for
// interoperability with external ANN tooling. Like Save, it holds the
// engine's read lock against concurrent updates.
func (e *Engine) SaveEmbeddings(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bw := bufio.NewWriter(w)
	type pair struct {
		ID  hetgraph.NodeID
		Vec vec.Vector
	}
	pairs := make([]pair, 0, len(e.Embeddings))
	for _, p := range e.g.NodesOfType(hetgraph.Paper) {
		pairs = append(pairs, pair{ID: p, Vec: e.Embeddings[p]})
	}
	if err := gob.NewEncoder(bw).Encode(pairs); err != nil {
		return fmt.Errorf("core: save embeddings: %w", err)
	}
	return bw.Flush()
}

// textencTokenID converts a dense id to the tokenizer's id type; split out
// to keep the Save loop readable.
func textencTokenID(id int) textenc.TokenID { return textenc.TokenID(id) }

// samplingStrategy converts a persisted strategy byte back to the enum.
func samplingStrategy(b uint8) sampling.Strategy { return sampling.Strategy(b) }

// restoreEncoder rebuilds the fine-tuned encoder from its persisted form.
func restoreEncoder(p *enginePersist) (*textenc.Encoder, error) {
	vocab, err := textenc.NewVocabFromTokens(p.Tokens, p.DocFreqs, p.NumDocs)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	enc, err := textenc.NewEncoderWithTable(vocab, p.Dim, p.EmbData)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	enc.Pooling = textenc.Pooling(p.Pooling)
	return enc, nil
}
