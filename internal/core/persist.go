package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"expertfind/internal/colstore"
	"expertfind/internal/durable"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
	"expertfind/internal/textenc"
	"expertfind/internal/train"
	"expertfind/internal/vec"
)

// The offline pipeline (§III) runs once; the online stage (§IV) serves
// queries. Save and Load split the two across process lifetimes: Save
// writes the fine-tuned parameters Θ_B, the configuration, and the
// journal of online updates accepted since the build; Load restores a
// query-ready engine against the same base graph, re-deriving the
// embeddings E and the PG-Index deterministically from Θ_B and then
// re-applying the journalled updates (cheap next to training, and far
// smaller on disk).
//
// On disk an engine is a durable.Container: magic + format version +
// CRC-32C over a gob payload, written via atomic temp-file-plus-rename
// replacement. A truncated, bit-flipped, foreign or future-versioned
// file is rejected with a typed error (durable.ErrTruncated,
// durable.ErrChecksum, durable.ErrBadMagic, *durable.VersionError)
// before a single payload byte is interpreted — never a cryptic mid-gob
// failure, and never a silently half-loaded engine.

// The container format versions live in persist_v2.go: version 1 is
// the original all-gob layout, version 2 appends the columnar section.
// Save always writes version 2; Load reads both.

// enginePersist is the gob-encoded form of the engine's static state.
type enginePersist struct {
	// Options echoes the build configuration (function-typed and pointer
	// fields excluded).
	K                   int
	MetaPaths           []string
	SampleFraction      float64
	NegStrategy         uint8
	NegPerPos           int
	MaxPositivesPerSeed int
	Dim                 int
	Pooling             uint8
	EF                  int
	Seed                int64
	UsePGIndex          bool
	UseTA               bool
	IndexConfig         pgindex.Config

	// Tokens is the vocabulary in id order; EmbData the fine-tuned table.
	Tokens  []string
	EmbData []float64
	// DocFreqs and NumDocs restore the IDF weights.
	DocFreqs []int
	NumDocs  int
}

// persistUpdate is the on-disk form of one accepted AddPaper, both in
// snapshot journals and in WAL records.
type persistUpdate struct {
	Text    string
	Authors []int32
	Venues  []int32
	Topics  []int32
	Cites   []int32
}

func toPersistUpdate(p NewPaper) persistUpdate {
	return persistUpdate{
		Text:    p.Text,
		Authors: idsToInt32(p.Authors),
		Venues:  idsToInt32(p.Venues),
		Topics:  idsToInt32(p.Topics),
		Cites:   idsToInt32(p.Cites),
	}
}

func (u persistUpdate) toNewPaper() NewPaper {
	return NewPaper{
		Text:    u.Text,
		Authors: int32ToIDs(u.Authors),
		Venues:  int32ToIDs(u.Venues),
		Topics:  int32ToIDs(u.Topics),
		Cites:   int32ToIDs(u.Cites),
	}
}

func idsToInt32(ids []hetgraph.NodeID) []int32 {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

func int32ToIDs(ids []int32) []hetgraph.NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]hetgraph.NodeID, len(ids))
	for i, id := range ids {
		out[i] = hetgraph.NodeID(id)
	}
	return out
}

// snapshotPayload is the complete gob payload inside the container: the
// static engine state plus the journal of online updates it has
// accepted, and the WAL sequence the journal reaches. Restoring the
// payload therefore reproduces the live state, and WAL replay only
// needs records past LastSeq.
type snapshotPayload struct {
	Engine  enginePersist
	Updates []persistUpdate
	LastSeq uint64
	// Col describes the v2 columnar section that follows the payload
	// (shapes and index scalars); nil in v1 snapshots and in the rare
	// v2 snapshot with nothing columnar to store.
	Col *colPersist
}

// Save serialises the engine — fine-tuned encoder, configuration, and
// the journal of accepted online updates — as a versioned, checksummed
// container. It holds the engine's read lock, so it can run while
// queries are served but not mid-update.
func (e *Engine) Save(w io.Writer) error {
	_, err := e.SaveSnapshot(w)
	return err
}

// SaveSnapshot is Save returning the WAL sequence number the written
// snapshot covers: every update with sequence <= lastSeq is inside the
// snapshot, so WAL segments up to it can be truncated once the bytes
// are durably on disk.
func (e *Engine) SaveSnapshot(w io.Writer) (lastSeq uint64, err error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	enc := e.enc
	vocab := enc.Vocab()
	p := snapshotPayload{LastSeq: e.walSeq}
	p.Engine = enginePersist{
		K:                   e.opts.K,
		SampleFraction:      e.opts.SampleFraction,
		NegStrategy:         uint8(e.opts.NegStrategy),
		NegPerPos:           e.opts.NegPerPos,
		MaxPositivesPerSeed: e.opts.MaxPositivesPerSeed,
		Dim:                 e.opts.Dim,
		Pooling:             uint8(e.enc.Pooling),
		EF:                  e.opts.EF,
		Seed:                e.opts.Seed,
		UsePGIndex:          boolOpt(e.opts.UsePGIndex, true),
		UseTA:               boolOpt(e.opts.UseTA, true),
		IndexConfig:         e.opts.Index,
		// The table is float32 in memory; persisting float64 keeps the
		// snapshot format stable and round-trips exactly (every float32
		// is representable as a float64).
		EmbData: enc.Emb.Float64(),
		NumDocs: vocab.NumDocs(),
	}
	for _, mp := range e.opts.MetaPaths {
		p.Engine.MetaPaths = append(p.Engine.MetaPaths, mp.String())
	}
	p.Engine.Tokens = make([]string, vocab.Size())
	p.Engine.DocFreqs = make([]int, vocab.Size())
	for id := 0; id < vocab.Size(); id++ {
		p.Engine.Tokens[id] = vocab.Token(textencTokenID(id))
		p.Engine.DocFreqs[id] = vocab.DocFreq(textencTokenID(id))
	}
	p.Updates = make([]persistUpdate, len(e.updates))
	for i, u := range e.updates {
		p.Updates[i] = toPersistUpdate(u)
	}

	// The big blocks — embedding matrix, CSR adjacency, quantization
	// shadow — go into the columnar section after the gob payload, in
	// page-aligned fixed-width segments a loader can mmap. Only their
	// shapes travel in the gob metadata.
	segs, col, err := e.columnSegmentsLocked()
	if err != nil {
		return 0, err
	}
	p.Col = col

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&p); err != nil {
		return 0, fmt.Errorf("core: save: %w", err)
	}
	if err := durable.WriteContainer(w, snapshotVersionV2, payload.Bytes()); err != nil {
		return 0, fmt.Errorf("core: save: %w", err)
	}
	if col != nil {
		base := int64(durable.ContainerHeaderSize) + int64(payload.Len())
		if _, _, err := colstore.WriteSection(w, base, segs); err != nil {
			return 0, fmt.Errorf("core: save: %w", err)
		}
	}
	return e.walSeq, nil
}

// Load restores an engine saved with Save: it verifies the container
// (magic, version, checksum), decodes the payload, re-embeds every
// paper of g with the restored fine-tuned encoder, rebuilds the
// PG-Index, and re-applies the journalled online updates. The graph
// must be the base graph the engine was built over (same node ids);
// Load cannot verify that beyond shape checks.
//
// Failure modes are typed: errors.Is(err, durable.ErrTruncated /
// ErrChecksum / ErrBadMagic) and errors.As(&durable.VersionError{},
// &durable.CorruptError{}) distinguish damage classes, and every decode
// error carries the byte offset where parsing stopped.
func Load(r io.Reader, g *hetgraph.Graph) (*Engine, error) {
	return loadNamed(r, "<stream>", g)
}

// LoadFile is Load with path context in every error, and — unlike the
// streaming Load — able to mmap a v2 snapshot's columnar section.
// It uses ModeAuto; LoadFileWith exposes the choice.
func LoadFile(path string, g *hetgraph.Graph) (*Engine, error) {
	return LoadFileWith(path, g, LoadOptions{})
}

func loadNamed(r io.Reader, name string, g *hetgraph.Graph) (*Engine, error) {
	version, payload, end, err := durable.ReadContainerPrefix(r, name, snapshotVersionV2)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if version == snapshotVersionV1 {
		if len(rest) != 0 {
			return nil, trailingErr(name, end)
		}
		return loadPayload(payload, name, g)
	}
	return loadV2Bytes(payload, rest, end, name, g)
}

// loadPayload restores a v1 engine: decode, then materialise.
func loadPayload(payload []byte, name string, g *hetgraph.Graph) (*Engine, error) {
	p, err := decodePayload(payload, name)
	if err != nil {
		return nil, err
	}
	return engineFromPayload(p, name, g)
}

// decodePayload gob-decodes and shape-checks a snapshot payload.
func decodePayload(payload []byte, name string) (*snapshotPayload, error) {
	var p snapshotPayload
	cr := &countingReader{r: bytes.NewReader(payload)}
	if err := gob.NewDecoder(cr).Decode(&p); err != nil {
		// The payload passed its checksum, so a gob failure means the
		// snapshot was written by an incompatible build — report it with
		// position context instead of a bare "gob: ..." message.
		return nil, fmt.Errorf("core: load: %w", &durable.CorruptError{
			Path: name, Offset: cr.n, Detail: "engine gob payload", Err: err})
	}
	if p.Engine.Dim <= 0 || len(p.Engine.Tokens) == 0 ||
		len(p.Engine.EmbData) != len(p.Engine.Tokens)*p.Engine.Dim {
		return nil, fmt.Errorf("core: load: %w", &durable.CorruptError{
			Path: name, Offset: 0, Detail: "engine shape",
			Err: fmt.Errorf("dim %d, %d tokens, %d weights", p.Engine.Dim,
				len(p.Engine.Tokens), len(p.Engine.EmbData))})
	}
	return &p, nil
}

// optionsFromPersist reconstructs the build Options a payload echoes.
func optionsFromPersist(ep *enginePersist) (Options, error) {
	opts := Options{
		K:                   ep.K,
		SampleFraction:      ep.SampleFraction,
		NegPerPos:           ep.NegPerPos,
		MaxPositivesPerSeed: ep.MaxPositivesPerSeed,
		Dim:                 ep.Dim,
		EF:                  ep.EF,
		Seed:                ep.Seed,
		Index:               ep.IndexConfig,
		UsePGIndex:          Bool(ep.UsePGIndex),
		UseTA:               Bool(ep.UseTA),
	}
	opts.NegStrategy = samplingStrategy(ep.NegStrategy)
	for _, s := range ep.MetaPaths {
		mp, err := hetgraph.ParseMetaPath(s)
		if err != nil {
			return Options{}, fmt.Errorf("core: load: %w", err)
		}
		opts.MetaPaths = append(opts.MetaPaths, mp)
	}
	return opts, nil
}

// engineFromPayload materialises a v1-style engine from the decoded
// payload: re-embed every paper with the restored encoder, rebuild the
// PG-Index deterministically, re-apply the journalled updates in full.
func engineFromPayload(p *snapshotPayload, name string, g *hetgraph.Graph) (*Engine, error) {
	opts, err := optionsFromPersist(&p.Engine)
	if err != nil {
		return nil, err
	}
	enc, err := restoreEncoder(&p.Engine)
	if err != nil {
		return nil, err
	}

	e := &Engine{g: g, opts: opts, enc: enc, reg: obs.Default()}
	e.cache = train.BuildTokenCache(g, enc)
	e.Embeddings = train.EmbedAll(enc, e.cache)
	e.stats.VocabSize = len(p.Engine.Tokens)
	if p.Engine.UsePGIndex {
		e.index = pgindex.BuildWithRand(e.Embeddings, opts.Index,
			rand.New(rand.NewSource(opts.Index.Seed)))
		e.stats.IndexEdges = e.index.NumEdges()
		e.stats.IndexMemory = e.index.MemoryBytes()
	}

	// Re-apply the journalled online updates in order. The engine is not
	// yet shared, but applyUpdate requires the write lock for its cache
	// invariants, so take it the normal way.
	for i, u := range p.Updates {
		np := u.toNewPaper()
		e.mu.Lock()
		err := func() error {
			if verr := e.validateNewPaper(np); verr != nil {
				return verr
			}
			_, aerr := e.applyUpdateLocked(np, 0)
			return aerr
		}()
		e.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: load: %w", &durable.CorruptError{
				Path: name, Offset: 0,
				Detail: fmt.Sprintf("journalled update %d/%d", i+1, len(p.Updates)),
				Err:    err})
		}
	}
	e.mu.Lock()
	e.walSeq = p.LastSeq
	e.mu.Unlock()
	return e, nil
}

// countingReader tracks bytes consumed so decode errors can report how
// far into the payload parsing got.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// SaveEmbeddings writes E itself (paper id, vector) with gob, for
// interoperability with external ANN tooling. Like Save, it holds the
// engine's read lock against concurrent updates.
func (e *Engine) SaveEmbeddings(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	type pair struct {
		ID  hetgraph.NodeID
		Vec vec.Vector
	}
	pairs := make([]pair, 0, len(e.Embeddings))
	for _, p := range e.g.NodesOfType(hetgraph.Paper) {
		pairs = append(pairs, pair{ID: p, Vec: e.Embeddings[p].Float64()})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
		return fmt.Errorf("core: save embeddings: %w", err)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// textencTokenID converts a dense id to the tokenizer's id type; split out
// to keep the Save loop readable.
func textencTokenID(id int) textenc.TokenID { return textenc.TokenID(id) }

// samplingStrategy converts a persisted strategy byte back to the enum.
func samplingStrategy(b uint8) sampling.Strategy { return sampling.Strategy(b) }

// restoreEncoder rebuilds the fine-tuned encoder from its persisted form.
func restoreEncoder(p *enginePersist) (*textenc.Encoder, error) {
	vocab, err := textenc.NewVocabFromTokens(p.Tokens, p.DocFreqs, p.NumDocs)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	enc, err := textenc.NewEncoderWithTable(vocab, p.Dim, p.EmbData)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	enc.Pooling = textenc.Pooling(p.Pooling)
	return enc, nil
}
