package core

import (
	"context"
	"errors"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

// buildTiny builds the smallest engine worth querying, for tests that
// exercise the query layer rather than ranking quality.
func buildTiny(t *testing.T, mutate func(*Options)) (*dataset.Dataset, *Engine) {
	t.Helper()
	ds := dataset.Generate(dataset.AminerSim(120))
	opts := Options{Dim: 8, Seed: 4}
	if mutate != nil {
		mutate(&opts)
	}
	e, err := Build(ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, e
}

func TestQueryParamBoundaries(t *testing.T) {
	_, e := buildTiny(t, nil)
	paper := e.Graph().NodesOfType(hetgraph.Paper)[0]

	cases := []struct {
		name      string
		run       func() error
		wantParam string // "" means the call must succeed
	}{
		{"experts m=0", func() error { _, _, err := e.TopExperts("q", 0, 5); return err }, "m"},
		{"experts m=-3", func() error { _, _, err := e.TopExperts("q", -3, 5); return err }, "m"},
		{"experts n=0", func() error { _, _, err := e.TopExperts("q", 5, 0); return err }, "n"},
		{"experts n=-1", func() error { _, _, err := e.TopExperts("q", 5, -1); return err }, "n"},
		{"experts m=1 n=1", func() error { _, _, err := e.TopExperts("q", 1, 1); return err }, ""},
		{"papers m=0", func() error { _, _, err := e.RetrievePapers("q", 0); return err }, "m"},
		{"papers m=-9", func() error { _, _, err := e.RetrievePapers("q", -9); return err }, "m"},
		{"papers m=1", func() error { _, _, err := e.RetrievePapers("q", 1); return err }, ""},
		{"similar m=0", func() error { _, _, err := e.SimilarPapers(paper, 0); return err }, "m"},
		{"similar m=1", func() error { _, _, err := e.SimilarPapers(paper, 1); return err }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if tc.wantParam == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var bad *BadParamError
			if !errors.As(err, &bad) {
				t.Fatalf("got %v, want *BadParamError", err)
			}
			if bad.Param != tc.wantParam {
				t.Fatalf("Param = %q, want %q", bad.Param, tc.wantParam)
			}
		})
	}
}

func TestQueryOversizedBoundsStillServed(t *testing.T) {
	_, e := buildTiny(t, nil)
	nPapers := e.Graph().NumNodesOfType(hetgraph.Paper)
	// m beyond the corpus and n beyond the author pool degrade gracefully
	// to "everything", never error.
	papers, _, err := e.RetrievePapers("graph", nPapers*10)
	if err != nil {
		t.Fatalf("oversized m: %v", err)
	}
	if len(papers) == 0 || len(papers) > nPapers {
		t.Fatalf("retrieved %d papers from a %d-paper corpus", len(papers), nPapers)
	}
	experts, _, err := e.TopExperts("graph", 20, 1<<20)
	if err != nil {
		t.Fatalf("oversized n: %v", err)
	}
	if len(experts) == 0 {
		t.Fatal("no experts for oversized n")
	}
}

func TestQueryEFEdgeValues(t *testing.T) {
	// EF below m (and negative) must be clamped by the index, not break
	// retrieval; a huge EF is just a slower exact-ish search.
	for _, ef := range []int{-5, 1, 1 << 20} {
		_, e := buildTiny(t, func(o *Options) { o.EF = ef })
		papers, st, err := e.RetrievePapers("graph embedding", 10)
		if err != nil {
			t.Fatalf("EF=%d: %v", ef, err)
		}
		if len(papers) == 0 || !st.UsedPGIndex {
			t.Fatalf("EF=%d: got %d papers, UsedPGIndex=%v", ef, len(papers), st.UsedPGIndex)
		}
	}
}

func TestQueryCtxPreCancelled(t *testing.T) {
	_, e := buildTiny(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.TopExpertsCtx(ctx, "graph", 10, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("TopExpertsCtx: got %v, want context.Canceled", err)
	}
	if _, _, err := e.RetrievePapersCtx(ctx, "graph", 10); !errors.Is(err, context.Canceled) {
		t.Errorf("RetrievePapersCtx: got %v, want context.Canceled", err)
	}
	paper := e.Graph().NodesOfType(hetgraph.Paper)[0]
	if _, _, err := e.SimilarPapersCtx(ctx, paper, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("SimilarPapersCtx: got %v, want context.Canceled", err)
	}
}

func TestQueryCtxDeadlineExceeded(t *testing.T) {
	_, e := buildTiny(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 1) // 1ns: expired on arrival
	defer cancel()
	_, _, err := e.TopExpertsCtx(ctx, "graph", 10, 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryCtxErrorsAreNotCached(t *testing.T) {
	_, e := buildTiny(t, nil)
	e.EnableQueryCache(CacheConfig{MaxEntries: 64})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.TopExpertsCtx(ctx, "graph", 10, 5); err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if n := e.QueryCacheLen(); n != 0 {
		t.Fatalf("failed fill was cached: %d entries", n)
	}
	// The same query with a live context must succeed and then cache.
	if _, st, err := e.TopExperts("graph", 10, 5); err != nil || st.CacheHit {
		t.Fatalf("post-cancel query: err=%v hit=%v", err, st.CacheHit)
	}
	if n := e.QueryCacheLen(); n != 1 {
		t.Fatalf("successful fill not cached: %d entries", n)
	}
}

func TestEngineCacheHitAndVariants(t *testing.T) {
	_, e := buildTiny(t, nil)
	e.EnableQueryCache(CacheConfig{MaxEntries: 64})

	first, st1, err := e.TopExperts("Graph  Embedding", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	second, st2, err := e.TopExperts("graph embedding", 20, 5) // normalization variant
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("normalized variant missed the cache")
	}
	if len(first) != len(second) {
		t.Fatalf("hit returned %d experts, miss returned %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rank %d differs between miss and hit: %+v vs %+v", i, first[i], second[i])
		}
	}
	// Different bounds are a different result — never served from the
	// m=20,n=5 entry.
	if _, st3, err := e.TopExperts("graph embedding", 20, 3); err != nil || st3.CacheHit {
		t.Fatalf("different n served from cache: err=%v hit=%v", err, st3.CacheHit)
	}
	// Papers and experts for the same text are distinct entries.
	if _, st4, err := e.RetrievePapers("graph embedding", 20); err != nil || st4.CacheHit {
		t.Fatalf("papers query served from experts entry: err=%v hit=%v", err, st4.CacheHit)
	}
	if _, st5, err := e.RetrievePapers("graph embedding", 20); err != nil || !st5.CacheHit {
		t.Fatalf("repeat papers query missed: err=%v hit=%v", err, st5.CacheHit)
	}
}

func TestAddPaperInvalidatesEngineCache(t *testing.T) {
	ds, e := buildTiny(t, nil)
	e.EnableQueryCache(CacheConfig{MaxEntries: 64})
	g := ds.Graph
	existing := g.NodesOfType(hetgraph.Paper)[0]
	query := "a fresh manuscript about " + g.Label(existing)

	if _, _, err := e.RetrievePapers(query, 5); err != nil {
		t.Fatal(err)
	}
	if e.QueryCacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", e.QueryCacheLen())
	}

	id, err := e.AddPaper(NewPaper{
		Text:    query,
		Authors: g.NodesOfType(hetgraph.Author)[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.QueryCacheLen() != 0 {
		t.Fatalf("AddPaper left %d cached entries", e.QueryCacheLen())
	}

	// The re-run is a miss and must see the new paper — the cached
	// pre-update ranking would not contain it.
	papers, st, err := e.RetrievePapers(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("post-update query served from the invalidated cache")
	}
	found := false
	for _, p := range papers {
		if p == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-update retrieval misses the new paper: %v", papers)
	}
}
