// Package textenc implements the document encoder of §III-C as a
// stdlib-only substitute for SciBERT: a WordPiece-style subword tokenizer
// whose vocabulary is induced from the corpus, a trainable token-embedding
// table deterministically initialised from token hashes (the "pre-trained"
// state, a Johnson-Lindenstrauss sketch of the bag-of-subwords space), IDF
// token weighting, and the paper's mean/max pooling Φ_P (Eq. 2).
//
// The table's rows are the parameters Θ_B that the triplet-loss fine-tuning
// of internal/train updates, mirroring how the paper fine-tunes SciBERT's
// weights. See DESIGN.md for why this substitution preserves the behaviours
// the paper studies.
package textenc

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenID indexes a token in a Vocab. The zero value is the unknown token.
type TokenID int32

// UnknownToken is the id reserved for out-of-vocabulary pieces that cannot
// be segmented.
const UnknownToken TokenID = 0

// Vocab is a WordPiece-style vocabulary: whole words plus "##"-prefixed
// continuation subwords, induced from a corpus.
type Vocab struct {
	tokens []string
	ids    map[string]TokenID
	// contIDs indexes the "##"-continuation tokens by their bare surface
	// (prefix stripped), so the tokenizer's greedy segmentation can probe
	// substrings of the word directly instead of building "##"+piece
	// strings for every candidate length.
	contIDs map[string]TokenID
	// docFreq[t] counts the corpus documents containing token t at build
	// time; the encoder turns it into IDF weights.
	docFreq []int
	numDocs int
}

// VocabConfig controls vocabulary induction.
type VocabConfig struct {
	// MaxWords caps the number of whole-word tokens (most frequent first).
	MaxWords int
	// MaxSubwords caps the number of continuation subwords.
	MaxSubwords int
	// MinWordFreq drops words rarer than this from the whole-word set.
	MinWordFreq int
}

// DefaultVocabConfig returns the configuration used by the experiments.
func DefaultVocabConfig() VocabConfig {
	return VocabConfig{MaxWords: 20000, MaxSubwords: 4000, MinWordFreq: 2}
}

// BuildVocab induces a vocabulary from the corpus: the most frequent words
// become whole-word tokens; character pieces (prefix pieces and
// "##"-continuations of length 1-4 from all words) fill the subword budget
// so any word segments greedily without hitting UnknownToken in practice.
func BuildVocab(corpus []string, cfg VocabConfig) *Vocab {
	if cfg.MaxWords <= 0 {
		cfg.MaxWords = DefaultVocabConfig().MaxWords
	}
	if cfg.MaxSubwords <= 0 {
		cfg.MaxSubwords = DefaultVocabConfig().MaxSubwords
	}
	if cfg.MinWordFreq <= 0 {
		cfg.MinWordFreq = 1
	}

	wordFreq := map[string]int{}
	subFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range SplitWords(doc) {
			wordFreq[w]++
			// Collect candidate pieces: prefixes and ## continuations.
			for _, piece := range piecesOf(w) {
				subFreq[piece]++
			}
		}
	}

	v := &Vocab{ids: map[string]TokenID{}}
	v.add("[UNK]") // id 0

	// Whole words by descending frequency, ties broken lexically.
	words := topK(wordFreq, cfg.MaxWords, cfg.MinWordFreq)
	for _, w := range words {
		v.add(w)
	}
	// Always include every single character (as both start and
	// continuation piece) so segmentation can't fail on known alphabets.
	for _, doc := range corpus {
		for _, r := range strings.ToLower(doc) {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				v.add(string(r))
				v.add("##" + string(r))
			}
		}
	}
	for _, s := range topK(subFreq, cfg.MaxSubwords, 1) {
		v.add(s)
	}

	// Document frequencies for IDF, counted over the final vocabulary by
	// re-tokenizing each document.
	v.docFreq = make([]int, len(v.tokens))
	tk := &Tokenizer{vocab: v, maxLen: 1 << 30}
	seen := map[TokenID]bool{}
	for _, doc := range corpus {
		clear(seen)
		for _, id := range tk.Tokenize(doc) {
			if !seen[id] {
				seen[id] = true
				v.docFreq[id]++
			}
		}
		v.numDocs++
	}
	return v
}

// piecesOf returns the WordPiece candidate pieces of a word: prefixes of
// length 2-6 and continuation pieces ("##"+substring) of length 2-4.
func piecesOf(w string) []string {
	r := []rune(w)
	var out []string
	for l := 2; l <= 6 && l <= len(r); l++ {
		out = append(out, string(r[:l]))
	}
	for start := 1; start < len(r); start++ {
		for l := 2; l <= 4 && start+l <= len(r); l++ {
			out = append(out, "##"+string(r[start:start+l]))
		}
	}
	return out
}

func topK(freq map[string]int, k, minFreq int) []string {
	type wf struct {
		w string
		f int
	}
	all := make([]wf, 0, len(freq))
	for w, f := range freq {
		if f >= minFreq {
			all = append(all, wf{w, f})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, x := range all {
		out[i] = x.w
	}
	return out
}

func (v *Vocab) add(tok string) TokenID {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := TokenID(len(v.tokens))
	v.tokens = append(v.tokens, tok)
	v.ids[tok] = id
	if strings.HasPrefix(tok, "##") {
		if v.contIDs == nil {
			v.contIDs = map[string]TokenID{}
		}
		v.contIDs[tok[2:]] = id
	}
	return id
}

// contID returns the id of the continuation token "##"+s, if present.
func (v *Vocab) contID(s string) (TokenID, bool) {
	id, ok := v.contIDs[s]
	return id, ok
}

// Size returns the number of tokens in the vocabulary.
func (v *Vocab) Size() int { return len(v.tokens) }

// Token returns the surface form of id.
func (v *Vocab) Token(id TokenID) string { return v.tokens[id] }

// ID returns the id of tok and whether it is in the vocabulary.
func (v *Vocab) ID(tok string) (TokenID, bool) {
	id, ok := v.ids[tok]
	return id, ok
}

// IDF returns the inverse document frequency weight of id, computed as
// ln(1 + N/(1+df)). Tokens never seen at build time get the maximum weight.
func (v *Vocab) IDF(id TokenID) float64 {
	if v.numDocs == 0 {
		return 1
	}
	df := 0
	if int(id) < len(v.docFreq) {
		df = v.docFreq[id]
	}
	return logIDF(v.numDocs, df)
}

// SplitWords lower-cases text and splits it into maximal runs of letters
// and digits — the pre-tokenisation step shared by the tokenizer and the
// lexical baselines (TFIDF, Avg.GloVe-sim).
func SplitWords(text string) []string {
	var words []string
	forEachWord(text, func(w string) bool {
		words = append(words, w)
		return true
	})
	return words
}

// forEachWord streams the words of SplitWords without materialising the
// slice. Words that are already lower-case ASCII — the overwhelmingly
// common case for paper titles — are passed as substrings of text, so the
// hot tokenize path allocates nothing per word; anything needing case
// folding or non-ASCII handling goes through a scratch buffer. Returning
// false from fn stops the scan.
func forEachWord(text string, fn func(string) bool) {
	var scratch []byte
	i, n := 0, len(text)
	for i < n {
		// Skip separators.
		c := text[i]
		if c < utf8.RuneSelf {
			if !isASCIIWordByte(c) {
				i++
				continue
			}
		} else {
			r, sz := utf8.DecodeRuneInString(text[i:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				i += sz
				continue
			}
		}
		// A word starts at i. dirty marks that the lowered word differs
		// from the raw bytes (uppercase ASCII or non-ASCII runes).
		start := i
		dirty := false
		for i < n {
			c := text[i]
			if c < utf8.RuneSelf {
				if ('a' <= c && c <= 'z') || ('0' <= c && c <= '9') {
					if dirty {
						scratch = append(scratch, c)
					}
					i++
					continue
				}
				if 'A' <= c && c <= 'Z' {
					if !dirty {
						scratch = append(scratch[:0], text[start:i]...)
						dirty = true
					}
					scratch = append(scratch, c+'a'-'A')
					i++
					continue
				}
				break
			}
			r, sz := utf8.DecodeRuneInString(text[i:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			if !dirty {
				scratch = append(scratch[:0], text[start:i]...)
				dirty = true
			}
			scratch = utf8.AppendRune(scratch, unicode.ToLower(r))
			i += sz
		}
		w := text[start:i]
		if dirty {
			w = string(scratch)
		}
		if !fn(w) {
			return
		}
	}
}

func isASCIIWordByte(c byte) bool {
	return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// NumDocs returns the number of corpus documents seen at build time.
func (v *Vocab) NumDocs() int { return v.numDocs }

// DocFreq returns the document frequency of id recorded at build time.
func (v *Vocab) DocFreq(id TokenID) int {
	if int(id) < len(v.docFreq) {
		return v.docFreq[id]
	}
	return 0
}

// NewVocabFromTokens reconstructs a vocabulary from its serialised parts:
// the token list in id order plus the document-frequency table. It is the
// inverse of walking Token/DocFreq over all ids, used when loading a saved
// engine.
func NewVocabFromTokens(tokens []string, docFreqs []int, numDocs int) (*Vocab, error) {
	if len(tokens) == 0 || tokens[0] != "[UNK]" {
		return nil, fmt.Errorf("textenc: token 0 must be [UNK]")
	}
	if len(docFreqs) != len(tokens) {
		return nil, fmt.Errorf("textenc: %d tokens but %d doc freqs", len(tokens), len(docFreqs))
	}
	v := &Vocab{ids: make(map[string]TokenID, len(tokens)), numDocs: numDocs}
	for _, t := range tokens {
		if _, dup := v.ids[t]; dup {
			return nil, fmt.Errorf("textenc: duplicate token %q", t)
		}
		v.add(t)
	}
	v.docFreq = append([]int(nil), docFreqs...)
	return v, nil
}
