package textenc

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"expertfind/internal/vec"
)

// Pooling selects the feature-extraction strategy Φ_P of Eq. 2.
type Pooling uint8

const (
	// MeanPooling averages token vectors, IDF-weighted (the paper's default;
	// §III-C adopts mean pooling for its better performance).
	MeanPooling Pooling = iota
	// MaxPooling takes the component-wise maximum over token vectors.
	MaxPooling
)

// String names the pooling strategy.
func (p Pooling) String() string {
	switch p {
	case MeanPooling:
		return "mean"
	case MaxPooling:
		return "max"
	default:
		return fmt.Sprintf("Pooling(%d)", uint8(p))
	}
}

// Encoder is the document encoder of Eq. 2: Φ_B maps each token to a row of
// a trainable embedding table (the parameters Θ_B), and Φ_P pools the rows
// into the document representation v_p. A fresh encoder is "pre-trained":
// every row is deterministically initialised from a hash of its token's
// surface form, so documents sharing subwords are already close before any
// fine-tuning — the property the frozen SBERT/SciBERT baselines rely on.
//
// The table is stored in float32 (one contiguous Matrix32): serving-path
// encodes pool rows with the float32 kernels, while the trainer pools
// through EncodeTokensRaw64 in float64 so gradient checks keep full
// precision. Rows are initialised from float64 draws rounded once, so the
// table is independent of which path reads it.
type Encoder struct {
	vocab   *Vocab
	tok     *Tokenizer
	Emb     *vec.Matrix32 // token embedding table Θ_B, vocab.Size() x Dim
	Dim     int
	Pooling Pooling
	// Normalize scales document vectors to unit L2 norm after pooling
	// (on by default), keeping L2 distances on the scale the triplet
	// margin c=1 expects, as sentence-encoder practice does.
	Normalize bool
	// idf caches per-token IDF weights used by mean pooling.
	idf []float64
}

// NewEncoder returns a pre-trained encoder of dimension dim over vocabulary
// v. seed varies the hash mixing so independent encoders (e.g. per-dataset)
// are decorrelated while each remains fully deterministic.
func NewEncoder(v *Vocab, dim int, seed int64) *Encoder {
	if dim <= 0 {
		panic(fmt.Sprintf("textenc: non-positive dimension %d", dim))
	}
	e := &Encoder{
		vocab:     v,
		tok:       NewTokenizer(v),
		Emb:       vec.NewMatrix32(v.Size(), dim),
		Dim:       dim,
		Pooling:   MeanPooling,
		Normalize: true,
		idf:       make([]float64, v.Size()),
	}
	for id := 0; id < v.Size(); id++ {
		initTokenRow(e.Emb.Row(id), v.Token(TokenID(id)), seed)
		e.idf[id] = v.IDF(TokenID(id))
	}
	return e
}

// initTokenRow fills a token's pre-trained vector FastText-style: the unit
// mean of deterministic hash vectors of the surface form and its character
// 3- and 4-grams. Morphological variants of one stem therefore start out
// close — the sub-lexical "semantic" knowledge a real pre-trained encoder
// brings, which bag-of-words baselines lack. The accumulation runs in
// float64 and rounds once into the float32 row.
func initTokenRow(row vec.Vec32, token string, seed int64) {
	acc := vec.New(len(row))
	surface := strings.TrimPrefix(token, "##")
	padded := "<" + surface + ">"
	hashInto(acc, token, seed) // the exact form always contributes
	r := []rune(padded)
	tmp := vec.New(len(row))
	for n := 3; n <= 4; n++ {
		for i := 0; i+n <= len(r); i++ {
			hashInto(tmp.Zero(), string(r[i:i+n]), seed)
			acc.Add(tmp)
		}
	}
	acc.Normalize()
	for j := range row {
		row[j] = float32(acc[j])
	}
}

// PretrainDistributional completes the encoder's "pre-training" with a
// random-indexing pass over the corpus: every document gets a deterministic
// signature vector, and each token's row accumulates the IDF-weighted
// signatures of the documents containing it. Tokens with similar document
// distributions — synonyms, topic-mates, dialect variants — end up with
// correlated vectors, the distributional semantics a real pre-trained
// language model brings and that bag-of-words methods lack. The result is
// blended equally with the character-n-gram initialisation and
// renormalised; the blend runs in float64 and rounds once per component.
func PretrainDistributional(e *Encoder, corpus []string) {
	acc := vec.NewMatrix(e.vocab.Size(), e.Dim)
	sig := vec.New(e.Dim)
	seen := map[TokenID]bool{}
	for d, doc := range corpus {
		hashInto(sig, fmt.Sprintf("doc|%d", d), 0x3779B97F4A7C15)
		clear(seen)
		for _, id := range e.tok.Tokenize(doc) {
			if seen[id] {
				continue
			}
			seen[id] = true
			acc.Row(int(id)).Axpy(e.idf[id], sig)
		}
	}
	for id := 0; id < e.vocab.Size(); id++ {
		dist := acc.Row(id)
		if dist.Norm() == 0 {
			continue // token unseen in corpus: keep the n-gram prior
		}
		dist.Normalize()
		row := e.Emb.Row(id)
		blend := row.Float64()
		blend.Scale(0.5).Axpy(0.5, dist).Normalize()
		for j := range row {
			row[j] = float32(blend[j])
		}
	}
}

// SurfaceVector returns the deterministic stem-aware vector of a surface
// form: the same character-n-gram construction the encoder's rows start
// from. Baselines that simulate corpus-trained word embeddings share it so
// that methods differ in how they use structure, not in lexical capability.
func SurfaceVector(dim int, s string, seed int64) vec.Vec32 {
	row := vec.New32(dim)
	initTokenRow(row, s, seed)
	return row
}

// hashInto fills dst with the deterministic Gaussian hash vector of s.
func hashInto(dst vec.Vector, s string, seed int64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ seed))
	sigma := 1 / math.Sqrt(float64(len(dst)))
	for j := range dst {
		dst[j] = rng.NormFloat64() * sigma
	}
}

// Tokenizer returns the encoder's tokenizer.
func (e *Encoder) Tokenizer() *Tokenizer { return e.tok }

// Vocab returns the encoder's vocabulary.
func (e *Encoder) Vocab() *Vocab { return e.vocab }

// Encode maps a document's text to its representation v_p (Eq. 2).
func (e *Encoder) Encode(text string) vec.Vec32 {
	return e.EncodeTokens(e.tok.Tokenize(text))
}

// EncodeTokens pools the embedding rows of ids into a document vector,
// normalised when Normalize is set. An empty token list yields the zero
// vector.
func (e *Encoder) EncodeTokens(ids []TokenID) vec.Vec32 {
	out := e.EncodeTokensRaw(ids)
	if e.Normalize {
		out.Normalize()
	}
	return out
}

// EncodeTokensRaw pools without the final normalisation, entirely in
// float32 — the serving path.
func (e *Encoder) EncodeTokensRaw(ids []TokenID) vec.Vec32 {
	out := vec.New32(e.Dim)
	if len(ids) == 0 {
		return out
	}
	switch e.Pooling {
	case MaxPooling:
		copy(out, e.Emb.Row(int(ids[0])))
		for _, id := range ids[1:] {
			row := e.Emb.Row(int(id))
			for j, x := range row {
				if x > out[j] {
					out[j] = x
				}
			}
		}
	default: // MeanPooling, IDF-weighted
		ws := e.PoolWeights(ids)
		for i, id := range ids {
			out.Axpy(float32(ws[i]), e.Emb.Row(int(id)))
		}
	}
	return out
}

// EncodeTokensRaw64 pools the float32 rows with float64 accumulation and
// no final normalisation — the trainer's forward pass, where the numerical
// gradient check needs more resolution than float32 partial sums give.
func (e *Encoder) EncodeTokensRaw64(ids []TokenID) vec.Vector {
	out := vec.New(e.Dim)
	if len(ids) == 0 {
		return out
	}
	switch e.Pooling {
	case MaxPooling:
		row := e.Emb.Row(int(ids[0]))
		for j, x := range row {
			out[j] = float64(x)
		}
		for _, id := range ids[1:] {
			row := e.Emb.Row(int(id))
			for j, x := range row {
				if float64(x) > out[j] {
					out[j] = float64(x)
				}
			}
		}
	default: // MeanPooling, IDF-weighted
		ws := e.PoolWeights(ids)
		for i, id := range ids {
			vec.AxpyInto64(out, ws[i], e.Emb.Row(int(id)))
		}
	}
	return out
}

// PoolWeights returns the normalised per-token weights mean pooling applies
// to ids — the same coefficients the trainer uses to route the document
// gradient back into individual embedding rows (∂v_p/∂Θ_B rows).
func (e *Encoder) PoolWeights(ids []TokenID) []float64 {
	ws := make([]float64, len(ids))
	var total float64
	for i, id := range ids {
		w := 1.0
		if int(id) < len(e.idf) {
			w = e.idf[id]
		}
		ws[i] = w
		total += w
	}
	if total == 0 {
		total = 1
	}
	for i := range ws {
		ws[i] /= total
	}
	return ws
}

// Clone returns a deep copy of the encoder sharing the vocabulary but with
// an independent embedding table, so fine-tuning one copy leaves the
// pre-trained encoder intact (the "w/o (k,P)-core" ablation needs both).
func (e *Encoder) Clone() *Encoder {
	c := *e
	c.Emb = e.Emb.Clone()
	return &c
}

// NumParameters returns the number of trainable parameters in Θ_B.
func (e *Encoder) NumParameters() int { return len(e.Emb.Data) }

// NewEncoderWithTable builds an encoder over v whose embedding table is
// the given row-major weight data (vocab.Size() x dim) — the restore path
// for a fine-tuned Θ_B saved to disk. The float64 data is rounded into the
// float32 table; a table saved via Emb.Float64() restores bit-identically.
func NewEncoderWithTable(v *Vocab, dim int, data []float64) (*Encoder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("textenc: non-positive dimension %d", dim)
	}
	emb, err := vec.Matrix32FromFloat64(v.Size(), dim, data)
	if err != nil {
		return nil, fmt.Errorf("textenc: table has %d weights, want %d", len(data), v.Size()*dim)
	}
	e := &Encoder{
		vocab:     v,
		tok:       NewTokenizer(v),
		Emb:       emb,
		Dim:       dim,
		Pooling:   MeanPooling,
		Normalize: true,
		idf:       make([]float64, v.Size()),
	}
	for id := 0; id < v.Size(); id++ {
		e.idf[id] = v.IDF(TokenID(id))
	}
	return e, nil
}

// PoolArgmax returns, for each dimension, the position within ids of the
// token whose embedding attains the maximum (ties to the earliest token) —
// the sub-gradient routing max pooling needs. It panics on an empty list.
func (e *Encoder) PoolArgmax(ids []TokenID) []int {
	if len(ids) == 0 {
		panic("textenc: PoolArgmax of no tokens")
	}
	arg := make([]int, e.Dim)
	best := make([]float32, e.Dim)
	copy(best, e.Emb.Row(int(ids[0])))
	for i, id := range ids[1:] {
		row := e.Emb.Row(int(id))
		for j, x := range row {
			if x > best[j] {
				best[j] = x
				arg[j] = i + 1
			}
		}
	}
	return arg
}
