package textenc

import "testing"

// FuzzTokenize asserts the tokenizer's invariants on arbitrary input:
// never panic, never exceed the sequence cap, and only emit ids inside
// the vocabulary.
func FuzzTokenize(f *testing.F) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	tk := NewTokenizer(v)
	for _, seed := range []string{
		"", "community search", "日本語テキスト", "a", "ALL CAPS!!!",
		"mixed123numbers", "\x00\xff binary-ish", "ω≤∞ unicode math",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		ids := tk.Tokenize(text)
		if len(ids) > MaxSequenceLength {
			t.Fatalf("emitted %d tokens, cap %d", len(ids), MaxSequenceLength)
		}
		for _, id := range ids {
			if int(id) < 0 || int(id) >= v.Size() {
				t.Fatalf("token id %d outside vocabulary [0,%d)", id, v.Size())
			}
		}
	})
}

// FuzzEncode asserts the encoder always yields a finite, unit-or-zero
// vector for arbitrary text.
func FuzzEncode(f *testing.F) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 8, 1)
	f.Add("community graphs")
	f.Add("")
	f.Add("☃☃☃")
	f.Fuzz(func(t *testing.T, text string) {
		out := e.Encode(text)
		n := out.Norm()
		if n != n { // NaN
			t.Fatal("NaN norm")
		}
		if n > 1.001 {
			t.Fatalf("norm %v > 1 after normalisation", n)
		}
	})
}
