package textenc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"graph-based kNN  search", []string{"graph", "based", "knn", "search"}},
		{"", nil},
		{"...", nil},
		{"abc123 x", []string{"abc123", "x"}},
	}
	for _, c := range cases {
		got := SplitWords(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitWords(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitWords(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func smallCorpus() []string {
	return []string{
		"community search over large graphs",
		"community detection in heterogeneous graphs",
		"neural network embedding for graphs",
		"expert finding with embedding models",
		"threshold algorithm for top k search",
	}
}

func TestBuildVocabContainsFrequentWords(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{})
	for _, w := range []string{"community", "graphs", "embedding", "search"} {
		if _, ok := v.ID(w); !ok {
			t.Errorf("frequent word %q missing from vocabulary", w)
		}
	}
	if _, ok := v.ID("[UNK]"); !ok {
		t.Error("[UNK] missing")
	}
	if id, _ := v.ID("[UNK]"); id != UnknownToken {
		t.Error("[UNK] is not token 0")
	}
}

func TestIDFOrdersByRarity(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	common, _ := v.ID("graphs")  // appears in 3 docs
	rare, _ := v.ID("threshold") // appears in 1 doc
	if v.IDF(rare) <= v.IDF(common) {
		t.Errorf("IDF(rare)=%v <= IDF(common)=%v", v.IDF(rare), v.IDF(common))
	}
}

func TestTokenizeKnownWholeWord(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	tk := NewTokenizer(v)
	ids := tk.Tokenize("community")
	if len(ids) != 1 {
		t.Fatalf("whole word tokenized into %d pieces", len(ids))
	}
	if v.Token(ids[0]) != "community" {
		t.Errorf("token = %q", v.Token(ids[0]))
	}
}

func TestTokenizeOOVSegmentsIntoPieces(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	tk := NewTokenizer(v)
	// "communities" is OOV but shares the prefix of "community".
	ids := tk.Tokenize("communities")
	if len(ids) == 0 {
		t.Fatal("no tokens for OOV word")
	}
	for _, id := range ids {
		if id == UnknownToken {
			t.Fatalf("OOV word degenerated to [UNK]; pieces=%v", tokens(v, ids))
		}
	}
	first := v.Token(ids[0])
	if strings.HasPrefix(first, "##") {
		t.Errorf("first piece %q must not be a continuation", first)
	}
	for _, id := range ids[1:] {
		if !strings.HasPrefix(v.Token(id), "##") {
			t.Errorf("continuation piece %q lacks ## prefix", v.Token(id))
		}
	}
}

func tokens(v *Vocab, ids []TokenID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Token(id)
	}
	return out
}

func TestTokenizeUnknownAlphabetFallsToUNK(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	tk := NewTokenizer(v)
	ids := tk.Tokenize("日本語")
	if len(ids) != 1 || ids[0] != UnknownToken {
		t.Errorf("unsegmentable word = %v, want [UNK]", tokens(v, ids))
	}
}

func TestTokenizeTruncatesAtMaxSequenceLength(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	tk := NewTokenizer(v)
	long := strings.Repeat("community ", MaxSequenceLength+50)
	ids := tk.Tokenize(long)
	if len(ids) != MaxSequenceLength {
		t.Errorf("len = %d, want %d", len(ids), MaxSequenceLength)
	}
}

func TestEncoderDeterministic(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	e1 := NewEncoder(v, 16, 7)
	e2 := NewEncoder(v, 16, 7)
	a := e1.Encode("community search")
	b := e2.Encode("community search")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoders with the same seed disagree")
		}
	}
	e3 := NewEncoder(v, 16, 8)
	c := e3.Encode("community search")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical encodings")
	}
}

func TestEncodeNormalized(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 16, 7)
	got := e.Encode("community search").Norm()
	if got < 0.999 || got > 1.001 {
		t.Errorf("norm = %v, want 1", got)
	}
	if e.Encode("").Norm() != 0 {
		t.Error("empty text should encode to the zero vector")
	}
}

func TestMorphologicalVariantsCloserThanUnrelated(t *testing.T) {
	// The FastText-style init must place stem variants closer than
	// unrelated words.
	d := 32
	a := SurfaceVector(d, "clustering", 7)
	b := SurfaceVector(d, "clusterization", 7)
	c := SurfaceVector(d, "photosynthesis", 7)
	if a.Cosine(b) <= a.Cosine(c) {
		t.Errorf("cos(variants)=%v <= cos(unrelated)=%v", a.Cosine(b), a.Cosine(c))
	}
}

func TestPretrainDistributionalPullsCooccurringTokens(t *testing.T) {
	// Two words that always co-occur must end up closer than two that
	// never do.
	var corpus []string
	for i := 0; i < 30; i++ {
		corpus = append(corpus, "alphaone betaone filler"+fmt.Sprint(i))
		corpus = append(corpus, "gammaone deltaone filler"+fmt.Sprint(i))
	}
	v := BuildVocab(corpus, VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 32, 7)
	PretrainDistributional(e, corpus)
	id := func(w string) TokenID {
		x, ok := v.ID(w)
		if !ok {
			t.Fatalf("%q missing", w)
		}
		return x
	}
	alpha := e.Emb.Row(int(id("alphaone")))
	beta := e.Emb.Row(int(id("betaone")))
	gamma := e.Emb.Row(int(id("gammaone")))
	if alpha.Cosine(beta) <= alpha.Cosine(gamma) {
		t.Errorf("cooccurring cos=%v <= non-cooccurring cos=%v",
			alpha.Cosine(beta), alpha.Cosine(gamma))
	}
}

func TestPoolingMeanVsMax(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 16, 7)
	ids := e.Tokenizer().Tokenize("community search embedding")
	mean := e.EncodeTokens(ids)
	e.Pooling = MaxPooling
	max := e.EncodeTokens(ids)
	diff := false
	for i := range mean {
		if mean[i] != max[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("mean and max pooling identical")
	}
	if MeanPooling.String() != "mean" || MaxPooling.String() != "max" {
		t.Error("pooling names wrong")
	}
}

func TestPoolWeightsSumToOne(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 8, 7)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		ids := make([]TokenID, n)
		for i := range ids {
			ids[i] = TokenID(r.Intn(v.Size()))
		}
		ws := e.PoolWeights(ids)
		var sum float64
		for _, w := range ws {
			if w < 0 {
				return false
			}
			sum += w
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsolatesTable(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 8, 7)
	c := e.Clone()
	c.Emb.Data[0] += 5
	if e.Emb.Data[0] == c.Emb.Data[0] {
		t.Error("Clone shares the embedding table")
	}
	if e.NumParameters() != v.Size()*8 {
		t.Errorf("NumParameters = %d", e.NumParameters())
	}
}

func TestSimilarTextsCloserThanDissimilar(t *testing.T) {
	corpus := smallCorpus()
	v := BuildVocab(corpus, VocabConfig{MinWordFreq: 1})
	e := NewEncoder(v, 32, 7)
	a := e.Encode("community search over large graphs")
	b := e.Encode("community detection in heterogeneous graphs")
	c := e.Encode("threshold algorithm for top k search")
	if a.L2(b) >= a.L2(c) {
		t.Errorf("similar texts farther apart (%v) than dissimilar (%v)", a.L2(b), a.L2(c))
	}
}
