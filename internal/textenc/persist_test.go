package textenc

import "testing"

func TestVocabRoundTripViaTokens(t *testing.T) {
	orig := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	tokens := make([]string, orig.Size())
	freqs := make([]int, orig.Size())
	for id := 0; id < orig.Size(); id++ {
		tokens[id] = orig.Token(TokenID(id))
		freqs[id] = orig.DocFreq(TokenID(id))
	}
	rt, err := NewVocabFromTokens(tokens, freqs, orig.NumDocs())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Size() != orig.Size() || rt.NumDocs() != orig.NumDocs() {
		t.Fatal("size or doc count changed")
	}
	for id := 0; id < orig.Size(); id++ {
		tid := TokenID(id)
		if rt.Token(tid) != orig.Token(tid) || rt.IDF(tid) != orig.IDF(tid) {
			t.Fatalf("token %d changed after round trip", id)
		}
	}
	// Tokenization must agree.
	a := NewTokenizer(orig).Tokenize("community searching in graphs")
	b := NewTokenizer(rt).Tokenize("community searching in graphs")
	if len(a) != len(b) {
		t.Fatal("tokenization differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tokenization differs")
		}
	}
}

func TestNewVocabFromTokensValidation(t *testing.T) {
	if _, err := NewVocabFromTokens(nil, nil, 0); err == nil {
		t.Error("empty token list accepted")
	}
	if _, err := NewVocabFromTokens([]string{"foo"}, []int{1}, 1); err == nil {
		t.Error("missing [UNK] accepted")
	}
	if _, err := NewVocabFromTokens([]string{"[UNK]", "a", "a"}, []int{0, 1, 1}, 1); err == nil {
		t.Error("duplicate token accepted")
	}
	if _, err := NewVocabFromTokens([]string{"[UNK]", "a"}, []int{0}, 1); err == nil {
		t.Error("freq length mismatch accepted")
	}
}

func TestNewEncoderWithTable(t *testing.T) {
	v := BuildVocab(smallCorpus(), VocabConfig{MinWordFreq: 1})
	orig := NewEncoder(v, 8, 3)
	data := orig.Emb.Float64()
	re, err := NewEncoderWithTable(v, 8, data)
	if err != nil {
		t.Fatal(err)
	}
	a := orig.Encode("community search")
	b := re.Encode("community search")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored encoder disagrees with original")
		}
	}
	if _, err := NewEncoderWithTable(v, 8, data[:10]); err == nil {
		t.Error("short table accepted")
	}
}
