package textenc

import "math"

// MaxSequenceLength mirrors SciBERT's 512-token input limit; longer
// documents are truncated (§III-C).
const MaxSequenceLength = 512

// Tokenizer segments text into vocabulary tokens with greedy
// longest-match-first WordPiece inference.
type Tokenizer struct {
	vocab  *Vocab
	maxLen int
}

// NewTokenizer returns a tokenizer over v that truncates output to
// MaxSequenceLength tokens.
func NewTokenizer(v *Vocab) *Tokenizer {
	return &Tokenizer{vocab: v, maxLen: MaxSequenceLength}
}

// Vocab returns the tokenizer's vocabulary.
func (t *Tokenizer) Vocab() *Vocab { return t.vocab }

// Tokenize splits text into words and segments each word into vocabulary
// tokens: a whole-word token if present, otherwise greedy longest-match
// pieces with "##" continuations, falling back to UnknownToken for
// unsegmentable words. The output is truncated to the maximum sequence
// length.
func (t *Tokenizer) Tokenize(text string) []TokenID {
	var out []TokenID
	for _, w := range SplitWords(text) {
		if len(out) >= t.maxLen {
			break
		}
		out = t.appendWord(out, w)
	}
	if len(out) > t.maxLen {
		out = out[:t.maxLen]
	}
	return out
}

func (t *Tokenizer) appendWord(out []TokenID, w string) []TokenID {
	if id, ok := t.vocab.ID(w); ok {
		return append(out, id)
	}
	r := []rune(w)
	start := 0
	var pieces []TokenID
	for start < len(r) {
		matched := false
		for end := len(r); end > start; end-- {
			cand := string(r[start:end])
			if start > 0 {
				cand = "##" + cand
			}
			if id, ok := t.vocab.ID(cand); ok {
				pieces = append(pieces, id)
				start = end
				matched = true
				break
			}
		}
		if !matched {
			// Unsegmentable word: represent the whole word as [UNK],
			// matching WordPiece behaviour.
			return append(out, UnknownToken)
		}
	}
	return append(out, pieces...)
}

func logIDF(numDocs, df int) float64 {
	return math.Log(1 + float64(numDocs)/float64(1+df))
}
