package textenc

import "math"

// MaxSequenceLength mirrors SciBERT's 512-token input limit; longer
// documents are truncated (§III-C).
const MaxSequenceLength = 512

// Tokenizer segments text into vocabulary tokens with greedy
// longest-match-first WordPiece inference.
type Tokenizer struct {
	vocab  *Vocab
	maxLen int
}

// NewTokenizer returns a tokenizer over v that truncates output to
// MaxSequenceLength tokens.
func NewTokenizer(v *Vocab) *Tokenizer {
	return &Tokenizer{vocab: v, maxLen: MaxSequenceLength}
}

// Vocab returns the tokenizer's vocabulary.
func (t *Tokenizer) Vocab() *Vocab { return t.vocab }

// Tokenize splits text into words and segments each word into vocabulary
// tokens: a whole-word token if present, otherwise greedy longest-match
// pieces with "##" continuations, falling back to UnknownToken for
// unsegmentable words. The output is truncated to the maximum sequence
// length.
func (t *Tokenizer) Tokenize(text string) []TokenID {
	var out []TokenID
	forEachWord(text, func(w string) bool {
		if len(out) >= t.maxLen {
			return false
		}
		out = t.appendWord(out, w)
		return true
	})
	if len(out) > t.maxLen {
		out = out[:t.maxLen]
	}
	return out
}

func (t *Tokenizer) appendWord(out []TokenID, w string) []TokenID {
	if id, ok := t.vocab.ID(w); ok {
		return append(out, id)
	}
	// Greedy longest-match segmentation over rune boundaries. Candidates
	// are substrings of w probed against the whole-word map (first piece)
	// or the bare-continuation map (later pieces, standing in for
	// "##"+piece), so no candidate string is ever built. offs[k] is the
	// byte offset of the k-th rune.
	offs := make([]int, 0, 32)
	for i := range w {
		offs = append(offs, i)
	}
	offs = append(offs, len(w))
	nr := len(offs) - 1
	mark := len(out)
	start := 0
	for start < nr {
		matched := false
		for end := nr; end > start; end-- {
			cand := w[offs[start]:offs[end]]
			var id TokenID
			var ok bool
			if start > 0 {
				id, ok = t.vocab.contID(cand)
			} else {
				id, ok = t.vocab.ID(cand)
			}
			if ok {
				out = append(out, id)
				start = end
				matched = true
				break
			}
		}
		if !matched {
			// Unsegmentable word: represent the whole word as [UNK],
			// matching WordPiece behaviour.
			return append(out[:mark], UnknownToken)
		}
	}
	return out
}

func logIDF(numDocs, df int) float64 {
	return math.Log(1 + float64(numDocs)/float64(1+df))
}
