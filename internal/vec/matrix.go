package vec

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix. Rows are addressable as
// Vectors that share storage with the matrix, which is what the trainer's
// optimiser state relies on to update rows in place.
//
// The hot-path accessors (Row, At, Set) stay panicking-fast — the trainer
// calls them per touched row per step and its indices are loop-derived,
// so a failure there is a programming error. The *Err variants return
// typed errors (*ShapeError, *IndexError) for callers handling untrusted
// shapes, e.g. snapshot restore paths.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape. It panics with a
// *ShapeError on a negative dimension; use NewMatrixErr to recover.
func NewMatrix(rows, cols int) *Matrix {
	m, err := NewMatrixErr(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// NewMatrixErr is NewMatrix returning a typed error instead of
// panicking: a *ShapeError when rows or cols is negative or when
// rows*cols overflows int (a wrapped product would silently allocate
// the wrong size for a huge declared shape, e.g. from a forged
// snapshot). Zero-sized shapes (0xN, Nx0) are valid and yield an empty
// Data slice.
func NewMatrixErr(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 || elemsOverflow(rows, cols) {
		return nil, &ShapeError{Op: "NewMatrix", Rows: rows, Cols: cols}
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// Row returns row i as a Vector sharing storage with m. It panics with a
// *IndexError when i is out of range; use RowErr to recover.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.Rows {
		panic(&IndexError{Op: "Row", I: i, J: -1, Rows: m.Rows, Cols: m.Cols})
	}
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// RowErr is Row returning a typed *IndexError instead of panicking.
func (m *Matrix) RowErr(i int) (Vector, error) {
	if i < 0 || i >= m.Rows {
		return nil, &IndexError{Op: "RowErr", I: i, J: -1, Rows: m.Rows, Cols: m.Cols}
	}
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]), nil
}

// At returns the element at (i, j). Unchecked for speed: out-of-range
// indices fault on the backing slice. Use AtErr to recover.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// AtErr is At with bounds checking, returning a typed *IndexError.
func (m *Matrix) AtErr(i, j int) (float64, error) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return 0, &IndexError{Op: "AtErr", I: i, J: j, Rows: m.Rows, Cols: m.Cols}
	}
	return m.Data[i*m.Cols+j], nil
}

// Set assigns the element at (i, j). Unchecked for speed.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// FillGaussian fills m with N(0, sigma²) samples from rng.
func (m *Matrix) FillGaussian(rng *rand.Rand, sigma float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
}

// MulVec computes y = m * x for a column vector x of length Cols,
// returning a new vector of length Rows.
func (m *Matrix) MulVec(x Vector) Vector {
	if x.Dim() != m.Cols {
		panic(fmt.Sprintf("vec: mulvec dim %d != cols %d", x.Dim(), m.Cols))
	}
	y := New(m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = m.Row(i).Dot(x)
	}
	return y
}
