package vec

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major matrix. Rows are addressable as Vectors that
// share storage with the matrix, which is what the trainer relies on to
// update token-embedding rows in place.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a Vector sharing storage with m.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("vec: row %d out of range [0,%d)", i, m.Rows))
	}
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// FillGaussian fills m with N(0, sigma²) samples from rng.
func (m *Matrix) FillGaussian(rng *rand.Rand, sigma float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
}

// MulVec computes y = m * x for a column vector x of length Cols,
// returning a new vector of length Rows.
func (m *Matrix) MulVec(x Vector) Vector {
	if x.Dim() != m.Cols {
		panic(fmt.Sprintf("vec: mulvec dim %d != cols %d", x.Dim(), m.Cols))
	}
	y := New(m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = m.Row(i).Dot(x)
	}
	return y
}
