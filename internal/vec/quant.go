package vec

// Int8 scalar quantization for candidate scoring: each row of a Matrix32
// is coded independently as 127 levels of a symmetric per-row scale
// (code = round(x/scale), scale = maxAbs/127). The PG-Index scores
// traversal candidates against the codes — 4x less memory traffic than
// float32 rows — and re-ranks its final pool with the exact float32
// kernels, so published rankings never depend on quantized arithmetic.
//
// The error contract, asserted by the property and fuzz suites: the scale
// is either 0 (zero, non-finite, or vanishingly small rows — all coded as
// zero) or a NORMAL float32, and for a nonzero scale
//
//	|x - code*scale| <= scale · (1/2 + 2^-10)   per component
//
// (round-to-nearest half-step plus the rounding of scale and of the
// reciprocal used to divide by it; normality of the scale keeps those
// relative, which is why subnormal scales are flushed to the zero case).
// The int32 dot accumulation is exact: |code| <= 127, so a product is at
// most 16129 and 2^31/16129 ≈ 133k components fit without overflow — far
// beyond any embedding dimensionality here.

// Quantized holds the int8 codes of a row-major matrix plus the per-row
// dequantization state the approximate distance needs.
type Quantized struct {
	Rows, Cols int
	Codes      []int8    // row-major, Rows x Cols
	Scales     []float32 // per-row dequantization scale
	SqNorms    []float32 // per-row squared L2 norm of the dequantized row
}

// Quantize codes every row of m. Rows containing NaN or Inf get scale 0
// and all-zero codes (they cannot be ranked approximately; the exact
// re-rank still sees their true values).
func Quantize(m *Matrix32) *Quantized {
	q := &Quantized{
		Rows:    m.Rows,
		Cols:    m.Cols,
		Codes:   make([]int8, m.Rows*m.Cols),
		Scales:  make([]float32, m.Rows),
		SqNorms: make([]float32, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		q.Scales[i], q.SqNorms[i] = QuantizeRow(q.Codes[i*m.Cols:(i+1)*m.Cols], m.Row(i))
	}
	return q
}

// QuantizeRow codes v into codes (len(codes) must equal len(v)) and
// returns the scale and the squared norm of the dequantized row. A zero
// or non-finite row yields scale 0 and zero codes.
func QuantizeRow(codes []int8, v []float32) (scale, sqNorm float32) {
	if len(codes) != len(v) {
		panic(&ShapeError{Op: "QuantizeRow", Rows: len(codes), Cols: len(v)})
	}
	var maxAbs float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || !IsFinite32(v) {
		for i := range codes {
			codes[i] = 0
		}
		return 0, 0
	}
	const minNormal32 = 0x1p-126
	scale = maxAbs / 127
	if scale < minNormal32 {
		// A subnormal scale rounds with absolute, not relative, error and
		// would void the error contract; every component is below ~1.5e-36,
		// indistinguishable from zero for ranking purposes.
		for i := range codes {
			codes[i] = 0
		}
		return 0, 0
	}
	// maxAbs >= 127·2^-126 here, so the reciprocal cannot overflow.
	inv := 127 / maxAbs
	for i, x := range v {
		codes[i] = roundToInt8(x * inv)
	}
	// The dequantized squared norm via the exact int32 self-dot: codes are
	// small integers, so Σ c² is exact and one float multiply rounds it.
	sqNorm = scale * scale * float32(DotInt8(codes, codes))
	return scale, sqNorm
}

// roundToInt8 rounds to nearest (half away from zero, matching
// math.Round) and clamps to [-127, 127].
func roundToInt8(x float32) int8 {
	var r float32
	if x >= 0 {
		r = x + 0.5
	} else {
		r = x - 0.5
	}
	i := int32(r) // truncation after the half-offset = round half away from zero
	if i > 127 {
		i = 127
	}
	if i < -127 {
		i = -127
	}
	return int8(i)
}

// DotInt8 returns the exact int32 inner product of two code rows, with
// the same four-lane unrolling as Dot32 (integer addition is associative,
// so order is irrelevant here; the shape is kept for throughput).
// It panics if lengths differ.
func DotInt8(a, b []int8) int32 {
	n := len(a)
	if len(b) != n {
		panic(&ShapeError{Op: "DotInt8", Rows: n, Cols: len(b)})
	}
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+8 <= n; i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += int32(aa[0])*int32(bb[0]) + int32(aa[4])*int32(bb[4])
		s1 += int32(aa[1])*int32(bb[1]) + int32(aa[5])*int32(bb[5])
		s2 += int32(aa[2])*int32(bb[2]) + int32(aa[6])*int32(bb[6])
		s3 += int32(aa[3])*int32(bb[3]) + int32(aa[7])*int32(bb[7])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// Row returns row i's codes, sharing storage with q.
func (q *Quantized) Row(i int) []int8 {
	if i < 0 || i >= q.Rows {
		panic(&IndexError{Op: "Row", I: i, J: -1, Rows: q.Rows, Cols: q.Cols})
	}
	return q.Codes[i*q.Cols : (i+1)*q.Cols]
}

// AppendRow quantizes v as a new row, mirroring Matrix32.AppendRow.
func (q *Quantized) AppendRow(v []float32) {
	if len(v) != q.Cols {
		panic(&ShapeError{Op: "AppendRow", Rows: 1, Cols: len(v)})
	}
	codes := make([]int8, q.Cols)
	scale, sq := QuantizeRow(codes, v)
	q.Codes = append(q.Codes, codes...)
	q.Scales = append(q.Scales, scale)
	q.SqNorms = append(q.SqNorms, sq)
	q.Rows++
}

// ApproxL2Sq returns the squared L2 distance between the dequantized row
// i and a dequantized query given by (qCodes, qScale, qSqNorm), via
//
//	‖q̂‖² + ‖r̂‖² − 2·s_q·s_r·<qCodes, rCodes>
//
// with the integer dot exact and three float32 roundings. This is an
// approximation of the true distance only because coding loses precision;
// callers must treat it as a traversal heuristic and re-rank with exact
// kernels before publishing an order.
func (q *Quantized) ApproxL2Sq(i int, qCodes []int8, qScale, qSqNorm float32) float32 {
	d := qSqNorm + q.SqNorms[i] - 2*qScale*q.Scales[i]*float32(DotInt8(qCodes, q.Row(i)))
	if d < 0 {
		d = 0 // rounding can push a near-zero distance slightly negative
	}
	return d
}

// MemoryBytes returns the resident size of the quantized block: one byte
// per code plus the per-row scale and norm.
func (q *Quantized) MemoryBytes() int64 {
	return int64(len(q.Codes)) + int64(len(q.Scales)+len(q.SqNorms))*4
}
