package vec

import (
	"fmt"
	"math"
)

// This file holds the float32 compute kernels behind Vec32 and Matrix32:
// 8-wide unrolled, bounds-check-eliminated inner loops for the distance
// and accumulation primitives every hot path bottoms out in (PG-Index
// search, NNDescent joins, document pooling, gradient accumulation).
//
// Accumulation order is part of each kernel's contract, because float
// addition is not associative and the repo's equivalence guarantees are
// bit-level. The reductions use four independent accumulator lanes:
//
//	lane l (l = 0..3) sums terms  i ≡ l (mod 4)  of the unrolled body,
//	the 8-wide main loop adding the pair (term[i+l] + term[i+l+4]) per
//	step, the 4-wide loop adding term[i+l], and the scalar tail folding
//	the remaining terms into lane 0; the final reduction is
//	(s0+s1) + (s2+s3).
//
// The conformance suite re-implements this order naively and asserts
// bit-equality across every length 0..67, so the unrolling can never
// silently change results.

// Dot32 returns the inner product <a, b> in float32, using the package's
// documented four-lane accumulation order. It panics if lengths differ.
func Dot32(a, b []float32) float32 {
	n := len(a)
	if len(b) != n {
		panic(fmt.Sprintf("vec: dot32 of mismatched dims %d and %d", n, len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += aa[0]*bb[0] + aa[4]*bb[4]
		s1 += aa[1]*bb[1] + aa[5]*bb[5]
		s2 += aa[2]*bb[2] + aa[6]*bb[6]
		s3 += aa[3]*bb[3] + aa[7]*bb[7]
	}
	if i+4 <= n {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		i += 4
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// L2Sq32 returns the squared Euclidean distance between a and b in
// float32, with the same four-lane accumulation order as Dot32. It panics
// if lengths differ.
func L2Sq32(a, b []float32) float32 {
	n := len(a)
	if len(b) != n {
		panic(fmt.Sprintf("vec: l2sq32 of mismatched dims %d and %d", n, len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		d0, d4 := aa[0]-bb[0], aa[4]-bb[4]
		d1, d5 := aa[1]-bb[1], aa[5]-bb[5]
		d2, d6 := aa[2]-bb[2], aa[6]-bb[6]
		d3, d7 := aa[3]-bb[3], aa[7]-bb[7]
		s0 += d0*d0 + d4*d4
		s1 += d1*d1 + d5*d5
		s2 += d2*d2 + d6*d6
		s3 += d3*d3 + d7*d7
	}
	if i+4 <= n {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		d0 := aa[0] - bb[0]
		d1 := aa[1] - bb[1]
		d2 := aa[2] - bb[2]
		d3 := aa[3] - bb[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		i += 4
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// L232 returns the Euclidean distance between a and b: the square root of
// L2Sq32, taken in float64 (exact for any float32 input) and rounded back
// once, so Dist values computed from float32 kernels are reproducible.
func L232(a, b []float32) float64 { return sqrtNonNeg(float64(L2Sq32(a, b))) }

// Norm32 returns the Euclidean norm of a, via Dot32(a, a).
func Norm32(a []float32) float64 { return sqrtNonNeg(float64(Dot32(a, a))) }

// Cosine32 returns the cosine similarity between a and b in [-1, 1],
// with the zero-vector convention of Vector.Cosine (similarity 0).
func Cosine32(a, b []float32) float32 {
	na, nb := Norm32(a), Norm32(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return float32(float64(Dot32(a, b)) / (na * nb))
}

// Axpy32 sets dst = dst + alpha*x element-wise. Every element is updated
// independently, so no accumulation-order caveat applies. It panics if
// lengths differ.
func Axpy32(dst []float32, alpha float32, x []float32) {
	n := len(dst)
	if len(x) != n {
		panic(fmt.Sprintf("vec: axpy32 of mismatched dims %d and %d", n, len(x)))
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		dd := dst[i : i+8 : i+8]
		xx := x[i : i+8 : i+8]
		dd[0] += alpha * xx[0]
		dd[1] += alpha * xx[1]
		dd[2] += alpha * xx[2]
		dd[3] += alpha * xx[3]
		dd[4] += alpha * xx[4]
		dd[5] += alpha * xx[5]
		dd[6] += alpha * xx[6]
		dd[7] += alpha * xx[7]
	}
	for ; i < n; i++ {
		dst[i] += alpha * x[i]
	}
}

// AxpyInto64 sets dst = dst + alpha*x with float64 accumulation over
// float32 inputs — the mixed-precision primitive the trainer pools with,
// so gradient checks keep float64 resolution while the table stays
// float32. Element-wise; panics if lengths differ.
func AxpyInto64(dst []float64, alpha float64, x []float32) {
	n := len(dst)
	if len(x) != n {
		panic(fmt.Sprintf("vec: axpyinto64 of mismatched dims %d and %d", n, len(x)))
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		dd := dst[i : i+8 : i+8]
		xx := x[i : i+8 : i+8]
		dd[0] += alpha * float64(xx[0])
		dd[1] += alpha * float64(xx[1])
		dd[2] += alpha * float64(xx[2])
		dd[3] += alpha * float64(xx[3])
		dd[4] += alpha * float64(xx[4])
		dd[5] += alpha * float64(xx[5])
		dd[6] += alpha * float64(xx[6])
		dd[7] += alpha * float64(xx[7])
	}
	for ; i < n; i++ {
		dst[i] += alpha * float64(x[i])
	}
}

// Scale32 sets dst = alpha*dst element-wise.
func Scale32(dst []float32, alpha float32) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// sqrtNonNeg is the clamped square root shared by the distance helpers:
// tiny negative rounding artefacts map to 0 instead of NaN.
func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
