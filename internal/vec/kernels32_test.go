package vec

import (
	"math"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------------
// Reference implementations.
//
// laneDot32 / laneL2Sq32 re-implement the kernels' DOCUMENTED four-lane
// accumulation order with plain nested loops — the conformance contract is
// bit-equality against these for every length, so the unrolled bodies can
// never silently change results. naiveDot32 / naiveL2Sq32 are the
// straight sequential sums; kernels must agree with them to within float32
// accumulation reordering (checked via a float64 shadow bound).
// ---------------------------------------------------------------------------

func laneDot32(a, b []float32) float32 {
	var s [4]float32
	n := len(a)
	i := 0
	for ; i+8 <= n; i += 8 {
		for l := 0; l < 4; l++ {
			s[l] += a[i+l]*b[i+l] + a[i+l+4]*b[i+l+4]
		}
	}
	if i+4 <= n {
		for l := 0; l < 4; l++ {
			s[l] += a[i+l] * b[i+l]
		}
		i += 4
	}
	for ; i < n; i++ {
		s[0] += a[i] * b[i]
	}
	return (s[0] + s[1]) + (s[2] + s[3])
}

func laneL2Sq32(a, b []float32) float32 {
	var s [4]float32
	n := len(a)
	i := 0
	for ; i+8 <= n; i += 8 {
		for l := 0; l < 4; l++ {
			d0 := a[i+l] - b[i+l]
			d4 := a[i+l+4] - b[i+l+4]
			s[l] += d0*d0 + d4*d4
		}
	}
	if i+4 <= n {
		for l := 0; l < 4; l++ {
			d := a[i+l] - b[i+l]
			s[l] += d * d
		}
		i += 4
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s[0] += d * d
	}
	return (s[0] + s[1]) + (s[2] + s[3])
}

func naiveDot32(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveL2Sq32(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// shadowDot64 computes the dot in float64, the "true" value accumulation
// reorderings must stay near.
func shadowDot64(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func randSlice32(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// bitsEq compares float32s bitwise, treating any two NaNs as equal (NaN
// payload bits are platform noise, not semantics).
func bitsEq(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

// TestKernelConformanceAllLengths is the core conformance sweep: every
// kernel against its order-exact lane reference, bit for bit, across
// lengths 0..67 — covering the empty case, pure-tail lengths, the 4-wide
// mid block, and every 8-wide remainder class at least four times.
func TestKernelConformanceAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 8; trial++ {
			a := randSlice32(rng, n)
			b := randSlice32(rng, n)

			if got, want := Dot32(a, b), laneDot32(a, b); !bitsEq(got, want) {
				t.Fatalf("Dot32 len=%d trial=%d: kernel %x, lane reference %x",
					n, trial, math.Float32bits(got), math.Float32bits(want))
			}
			if got, want := L2Sq32(a, b), laneL2Sq32(a, b); !bitsEq(got, want) {
				t.Fatalf("L2Sq32 len=%d trial=%d: kernel %x, lane reference %x",
					n, trial, math.Float32bits(got), math.Float32bits(want))
			}

			// Axpy32 is element-wise: bit-exact against the naive loop.
			alpha := float32(rng.NormFloat64())
			gotDst := append([]float32(nil), a...)
			wantDst := append([]float32(nil), a...)
			Axpy32(gotDst, alpha, b)
			for i := range wantDst {
				wantDst[i] += alpha * b[i]
			}
			for i := range gotDst {
				if !bitsEq(gotDst[i], wantDst[i]) {
					t.Fatalf("Axpy32 len=%d trial=%d elem=%d: kernel %x, naive %x",
						n, trial, i, math.Float32bits(gotDst[i]), math.Float32bits(wantDst[i]))
				}
			}

			// AxpyInto64 likewise, in float64.
			alpha64 := rng.NormFloat64()
			got64 := make([]float64, n)
			want64 := make([]float64, n)
			AxpyInto64(got64, alpha64, b)
			for i := range want64 {
				want64[i] += alpha64 * float64(b[i])
			}
			for i := range got64 {
				if math.Float64bits(got64[i]) != math.Float64bits(want64[i]) {
					t.Fatalf("AxpyInto64 len=%d trial=%d elem=%d: kernel %x, naive %x",
						n, trial, i, math.Float64bits(got64[i]), math.Float64bits(want64[i]))
				}
			}
		}
	}
}

// TestKernelNearNaiveAccumulation bounds the reordering drift: kernel and
// naive sequential sums must both sit within a small multiple of the
// float64 shadow value's rounding envelope. This is the "within 1 ULP
// accumulation order" clause made operational — the kernels differ from
// the naive loop only by summation order, never by magnitude.
func TestKernelNearNaiveAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 67; n++ {
		for trial := 0; trial < 4; trial++ {
			a := randSlice32(rng, n)
			b := randSlice32(rng, n)
			shadow := shadowDot64(a, b)
			// Each float32 add/mul rounds at 2^-24 relative; n terms give a
			// linear envelope around the true value.
			var mag float64
			for i := range a {
				mag += math.Abs(float64(a[i]) * float64(b[i]))
			}
			tol := float64(n+2) * mag / (1 << 24)
			if d := math.Abs(float64(Dot32(a, b)) - shadow); d > tol {
				t.Fatalf("Dot32 len=%d: |kernel-shadow| = %g > %g", n, d, tol)
			}
			if d := math.Abs(float64(naiveDot32(a, b)) - shadow); d > tol {
				t.Fatalf("naive len=%d: |naive-shadow| = %g > %g", n, d, tol)
			}
			if d := math.Abs(float64(naiveL2Sq32(a, b)) - float64(L2Sq32(a, b))); d > 4*tol {
				t.Fatalf("L2Sq32 len=%d: naive vs kernel drift %g > %g", n, d, 4*tol)
			}
		}
	}
}

// TestKernelSpecialValues feeds NaN, ±Inf and denormal inputs through the
// kernels: results must match the lane reference bitwise (NaNs compare
// equal as a class), i.e. special values propagate exactly as the
// documented accumulation order dictates — never silently flushed.
func TestKernelSpecialValues(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	den := math.Float32frombits(1)             // smallest positive denormal
	denBig := math.Float32frombits(0x007fffff) // largest denormal

	cases := []struct {
		name string
		a, b []float32
	}{
		{"nan-front", []float32{nan, 1, 2, 3, 4, 5, 6, 7, 8}, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"nan-tail", []float32{1, 2, 3, 4, 5, 6, 7, 8, nan}, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"posinf", []float32{inf, 1, 2}, []float32{1, 1, 1}},
		{"neginf", []float32{float32(math.Inf(-1)), 1, 2, 3, 4}, []float32{2, 1, 1, 1, 1}},
		{"inf-cancel", []float32{inf, inf}, []float32{1, -1}}, // Inf + (-Inf) → NaN
		{"denormal", []float32{den, denBig, den, den, den, den, den, den, den, den}, []float32{den, den, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"denormal-mix", []float32{denBig, 1e-30, denBig, 1}, []float32{denBig, denBig, 1, denBig}},
	}
	for _, c := range cases {
		if got, want := Dot32(c.a, c.b), laneDot32(c.a, c.b); !bitsEq(got, want) {
			t.Errorf("%s: Dot32 %x, lane reference %x", c.name, math.Float32bits(got), math.Float32bits(want))
		}
		if got, want := L2Sq32(c.a, c.b), laneL2Sq32(c.a, c.b); !bitsEq(got, want) {
			t.Errorf("%s: L2Sq32 %x, lane reference %x", c.name, math.Float32bits(got), math.Float32bits(want))
		}
	}

	// NaN anywhere must surface as NaN in the reduction, whatever the lane.
	for pos := 0; pos < 17; pos++ {
		a := make([]float32, 17)
		b := make([]float32, 17)
		for i := range a {
			a[i], b[i] = 1, 1
		}
		a[pos] = nan
		if !math.IsNaN(float64(Dot32(a, b))) {
			t.Errorf("Dot32 lost NaN at position %d", pos)
		}
		if !math.IsNaN(float64(L2Sq32(a, b))) {
			t.Errorf("L2Sq32 lost NaN at position %d", pos)
		}
	}
}

// TestKernelKnownValues pins simple closed-form results.
func TestKernelKnownValues(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if got := Dot32(a, b); got != 12 {
		t.Errorf("Dot32 = %v, want 12", got)
	}
	if got := L2Sq32([]float32{0, 0}, []float32{3, 4}); got != 25 {
		t.Errorf("L2Sq32 = %v, want 25", got)
	}
	if got := L232([]float32{0, 0}, []float32{3, 4}); got != 5 {
		t.Errorf("L232 = %v, want 5", got)
	}
	if got := Norm32([]float32{3, 4}); got != 5 {
		t.Errorf("Norm32 = %v, want 5", got)
	}
	if got := Cosine32([]float32{1, 0}, []float32{0, 1}); got != 0 {
		t.Errorf("orthogonal Cosine32 = %v, want 0", got)
	}
	if got := Cosine32([]float32{1, 0}, []float32{2, 0}); got != 1 {
		t.Errorf("parallel Cosine32 = %v, want 1", got)
	}
	if got := Cosine32([]float32{1, 0}, []float32{0, 0}); got != 0 {
		t.Errorf("zero-vector Cosine32 = %v, want 0", got)
	}
}

// TestKernelDimMismatchPanics pins the panic contract of every kernel.
func TestKernelDimMismatchPanics(t *testing.T) {
	cases := map[string]func(){
		"Dot32":      func() { Dot32([]float32{1}, []float32{1, 2}) },
		"L2Sq32":     func() { L2Sq32([]float32{1, 2}, []float32{1}) },
		"Axpy32":     func() { Axpy32([]float32{1}, 1, []float32{1, 2}) },
		"AxpyInto64": func() { AxpyInto64([]float64{1}, 1, []float32{1, 2}) },
		"DotInt8":    func() { DotInt8([]int8{1}, []int8{1, 2}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on mismatched dims did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestVec32MirrorsVector checks the Vec32 convenience methods against
// their float64 counterparts' semantics and the conversion round trip.
func TestVec32MirrorsVector(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v64 := randVec(rng, 13)
	v32 := ToVec32(v64)
	back := v32.Float64()
	for i := range v32 {
		if float32(back[i]) != v32[i] {
			t.Fatalf("Float64 round trip changed component %d", i)
		}
	}

	a, b := randSlice32(rng, 13), randSlice32(rng, 13)
	if got, want := Vec32(a).Dot(Vec32(b)), Dot32(a, b); !bitsEq(got, want) {
		t.Error("Vec32.Dot disagrees with Dot32")
	}
	if got, want := Vec32(a).L2Sq(Vec32(b)), L2Sq32(a, b); !bitsEq(got, want) {
		t.Error("Vec32.L2Sq disagrees with L2Sq32")
	}

	n := Vec32(a).Clone().Normalize()
	if math.Abs(n.Norm()-1) > 1e-6 {
		t.Errorf("normalized norm = %v, want 1", n.Norm())
	}
	z := New32(4)
	z.Normalize()
	for _, x := range z {
		if x != 0 {
			t.Error("zero-vector Normalize changed components")
		}
	}

	m := Mean32([]Vec32{{1, 5}, {3, 1}})
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean32 = %v, want [2 3]", m)
	}
	x := Max32([]Vec32{{1, 5}, {3, 1}})
	if x[0] != 3 || x[1] != 5 {
		t.Errorf("Max32 = %v, want [3 5]", x)
	}
}
