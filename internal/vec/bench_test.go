package vec

import (
	"math/rand"
	"testing"
)

var (
	sinkF32 float32
	sinkF64 float64
	sinkI32 int32
)

func benchVecs(n int) (Vector, Vector, []float32, []float32, []int8, []int8) {
	rng := rand.New(rand.NewSource(int64(n)))
	a64, b64 := New(n), New(n)
	a32, b32 := make([]float32, n), make([]float32, n)
	ai, bi := make([]int8, n), make([]int8, n)
	for i := 0; i < n; i++ {
		a64[i], b64[i] = rng.NormFloat64(), rng.NormFloat64()
		a32[i], b32[i] = float32(a64[i]), float32(b64[i])
		ai[i], bi[i] = int8(rng.Intn(255)-127), int8(rng.Intn(255)-127)
	}
	return a64, b64, a32, b32, ai, bi
}

func benchSizes(b *testing.B, f func(b *testing.B, n int)) {
	for _, n := range []int{64, 128, 256} {
		b.Run(map[int]string{64: "64", 128: "128", 256: "256"}[n], func(b *testing.B) { f(b, n) })
	}
}

func BenchmarkDot64(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		a64, b64, _, _, _, _ := benchVecs(n)
		b.SetBytes(int64(2 * 8 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkF64 = a64.Dot(b64)
		}
	})
}

func BenchmarkDot32(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		_, _, a32, b32, _, _ := benchVecs(n)
		b.SetBytes(int64(2 * 4 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkF32 = Dot32(a32, b32)
		}
	})
}

func BenchmarkDotInt8(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		_, _, _, _, ai, bi := benchVecs(n)
		b.SetBytes(int64(2 * 1 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkI32 = DotInt8(ai, bi)
		}
	})
}

func BenchmarkL2Sq32(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		_, _, a32, b32, _, _ := benchVecs(n)
		b.SetBytes(int64(2 * 4 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkF32 = L2Sq32(a32, b32)
		}
	})
}

func BenchmarkAxpy32(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		_, _, a32, b32, _, _ := benchVecs(n)
		dst := append([]float32(nil), a32...)
		b.SetBytes(int64(3 * 4 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Axpy32(dst, 0.5, b32)
		}
	})
}
