package vec

import (
	"errors"
	"testing"
)

// TestMatrixEdgeShapes is the satellite-4 table: zero-sized shapes are
// valid, negative shapes return (or panic with) typed errors, and the
// checked accessors return *IndexError where the fast ones panic.
func TestMatrixEdgeShapes(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		wantErr    bool
	}{
		{"0xN", 0, 5, false},
		{"Nx0", 5, 0, false},
		{"0x0", 0, 0, false},
		{"neg-rows", -1, 4, true},
		{"neg-cols", 4, -1, true},
		{"neg-both", -2, -3, true},
		{"normal", 3, 4, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m64, err64 := NewMatrixErr(c.rows, c.cols)
			m32, err32 := NewMatrix32Err(c.rows, c.cols)
			if c.wantErr {
				var se *ShapeError
				if !errors.As(err64, &se) {
					t.Fatalf("NewMatrixErr(%d,%d) err = %v, want *ShapeError", c.rows, c.cols, err64)
				}
				if se.Rows != c.rows || se.Cols != c.cols {
					t.Errorf("ShapeError carries %dx%d, want %dx%d", se.Rows, se.Cols, c.rows, c.cols)
				}
				if !errors.As(err32, &se) {
					t.Fatalf("NewMatrix32Err(%d,%d) err = %v, want *ShapeError", c.rows, c.cols, err32)
				}
				// The panicking constructors must panic with the same type.
				for name, f := range map[string]func(){
					"NewMatrix":   func() { NewMatrix(c.rows, c.cols) },
					"NewMatrix32": func() { NewMatrix32(c.rows, c.cols) },
				} {
					func() {
						defer func() {
							if _, ok := recover().(*ShapeError); !ok {
								t.Errorf("%s(%d,%d) did not panic with *ShapeError", name, c.rows, c.cols)
							}
						}()
						f()
					}()
				}
				return
			}
			if err64 != nil || err32 != nil {
				t.Fatalf("errors on valid shape: %v, %v", err64, err32)
			}
			if m64.Rows != c.rows || m64.Cols != c.cols || len(m64.Data) != c.rows*c.cols {
				t.Errorf("Matrix shape %dx%d data %d", m64.Rows, m64.Cols, len(m64.Data))
			}
			if m32.Rows != c.rows || m32.Cols != c.cols || len(m32.Data) != c.rows*c.cols {
				t.Errorf("Matrix32 shape %dx%d data %d", m32.Rows, m32.Cols, len(m32.Data))
			}
			// Row access on a 0xN matrix must fail cleanly, not slice-fault.
			if c.rows == 0 {
				if _, err := m64.RowErr(0); err == nil {
					t.Error("RowErr(0) on empty matrix returned nil error")
				}
				if _, err := m32.RowErr(0); err == nil {
					t.Error("Matrix32.RowErr(0) on empty matrix returned nil error")
				}
			}
		})
	}
}

func TestMatrixTypedAccessErrors(t *testing.T) {
	m64 := NewMatrix(2, 3)
	m32 := NewMatrix32(2, 3)

	for _, i := range []int{-1, 2, 100} {
		if _, err := m64.RowErr(i); err == nil {
			t.Errorf("RowErr(%d) = nil error", i)
		} else {
			var ie *IndexError
			if !errors.As(err, &ie) || ie.I != i || ie.J != -1 || ie.Rows != 2 {
				t.Errorf("RowErr(%d) error %v lacks index context", i, err)
			}
		}
		if _, err := m32.RowErr(i); err == nil {
			t.Errorf("Matrix32.RowErr(%d) = nil error", i)
		}
	}

	if _, err := m64.AtErr(0, 3); err == nil {
		t.Error("AtErr(0,3) = nil error")
	} else {
		var ie *IndexError
		if !errors.As(err, &ie) || ie.I != 0 || ie.J != 3 {
			t.Errorf("AtErr error %v lacks element context", err)
		}
	}
	if v, err := m64.AtErr(1, 2); err != nil || v != 0 {
		t.Errorf("AtErr(1,2) = %v, %v", v, err)
	}
	if _, err := m32.AtErr(-1, 0); err == nil {
		t.Error("Matrix32.AtErr(-1,0) = nil error")
	}
	if v, err := m32.AtErr(1, 2); err != nil || v != 0 {
		t.Errorf("Matrix32.AtErr(1,2) = %v, %v", v, err)
	}

	// Fast accessors panic with *IndexError.
	for name, f := range map[string]func(){
		"Matrix.Row":   func() { m64.Row(5) },
		"Matrix32.Row": func() { m32.Row(5) },
	} {
		func() {
			defer func() {
				if _, ok := recover().(*IndexError); !ok {
					t.Errorf("%s(5) did not panic with *IndexError", name)
				}
			}()
			f()
		}()
	}
}

func TestMatrix32AppendRowAndConvert(t *testing.T) {
	m := NewMatrix32(0, 3)
	m.AppendRow([]float32{1, 2, 3})
	m.AppendRow([]float32{4, 5, 6})
	if m.Rows != 2 || m.At(1, 2) != 6 {
		t.Fatalf("AppendRow built %dx%d with At(1,2)=%v", m.Rows, m.Cols, m.At(1, 2))
	}
	func() {
		defer func() {
			if _, ok := recover().(*ShapeError); !ok {
				t.Error("AppendRow with wrong width did not panic with *ShapeError")
			}
		}()
		m.AppendRow([]float32{1})
	}()

	// Round trip through the float64 persistence format is bit-exact.
	back, err := Matrix32FromFloat64(m.Rows, m.Cols, m.Float64())
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatalf("round trip changed element %d", i)
		}
	}
	if _, err := Matrix32FromFloat64(2, 2, []float64{1}); err == nil {
		t.Error("Matrix32FromFloat64 with short data returned nil error")
	}
	if _, err := Matrix32FromFloat64(-1, 2, nil); err == nil {
		t.Error("Matrix32FromFloat64 with negative rows returned nil error")
	}

	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}
