package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naiveDotInt8 is the sequential integer reference for DotInt8.
func naiveDotInt8(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

func TestDotInt8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 67; n++ {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := 0; i < n; i++ {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		if got, want := DotInt8(a, b), naiveDotInt8(a, b); got != want {
			t.Fatalf("DotInt8 len=%d: kernel %d, reference %d", n, got, want)
		}
	}
	// Extremes: all +-127 at the overflow-relevant lengths.
	for _, n := range []int{1, 7, 64, 4096} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i], b[i] = 127, -127
		}
		want := int32(n) * -127 * 127
		if got := DotInt8(a, b); got != want {
			t.Fatalf("DotInt8 extremes len=%d: %d, want %d", n, got, want)
		}
	}
}

// TestQuantizeRoundTripError asserts the per-component error contract:
// |x - code*scale| <= scale/2·(1+ε) for finite rows with a representable
// scale, and exact zero codes for zero/non-finite/underflowing rows.
func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	check := func(v []float32) {
		t.Helper()
		codes := make([]int8, len(v))
		scale, sqNorm := QuantizeRow(codes, v)
		if scale == 0 {
			for i, c := range codes {
				if c != 0 {
					t.Fatalf("scale 0 but code[%d] = %d", i, c)
				}
			}
			if sqNorm != 0 {
				t.Fatalf("scale 0 but sqNorm = %v", sqNorm)
			}
			return
		}
		// The documented contract: half-step of rounding to integer plus
		// the relative roundings of scale and its reciprocal.
		bound := float64(scale) * (0.5 + 1.0/1024)
		for i, x := range v {
			deq := float64(codes[i]) * float64(scale)
			if err := math.Abs(float64(x) - deq); err > bound {
				t.Fatalf("component %d: |%g - %g| = %g > %g (scale %g)", i, x, deq, err, bound, scale)
			}
		}
		// sqNorm must equal scale² · Σ codes² with the documented roundings.
		want := scale * scale * float32(naiveDotInt8(codes, codes))
		if math.Float32bits(sqNorm) != math.Float32bits(want) {
			t.Fatalf("sqNorm %x, want %x", math.Float32bits(sqNorm), math.Float32bits(want))
		}
	}

	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(70)
		v := make([]float32, n)
		mag := math.Pow(10, rng.Float64()*20-10) // magnitudes 1e-10 .. 1e10
		for i := range v {
			v[i] = float32(rng.NormFloat64() * mag)
		}
		check(v)
	}

	// Edge rows.
	den := math.Float32frombits(1)
	check([]float32{})
	check([]float32{0, 0, 0})
	check([]float32{den, den, -den})                    // scale underflows to 0
	check([]float32{1e-40, -1e-40, 5e-41})              // denormal maxAbs → subnormal scale → 0
	check([]float32{4.26e-43, 0, 0})                    // subnormal-scale regression (fuzz find)
	check([]float32{2e-36, -1e-36})                     // just above the flush threshold
	check([]float32{float32(math.NaN()), 1, 2})         // non-finite → zero codes
	check([]float32{float32(math.Inf(1)), 1})           // non-finite → zero codes
	check([]float32{math.MaxFloat32, -math.MaxFloat32}) // extreme magnitude
	check([]float32{1})                                 // single component: code must be ±127
}

// TestQuantizedApproxL2Sq checks that the approximate distance matches the
// dequantized exact distance (the identity it implements) and that it is
// within the analytic quantization envelope of the true distance — the
// "recall before re-rank" half of the contract.
func TestQuantizedApproxL2Sq(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim = 48
	m := NewMatrix32(32, dim)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	q := Quantize(m)

	qv := randSlice32(rng, dim)
	qCodes := make([]int8, dim)
	qScale, qSqNorm := QuantizeRow(qCodes, qv)

	for i := 0; i < m.Rows; i++ {
		approx := q.ApproxL2Sq(i, qCodes, qScale, qSqNorm)

		// Identity check: distance between the dequantized vectors.
		deqRow := make([]float32, dim)
		deqQ := make([]float32, dim)
		for j := 0; j < dim; j++ {
			deqRow[j] = float32(q.Row(i)[j]) * q.Scales[i]
			deqQ[j] = float32(qCodes[j]) * qScale
		}
		var exactDeq float64
		for j := 0; j < dim; j++ {
			d := float64(deqQ[j]) - float64(deqRow[j])
			exactDeq += d * d
		}
		if math.Abs(float64(approx)-exactDeq) > 1e-3*(1+exactDeq) {
			t.Fatalf("row %d: approx %v vs dequantized-exact %v", i, approx, exactDeq)
		}

		// Envelope vs. the true float32 distance: per-component error is at
		// most scale_q/2 + scale_r/2, so the L2 distance moves by at most
		// sqrt(dim)·(scale_q+scale_r)/2.
		truth := float64(L2Sq32(qv, m.Row(i)))
		slack := math.Sqrt(dim) * float64(qScale+q.Scales[i]) / 2
		dTrue, dApprox := math.Sqrt(truth), math.Sqrt(float64(approx))
		if math.Abs(dTrue-dApprox) > slack*(1+1e-3) {
			t.Fatalf("row %d: |sqrt distances| drift %g > envelope %g", i, math.Abs(dTrue-dApprox), slack)
		}
	}
}

// TestQuantizedTopKRerankExact is the quantization-error property the
// index relies on: rank candidates by approximate distance, keep a pool a
// bit larger than k, re-rank the pool with exact kernels — the result must
// equal the exact top-k whenever the pool caught every true member. With a
// generous pool this holds for well-spread Gaussian data; the test also
// verifies the pool actually did catch them (recall == 1 at pool size),
// so a quantization regression shows up as a recall failure, not flake.
func TestQuantizedTopKRerankExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const (
		rows = 400
		dim  = 32
		k    = 10
		pool = 80
	)
	m := NewMatrix32(rows, dim)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	q := Quantize(m)

	for trial := 0; trial < 20; trial++ {
		qv := randSlice32(rng, dim)
		qCodes := make([]int8, dim)
		qScale, qSqNorm := QuantizeRow(qCodes, qv)

		type cand struct {
			id   int
			dist float64
		}
		exact := make([]cand, rows)
		approx := make([]cand, rows)
		for i := 0; i < rows; i++ {
			exact[i] = cand{i, float64(L2Sq32(qv, m.Row(i)))}
			approx[i] = cand{i, float64(q.ApproxL2Sq(i, qCodes, qScale, qSqNorm))}
		}
		byDist := func(s []cand) func(a, b int) bool {
			return func(a, b int) bool {
				if s[a].dist != s[b].dist {
					return s[a].dist < s[b].dist
				}
				return s[a].id < s[b].id
			}
		}
		sort.Slice(exact, byDist(exact))
		sort.Slice(approx, byDist(approx))

		// Recall of the true top-k within the approximate pool.
		inPool := map[int]bool{}
		for _, c := range approx[:pool] {
			inPool[c.id] = true
		}
		for _, c := range exact[:k] {
			if !inPool[c.id] {
				t.Fatalf("trial %d: true top-%d member %d missing from approx pool of %d", trial, k, c.id, pool)
			}
		}

		// Exact re-rank of the pool reproduces the exact top-k, IDs and
		// distances bit for bit.
		rerank := make([]cand, 0, pool)
		for _, c := range approx[:pool] {
			rerank = append(rerank, cand{c.id, float64(L2Sq32(qv, m.Row(c.id)))})
		}
		sort.Slice(rerank, byDist(rerank))
		for i := 0; i < k; i++ {
			if rerank[i].id != exact[i].id ||
				math.Float64bits(rerank[i].dist) != math.Float64bits(exact[i].dist) {
				t.Fatalf("trial %d rank %d: rerank (%d,%x) != exact (%d,%x)", trial, i,
					rerank[i].id, math.Float64bits(rerank[i].dist),
					exact[i].id, math.Float64bits(exact[i].dist))
			}
		}
	}
}

func TestQuantizedAppendRowMatchesQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 24
	m := NewMatrix32(0, dim)
	q := &Quantized{Cols: dim}
	for i := 0; i < 10; i++ {
		v := randSlice32(rng, dim)
		m.AppendRow(v)
		q.AppendRow(v)
	}
	full := Quantize(m)
	if len(full.Codes) != len(q.Codes) || full.Rows != q.Rows {
		t.Fatalf("shape mismatch: incremental %dx%d, batch %dx%d", q.Rows, q.Cols, full.Rows, full.Cols)
	}
	for i := range full.Codes {
		if full.Codes[i] != q.Codes[i] {
			t.Fatalf("code %d: incremental %d, batch %d", i, q.Codes[i], full.Codes[i])
		}
	}
	for i := range full.Scales {
		if math.Float32bits(full.Scales[i]) != math.Float32bits(q.Scales[i]) ||
			math.Float32bits(full.SqNorms[i]) != math.Float32bits(q.SqNorms[i]) {
			t.Fatalf("row %d scale/norm mismatch", i)
		}
	}
	if q.MemoryBytes() != int64(10*dim)+int64(2*10)*4 {
		t.Errorf("MemoryBytes = %d", q.MemoryBytes())
	}
}
