package vec

import (
	"fmt"
	"math"
)

// Vec32 is a dense float32 vector — the storage type of document
// representations throughout the online system. It mirrors Vector's
// method set on top of the unrolled kernels of kernels32.go; callers may
// index and slice a Vec32 directly, exactly as with Vector.
type Vec32 []float32

// New32 returns a zero float32 vector of dimension d.
func New32(d int) Vec32 { return make(Vec32, d) }

// ToVec32 converts a float64 vector to float32, rounding each component
// once (round-to-nearest-even).
func ToVec32(v Vector) Vec32 {
	out := make(Vec32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Float64 converts v to a float64 Vector. Every float32 value is exactly
// representable in float64, so the conversion is lossless and
// ToVec32(v.Float64()) reproduces v bit for bit.
func (v Vec32) Float64() Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// Clone returns a deep copy of v.
func (v Vec32) Clone() Vec32 {
	c := make(Vec32, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vec32) Dim() int { return len(v) }

// Dot returns the inner product <v, w> (kernel accumulation order; see
// kernels32.go). It panics if dimensions differ.
func (v Vec32) Dot(w Vec32) float32 { return Dot32(v, w) }

// Norm returns the Euclidean norm of v as float64.
func (v Vec32) Norm() float64 { return Norm32(v) }

// L2 returns the Euclidean distance between v and w as float64.
func (v Vec32) L2(w Vec32) float64 { return L232(v, w) }

// L2Sq returns the squared Euclidean distance between v and w.
func (v Vec32) L2Sq(w Vec32) float32 { return L2Sq32(v, w) }

// Cosine returns the cosine similarity between v and w, in [-1, 1].
// Zero vectors have similarity 0 by convention.
func (v Vec32) Cosine(w Vec32) float32 { return Cosine32(v, w) }

// Add sets v = v + w in place and returns v.
func (v Vec32) Add(w Vec32) Vec32 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: add of mismatched dims %d and %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub sets v = v - w in place and returns v.
func (v Vec32) Sub(w Vec32) Vec32 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: sub of mismatched dims %d and %d", len(v), len(w)))
	}
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale sets v = a*v in place and returns v.
func (v Vec32) Scale(a float32) Vec32 {
	Scale32(v, a)
	return v
}

// Axpy sets v = v + a*w in place and returns v.
func (v Vec32) Axpy(a float32, w Vec32) Vec32 {
	Axpy32(v, a, w)
	return v
}

// Normalize scales v to unit L2 norm in place and returns v. A zero
// vector is left unchanged. The reciprocal norm is formed in float64 and
// rounded once, matching Vector.Normalize's structure.
func (v Vec32) Normalize() Vec32 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(float32(1 / n))
}

// Zero resets every component of v to 0 and returns v.
func (v Vec32) Zero() Vec32 {
	for i := range v {
		v[i] = 0
	}
	return v
}

// Mean32 returns the component-wise mean of vs, accumulated in float64
// for stability and rounded once per component. It panics if vs is empty.
func Mean32(vs []Vec32) Vec32 {
	if len(vs) == 0 {
		panic("vec: mean of no vectors")
	}
	d := vs[0].Dim()
	acc := make([]float64, d)
	for _, v := range vs {
		if len(v) != d {
			panic(fmt.Sprintf("vec: mean of mismatched dims %d and %d", d, len(v)))
		}
		for j, x := range v {
			acc[j] += float64(x)
		}
	}
	out := make(Vec32, d)
	inv := 1 / float64(len(vs))
	for j, s := range acc {
		out[j] = float32(s * inv)
	}
	return out
}

// Max32 returns the component-wise maximum of vs without aliasing its
// inputs. It panics if vs is empty.
func Max32(vs []Vec32) Vec32 {
	if len(vs) == 0 {
		panic("vec: max of no vectors")
	}
	m := vs[0].Clone()
	for _, v := range vs[1:] {
		for j, x := range v {
			if x > m[j] {
				m[j] = x
			}
		}
	}
	return m
}

// IsFinite32 reports whether every component of v is finite (no NaN or
// Inf) — the sanity check quantization applies before coding a row.
func IsFinite32(v []float32) bool {
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return false
		}
	}
	return true
}
