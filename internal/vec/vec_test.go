package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewZero(t *testing.T) {
	v := New(4)
	if v.Dim() != 4 {
		t.Fatalf("dim = %d, want 4", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %v, want 0", i, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 42
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestDot(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, -5, 6}
	if got := a.Dot(b); !almostEqual(got, 12) {
		t.Errorf("Dot = %v, want 12", got)
	}
}

func TestDotDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot on mismatched dims did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestL2KnownValues(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if got := a.L2(b); !almostEqual(got, 5) {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := a.L2Sq(b); !almostEqual(got, 25) {
		t.Errorf("L2Sq = %v, want 25", got)
	}
}

func TestCosine(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{0, 1}
	if got := a.Cosine(b); !almostEqual(got, 0) {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := a.Cosine(Vector{2, 0}); !almostEqual(got, 1) {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := a.Cosine(Vector{-3, 0}); !almostEqual(got, -1) {
		t.Errorf("antiparallel cosine = %v, want -1", got)
	}
	zero := Vector{0, 0}
	if got := a.Cosine(zero); got != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	v := Vector{1, 2}
	v.Add(Vector{3, 4})
	if v[0] != 4 || v[1] != 6 {
		t.Errorf("Add: got %v", v)
	}
	v.Sub(Vector{1, 1})
	if v[0] != 3 || v[1] != 5 {
		t.Errorf("Sub: got %v", v)
	}
	v.Scale(2)
	if v[0] != 6 || v[1] != 10 {
		t.Errorf("Scale: got %v", v)
	}
	v.Axpy(0.5, Vector{2, 2})
	if v[0] != 7 || v[1] != 11 {
		t.Errorf("Axpy: got %v", v)
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Errorf("Zero: got %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEqual(v.Norm(), 1) {
		t.Errorf("normalized norm = %v, want 1", v.Norm())
	}
	zero := Vector{0, 0}
	zero.Normalize() // must not panic or NaN
	if zero[0] != 0 {
		t.Errorf("zero normalize changed vector: %v", zero)
	}
}

func TestMeanMax(t *testing.T) {
	vs := []Vector{{1, 5}, {3, 1}}
	m := Mean(vs)
	if !almostEqual(m[0], 2) || !almostEqual(m[1], 3) {
		t.Errorf("Mean = %v, want [2 3]", m)
	}
	x := Max(vs)
	if x[0] != 3 || x[1] != 5 {
		t.Errorf("Max = %v, want [3 5]", x)
	}
	// Max must not alias its inputs.
	x[0] = 99
	if vs[0][0] == 99 || vs[1][0] == 99 {
		t.Error("Max aliases input storage")
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean of empty slice did not panic")
		}
	}()
	Mean(nil)
}

func randVec(rng *rand.Rand, d int) Vector {
	v := New(d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Property: triangle inequality for L2.
func TestL2TriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVec(r, 8), randVec(r, 8), randVec(r, 8)
		return a.L2(c) <= a.L2(b)+b.L2(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz, |<a,b>| <= |a||b|.
func TestCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r, 6), randVec(r, 6)
		return math.Abs(a.Dot(b)) <= a.Norm()*b.Norm()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent and L2Sq agrees with L2².
func TestNormalizeIdempotentAndL2Consistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r, 5), randVec(r, 5)
		n1 := a.Clone().Normalize()
		n2 := n1.Clone().Normalize()
		for i := range n1 {
			if math.Abs(n1[i]-n2[i]) > 1e-12 {
				return false
			}
		}
		return math.Abs(a.L2(b)*a.L2(b)-a.L2Sq(b)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixRowSharing(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row does not share storage with matrix")
	}
	m.Set(2, 1, 5)
	if m.Row(2)[1] != 5 {
		t.Error("Set not visible through Row")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec(Vector{1, 1, 1})
	if !almostEqual(y[0], 6) || !almostEqual(y[1], 15) {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
}

func TestMatrixRowOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Row out of range did not panic")
		}
	}()
	NewMatrix(1, 1).Row(1)
}

func TestMatrixFillGaussianDeterministic(t *testing.T) {
	a := NewMatrix(4, 4)
	b := NewMatrix(4, 4)
	a.FillGaussian(rand.New(rand.NewSource(5)), 1)
	b.FillGaussian(rand.New(rand.NewSource(5)), 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("FillGaussian not deterministic for equal seeds")
		}
	}
}
