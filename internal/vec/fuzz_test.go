package vec

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToFloat32s reinterprets fuzz bytes as a float32 slice, little
// endian — every bit pattern is a legal input, including NaN payloads,
// infinities and denormals.
func bytesToFloat32s(b []byte) []float32 {
	v := make([]float32, len(b)/4)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return v
}

// FuzzDotKernels checks that Dot32 and L2Sq32 agree bit for bit with the
// lane-order reference on arbitrary inputs — the conformance sweep's
// contract, extended to adversarial bit patterns.
func FuzzDotKernels(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, []byte{0, 0, 64, 64, 0, 0, 128, 64})
	seed := make([]byte, 67*4)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed, seed)
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		a := bytesToFloat32s(ab)
		b := bytesToFloat32s(bb)
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]

		if got, want := Dot32(a, b), laneDot32(a, b); !bitsEq(got, want) {
			t.Fatalf("Dot32 len=%d: kernel %x, lane reference %x", n,
				math.Float32bits(got), math.Float32bits(want))
		}
		if got, want := L2Sq32(a, b), laneL2Sq32(a, b); !bitsEq(got, want) {
			t.Fatalf("L2Sq32 len=%d: kernel %x, lane reference %x", n,
				math.Float32bits(got), math.Float32bits(want))
		}
		// When everything is finite, the kernel must also sit inside the
		// float64 shadow envelope (the 1-ULP-per-term accumulation bound).
		if IsFinite32(a) && IsFinite32(b) {
			shadow := shadowDot64(a, b)
			var mag float64
			for i := range a {
				mag += math.Abs(float64(a[i]) * float64(b[i]))
			}
			if !math.IsInf(mag, 0) {
				// Relative envelope plus an absolute floor for products that
				// round in the subnormal range (spacing 2^-149).
				tol := float64(n+2) * (mag/(1<<24) + 0x1p-149)
				got := float64(Dot32(a, b))
				if !math.IsInf(got, 0) && math.Abs(got-shadow) > tol {
					t.Fatalf("Dot32 len=%d drift %g > %g", n, math.Abs(got-shadow), tol)
				}
			}
		}
	})
}

// FuzzQuantizeRoundTrip checks the quantization error contract on
// arbitrary rows: zero codes for zero/non-finite/underflowing rows,
// otherwise |x - code*scale| <= scale/2·(1+ε) per component.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63})
	f.Add([]byte{1, 0, 0, 0, 255, 255, 127, 127}) // denormal next to MaxFloat32
	f.Add([]byte{0, 0, 192, 255})                 // NaN
	f.Fuzz(func(t *testing.T, raw []byte) {
		v := bytesToFloat32s(raw)
		codes := make([]int8, len(v))
		scale, sqNorm := QuantizeRow(codes, v)

		if !IsFinite32(v) {
			if scale != 0 || sqNorm != 0 {
				t.Fatalf("non-finite row: scale %v sqNorm %v, want 0 0", scale, sqNorm)
			}
			for i, c := range codes {
				if c != 0 {
					t.Fatalf("non-finite row: code[%d] = %d", i, c)
				}
			}
			return
		}
		if scale == 0 {
			// Zero row, or maxAbs small enough that the scale would be
			// subnormal: all codes must be zero and every component below
			// the flush threshold 127·2^-126 ≈ 1.5e-36.
			for i, c := range codes {
				if c != 0 {
					t.Fatalf("scale 0: code[%d] = %d", i, c)
				}
				if a := math.Abs(float64(v[i])); a > 127*0x1p-126*(1+1e-6) {
					t.Fatalf("scale 0 but |v[%d]| = %g above flush range", i, a)
				}
			}
			return
		}
		if float64(scale) < 0x1p-126 {
			t.Fatalf("nonzero scale %g is subnormal", scale)
		}
		bound := float64(scale) * (0.5 + 1.0/1024)
		for i, x := range v {
			deq := float64(codes[i]) * float64(scale)
			if err := math.Abs(float64(x) - deq); err > bound {
				t.Fatalf("component %d: |%g - %g| = %g > %g (scale %g)", i, x, deq, err, bound, scale)
			}
			if codes[i] > 127 || codes[i] < -127 {
				t.Fatalf("code[%d] = %d outside ±127", i, codes[i])
			}
		}
	})
}
