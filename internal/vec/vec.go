// Package vec provides the dense vector and matrix primitives used by the
// document encoder, the triplet-loss trainer, and the proximity-graph index.
//
// Everything is float64 and stdlib-only. Vectors are plain []float64 slices
// wrapped in the Vector type so that method names document intent (L2, Dot,
// Axpy, ...) without hiding the underlying storage; callers may index and
// slice a Vector directly.
package vec

import (
	"fmt"
	"math"
)

// Vector is a dense real-valued vector.
type Vector []float64

// New returns a zero vector of dimension d.
func New(d int) Vector { return make(Vector, d) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Dot returns the inner product <v, w>. It panics if dimensions differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dot of mismatched dims %d and %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// L2 returns the Euclidean distance between v and w, the distance measure δ
// used throughout the paper (triplet loss, PG-Index edges, query search).
func (v Vector) L2(w Vector) float64 { return math.Sqrt(v.L2Sq(w)) }

// L2Sq returns the squared Euclidean distance between v and w. It is the
// form used in inner loops where only distance comparisons matter, avoiding
// the square root.
func (v Vector) L2Sq(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: l2 of mismatched dims %d and %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		d := x - w[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity between v and w, in [-1, 1].
// Zero vectors have similarity 0 by convention.
func (v Vector) Cosine(w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Add sets v = v + w in place and returns v.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub sets v = v - w in place and returns v.
func (v Vector) Sub(w Vector) Vector {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale sets v = a*v in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Axpy sets v = v + a*w in place and returns v (the BLAS "axpy" primitive
// the trainer uses to accumulate gradients).
func (v Vector) Axpy(a float64, w Vector) Vector {
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Normalize scales v to unit L2 norm in place and returns v. A zero vector
// is left unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Zero resets every component of v to 0 and returns v.
func (v Vector) Zero() Vector {
	for i := range v {
		v[i] = 0
	}
	return v
}

// Mean returns the component-wise mean of vs (the paper's mean pooling Φ_P).
// It panics if vs is empty or dimensions differ.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: mean of no vectors")
	}
	m := New(vs[0].Dim())
	for _, v := range vs {
		m.Add(v)
	}
	return m.Scale(1 / float64(len(vs)))
}

// Max returns the component-wise maximum of vs (the paper's max pooling
// alternative). It panics if vs is empty.
func Max(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: max of no vectors")
	}
	m := vs[0].Clone()
	for _, v := range vs[1:] {
		for j, x := range v {
			if x > m[j] {
				m[j] = x
			}
		}
	}
	return m
}
