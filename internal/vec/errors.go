package vec

import (
	"fmt"
	"math"
)

// elemsOverflow reports whether rows*cols overflows int for
// non-negative inputs — such a product would wrap before make and
// allocate a matrix far smaller than its declared shape.
func elemsOverflow(rows, cols int) bool {
	return cols != 0 && rows > math.MaxInt/cols
}

// ShapeError reports an invalid or mismatched matrix/vector shape: a
// negative dimension in a constructor, or mismatched lengths in a kernel.
// NewMatrix and NewMatrix32 panic with it; NewMatrixErr and
// NewMatrix32Err return it, for callers — snapshot loaders, servers
// validating untrusted dimensions — that must recover instead of crash.
type ShapeError struct {
	Op         string // operation that rejected the shape
	Rows, Cols int    // the offending pair (rows x cols, or the two lengths)
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("vec: %s: invalid shape %dx%d", e.Op, e.Rows, e.Cols)
}

// IndexError reports an out-of-range row or element access on a matrix.
// The panicking fast accessors (Row, At) use it as their panic value; the
// checked variants (RowErr, AtErr) return it.
type IndexError struct {
	Op         string // accessor that rejected the index
	I, J       int    // requested row and column (J is -1 for row access)
	Rows, Cols int    // matrix shape
}

func (e *IndexError) Error() string {
	if e.J < 0 {
		return fmt.Sprintf("vec: %s: row %d out of range for %dx%d matrix", e.Op, e.I, e.Rows, e.Cols)
	}
	return fmt.Sprintf("vec: %s: element (%d,%d) out of range for %dx%d matrix", e.Op, e.I, e.J, e.Rows, e.Cols)
}
