package vec

import (
	"errors"
	"math"
	"testing"
)

// TestConstructorOverflowGuard pins the rows*cols overflow fix: shapes
// whose element count wraps int must come back as a *ShapeError, never
// reach make with a wrapped (possibly tiny or negative) size.
func TestConstructorOverflowGuard(t *testing.T) {
	half := math.MaxInt/2 + 1 // 2*half wraps negative
	bad := [][2]int{
		{math.MaxInt, 2},
		{2, math.MaxInt},
		{half, 2},
		{2, half},
		{math.MaxInt, math.MaxInt},
		{1 << 32, 1 << 32}, // wraps to exactly 0 on 64-bit int
		{-1, 3},
		{3, -1},
	}
	for _, s := range bad {
		rows, cols := s[0], s[1]
		var se *ShapeError
		if _, err := NewMatrixErr(rows, cols); !errors.As(err, &se) {
			t.Errorf("NewMatrixErr(%d, %d): got %v, want *ShapeError", rows, cols, err)
		}
		if _, err := NewMatrix32Err(rows, cols); !errors.As(err, &se) {
			t.Errorf("NewMatrix32Err(%d, %d): got %v, want *ShapeError", rows, cols, err)
		}
		if _, err := Matrix32FromFloat64(rows, cols, nil); !errors.As(err, &se) {
			t.Errorf("Matrix32FromFloat64(%d, %d): got %v, want *ShapeError", rows, cols, err)
		}
	}
}

// TestConstructorBoundaryShapes confirms the guard does not over-reject:
// zero-sized and ordinary shapes still construct.
func TestConstructorBoundaryShapes(t *testing.T) {
	ok := [][2]int{{0, 0}, {0, 5}, {5, 0}, {1, 1}, {3, 4}, {1, math.MaxInt}, {math.MaxInt, 0}}
	for _, s := range ok {
		rows, cols := s[0], s[1]
		if rows*cols > 1<<20 { // shapes that are valid but too big to allocate
			continue
		}
		if m, err := NewMatrixErr(rows, cols); err != nil || m.Rows != rows || m.Cols != cols || len(m.Data) != rows*cols {
			t.Errorf("NewMatrixErr(%d, %d): %v", rows, cols, err)
		}
		if m, err := NewMatrix32Err(rows, cols); err != nil || len(m.Data) != rows*cols {
			t.Errorf("NewMatrix32Err(%d, %d): %v", rows, cols, err)
		}
	}
	// 1 x MaxInt passes the overflow guard (no wrap) — it must fail only
	// at allocation, which we do not attempt here. Matrix32FromFloat64
	// with a mismatched data length must still reject cleanly.
	var se *ShapeError
	if _, err := Matrix32FromFloat64(2, 3, make([]float64, 5)); !errors.As(err, &se) {
		t.Errorf("Matrix32FromFloat64 length mismatch: got %v, want *ShapeError", err)
	}
	if m, err := Matrix32FromFloat64(2, 2, []float64{1, 2, 3, 4}); err != nil || m.At(1, 1) != 4 {
		t.Errorf("Matrix32FromFloat64 valid: %v", err)
	}
}
