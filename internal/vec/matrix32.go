package vec

import "math/rand"

// Matrix32 is a dense row-major float32 matrix backed by one contiguous
// allocation — no per-row slice headers, no pointer chasing. It is the
// storage type of the PG-Index embedding block and the encoder's token
// table: row views share the backing array, so handing a row to a caller
// costs nothing, and a full-matrix scan walks memory linearly.
//
// Like Matrix, the hot accessors (Row, At, Set) panic on misuse; the
// *Err variants return typed errors for untrusted shapes.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zero matrix of the given shape. It panics with a
// *ShapeError on a negative dimension; use NewMatrix32Err to recover.
func NewMatrix32(rows, cols int) *Matrix32 {
	m, err := NewMatrix32Err(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// NewMatrix32Err is NewMatrix32 returning a typed error instead of
// panicking: a *ShapeError on a negative dimension or when rows*cols
// overflows int (huge declared shapes would otherwise wrap before make
// and allocate the wrong size). Zero-sized shapes (0xN, Nx0) are valid.
func NewMatrix32Err(rows, cols int) (*Matrix32, error) {
	if rows < 0 || cols < 0 || elemsOverflow(rows, cols) {
		return nil, &ShapeError{Op: "NewMatrix32", Rows: rows, Cols: cols}
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}, nil
}

// Row returns row i as a Vec32 sharing storage with m. It panics with a
// *IndexError when i is out of range; use RowErr to recover.
func (m *Matrix32) Row(i int) Vec32 {
	if i < 0 || i >= m.Rows {
		panic(&IndexError{Op: "Row", I: i, J: -1, Rows: m.Rows, Cols: m.Cols})
	}
	return Vec32(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// RowErr is Row returning a typed *IndexError instead of panicking.
func (m *Matrix32) RowErr(i int) (Vec32, error) {
	if i < 0 || i >= m.Rows {
		return nil, &IndexError{Op: "RowErr", I: i, J: -1, Rows: m.Rows, Cols: m.Cols}
	}
	return Vec32(m.Data[i*m.Cols : (i+1)*m.Cols]), nil
}

// At returns the element at (i, j). Unchecked for speed.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// AtErr is At with bounds checking, returning a typed *IndexError.
func (m *Matrix32) AtErr(i, j int) (float32, error) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return 0, &IndexError{Op: "AtErr", I: i, J: j, Rows: m.Rows, Cols: m.Cols}
	}
	return m.Data[i*m.Cols+j], nil
}

// Set assigns the element at (i, j). Unchecked for speed.
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix32) Clone() *Matrix32 {
	c := NewMatrix32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// AppendRow grows the matrix by one row, copying v. Existing row views
// keep pointing at the previous backing array if growth reallocates; rows
// are treated as immutable by every user of Matrix32, so stale views stay
// value-correct.
func (m *Matrix32) AppendRow(v []float32) {
	if len(v) != m.Cols {
		panic(&ShapeError{Op: "AppendRow", Rows: 1, Cols: len(v)})
	}
	m.Data = append(m.Data, v...)
	m.Rows++
}

// FillGaussian fills m with N(0, sigma²) samples from rng, drawn in
// float64 and rounded once — the same stream a float64 Matrix would see.
func (m *Matrix32) FillGaussian(rng *rand.Rand, sigma float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * sigma)
	}
}

// Float64 returns the matrix contents widened to []float64, row-major —
// the persistence format of the encoder table (float32→float64 is exact,
// so a round trip reproduces the matrix bit for bit).
func (m *Matrix32) Float64() []float64 {
	out := make([]float64, len(m.Data))
	for i, x := range m.Data {
		out[i] = float64(x)
	}
	return out
}

// Matrix32FromFloat64 builds a Matrix32 from row-major float64 data,
// rounding each component once. It returns a *ShapeError when the data
// length does not match rows*cols (including shapes whose product
// overflows int and would wrap onto len(data)).
func Matrix32FromFloat64(rows, cols int, data []float64) (*Matrix32, error) {
	if rows < 0 || cols < 0 || elemsOverflow(rows, cols) || len(data) != rows*cols {
		return nil, &ShapeError{Op: "Matrix32FromFloat64", Rows: rows, Cols: cols}
	}
	m := &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, len(data))}
	for i, x := range data {
		m.Data[i] = float32(x)
	}
	return m, nil
}
