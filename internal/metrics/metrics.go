// Package metrics implements the IR effectiveness measures of §VI-A:
// precision at rank n (P@n), average precision (AP) and its mean over
// queries (MAP), and the average document similarity (ADS) of the returned
// experts' papers to the query.
package metrics

import (
	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// PrecisionAtN returns P@n: the fraction of the first n returned experts
// that appear in the ground-truth set. If fewer than n experts were
// returned, the missing ranks count as incorrect (the denominator stays n),
// matching the paper's #correct/n estimate.
func PrecisionAtN(returned []hetgraph.NodeID, truth map[hetgraph.NodeID]bool, n int) float64 {
	if n <= 0 {
		return 0
	}
	if len(returned) > n {
		returned = returned[:n]
	}
	correct := 0
	for _, a := range returned {
		if truth[a] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// AveragePrecision returns AP = Σ_i (P@i · I(a_i)) / N over the returned
// ranking, where I(a_i)=1 when the i-th returned expert is correct and N
// is the total number of correct experts for the query.
func AveragePrecision(returned []hetgraph.NodeID, truth map[hetgraph.NodeID]bool) float64 {
	n := len(truth)
	if n == 0 {
		return 0
	}
	var sum float64
	correct := 0
	for i, a := range returned {
		if truth[a] {
			correct++
			sum += float64(correct) / float64(i+1)
		}
	}
	return sum / float64(n)
}

// MAP returns the mean of per-query average precisions. Empty input
// yields 0.
func MAP(aps []float64) float64 {
	if len(aps) == 0 {
		return 0
	}
	var s float64
	for _, a := range aps {
		s += a
	}
	return s / float64(len(aps))
}

// ADS returns the average document similarity of the returned experts'
// papers to the query representation:
// Σ_i Σ_{p ∈ P(a_i)} sim(p, T) / |P(a_i)| / n, with sim the cosine
// similarity of the papers' representations. Experts with no embedded
// papers contribute 0.
func ADS(g *hetgraph.Graph, experts []hetgraph.NodeID,
	embs map[hetgraph.NodeID]vec.Vector, query vec.Vector) float64 {
	if len(experts) == 0 {
		return 0
	}
	var total float64
	for _, a := range experts {
		papers := g.PapersOf(a)
		var s float64
		cnt := 0
		for _, p := range papers {
			if e, ok := embs[p]; ok {
				s += query.Cosine(e)
				cnt++
			}
		}
		if cnt > 0 {
			total += s / float64(cnt)
		}
	}
	return total / float64(len(experts))
}
