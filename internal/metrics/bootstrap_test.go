package metrics

import (
	"math/rand"
	"testing"
)

func TestPairedBootstrapClearWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		b[i] = 0.3 + rng.Float64()*0.1
		a[i] = b[i] + 0.15 + rng.Float64()*0.05 // a clearly better
	}
	res, err := PairedBootstrap(a, b, 5000, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDiff <= 0.1 {
		t.Errorf("MeanDiff = %v", res.MeanDiff)
	}
	if res.PValue > 0.01 {
		t.Errorf("p = %v for a clear winner", res.PValue)
	}
	if !(res.CILow > 0 && res.CILow < res.MeanDiff && res.MeanDiff < res.CIHigh) {
		t.Errorf("CI [%v, %v] inconsistent with mean %v", res.CILow, res.CIHigh, res.MeanDiff)
	}
}

func TestPairedBootstrapNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 60
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	res, err := PairedBootstrap(a, b, 5000, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.05 && res.PValue > 0.95 {
		t.Errorf("p = %v for identically distributed systems", res.PValue)
	}
	if res.CILow > 0 || res.CIHigh < 0 {
		t.Errorf("CI [%v, %v] excludes 0 for no-difference data", res.CILow, res.CIHigh)
	}
}

func TestPairedBootstrapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := PairedBootstrap([]float64{1}, []float64{1, 2}, 100, rng); err == nil {
		t.Error("misaligned input accepted")
	}
	if _, err := PairedBootstrap(nil, nil, 100, rng); err == nil {
		t.Error("empty input accepted")
	}
}

func TestPairedBootstrapDeterministic(t *testing.T) {
	a := []float64{0.5, 0.6, 0.7, 0.4}
	b := []float64{0.4, 0.5, 0.6, 0.5}
	r1, _ := PairedBootstrap(a, b, 1000, rand.New(rand.NewSource(9)))
	r2, _ := PairedBootstrap(a, b, 1000, rand.New(rand.NewSource(9)))
	if r1 != r2 {
		t.Error("same seed gave different results")
	}
}
