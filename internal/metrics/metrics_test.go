package metrics

import (
	"math"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

func ids(xs ...int) []hetgraph.NodeID {
	out := make([]hetgraph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = hetgraph.NodeID(x)
	}
	return out
}

func truth(xs ...int) map[hetgraph.NodeID]bool {
	out := map[hetgraph.NodeID]bool{}
	for _, x := range xs {
		out[hetgraph.NodeID(x)] = true
	}
	return out
}

func TestPrecisionAtN(t *testing.T) {
	tr := truth(1, 2, 3)
	if got := PrecisionAtN(ids(1, 2, 9, 8, 7), tr, 5); got != 0.4 {
		t.Errorf("P@5 = %v, want 0.4", got)
	}
	// Shorter return list: missing ranks count against the denominator.
	if got := PrecisionAtN(ids(1), tr, 5); got != 0.2 {
		t.Errorf("P@5 with 1 returned = %v, want 0.2", got)
	}
	if got := PrecisionAtN(ids(1, 2, 3, 9), tr, 2); got != 1.0 {
		t.Errorf("P@2 = %v, want 1 (only first 2 considered)", got)
	}
	if PrecisionAtN(nil, tr, 0) != 0 {
		t.Error("n=0 must be 0")
	}
}

func TestAveragePrecisionKnownValue(t *testing.T) {
	// Returned: [hit, miss, hit], truth size 2.
	// AP = (1/1 + 2/3)/2 = 5/6.
	got := AveragePrecision(ids(1, 9, 2), truth(1, 2))
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("AP = %v, want %v", got, 5.0/6)
	}
	// Truth larger than returned list: AP penalised by N.
	got = AveragePrecision(ids(1), truth(1, 2, 3, 4))
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("AP = %v, want 0.25", got)
	}
	if AveragePrecision(ids(1), map[hetgraph.NodeID]bool{}) != 0 {
		t.Error("empty truth must give 0")
	}
	if AveragePrecision(nil, truth(1)) != 0 {
		t.Error("empty return must give 0")
	}
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	// All truth returned first: AP = 1.
	got := AveragePrecision(ids(1, 2, 3), truth(1, 2, 3))
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AP = %v", got)
	}
}

func TestMAP(t *testing.T) {
	if MAP(nil) != 0 {
		t.Error("MAP of nothing must be 0")
	}
	if got := MAP([]float64{0.2, 0.4}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MAP = %v, want 0.3", got)
	}
}

func TestADS(t *testing.T) {
	g := hetgraph.New()
	a1 := g.AddNode(hetgraph.Author, "")
	a2 := g.AddNode(hetgraph.Author, "")
	p1 := g.AddNode(hetgraph.Paper, "")
	p2 := g.AddNode(hetgraph.Paper, "")
	p3 := g.AddNode(hetgraph.Paper, "")
	g.MustAddEdge(a1, p1, hetgraph.Write)
	g.MustAddEdge(a1, p2, hetgraph.Write)
	g.MustAddEdge(a2, p3, hetgraph.Write)

	embs := map[hetgraph.NodeID]vec.Vector{
		p1: {1, 0},
		p2: {0, 1},
		p3: {1, 0},
	}
	q := vec.Vector{1, 0}
	// a1: mean cos = (1 + 0)/2 = 0.5; a2: 1. ADS = (0.5+1)/2 = 0.75.
	got := ADS(g, []hetgraph.NodeID{a1, a2}, embs, q)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ADS = %v, want 0.75", got)
	}
	if ADS(g, nil, embs, q) != 0 {
		t.Error("ADS of no experts must be 0")
	}
	// Expert whose papers are not embedded contributes 0.
	a3 := g.AddNode(hetgraph.Author, "")
	p4 := g.AddNode(hetgraph.Paper, "")
	g.MustAddEdge(a3, p4, hetgraph.Write)
	got = ADS(g, []hetgraph.NodeID{a3}, embs, q)
	if got != 0 {
		t.Errorf("ADS with unembedded papers = %v, want 0", got)
	}
}
