package metrics

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapResult summarises a paired-bootstrap comparison of two systems
// over the same query set.
type BootstrapResult struct {
	// MeanDiff is mean(a) - mean(b) on the observed per-query scores.
	MeanDiff float64
	// CILow and CIHigh bound the 95% bootstrap confidence interval of the
	// mean difference.
	CILow, CIHigh float64
	// PValue estimates P(mean(a) <= mean(b)) under resampling: the
	// one-sided probability that system a is not better than b.
	PValue float64
	// Iterations is the number of bootstrap resamples drawn.
	Iterations int
}

// PairedBootstrap runs a one-sided paired bootstrap test on per-query
// scores (e.g. average precision): a and b are aligned by query. It
// estimates how likely the observed advantage of a over b is to vanish
// under resampling of the query set — the standard significance test for
// IR system comparisons. iters of 10000 is typical; rng makes the test
// reproducible.
func PairedBootstrap(a, b []float64, iters int, rng *rand.Rand) (BootstrapResult, error) {
	if len(a) != len(b) {
		return BootstrapResult{}, fmt.Errorf("metrics: paired bootstrap needs aligned scores (%d vs %d)", len(a), len(b))
	}
	if len(a) == 0 {
		return BootstrapResult{}, fmt.Errorf("metrics: paired bootstrap needs at least one query")
	}
	if iters <= 0 {
		iters = 10000
	}

	n := len(a)
	diffs := make([]float64, n)
	var observed float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		observed += diffs[i]
	}
	observed /= float64(n)

	means := make([]float64, iters)
	notBetter := 0
	for it := 0; it < iters; it++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += diffs[rng.Intn(n)]
		}
		m := sum / float64(n)
		means[it] = m
		if m <= 0 {
			notBetter++
		}
	}
	sort.Float64s(means)
	lo := means[int(0.025*float64(iters))]
	hi := means[min(int(0.975*float64(iters)), iters-1)]

	return BootstrapResult{
		MeanDiff:   observed,
		CILow:      lo,
		CIHigh:     hi,
		PValue:     float64(notBetter) / float64(iters),
		Iterations: iters,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
