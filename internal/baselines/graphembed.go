package baselines

import (
	"math"
	"math/rand"
	"sync"

	"expertfind/internal/hetgraph"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// The four homogeneous-graph baselines below share a text-feature encoder
// (IDF-weighted hash-projected word vectors) and a capped homogeneous
// neighbourhood drawn from the union of all three paper-paper meta-paths —
// deliberately treating every relationship equally, the noise source §I
// attributes to homogeneous-graph methods.

// textFeatureEncoder supplies the lexical document features shared by the
// corpus-trained dense baselines: the same frozen pre-trained encoder the
// SBERT baseline uses (subword tokenizer, distributional pre-training,
// IDF-weighted mean pooling). All dense baselines therefore have identical
// lexical capability and differ only in how they use graph structure — the
// dimension the paper's Table II actually compares.
type textFeatureEncoder struct {
	enc *textenc.Encoder
}

func newTextFeatures(g *hetgraph.Graph, dim int, seed int64) *textFeatureEncoder {
	return &textFeatureEncoder{enc: frozenEncoder(g, dim, seed)}
}

func (e *textFeatureEncoder) encode(text string) vec.Vector {
	// Baselines accumulate in float64 throughout; widen the float32
	// encoder output at the boundary.
	return e.enc.Encode(text).Float64()
}

// frozenEncoder memoises one pre-trained encoder per (graph, dim, seed) so
// the seven baselines and the ADS reference space don't each re-run
// vocabulary induction and distributional pre-training.
var (
	frozenMu    sync.Mutex
	frozenCache = map[frozenKey]*textenc.Encoder{}
)

type frozenKey struct {
	g    *hetgraph.Graph
	dim  int
	seed int64
}

func frozenEncoder(g *hetgraph.Graph, dim int, seed int64) *textenc.Encoder {
	frozenMu.Lock()
	defer frozenMu.Unlock()
	key := frozenKey{g, dim, seed}
	if enc, ok := frozenCache[key]; ok {
		return enc
	}
	corpus := corpusOf(g)
	vocab := textenc.BuildVocab(corpus, textenc.DefaultVocabConfig())
	enc := textenc.NewEncoder(vocab, dim, seed)
	textenc.PretrainDistributional(enc, corpus)
	if len(frozenCache) > 8 {
		frozenCache = map[frozenKey]*textenc.Encoder{} // bound growth across many datasets
	}
	frozenCache[key] = enc
	return enc
}

// maxHomoNeighbors caps the homogeneous neighbour list per paper; the
// same-topic projection alone would otherwise create topic-sized cliques.
const maxHomoNeighbors = 50

// homoNeighbors returns up to maxHomoNeighbors paper-paper neighbours of p
// under the union of the meta-paths, round-robin across paths so each
// relationship is represented.
func homoNeighbors(g *hetgraph.Graph, p hetgraph.NodeID, mps []hetgraph.MetaPath) []hetgraph.NodeID {
	per := maxHomoNeighbors / len(mps)
	if per < 1 {
		per = 1
	}
	seen := map[hetgraph.NodeID]bool{}
	var out []hetgraph.NodeID
	for _, mp := range mps {
		cnt := 0
		g.ForEachPNeighbor(p, mp, func(q hetgraph.NodeID) bool {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
				cnt++
			}
			return cnt < per
		})
	}
	return out
}

var allMetaPaths = []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP, hetgraph.PP}

// TADW is the matrix-factorisation-with-text baseline [49], simulated as
// adjacency-smoothed text features: a paper's embedding blends its own
// lexical vector with the mean of its 1-hop and 2-hop homogeneous
// neighbours' vectors (a truncated low-rank factorisation of A·T, per
// DESIGN.md). Queries embed with text features alone.
type TADW struct {
	dim  int
	seed int64
	tf   *textFeatureEncoder
	embs map[hetgraph.NodeID]vec.Vector
}

// NewTADW returns an unbuilt TADW baseline.
func NewTADW(dim int, seed int64) *TADW { return &TADW{dim: dim, seed: seed} }

// Name implements Method.
func (t *TADW) Name() string { return "TADW" }

// Build implements Method.
func (t *TADW) Build(g *hetgraph.Graph) error {
	t.tf = newTextFeatures(g, t.dim, t.seed)
	papers := g.NodesOfType(hetgraph.Paper)
	base := make(map[hetgraph.NodeID]vec.Vector, len(papers))
	nbrs := make(map[hetgraph.NodeID][]hetgraph.NodeID, len(papers))
	for _, p := range papers {
		base[p] = t.tf.encode(g.Label(p))
		nbrs[p] = homoNeighbors(g, p, allMetaPaths)
	}
	hop1 := smooth(base, nbrs)
	hop2 := smooth(hop1, nbrs)
	t.embs = make(map[hetgraph.NodeID]vec.Vector, len(papers))
	for _, p := range papers {
		e := base[p].Clone().Scale(0.5)
		e.Axpy(0.35, hop1[p])
		e.Axpy(0.15, hop2[p])
		t.embs[p] = e
	}
	return nil
}

// QueryPapers implements Method.
func (t *TADW) QueryPapers(text string, m int) []hetgraph.NodeID {
	return rankByDistance(t.embs, t.tf.encode(text), m)
}

// smooth returns, for every paper, the mean of its neighbours' vectors
// (itself when isolated).
func smooth(base map[hetgraph.NodeID]vec.Vector,
	nbrs map[hetgraph.NodeID][]hetgraph.NodeID) map[hetgraph.NodeID]vec.Vector {
	out := make(map[hetgraph.NodeID]vec.Vector, len(base))
	for p, ns := range nbrs {
		if len(ns) == 0 {
			out[p] = base[p].Clone()
			continue
		}
		m := vec.New(base[p].Dim())
		for _, q := range ns {
			m.Add(base[q])
		}
		out[p] = m.Scale(1 / float64(len(ns)))
	}
	return out
}

// GVNRT is the GloVe-for-node-representations baseline [50], simulated as
// 1-hop smoothing with hub down-weighting: neighbour q contributes with
// weight 1/log(2+deg(q)), mirroring GloVe's damping of frequent
// co-occurrences. It is the strongest baseline in the paper's Table II.
type GVNRT struct {
	dim  int
	seed int64
	tf   *textFeatureEncoder
	embs map[hetgraph.NodeID]vec.Vector
}

// NewGVNRT returns an unbuilt GVNR-t baseline.
func NewGVNRT(dim int, seed int64) *GVNRT { return &GVNRT{dim: dim, seed: seed} }

// Name implements Method.
func (t *GVNRT) Name() string { return "GVNR-t" }

// Build implements Method.
func (t *GVNRT) Build(g *hetgraph.Graph) error {
	t.tf = newTextFeatures(g, t.dim, t.seed)
	papers := g.NodesOfType(hetgraph.Paper)
	base := make(map[hetgraph.NodeID]vec.Vector, len(papers))
	for _, p := range papers {
		base[p] = t.tf.encode(g.Label(p))
	}
	t.embs = make(map[hetgraph.NodeID]vec.Vector, len(papers))
	for _, p := range papers {
		ns := homoNeighbors(g, p, allMetaPaths)
		e := base[p].Clone().Scale(0.6)
		if len(ns) > 0 {
			agg := vec.New(t.dim)
			var wsum float64
			for _, q := range ns {
				w := 1 / math.Log(2+float64(len(g.Neighbors(q, hetgraph.Author))+
					len(g.Neighbors(q, hetgraph.Paper))))
				agg.Axpy(w, base[q])
				wsum += w
			}
			if wsum > 0 {
				e.Axpy(0.4/wsum, agg)
			}
		}
		t.embs[p] = e
	}
	return nil
}

// QueryPapers implements Method.
func (t *GVNRT) QueryPapers(text string, m int) []hetgraph.NodeID {
	return rankByDistance(t.embs, t.tf.encode(text), m)
}

// G2G is the deep-Gaussian graph-embedding baseline [51], simulated as a
// per-paper free embedding initialised from text features and fine-tuned
// with a margin ranking loss over raw homogeneous edges: positives are any
// P-neighbours (all relationships treated equally — including the noisy
// ones), negatives are random papers. It is the closest relative of the
// paper's method, differing exactly in what counts as a positive pair.
type G2G struct {
	dim    int
	seed   int64
	epochs int
	tf     *textFeatureEncoder
	embs   map[hetgraph.NodeID]vec.Vector
}

// NewG2G returns an unbuilt G2G baseline.
func NewG2G(dim int, seed int64) *G2G { return &G2G{dim: dim, seed: seed, epochs: 2} }

// Name implements Method.
func (t *G2G) Name() string { return "G2G" }

// Build implements Method.
func (t *G2G) Build(g *hetgraph.Graph) error {
	t.tf = newTextFeatures(g, t.dim, t.seed)
	papers := g.NodesOfType(hetgraph.Paper)
	t.embs = make(map[hetgraph.NodeID]vec.Vector, len(papers))
	nbrs := make(map[hetgraph.NodeID][]hetgraph.NodeID, len(papers))
	for _, p := range papers {
		t.embs[p] = t.tf.encode(g.Label(p))
		nbrs[p] = homoNeighbors(g, p, allMetaPaths)
	}
	rng := rand.New(rand.NewSource(t.seed))
	const lr, margin = 0.05, 1.0
	for epoch := 0; epoch < t.epochs; epoch++ {
		for _, p := range papers {
			ns := nbrs[p]
			if len(ns) == 0 {
				continue
			}
			pos := ns[rng.Intn(len(ns))]
			neg := papers[rng.Intn(len(papers))]
			if neg == p || neg == pos {
				continue
			}
			vp, vpos, vneg := t.embs[p], t.embs[pos], t.embs[neg]
			dp := vp.Clone().Sub(vpos)
			dn := vp.Clone().Sub(vneg)
			np, nn := dp.Norm(), dn.Norm()
			if np-nn+margin <= 0 {
				continue
			}
			if np > 0 {
				vp.Axpy(-lr/np, dp)
				vpos.Axpy(lr/np, dp)
			}
			if nn > 0 {
				vp.Axpy(lr/nn, dn)
				vneg.Axpy(-lr/nn, dn)
			}
		}
	}
	return nil
}

// QueryPapers implements Method.
func (t *G2G) QueryPapers(text string, m int) []hetgraph.NodeID {
	return rankByDistance(t.embs, t.tf.encode(text), m)
}

// IDNE is the topic-word-attention baseline [52], simulated as
// attention-weighted lexical features: each word's weight is its
// discriminativeness max_t P(t|w), estimated from co-occurrence between
// words and the topics papers mention. Structure enters only through the
// Mention edges used to fit the attention, as in the original inductive
// model.
type IDNE struct {
	dim  int
	seed int64
	att  map[string]float64
	df   map[string]int
	n    int
	embs map[hetgraph.NodeID]vec.Vector
}

// NewIDNE returns an unbuilt IDNE baseline.
func NewIDNE(dim int, seed int64) *IDNE { return &IDNE{dim: dim, seed: seed} }

// Name implements Method.
func (t *IDNE) Name() string { return "IDNE" }

// Build implements Method.
func (t *IDNE) Build(g *hetgraph.Graph) error {
	papers := g.NodesOfType(hetgraph.Paper)
	topics := g.NodesOfType(hetgraph.Topic)
	topicIdx := map[hetgraph.NodeID]int{}
	for i, tp := range topics {
		topicIdx[tp] = i
	}
	// Word-topic co-occurrence counts.
	wordTopic := map[string][]int{}
	wordTotal := map[string]int{}
	t.df = map[string]int{}
	t.n = len(papers)
	for _, p := range papers {
		var tids []int
		for _, tp := range g.Neighbors(p, hetgraph.Topic) {
			tids = append(tids, topicIdx[tp])
		}
		seen := map[string]bool{}
		for _, w := range textenc.SplitWords(g.Label(p)) {
			if seen[w] {
				continue
			}
			seen[w] = true
			t.df[w]++
			counts := wordTopic[w]
			if counts == nil {
				counts = make([]int, len(topics))
				wordTopic[w] = counts
			}
			for _, ti := range tids {
				counts[ti]++
			}
			wordTotal[w]++
		}
	}
	// Attention: how concentrated the word's topic distribution is.
	t.att = make(map[string]float64, len(wordTopic))
	for w, counts := range wordTopic {
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		if wordTotal[w] > 0 {
			t.att[w] = float64(maxC) / float64(wordTotal[w])
		}
	}
	t.embs = make(map[hetgraph.NodeID]vec.Vector, len(papers))
	for _, p := range papers {
		t.embs[p] = t.encode(g.Label(p))
	}
	return nil
}

func (t *IDNE) encode(text string) vec.Vector {
	out := vec.New(t.dim)
	var total float64
	for _, w := range textenc.SplitWords(text) {
		a, ok := t.att[w]
		if !ok {
			a = 0.5 // unseen words get neutral attention
		}
		idf := math.Log(1 + float64(t.n)/float64(1+t.df[w]))
		wt := a * idf
		out.Axpy(wt, textenc.SurfaceVector(t.dim, w, t.seed).Float64())
		total += wt
	}
	if total > 0 {
		out.Scale(1 / total)
	}
	return out
}

// QueryPapers implements Method.
func (t *IDNE) QueryPapers(text string, m int) []hetgraph.NodeID {
	return rankByDistance(t.embs, t.encode(text), m)
}
