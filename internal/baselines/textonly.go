package baselines

import (
	"hash/fnv"
	"math"
	"math/rand"

	"expertfind/internal/hetgraph"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// AvgGloVe is the averaged-word-vector baseline [48]: each word gets a
// fixed dense vector (here a deterministic hash projection standing in for
// the GloVe co-occurrence factorisation, per DESIGN.md) and a document is
// the unweighted mean of its word vectors. No subwords, no IDF weighting —
// the weakest dense text representation, as in Table II.
type AvgGloVe struct {
	dim  int
	seed int64
	embs map[hetgraph.NodeID]vec.Vector
}

// NewAvgGloVe returns an unbuilt AvgGloVe baseline of dimension dim.
func NewAvgGloVe(dim int, seed int64) *AvgGloVe { return &AvgGloVe{dim: dim, seed: seed} }

// Name implements Method.
func (a *AvgGloVe) Name() string { return "AvgGloVe" }

// Build embeds every paper of g.
func (a *AvgGloVe) Build(g *hetgraph.Graph) error {
	papers := g.NodesOfType(hetgraph.Paper)
	a.embs = make(map[hetgraph.NodeID]vec.Vector, len(papers))
	for _, p := range papers {
		a.embs[p] = a.encode(g.Label(p))
	}
	return nil
}

// QueryPapers implements Method.
func (a *AvgGloVe) QueryPapers(text string, m int) []hetgraph.NodeID {
	return rankByDistance(a.embs, a.encode(text), m)
}

// encode averages the hash-projected vectors of the document's words.
func (a *AvgGloVe) encode(text string) vec.Vector {
	out := vec.New(a.dim)
	words := textenc.SplitWords(text)
	if len(words) == 0 {
		return out
	}
	for _, w := range words {
		out.Add(wordVector(w, a.dim, a.seed))
	}
	return out.Scale(1 / float64(len(words)))
}

// wordVector returns the deterministic hash-projected vector of a word.
func wordVector(w string, dim int, seed int64) vec.Vector {
	h := fnv.New64a()
	h.Write([]byte(w))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ seed))
	v := vec.New(dim)
	sigma := 1 / math.Sqrt(float64(dim))
	for i := range v {
		v[i] = rng.NormFloat64() * sigma
	}
	return v
}

// SBERT is the frozen pre-trained sentence-encoder baseline [23]: our
// simulated pre-trained document encoder (subword tokenizer, IDF-weighted
// mean pooling) with no structural fine-tuning. It is exactly the encoder
// the paper's method starts from, making the Table II gap attributable to
// the (k,P)-core fine-tuning alone.
type SBERT struct {
	dim  int
	seed int64
	enc  *textenc.Encoder
	embs map[hetgraph.NodeID]vec.Vector
}

// NewSBERT returns an unbuilt SBERT baseline of dimension dim.
func NewSBERT(dim int, seed int64) *SBERT { return &SBERT{dim: dim, seed: seed} }

// Name implements Method.
func (s *SBERT) Name() string { return "SBERT" }

// Build induces a vocabulary over g's corpus and embeds every paper with
// the frozen encoder.
func (s *SBERT) Build(g *hetgraph.Graph) error {
	s.enc = frozenEncoder(g, s.dim, s.seed)
	papers := g.NodesOfType(hetgraph.Paper)
	s.embs = make(map[hetgraph.NodeID]vec.Vector, len(papers))
	for _, p := range papers {
		s.embs[p] = s.enc.Encode(g.Label(p)).Float64()
	}
	return nil
}

// QueryPapers implements Method.
func (s *SBERT) QueryPapers(text string, m int) []hetgraph.NodeID {
	return rankByDistance(s.embs, s.enc.Encode(text).Float64(), m)
}

// Encoder exposes the frozen encoder; the experiment harness uses it as
// the common reference space for the ADS metric.
func (s *SBERT) Encoder() *textenc.Encoder { return s.enc }

// Embeddings exposes the frozen paper representations.
func (s *SBERT) Embeddings() map[hetgraph.NodeID]vec.Vector { return s.embs }
