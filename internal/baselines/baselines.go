// Package baselines implements the seven text-based expert-finding
// comparison methods of §VI-A as faithful algorithmic skeletons (see
// DESIGN.md): three that use only the papers' textual semantics (TFIDF,
// Avg.GloVe-sim, SBERT-sim) and four that embed the homogeneous
// paper-paper graph together with text (TADW-sim, GVNR-t-sim, G2G-sim,
// IDNE-sim). Every baseline retrieves ranked papers with an exhaustive
// scan and ranks all candidate experts — the cost profile the paper's
// PG-Index + TA pipeline is measured against.
package baselines

import (
	"sort"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// Method is a text-based expert-finding baseline. Build runs the offline
// stage over the graph (the corpus is every paper's label); QueryPapers
// returns the m papers most similar to the query text, rank 1 first.
type Method interface {
	Name() string
	Build(g *hetgraph.Graph) error
	QueryPapers(text string, m int) []hetgraph.NodeID
}

// All returns one instance of every baseline with its default
// configuration, in the order of Table II. dim is the embedding dimension
// used by the dense methods; seed drives their deterministic
// initialisation.
func All(dim int, seed int64) []Method {
	return []Method{
		NewTADW(dim, seed),
		NewGVNRT(dim, seed),
		NewG2G(dim, seed),
		NewIDNE(dim, seed),
		NewTFIDF(),
		NewAvgGloVe(dim, seed),
		NewSBERT(dim, seed),
	}
}

// rankByDistance scores every embedded paper against the query vector by
// L2 distance and returns the m closest, rank 1 first — the exhaustive
// retrieval shared by all dense baselines.
func rankByDistance(embs map[hetgraph.NodeID]vec.Vector, q vec.Vector, m int) []hetgraph.NodeID {
	type pd struct {
		p hetgraph.NodeID
		d float64
	}
	all := make([]pd, 0, len(embs))
	for p, e := range embs {
		all = append(all, pd{p, q.L2Sq(e)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].p < all[j].p
	})
	if len(all) > m {
		all = all[:m]
	}
	out := make([]hetgraph.NodeID, len(all))
	for i, x := range all {
		out[i] = x.p
	}
	return out
}

// corpusOf collects every paper's label, in paper order.
func corpusOf(g *hetgraph.Graph) []string {
	papers := g.NodesOfType(hetgraph.Paper)
	out := make([]string, len(papers))
	for i, p := range papers {
		out[i] = g.Label(p)
	}
	return out
}
