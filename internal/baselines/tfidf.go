package baselines

import (
	"math"
	"sort"

	"expertfind/internal/hetgraph"
	"expertfind/internal/textenc"
)

// TFIDF is the bag-of-words baseline [47]: papers and queries are sparse
// TF-IDF vectors and retrieval ranks papers by cosine similarity through an
// inverted index. It captures lexical overlap only.
type TFIDF struct {
	g *hetgraph.Graph
	// postings maps a term to the papers containing it with their
	// normalised tf-idf weights.
	postings map[string][]posting
	// norm holds each paper's vector norm for cosine normalisation.
	norm map[hetgraph.NodeID]float64
	// df holds document frequencies; n is the corpus size.
	df map[string]int
	n  int
}

type posting struct {
	paper  hetgraph.NodeID
	weight float64
}

// NewTFIDF returns an unbuilt TFIDF baseline.
func NewTFIDF() *TFIDF { return &TFIDF{} }

// Name implements Method.
func (t *TFIDF) Name() string { return "TFIDF" }

// Build indexes every paper of g.
func (t *TFIDF) Build(g *hetgraph.Graph) error {
	t.g = g
	papers := g.NodesOfType(hetgraph.Paper)
	t.n = len(papers)
	t.df = map[string]int{}
	counts := make([]map[string]int, len(papers))
	for i, p := range papers {
		tf := map[string]int{}
		for _, w := range textenc.SplitWords(g.Label(p)) {
			tf[w]++
		}
		counts[i] = tf
		for w := range tf {
			t.df[w]++
		}
	}
	t.postings = map[string][]posting{}
	t.norm = make(map[hetgraph.NodeID]float64, len(papers))
	for i, p := range papers {
		var sq float64
		for w, c := range counts[i] {
			wt := t.weight(w, c)
			sq += wt * wt
			t.postings[w] = append(t.postings[w], posting{paper: p, weight: wt})
		}
		t.norm[p] = math.Sqrt(sq)
	}
	return nil
}

// weight is the classic ltc weighting: (1+log tf) · idf.
func (t *TFIDF) weight(term string, tf int) float64 {
	df := t.df[term]
	if df == 0 || tf == 0 {
		return 0
	}
	return (1 + math.Log(float64(tf))) * math.Log(float64(t.n)/float64(df))
}

// QueryPapers returns the m papers with the highest cosine similarity to
// the query text.
func (t *TFIDF) QueryPapers(text string, m int) []hetgraph.NodeID {
	qtf := map[string]int{}
	for _, w := range textenc.SplitWords(text) {
		qtf[w]++
	}
	scores := map[hetgraph.NodeID]float64{}
	var qsq float64
	for w, c := range qtf {
		qw := t.weight(w, c)
		if qw == 0 {
			continue
		}
		qsq += qw * qw
		for _, po := range t.postings[w] {
			scores[po.paper] += qw * po.weight
		}
	}
	qn := math.Sqrt(qsq)
	type ps struct {
		p hetgraph.NodeID
		s float64
	}
	all := make([]ps, 0, len(scores))
	for p, s := range scores {
		d := t.norm[p] * qn
		if d > 0 {
			all = append(all, ps{p, s / d})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].p < all[j].p
	})
	if len(all) > m {
		all = all[:m]
	}
	out := make([]hetgraph.NodeID, len(all))
	for i, x := range all {
		out[i] = x.p
	}
	return out
}
