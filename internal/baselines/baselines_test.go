package baselines

import (
	"math/rand"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.AminerSim(200))
}

func TestAllBaselinesBuildAndRetrieve(t *testing.T) {
	ds := testDataset(t)
	g := ds.Graph
	rng := rand.New(rand.NewSource(1))
	queries := ds.Queries(3, rng)
	names := map[string]bool{}
	for _, m := range All(24, 7) {
		if names[m.Name()] {
			t.Fatalf("duplicate baseline name %q", m.Name())
		}
		names[m.Name()] = true
		if err := m.Build(g); err != nil {
			t.Fatalf("%s: build: %v", m.Name(), err)
		}
		for _, q := range queries {
			papers := m.QueryPapers(q.Text, 15)
			if len(papers) != 15 {
				t.Fatalf("%s: retrieved %d papers, want 15", m.Name(), len(papers))
			}
			seen := map[hetgraph.NodeID]bool{}
			for _, p := range papers {
				if g.Type(p) != hetgraph.Paper {
					t.Fatalf("%s returned a non-paper node", m.Name())
				}
				if seen[p] {
					t.Fatalf("%s returned duplicate paper %d", m.Name(), p)
				}
				seen[p] = true
			}
		}
	}
	want := []string{"TADW", "GVNR-t", "G2G", "IDNE", "TFIDF", "AvgGloVe", "SBERT"}
	for _, n := range want {
		if !names[n] {
			t.Errorf("baseline %q missing from All()", n)
		}
	}
}

func TestRankByDistanceExact(t *testing.T) {
	embs := map[hetgraph.NodeID]vec.Vector{
		1: {0, 0}, 2: {1, 0}, 3: {5, 5},
	}
	got := rankByDistance(embs, vec.Vector{0.1, 0}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("rankByDistance = %v, want [1 2]", got)
	}
}

func TestTFIDFExactMatchFirst(t *testing.T) {
	g := hetgraph.New()
	p1 := g.AddNode(hetgraph.Paper, "community search over big graphs")
	p2 := g.AddNode(hetgraph.Paper, "neural machine translation systems")
	p3 := g.AddNode(hetgraph.Paper, "community detection algorithms")
	tf := NewTFIDF()
	if err := tf.Build(g); err != nil {
		t.Fatal(err)
	}
	got := tf.QueryPapers("community search over big graphs", 3)
	if len(got) == 0 || got[0] != p1 {
		t.Errorf("exact duplicate not first: %v", got)
	}
	// A query with no overlapping terms returns nothing.
	if got := tf.QueryPapers("zzz qqq", 3); len(got) != 0 {
		t.Errorf("no-overlap query returned %v", got)
	}
	_ = p2
	_ = p3
}

func TestTFIDFPrefersRareTerms(t *testing.T) {
	g := hetgraph.New()
	// "shared" appears everywhere; "unique" only in p1.
	p1 := g.AddNode(hetgraph.Paper, "shared unique")
	g.AddNode(hetgraph.Paper, "shared alpha")
	g.AddNode(hetgraph.Paper, "shared beta")
	tf := NewTFIDF()
	if err := tf.Build(g); err != nil {
		t.Fatal(err)
	}
	got := tf.QueryPapers("unique", 1)
	if len(got) != 1 || got[0] != p1 {
		t.Errorf("rare-term query = %v, want [p1]", got)
	}
}

func TestSBERTFrozenEncoderShared(t *testing.T) {
	ds := testDataset(t)
	g := ds.Graph
	s1 := NewSBERT(24, 7)
	s2 := NewSBERT(24, 7)
	if err := s1.Build(g); err != nil {
		t.Fatal(err)
	}
	if err := s2.Build(g); err != nil {
		t.Fatal(err)
	}
	if s1.Encoder() != s2.Encoder() {
		t.Error("frozen encoder not memoised per (graph, dim, seed)")
	}
	if len(s1.Embeddings()) != g.NumNodesOfType(hetgraph.Paper) {
		t.Error("SBERT did not embed all papers")
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	ds := testDataset(t)
	g := ds.Graph
	q := ds.Queries(1, rand.New(rand.NewSource(2)))[0]
	for _, build := range []func() Method{
		func() Method { return NewTADW(24, 7) },
		func() Method { return NewGVNRT(24, 7) },
		func() Method { return NewG2G(24, 7) },
		func() Method { return NewIDNE(24, 7) },
		func() Method { return NewTFIDF() },
		func() Method { return NewAvgGloVe(24, 7) },
	} {
		m1 := build()
		m2 := build()
		if err := m1.Build(g); err != nil {
			t.Fatal(err)
		}
		if err := m2.Build(g); err != nil {
			t.Fatal(err)
		}
		a := m1.QueryPapers(q.Text, 10)
		b := m2.QueryPapers(q.Text, 10)
		if len(a) != len(b) {
			t.Fatalf("%s nondeterministic lengths", m1.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s nondeterministic at rank %d", m1.Name(), i)
			}
		}
	}
}

func TestGraphBaselinesUseStructure(t *testing.T) {
	// TADW's paper embeddings must differ from the frozen text encoding
	// (graph smoothing must actually do something).
	ds := testDataset(t)
	g := ds.Graph
	tadw := NewTADW(24, 7)
	if err := tadw.Build(g); err != nil {
		t.Fatal(err)
	}
	sb := NewSBERT(24, 7)
	if err := sb.Build(g); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		a, b := tadw.embs[p], sb.Embeddings()[p]
		if a.L2(b) > 1e-9 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("TADW embeddings identical to text-only embeddings")
	}
}

func TestHomoNeighborsCapAndDedup(t *testing.T) {
	ds := testDataset(t)
	g := ds.Graph
	for _, p := range g.NodesOfType(hetgraph.Paper)[:20] {
		ns := homoNeighbors(g, p, allMetaPaths)
		if len(ns) > maxHomoNeighbors {
			t.Fatalf("paper %d has %d homo neighbours, cap %d", p, len(ns), maxHomoNeighbors)
		}
		seen := map[hetgraph.NodeID]bool{}
		for _, q := range ns {
			if seen[q] {
				t.Fatalf("duplicate neighbour %d", q)
			}
			seen[q] = true
			if q == p {
				t.Fatal("self in neighbours")
			}
		}
	}
}

func TestIDNEAttentionFavoursTopicalWords(t *testing.T) {
	ds := testDataset(t)
	g := ds.Graph
	idne := NewIDNE(24, 7)
	if err := idne.Build(g); err != nil {
		t.Fatal(err)
	}
	if len(idne.att) == 0 {
		t.Fatal("no attention weights learned")
	}
	for w, a := range idne.att {
		if a < 0 || a > 1.0000001 {
			t.Fatalf("attention of %q = %v outside [0,1]", w, a)
		}
	}
}
