package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/obs"
	"expertfind/internal/serve"
)

// keepAll retains every offered trace (subject only to ring capacity),
// so assertions never race the sampling rules.
func keepAll() obs.TracePolicy {
	return obs.TracePolicy{Capacity: 128, SlowestN: -1, SampleEvery: 1}
}

// tracedTopology is a cluster deployment with trace stores attached on
// the router and on every shard replica.
type tracedTopology struct {
	routerURL   string
	router      *Router
	shardStores []*obs.TraceStore // one per (shard, replica), row-major
}

// startTracedTopology mirrors startTopology but wires a trace store into
// the router and each shard server, the way expertserve does with
// -trace-capacity set.
func startTracedTopology(t *testing.T, eng *core.Engine, shards int, rcfg RouterConfig,
	ccfg ClientConfig, replicasPerShard map[int]int) *tracedTopology {
	t.Helper()
	out := &tracedTopology{}
	addrs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		se, err := NewShardEngine(eng, ShardConfig{ID: i, Of: shards})
		if err != nil {
			t.Fatal(err)
		}
		reps := 1
		if replicasPerShard != nil && replicasPerShard[i] > 0 {
			reps = replicasPerShard[i]
		}
		for r := 0; r < reps; r++ {
			srv := serve.New(eng)
			srv.SetReady(true)
			srv.Traces = obs.NewTraceStore(keepAll(), srv.Registry())
			MountShard(srv, se)
			ts := httptest.NewServer(srv)
			t.Cleanup(ts.Close)
			addrs[i] = append(addrs[i], strings.TrimPrefix(ts.URL, "http://"))
			out.shardStores = append(out.shardStores, srv.Traces)
		}
	}
	reg := obs.NewRegistry()
	client, err := NewShardClient(addrs, ccfg, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(client, rcfg, reg, nil)
	router.Traces = obs.NewTraceStore(keepAll(), reg)
	rs := httptest.NewServer(router)
	t.Cleanup(rs.Close)
	out.routerURL = rs.URL
	out.router = router
	return out
}

// queryExpertsDebug is queryExperts with ?debug=1 set, so the response
// carries the trace id.
func queryExpertsDebug(t *testing.T, base, q string, m, n int) serve.ExpertsResponse {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/experts?q=%s&m=%d&n=%d&debug=1",
		base, url.QueryEscape(q), m, n))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: status %d: %s", q, resp.StatusCode, b)
	}
	var er serve.ExpertsResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("query %q: bad payload: %v", q, err)
	}
	return er
}

// TestTraceRequestIDForwarded is the regression test for the fan-out
// header gap: the router's request ID and trace context must reach the
// shard on every sub-request, with span collection asked for only when
// the context carries the collect flag.
func TestTraceRequestIDForwarded(t *testing.T) {
	var mu sync.Mutex
	var got []http.Header
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, r.Header.Clone())
		mu.Unlock()
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	client, err := NewShardClient([][]string{{strings.TrimPrefix(ts.URL, "http://")}},
		ClientConfig{HedgeAfter: -1}, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.WithValue(context.Background(), requestIDKey{}, "req-abc123")
	sctx, span := obs.StartSpan(ctx, "query")
	if _, err := client.Get(sctx, 0, "/shard/papers?q=x&m=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(withCollect(sctx), 0, "/shard/papers?q=x&m=1"); err != nil {
		t.Fatal(err)
	}
	span.End()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("shard saw %d requests, want 2", len(got))
	}
	for i, h := range got {
		if id := h.Get("X-Request-ID"); id != "req-abc123" {
			t.Errorf("request %d: X-Request-ID = %q, want req-abc123", i, id)
		}
		tc, ok := obs.ParseTraceContext(h.Get(obs.TraceHeader))
		if !ok {
			t.Fatalf("request %d: missing or bad %s: %q", i, obs.TraceHeader, h.Get(obs.TraceHeader))
		}
		if tc.Trace != span.TraceID() {
			t.Errorf("request %d: trace id %s, want %s", i, tc.Trace, span.TraceID())
		}
	}
	if got[0].Get(obs.CollectHeader) != "" {
		t.Error("collect header sent without the collect flag")
	}
	if got[1].Get(obs.CollectHeader) != "1" {
		t.Error("collect header missing with the collect flag set")
	}
}

// TestBudgetContext covers the shard-side budget header edge cases.
func TestBudgetContext(t *testing.T) {
	mkReq := func(budget string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/shard/papers", nil)
		if budget != "" {
			r.Header.Set(BudgetHeader, budget)
		}
		return r
	}

	// Missing, zero, negative and non-numeric budgets leave the context
	// unbounded rather than guessing a deadline.
	for _, budget := range []string{"", "0", "-50", "soon", "12.5"} {
		ctx, cancel := budgetContext(context.Background(), mkReq(budget))
		if _, ok := ctx.Deadline(); ok {
			t.Errorf("budget %q: unexpected deadline", budget)
		}
		cancel()
	}

	// A positive budget bounds the context.
	ctx, cancel := budgetContext(context.Background(), mkReq("250"))
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("budget 250: no deadline")
	}
	if until := time.Until(dl); until <= 0 || until > 250*time.Millisecond {
		t.Fatalf("budget 250: deadline %v away", until)
	}
	cancel()

	// A budget LONGER than the caller's remaining deadline must not
	// extend it: the tighter bound wins.
	parent, pcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer pcancel()
	pdl, _ := parent.Deadline()
	ctx, cancel = budgetContext(parent, mkReq("10000"))
	defer cancel()
	dl, ok = ctx.Deadline()
	if !ok {
		t.Fatal("no deadline with bounded parent")
	}
	if dl.After(pdl) {
		t.Fatalf("budget extended the parent deadline: %v > %v", dl, pdl)
	}
}

// TestTraceAssemblyAcrossCluster is the tentpole's end-to-end check over
// real loopback HTTP: one query through router + 3 shards yields ONE
// assembled trace — a single trace id shared by the router's spans and
// every shard's grafted subtree, with deepening rounds visible — while
// rankings stay bit-identical to single node.
func TestTraceAssemblyAcrossCluster(t *testing.T) {
	ds, eng := equivEngine(t)
	q := ds.Queries(1, rand.New(rand.NewSource(21)))[0]
	const m, n, shards = 40, 10, 3

	// InitialLimit 1 forces at least one deepening round into the trace.
	topo := startTracedTopology(t, eng, shards, RouterConfig{InitialLimit: 1}, ClientConfig{}, nil)

	want, _, err := eng.TopExperts(q.Text, m, n)
	if err != nil {
		t.Fatal(err)
	}
	got := queryExpertsDebug(t, topo.routerURL, q.Text, m, n)
	assertSameRanking(t, q.Text, got, want)

	if got.Debug == nil || got.Debug.TraceID == "" {
		t.Fatalf("debug=1 response carries no trace id: %+v", got.Debug)
	}
	traceID := got.Debug.TraceID
	if len(got.Debug.Stages) == 0 {
		t.Fatal("debug=1 response has no stage breakdown")
	}

	// The assembled trace is retrievable from the router by id.
	resp, err := http.Get(topo.routerURL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/%s: status %d: %s", traceID, resp.StatusCode, body)
	}
	var tr serve.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("bad trace payload: %v", err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("router holds %d records for the trace, want 1", len(tr.Records))
	}
	rec := tr.Records[0]
	if rec.TraceID != traceID || rec.Root.Name != "query" {
		t.Fatalf("unexpected record: trace=%s root=%q", rec.TraceID, rec.Root.Name)
	}
	if rec.Kept != obs.KeepDeepen {
		t.Fatalf("kept = %q, want %q (InitialLimit 1 forces deepening)", rec.Kept, obs.KeepDeepen)
	}

	// Router-side structure: scatter stages with per-round spans.
	if rec.Root.Find("scatter_papers") == nil {
		t.Fatal("assembled trace missing scatter_papers span")
	}
	rounds := map[string]bool{}
	walkNodes(rec.Root, func(nd obs.SpanNode) {
		if nd.Name == "scatter_experts" {
			rounds[nd.Attrs["round"]] = true
		}
	})
	if len(rounds) < 2 {
		t.Fatalf("assembled trace shows %d scatter_experts rounds, want >= 2 (%v)", len(rounds), rounds)
	}

	// Every shard's subtree is grafted in, carrying its shard attr and
	// its own pipeline spans (encode/search under shard_papers).
	seen := map[string]bool{}
	walkNodes(rec.Root, func(nd obs.SpanNode) {
		if nd.Name == "shard_papers" || nd.Name == "shard_experts" {
			seen[nd.Name+"/"+nd.Attrs["shard"]] = true
		}
	})
	for i := 0; i < shards; i++ {
		is := strconv.Itoa(i)
		if !seen["shard_papers/"+is] {
			t.Errorf("no grafted shard_papers subtree for shard %d (saw %v)", i, seen)
		}
		if !seen["shard_experts/"+is] {
			t.Errorf("no grafted shard_experts subtree for shard %d (saw %v)", i, seen)
		}
	}
	if sp := rec.Root.Find("shard_papers"); sp != nil && sp.Find("search") == nil {
		t.Error("grafted shard subtree lost its pipeline spans")
	}

	// Cross-node identity: each shard's own trace store retains records
	// under the SAME trace id — the header propagated, nothing re-minted.
	for i, store := range topo.shardStores {
		recs := store.Get(traceID)
		if len(recs) == 0 {
			t.Errorf("shard server %d has no records for trace %s", i, traceID)
			continue
		}
		for _, sr := range recs {
			if sr.Root.ParentID == "" {
				t.Errorf("shard record root has no parent span: joined the wrong trace")
			}
		}
	}

	// The trace index lists the query.
	iresp, err := http.Get(topo.routerURL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer iresp.Body.Close()
	var idx serve.TraceIndexResponse
	if err := json.NewDecoder(iresp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range idx.Traces {
		if s.TraceID == traceID {
			found = true
			if s.Route != "/experts" || s.Query == "" {
				t.Errorf("index summary incomplete: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from index (%d entries)", traceID, idx.Count)
	}
}

// TestTraceHedgeVisible forces a hedge on two-replica shards and checks
// it surfaces as a sibling rpc span with the hedge attr, and that the
// trace is kept under the hedge rule.
func TestTraceHedgeVisible(t *testing.T) {
	ds, eng := equivEngine(t)
	q := ds.Queries(1, rand.New(rand.NewSource(33)))[0]
	const m, n = 40, 10

	// HedgeAfter of 1ns hedges every sub-request against the second
	// replica; rankings must be unaffected (replicas are identical).
	// EjectAfter 1 arms the ejection-regression check below: if losing a
	// hedge race counted as a replica failure, a single query would eject
	// the loser.
	topo := startTracedTopology(t, eng, 2, RouterConfig{},
		ClientConfig{HedgeAfter: time.Nanosecond, EjectAfter: 1}, map[int]int{0: 2, 1: 2})

	want, _, err := eng.TopExperts(q.Text, m, n)
	if err != nil {
		t.Fatal(err)
	}
	got := queryExpertsDebug(t, topo.routerURL, q.Text, m, n)
	assertSameRanking(t, q.Text, got, want)

	// Cancelled hedge losers must not advance the replica failure streak:
	// every replica stays alive after hedged queries.
	hresp, err := http.Get(topo.routerURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var rh RouterHealth
	if err := json.NewDecoder(hresp.Body).Decode(&rh); err != nil {
		t.Fatal(err)
	}
	for shard, alive := range rh.AliveReplicas {
		if alive != 2 {
			t.Fatalf("shard %d has %d alive replicas after hedging, want 2 (hedge losers counted as failures?)", shard, alive)
		}
	}

	if got.Debug == nil || got.Debug.TraceID == "" {
		t.Fatal("debug=1 response carries no trace id")
	}
	recs := topo.router.Traces.Get(got.Debug.TraceID)
	if len(recs) != 1 {
		t.Fatalf("router holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Root.HasAttr("hedge") {
		t.Fatal("no hedged rpc span in the assembled trace")
	}
	if rec.Kept != obs.KeepHedged {
		t.Fatalf("kept = %q, want %q", rec.Kept, obs.KeepHedged)
	}
	hedges := 0
	walkNodes(rec.Root, func(nd obs.SpanNode) {
		if nd.Name == "rpc" && nd.Attrs["hedge"] == "1" {
			hedges++
		}
	})
	if hedges == 0 {
		t.Fatal("hedge attr present but on no rpc span")
	}
}

// TestTraceHedgeLoserSpanClosed: when a hedge race resolves, the losing
// attempt's span must be closed — with a cancelled mark — before the
// fan-out returns, because the caller can serialize the trace tree
// immediately afterwards and an open span would show a still-running
// clock there.
func TestTraceHedgeLoserSpanClosed(t *testing.T) {
	newReplica := func(delay time.Duration) string {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
			w.Write([]byte("{}"))
		}))
		t.Cleanup(ts.Close)
		return strings.TrimPrefix(ts.URL, "http://")
	}
	// Whichever replica is picked as primary, the fast one wins the race
	// and the slow one is abandoned mid-sleep.
	fast := newReplica(30 * time.Millisecond)
	slow := newReplica(500 * time.Millisecond)

	client, err := NewShardClient([][]string{{fast, slow}},
		ClientConfig{HedgeAfter: 5 * time.Millisecond}, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sctx, root := obs.StartSpan(context.Background(), "query")
	if _, err := client.Get(sctx, 0, "/shard/papers?q=x&m=1"); err != nil {
		t.Fatal(err)
	}
	root.End()

	// Serialize well after the win but while the loser handler is still
	// sleeping: an un-closed loser span would export a running clock.
	time.Sleep(150 * time.Millisecond)
	var rpcs []obs.SpanNode
	walkNodes(root.Tree(), func(nd obs.SpanNode) {
		if nd.Name == "rpc" {
			rpcs = append(rpcs, nd)
		}
	})
	if len(rpcs) != 2 {
		t.Fatalf("%d rpc spans, want 2 (primary + hedge)", len(rpcs))
	}
	cancelled := 0
	for _, nd := range rpcs {
		if nd.Attrs["cancelled"] != "1" {
			continue
		}
		cancelled++
		if d := time.Duration(nd.DurationNano); d > 120*time.Millisecond {
			t.Errorf("cancelled rpc span duration %v: clock not frozen at cancellation", d)
		}
	}
	if cancelled != 1 {
		t.Fatalf("%d cancelled rpc spans, want exactly 1 (the hedge loser): %+v", cancelled, rpcs)
	}
}

// walkNodes visits a span tree pre-order.
func walkNodes(n obs.SpanNode, f func(obs.SpanNode)) {
	f(n)
	for _, c := range n.Children {
		walkNodes(c, f)
	}
}
