package cluster

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// faultGate wraps a shard handler with switchable failure modes: while
// broken it answers 500 to everything (including /readyz, so probes see
// it down too); while slowed it delays every response.
type faultGate struct {
	inner  http.Handler
	broken atomic.Bool
	delay  atomic.Int64 // nanoseconds
}

func (f *faultGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := f.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if f.broken.Load() {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func scrapeMetrics(t *testing.T, routerURL string) string {
	t.Helper()
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	return string(b)
}

func waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicaEjectionAndReadmission is the acceptance fault test: with
// one replica of a shard failing mid-query, scatter-gather must keep
// returning correct results within the deadline, the bad replica must be
// ejected after consecutive failures, a probe must re-admit it once it
// heals, and the eject/readmit counters must be visible on /metrics.
func TestReplicaEjectionAndReadmission(t *testing.T) {
	ds, eng := equivEngine(t)
	queries := ds.Queries(6, rand.New(rand.NewSource(21)))
	const m, n = 40, 10

	var gate *faultGate
	topo := startTopology(t, eng, 2,
		RouterConfig{QueryTimeout: 10 * time.Second},
		ClientConfig{
			Retries:       2,
			RetryBackoff:  time.Millisecond,
			HedgeAfter:    -1, // isolate the retry/eject path
			EjectAfter:    2,
			ProbeInterval: 20 * time.Millisecond,
		},
		map[int]int{0: 2},
		func(shard, rep int, inner http.Handler) http.Handler {
			if shard == 0 && rep == 1 {
				gate = &faultGate{inner: inner}
				return gate
			}
			return inner
		})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	topo.client.StartProbes(ctx)

	// Break the replica mid-operation, then query through the failure.
	gate.broken.Store(true)
	for _, q := range queries {
		want, _, err := eng.TopExperts(q.Text, m, n)
		if err != nil {
			t.Fatal(err)
		}
		got := queryExperts(t, topo.routerURL, q.Text, m, n)
		assertSameRanking(t, q.Text, got, want)
	}
	waitFor(t, "replica ejection", 2*time.Second, func() bool {
		return topo.client.AliveReplicas()[0] == 1
	})

	mtx := scrapeMetrics(t, topo.routerURL)
	for _, name := range []string{
		"expertfind_cluster_ejections_total",
		"expertfind_cluster_retries_total",
		"expertfind_cluster_replicas_alive",
	} {
		if !strings.Contains(mtx, name) {
			t.Errorf("/metrics is missing %s after an ejection", name)
		}
	}

	// Heal the replica; the background probe must re-admit it.
	gate.broken.Store(false)
	waitFor(t, "probe re-admission", 2*time.Second, func() bool {
		return topo.client.AliveReplicas()[0] == 2
	})
	if !strings.Contains(scrapeMetrics(t, topo.routerURL), "expertfind_cluster_readmissions_total") {
		t.Error("/metrics is missing expertfind_cluster_readmissions_total after re-admission")
	}

	// And the topology serves correctly again on both replicas.
	q := queries[0]
	want, _, err := eng.TopExperts(q.Text, m, n)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, q.Text, queryExperts(t, topo.routerURL, q.Text, m, n), want)
}

// TestHedgedRequests checks the tail-latency path: a slow replica must
// trigger a hedge to its peer after the configured delay, the hedge must
// win, and the hedge counters must reach /metrics.
func TestHedgedRequests(t *testing.T) {
	ds, eng := equivEngine(t)
	queries := ds.Queries(6, rand.New(rand.NewSource(33)))
	const m, n = 40, 10

	var gate *faultGate
	topo := startTopology(t, eng, 2,
		RouterConfig{QueryTimeout: 10 * time.Second},
		ClientConfig{
			HedgeAfter:   5 * time.Millisecond,
			RetryBackoff: time.Millisecond,
		},
		map[int]int{0: 2},
		func(shard, rep int, inner http.Handler) http.Handler {
			if shard == 0 && rep == 0 {
				gate = &faultGate{inner: inner}
				return gate
			}
			return inner
		})

	gate.delay.Store(int64(200 * time.Millisecond))
	for _, q := range queries {
		want, _, err := eng.TopExperts(q.Text, m, n)
		if err != nil {
			t.Fatal(err)
		}
		got := queryExperts(t, topo.routerURL, q.Text, m, n)
		assertSameRanking(t, q.Text, got, want)
	}

	mtx := scrapeMetrics(t, topo.routerURL)
	if !strings.Contains(mtx, "expertfind_cluster_hedges_total") {
		t.Fatal("/metrics is missing expertfind_cluster_hedges_total; no hedge fired")
	}
	if !strings.Contains(mtx, "expertfind_cluster_hedge_wins_total") {
		t.Error("/metrics is missing expertfind_cluster_hedge_wins_total; hedges never won")
	}
}

// TestWholeShardDownIs502 pins the correctness-over-availability choice:
// when every replica of a shard is failing, the router must refuse with
// 502 rather than return a silently partial merge.
func TestWholeShardDownIs502(t *testing.T) {
	ds, eng := equivEngine(t)
	q := ds.Queries(1, rand.New(rand.NewSource(5)))[0]

	var gate *faultGate
	topo := startTopology(t, eng, 2,
		RouterConfig{QueryTimeout: 5 * time.Second},
		ClientConfig{Retries: 1, RetryBackoff: time.Millisecond, HedgeAfter: -1},
		nil,
		func(shard, rep int, inner http.Handler) http.Handler {
			if shard == 1 {
				gate = &faultGate{inner: inner}
				return gate
			}
			return inner
		})

	gate.broken.Store(true)
	resp, err := http.Get(topo.routerURL + "/experts?q=" + strings.ReplaceAll(q.Text, " ", "+") + "&m=40&n=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("whole shard down: got status %d, want 502", resp.StatusCode)
	}
	if !strings.Contains(scrapeMetrics(t, topo.routerURL), "expertfind_cluster_shard_unavailable_total") {
		t.Error("/metrics is missing expertfind_cluster_shard_unavailable_total")
	}
	if !strings.Contains(scrapeMetrics(t, topo.routerURL), "expertfind_cluster_fanout_errors_total") {
		t.Error("/metrics is missing expertfind_cluster_fanout_errors_total")
	}

	// Heal: the same query must immediately succeed again.
	gate.broken.Store(false)
	want, _, err := eng.TopExperts(q.Text, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, q.Text, queryExperts(t, topo.routerURL, q.Text, 40, 10), want)
}
