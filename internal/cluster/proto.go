package cluster

import "expertfind/internal/obs"

// The internal shard wire protocol. Two round trips serve one /experts
// query:
//
//  1. GET /shard/papers?q=<text>&m=<count>[&meta=1] — each shard retrieves
//     the top-m papers among the papers it OWNS, with exact distances. The
//     router merges all shards' lists by (distance, id) into the global
//     top-m and assigns global ranks 1..m.
//
//  2. POST /shard/experts {papers: [(id, global rank)], limit: t} — each
//     shard scores the experts of its owned retrieved papers and returns
//     its top-t partial list plus the largest score it omitted
//     (Threshold), the raw material of ta.MergePartials.
//
// Expert and paper ids on the wire are GLOBAL: every process builds the
// same deterministic engine over the same corpus, so node ids agree
// everywhere and no translation tables are needed in the hot path.

// WirePaper is one retrieved paper in a /shard/papers response. Dist is
// the exact L2 distance to the encoded query; JSON round-trips float64
// losslessly (shortest-form encoding), so cross-shard merge order is
// decided on the same bits the shard computed.
type WirePaper struct {
	ID   int32   `json:"id"`
	Dist float64 `json:"dist"`
	// Text and Authors are filled only when the request asked for
	// metadata (meta=1) — the router's /papers needs them, the /experts
	// round 1 does not.
	Text    string   `json:"text,omitempty"`
	Authors []string `json:"authors,omitempty"`
}

// PapersResponse is the /shard/papers payload.
type PapersResponse struct {
	Shard  int         `json:"shard"`
	Papers []WirePaper `json:"papers"`
	// Trace is the shard's completed span tree for this sub-request,
	// present only when the router asked for collection (X-Trace-Collect)
	// — the raw material it grafts into the assembled per-query trace.
	Trace *obs.SpanNode `json:"trace,omitempty"`
}

// RankedPaper names one globally ranked retrieved paper in a
// /shard/experts request. Rank is 1-based over the merged global list.
type RankedPaper struct {
	ID   int32 `json:"id"`
	Rank int   `json:"rank"`
}

// ExpertsRequest is the POST /shard/experts body. Papers must all be
// owned by the receiving shard. Limit bounds the returned partial list;
// <= 0 asks for the complete list (Exhausted response).
type ExpertsRequest struct {
	Papers []RankedPaper `json:"papers"`
	Limit  int           `json:"limit"`
}

// Contribution is one per-paper term of an expert's partial score:
// S(a, p) of Eq. 4 for the owned paper at global rank Rank. The router
// re-sums an expert's contributions from all shards in ascending global
// rank — the exact float summation order of single-node ta.TopExperts —
// so merged scores are bit-identical to the single-node path.
type Contribution struct {
	Rank int     `json:"rank"`
	S    float64 `json:"s"`
}

// WireExpert is one entry of a shard's partial expert list.
type WireExpert struct {
	ID int32 `json:"id"`
	// Score is the shard-local partial sum, the ordering/threshold key.
	Score float64 `json:"score"`
	// Name and Papers carry response metadata (author label, total
	// authored papers) so the router can render results without a corpus.
	Name   string `json:"name"`
	Papers int    `json:"papers"`
	// Contribs lists the per-paper terms of Score, ascending by rank.
	Contribs []Contribution `json:"contribs"`
}

// ShardExpertsResponse is the /shard/experts payload: the shard's partial
// top list (score descending, id ascending), truncated to the requested
// limit, plus the bound information ta.MergePartials needs.
type ShardExpertsResponse struct {
	Shard   int          `json:"shard"`
	Experts []WireExpert `json:"experts"`
	// Threshold is the largest partial score omitted by truncation
	// (0 when Exhausted).
	Threshold float64 `json:"threshold"`
	// Exhausted reports the list is complete: every expert with a
	// non-zero partial score on this shard is present.
	Exhausted bool `json:"exhausted"`
	// Candidates counts distinct experts over the shard's owned papers,
	// before truncation.
	Candidates int `json:"candidates"`
	// Trace is the shard's completed span tree for this sub-request,
	// present only when the router asked for collection (X-Trace-Collect).
	Trace *obs.SpanNode `json:"trace,omitempty"`
}
