package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"expertfind/internal/core"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/pgindex"
	"expertfind/internal/ta"
	"expertfind/internal/vec"
)

// ShardConfig configures one shard's serving state.
type ShardConfig struct {
	// ID and Of place this shard in the topology: it owns the papers p
	// with AssignShard(p, Of) == ID.
	ID, Of int
	// Index configures the per-shard PG-Index build (typically the same
	// config the engine was built with, seed included — determinism makes
	// every replica of this shard byte-identical).
	Index pgindex.Config
	// UsePGIndex selects approximate per-shard retrieval; false scans the
	// owned embeddings exactly (required by the equivalence tests: exact
	// per-shard top-m lists merge into exactly the single-node top-m).
	UsePGIndex bool
	// EF is the PG-Index search pool size (0: 2m).
	EF int
}

// ShardEngine restricts a full engine to one shard's owned papers. The
// engine itself is the complete deterministic build over the whole
// corpus — the document encoder is corpus-trained, so every process must
// hold the same model for embeddings (and therefore distances and ranks)
// to agree across the cluster. What the shard restricts is the SERVING
// state: retrieval searches only the owned embeddings, and expert scoring
// sums only over owned papers.
type ShardEngine struct {
	eng   *core.Engine
	cfg   ShardConfig
	owned map[hetgraph.NodeID]bool
	embs  map[hetgraph.NodeID]vec.Vec32
	index *pgindex.Index
}

// NewShardEngine carves shard cfg.ID's serving state out of a built
// engine: the owned embedding subset and, when cfg.UsePGIndex, a
// deterministic PG-Index over just those embeddings.
func NewShardEngine(eng *core.Engine, cfg ShardConfig) (*ShardEngine, error) {
	if cfg.Of < 1 || cfg.ID < 0 || cfg.ID >= cfg.Of {
		return nil, fmt.Errorf("cluster: invalid shard id %d of %d", cfg.ID, cfg.Of)
	}
	se := &ShardEngine{
		eng:   eng,
		cfg:   cfg,
		owned: map[hetgraph.NodeID]bool{},
		embs:  map[hetgraph.NodeID]vec.Vec32{},
	}
	for _, p := range eng.Graph().NodesOfType(hetgraph.Paper) {
		if AssignShard(p, cfg.Of) != cfg.ID {
			continue
		}
		se.owned[p] = true
		if e, ok := eng.Embeddings[p]; ok {
			se.embs[p] = e
		}
	}
	if cfg.UsePGIndex {
		se.index = pgindex.BuildWithRand(se.embs, cfg.Index,
			rand.New(rand.NewSource(cfg.Index.Seed)))
	}
	return se, nil
}

// ID returns the shard's position in the topology.
func (se *ShardEngine) ID() int { return se.cfg.ID }

// Of returns the topology's shard count.
func (se *ShardEngine) Of() int { return se.cfg.Of }

// NumOwned returns how many papers this shard owns.
func (se *ShardEngine) NumOwned() int { return len(se.owned) }

// Owns reports whether paper p belongs to this shard.
func (se *ShardEngine) Owns(p hetgraph.NodeID) bool { return se.owned[p] }

// Engine exposes the underlying full engine (for serving /healthz etc.).
func (se *ShardEngine) Engine() *core.Engine { return se.eng }

// Retrieve returns the top-m owned papers for the query text with exact
// L2 distances, sorted (distance ascending, id ascending). Distances come
// from the shared deterministic model, so lists from different shards
// merge under one global order.
func (se *ShardEngine) Retrieve(ctx context.Context, query string, m int) ([]pgindex.Result, error) {
	if m <= 0 {
		return nil, &core.BadParamError{Param: "m", Value: m}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "encode")
	qv := se.eng.EncodeQuery(query)
	sp.End()
	_, sp = obs.StartSpan(ctx, "search")
	defer sp.End()
	if se.index != nil {
		res, _, err := se.index.SearchCtx(ctx, qv, m, se.cfg.EF)
		return res, err
	}
	return pgindex.BruteForce(se.embs, qv, m), nil
}

// ScoreExperts computes the shard's bounded partial expert ranking over
// the given owned papers with their GLOBAL ranks: for each paper at
// global rank j, each author at Zipf position i contributes
// ExpertScore(j, i, numAuthors) to its partial sum.
//
// Per-expert sums accumulate in ascending global rank — the single-node
// summation order — and each entry carries its per-paper contributions so
// the router can extend that order across shards. The returned list is
// sorted (partial score descending, id ascending) and truncated to limit
// (<= 0: complete); Threshold is the largest omitted partial.
func (se *ShardEngine) ScoreExperts(req ExpertsRequest) (ShardExpertsResponse, error) {
	resp := ShardExpertsResponse{Shard: se.cfg.ID}
	g := se.eng.Graph()

	papers := append([]RankedPaper(nil), req.Papers...)
	sort.Slice(papers, func(i, j int) bool { return papers[i].Rank < papers[j].Rank })

	type acc struct {
		sum      float64
		contribs []Contribution
	}
	sums := map[hetgraph.NodeID]*acc{}
	var order []hetgraph.NodeID
	for _, rp := range papers {
		p := hetgraph.NodeID(rp.ID)
		if !se.owned[p] {
			return resp, fmt.Errorf("cluster: paper %d is not owned by shard %d/%d",
				rp.ID, se.cfg.ID, se.cfg.Of)
		}
		if rp.Rank < 1 {
			return resp, fmt.Errorf("cluster: paper %d has invalid rank %d", rp.ID, rp.Rank)
		}
		authors := g.AuthorsOf(p)
		for i, a := range authors {
			s := ta.ExpertScore(rp.Rank, i+1, len(authors))
			e := sums[a]
			if e == nil {
				e = &acc{}
				sums[a] = e
				order = append(order, a)
			}
			e.sum += s
			e.contribs = append(e.contribs, Contribution{Rank: rp.Rank, S: s})
		}
	}
	resp.Candidates = len(order)

	entries := make([]WireExpert, 0, len(order))
	for _, a := range order {
		e := sums[a]
		entries = append(entries, WireExpert{
			ID:       int32(a),
			Score:    e.sum,
			Name:     g.Label(a),
			Papers:   len(g.PapersOf(a)),
			Contribs: e.contribs,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].ID < entries[j].ID
	})

	if req.Limit > 0 && len(entries) > req.Limit {
		resp.Threshold = entries[req.Limit].Score
		entries = entries[:req.Limit]
	} else {
		resp.Exhausted = true
	}
	resp.Experts = entries
	return resp, nil
}

// PaperMeta fills the metadata fields of a WirePaper for /papers
// responses, mirroring the single-node PaperResult shape.
func (se *ShardEngine) PaperMeta(p hetgraph.NodeID) (text string, authors []string) {
	g := se.eng.Graph()
	text = g.Label(p)
	for _, a := range g.AuthorsOf(p) {
		authors = append(authors, g.Label(a))
	}
	return text, authors
}
