package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/serve"
	"expertfind/internal/ta"
)

// RouterConfig tunes the router's query handling.
type RouterConfig struct {
	// DefaultM/DefaultN/MaxM/MaxN mirror the single-node serve bounds.
	DefaultM, DefaultN, MaxM, MaxN int
	// QueryTimeout bounds each query end to end (504 past it); the
	// per-shard budgets of every scatter derive from what remains of it.
	QueryTimeout time.Duration
	// InitialLimit is the per-shard partial-list depth of the first
	// /shard/experts round (0: max(2n, 16)). Each uncertified round
	// quadruples it; past MaxM the router asks for unbounded lists, which
	// always certify.
	InitialLimit int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.DefaultM <= 0 {
		c.DefaultM = 200
	}
	if c.DefaultN <= 0 {
		c.DefaultN = 10
	}
	if c.MaxM <= 0 {
		c.MaxM = 5000
	}
	if c.MaxN <= 0 {
		c.MaxN = 500
	}
	return c
}

// Router is the scatter-gather front of a sharded cluster. It holds no
// corpus: queries fan out to the shard replicas through a ShardClient and
// partial results merge under the distributed threshold bound of
// ta.MergePartials. Responses match the single-node /experts and /papers
// shapes byte for byte, so clients cannot tell the topologies apart.
type Router struct {
	mux    *http.ServeMux
	client *ShardClient
	cfg    RouterConfig
	reg    *obs.Registry
	Log    *obs.Logger
	// Traces, when set, retains assembled cross-node query traces under
	// its tail-based keep rules and serves them on /debug/traces. It also
	// switches span collection on: sub-requests ask shards to return
	// their span trees, which are grafted under the fan-out spans. Set
	// before serving.
	Traces *obs.TraceStore
	// SlowQuery, when positive, logs one structured warn line (with
	// trace id) for every query at least this slow. Set before serving.
	SlowQuery time.Duration

	bootOK atomic.Bool
	ready  atomic.Bool
}

// NewRouter assembles a router over a shard client.
func NewRouter(client *ShardClient, cfg RouterConfig, reg *obs.Registry, log *obs.Logger) *Router {
	if reg == nil {
		reg = obs.Default()
	}
	if log == nil {
		log = obs.NopLogger()
	}
	obs.RegisterCluster(reg)
	rt := &Router{
		mux:    http.NewServeMux(),
		client: client,
		cfg:    cfg.withDefaults(),
		reg:    reg,
		Log:    log,
	}
	rt.ready.Store(true)
	rt.mux.HandleFunc("/experts", rt.handleExperts)
	rt.mux.HandleFunc("/papers", rt.handlePapers)
	rt.mux.HandleFunc("/healthz", rt.handleHealth)
	rt.mux.HandleFunc("/readyz", rt.handleReady)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/debug/vars", rt.handleDebugVars)
	rt.mux.HandleFunc("/debug/traces", rt.handleTraces)
	rt.mux.HandleFunc("/debug/traces/", rt.handleTraces)
	return rt
}

// SetReady flips the router's own readiness contribution (shutdown sets
// it false so probes drain traffic away; shard readiness is evaluated on
// top of it).
func (rt *Router) SetReady(ready bool) { rt.ready.Store(ready) }

// ServeHTTP wraps the routes in the same observability envelope as the
// single-node server: request IDs, per-route latency and status metrics,
// one access-log line per request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	route := "other"
	switch r.URL.Path {
	case "/experts", "/papers", "/healthz", "/readyz", "/metrics", "/debug/vars", "/debug/traces":
		route = r.URL.Path
	}
	if strings.HasPrefix(r.URL.Path, "/debug/traces/") {
		route = "/debug/traces"
	}
	inflight := rt.reg.Gauge("expertfind_http_in_flight", "Requests currently being served.")
	inflight.Add(1)
	sw := &routerStatusWriter{ResponseWriter: w}
	// Propagate the request ID to shard sub-requests through the context,
	// and set up the trace plumbing: the registry for span recording, a
	// capture that hands the query handler's root span back here, and —
	// when a trace store is attached — the collect flag that makes
	// sub-requests ask shards for their span trees.
	ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)
	ctx = obs.WithRegistry(ctx, rt.reg)
	var capture *obs.TraceCapture
	if route == "/experts" || route == "/papers" {
		ctx, capture = obs.WithTraceCapture(ctx)
		if rt.Traces != nil {
			ctx = withCollect(ctx)
		}
	}
	r = r.WithContext(ctx)
	rt.mux.ServeHTTP(sw, r)
	inflight.Add(-1)
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	dur := time.Since(start)
	durMs := float64(dur.Microseconds()) / 1000
	traceID := rt.finishTrace(capture, r, route, sw.code, durMs)
	rt.reg.Counter("expertfind_http_requests_total", "HTTP requests by route and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(sw.code))).Inc()
	rt.reg.Histogram("expertfind_http_request_seconds", "HTTP request latency by route.",
		nil, obs.L("route", route)).ObserveWithExemplar(dur.Seconds(), traceID)
	rt.Log.Info("access", "req_id", reqID, "method", r.Method, "path", r.URL.Path,
		"route", route, "status", sw.code, "bytes", sw.bytes,
		"dur_ms", durMs)
}

// finishTrace offers the assembled trace to the store and emits the
// slow-query log line. Returns the query's trace id, or "".
func (rt *Router) finishTrace(capture *obs.TraceCapture, r *http.Request, route string,
	status int, durMs float64) string {
	if capture == nil {
		return ""
	}
	root := capture.Root()
	if root == nil {
		return ""
	}
	traceID := root.TraceID().String()
	if rt.Traces != nil {
		tree := root.Tree()
		rt.Traces.Add(obs.TraceRecord{
			TraceID:    traceID,
			Route:      route,
			Query:      r.URL.Query().Get("q"),
			Status:     status,
			Start:      root.Start(),
			DurationMs: durMs,
			Root:       tree,
		}, obs.KeepFlags{
			Error:    status >= 500,
			Hedged:   tree.HasAttr("hedge"),
			Deepened: tree.HasAttr("deepened"),
		})
	}
	if rt.SlowQuery > 0 && durMs >= rt.SlowQuery.Seconds()*1000 {
		rt.reg.Counter("expertfind_slow_queries_total",
			"Queries slower than the slow-query log threshold.").Inc()
		rt.Log.Warn("slow_query", "trace_id", traceID, "route", route,
			"q", r.URL.Query().Get("q"), "status", status, "dur_ms", durMs)
	}
	return traceID
}

func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	serve.ServeTraces(w, r, rt.Traces, rt.writeJSON)
}

type requestIDKey struct{}

type routerStatusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *routerStatusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *routerStatusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (rt *Router) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if rt.cfg.QueryTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), rt.cfg.QueryTimeout)
}

// writeRouterError maps fan-out failures onto client statuses: a whole
// shard down is 502 (the merge would be silently wrong without its
// partials — correctness beats availability), an expired budget is 504,
// a departed client 499, bad parameters 400.
func (rt *Router) writeRouterError(w http.ResponseWriter, err error) bool {
	if err == nil {
		return false
	}
	var se *shardError
	switch {
	case errors.As(err, &se):
		if errors.Is(err, context.DeadlineExceeded) {
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
			return true
		}
		rt.reg.Counter("expertfind_cluster_shard_unavailable_total",
			"Queries failed because a whole shard (every replica) was unreachable.").Inc()
		http.Error(w, err.Error(), http.StatusBadGateway)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "client closed request", 499)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return true
}

func (rt *Router) intParam(r *http.Request, name string, def, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("parameter %s must be a positive integer", name)
	}
	if v > max {
		return 0, fmt.Errorf("parameter %s exceeds the maximum %d", name, max)
	}
	return v, nil
}

// rankedPaper is one globally merged retrieved paper with its origin.
type rankedPaper struct {
	WirePaper
	shard int
	rank  int
}

// startFanout opens the per-shard fan-out span under ctx: the parent of
// this sub-request's rpc attempts and the graft point for the shard's
// returned span tree.
func startFanout(ctx context.Context, shard int) (context.Context, *obs.Span) {
	fctx, span := obs.StartSpan(ctx, "fanout")
	span.Annotate("shard", strconv.Itoa(shard))
	return fctx, span
}

// scatterPapers fans GET /shard/papers out to every shard and returns the
// per-shard results. Any shard failing entirely fails the query.
func (rt *Router) scatterPapers(ctx context.Context, q string, m int, meta bool) ([]*PapersResponse, error) {
	s := rt.client.NumShards()
	resps := make([]*PapersResponse, s)
	errs := make([]error, s)
	var wg sync.WaitGroup
	for i := 0; i < s; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/shard/papers?q=" + url.QueryEscape(q) + "&m=" + strconv.Itoa(m)
			if meta {
				path += "&meta=1"
			}
			fctx, fanout := startFanout(ctx, i)
			defer fanout.End()
			b, err := rt.client.Get(fctx, i, path)
			if err != nil {
				errs[i] = err
				return
			}
			var pr PapersResponse
			if err := json.Unmarshal(b, &pr); err != nil {
				errs[i] = &shardError{shard: i, err: fmt.Errorf("bad papers payload: %w", err)}
				return
			}
			fanout.End()
			if pr.Trace != nil {
				fanout.Graft(*pr.Trace)
			}
			resps[i] = &pr
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// mergePapers combines per-shard retrieval lists into the global top-m by
// (distance ascending, id ascending) — the exact comparator of the
// single-node brute-force retrieval, applied to the same distance bits,
// so the merged list equals the single-node list when shards retrieve
// exactly.
func mergePapers(resps []*PapersResponse, m int) []rankedPaper {
	var all []rankedPaper
	for _, r := range resps {
		for _, p := range r.Papers {
			all = append(all, rankedPaper{WirePaper: p, shard: r.Shard})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > m {
		all = all[:m]
	}
	for i := range all {
		all[i].rank = i + 1
	}
	return all
}

// scatterExperts fans POST /shard/experts out to the shards owning at
// least one ranked paper, with per-shard partial-list limit t. The
// returned slice is indexed by shard; shards with no papers stay nil.
func (rt *Router) scatterExperts(ctx context.Context, papers []rankedPaper, t int) ([]*ShardExpertsResponse, error) {
	s := rt.client.NumShards()
	perShard := make([][]RankedPaper, s)
	for _, p := range papers {
		perShard[p.shard] = append(perShard[p.shard], RankedPaper{ID: p.ID, Rank: p.rank})
	}
	resps := make([]*ShardExpertsResponse, s)
	errs := make([]error, s)
	var wg sync.WaitGroup
	for i := 0; i < s; i++ {
		if len(perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(ExpertsRequest{Papers: perShard[i], Limit: t})
			if err != nil {
				errs[i] = err
				return
			}
			fctx, fanout := startFanout(ctx, i)
			defer fanout.End()
			b, err := rt.client.Post(fctx, i, "/shard/experts", body)
			if err != nil {
				errs[i] = err
				return
			}
			var er ShardExpertsResponse
			if err := json.Unmarshal(b, &er); err != nil {
				errs[i] = &shardError{shard: i, err: fmt.Errorf("bad experts payload: %w", err)}
				return
			}
			fanout.End()
			if er.Trace != nil {
				fanout.Graft(*er.Trace)
			}
			resps[i] = &er
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// mergedExpert is one globally ranked expert after the distributed merge.
type mergedExpert struct {
	id     int32
	score  float64
	name   string
	papers int
}

// mergeStats reports the distributed ranking's work for the response.
type mergeStats struct {
	candidates int
	rounds     int
}

// rankExperts runs the two-round distributed pipeline: retrieval scatter
// + global rank assignment, then expert scatter rounds of growing depth
// until ta.MergePartials certifies the global top-n.
func (rt *Router) rankExperts(ctx context.Context, q string, m, n int) ([]mergedExpert, mergeStats, error) {
	var ms mergeStats
	sctx, sp := obs.StartSpan(ctx, "scatter_papers")
	r1, err := rt.scatterPapers(sctx, q, m, false)
	sp.End()
	if err != nil {
		return nil, ms, err
	}
	_, mp := obs.StartSpan(ctx, "merge_papers")
	papers := mergePapers(r1, m)
	mp.End()

	t := rt.cfg.InitialLimit
	if t <= 0 {
		t = 2 * n
		if t < 16 {
			t = 16
		}
	}
	for {
		ms.rounds++
		// Each deepening round is its own sibling span: the assembled
		// trace shows how many rounds ran and what each cost.
		ectx, es := obs.StartSpan(ctx, "scatter_experts")
		es.Annotate("round", strconv.Itoa(ms.rounds))
		es.Annotate("limit", strconv.Itoa(t))
		resps, err := rt.scatterExperts(ectx, papers, t)
		es.End()
		if err != nil {
			return nil, ms, err
		}
		// Partials enter the merge in ascending shard order: the merged
		// certification sums are deterministic for a given topology.
		var parts []ta.Partial
		for _, r := range resps {
			if r == nil {
				continue
			}
			entries := make([]ta.Ranking, len(r.Experts))
			for i, e := range r.Experts {
				entries[i] = ta.Ranking{Expert: hetgraph.NodeID(e.ID), Score: e.Score}
			}
			parts = append(parts, ta.Partial{
				Entries:   entries,
				Threshold: r.Threshold,
				Exhausted: r.Exhausted,
			})
		}
		_, st := ta.MergePartials(parts, n)
		ms.candidates = st.Candidates
		if st.Satisfied {
			return finalRanking(resps, n), ms, nil
		}
		if t == 0 {
			// Unbounded lists are exhaustive and always certify; reaching
			// here means a shard broke the partial-list contract.
			return nil, ms, fmt.Errorf("cluster: merge failed to certify on exhaustive lists")
		}
		rt.reg.Counter("expertfind_cluster_deep_fetches_total",
			"Extra scatter rounds issued because the distributed threshold bound was not satisfied.").Inc()
		t *= 4
		if t > rt.cfg.MaxM {
			t = 0 // ask for complete lists; termination guaranteed
		}
	}
}

// finalRanking assembles the certified global top-n from the last round's
// responses. Scores are NOT the certification sums: each expert's
// per-paper contributions from all shards are re-summed in ascending
// global rank — the single-node summation order — so scores, and
// therefore tie behaviour, are bit-identical to single-node TopExperts.
// Only exact candidates (present in every truncated shard's list)
// qualify; the certified bound guarantees no inexact candidate can reach
// the top n.
func finalRanking(resps []*ShardExpertsResponse, n int) []mergedExpert {
	type cand struct {
		mergedExpert
		contribs []Contribution
		present  int
	}
	byID := map[int32]*cand{}
	var order []int32
	active := 0 // responses that actually carry partials
	for _, r := range resps {
		if r == nil {
			continue
		}
		active++
		for _, e := range r.Experts {
			c := byID[e.ID]
			if c == nil {
				c = &cand{mergedExpert: mergedExpert{id: e.ID, name: e.Name, papers: e.Papers}}
				byID[e.ID] = c
				order = append(order, e.ID)
			}
			c.contribs = append(c.contribs, e.Contribs...)
			c.present++
		}
	}
	exact := make([]mergedExpert, 0, len(order))
	for _, id := range order {
		c := byID[id]
		if !isExact(c.present, resps) {
			continue
		}
		sort.SliceStable(c.contribs, func(i, j int) bool {
			return c.contribs[i].Rank < c.contribs[j].Rank
		})
		var sum float64
		for _, t := range c.contribs {
			sum += t.S
		}
		c.score = sum
		exact = append(exact, c.mergedExpert)
	}
	sort.Slice(exact, func(i, j int) bool {
		if exact[i].score != exact[j].score {
			return exact[i].score > exact[j].score
		}
		return exact[i].id < exact[j].id
	})
	if len(exact) > n {
		exact = exact[:n]
	}
	return exact
}

// isExact reports whether an expert seen in `present` responses is fully
// determined: it must appear in every response that could omit entries.
// An exhausted response omits only zero-score experts, so absence there
// costs nothing.
func isExact(present int, resps []*ShardExpertsResponse) bool {
	required := 0
	for _, r := range resps {
		if r != nil && !r.Exhausted {
			required++
		}
	}
	// Present in all truncated responses — absences can only be in
	// exhausted ones (score exactly 0 there).
	return present >= required
}

func (rt *Router) handleExperts(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	n, err := rt.intParam(r, "n", rt.cfg.DefaultN, rt.cfg.MaxN)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := rt.intParam(r, "m", rt.cfg.DefaultM, rt.cfg.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := rt.queryContext(r)
	defer cancel()

	// The root span of the distributed query: every fan-out, retry and
	// hedge below shares its trace id, and the middleware capture picks
	// it up for the trace store.
	qctx, root := obs.StartSpan(ctx, "query")
	experts, ms, err := rt.rankExperts(qctx, q, m, n)
	root.End()
	if ms.rounds > 1 {
		root.Annotate("deepened", strconv.Itoa(ms.rounds))
	}
	if rt.writeRouterError(w, err) {
		return
	}
	resp := serve.ExpertsResponse{
		Query:      q,
		ResponseMs: float64(time.Since(start).Microseconds()) / 1000,
		Candidates: ms.candidates,
		TADepth:    ms.rounds,
		Experts:    make([]serve.ExpertResult, 0, len(experts)),
	}
	for i, e := range experts {
		resp.Experts = append(resp.Experts, serve.ExpertResult{
			Rank:   i + 1,
			ID:     e.id,
			Name:   e.name,
			Score:  e.score,
			Papers: e.papers,
		})
	}
	if r.URL.Query().Get("debug") == "1" {
		resp.Debug = &serve.QueryDebug{
			TraceID: root.TraceID().String(),
			Stages:  serve.StagesFromTree(root.Tree()),
		}
	}
	rt.writeJSON(w, resp)
}

func (rt *Router) handlePapers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	m, err := rt.intParam(r, "m", rt.cfg.DefaultN, rt.cfg.MaxM)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := rt.queryContext(r)
	defer cancel()
	qctx, root := obs.StartSpan(ctx, "papers")
	resps, err := rt.scatterPapers(qctx, q, m, true)
	root.End()
	if rt.writeRouterError(w, err) {
		return
	}
	merged := mergePapers(resps, m)
	out := make([]serve.PaperResult, 0, len(merged))
	for _, p := range merged {
		out = append(out, serve.PaperResult{
			Rank:    p.rank,
			ID:      p.ID,
			Text:    runeTruncate(p.Text, 120),
			Authors: p.Authors,
		})
	}
	rt.writeJSON(w, out)
}

// RouterHealth is the router's /healthz payload.
type RouterHealth struct {
	serve.Topology
	AliveReplicas []int `json:"alive_replicas"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, RouterHealth{
		Topology: serve.Topology{
			Role:     "router",
			Shards:   rt.client.NumShards(),
			Replicas: rt.client.Replicas(),
		},
		AliveReplicas: rt.client.AliveReplicas(),
	})
}

// handleReady gates traffic on the whole topology: at boot the router
// scans every shard for a ready replica once; afterwards a shard losing
// all its non-ejected replicas flips readiness off until a probe
// re-admits one.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	notReady := func(why string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\n  \"status\": %q\n}\n", why)
	}
	if !rt.ready.Load() {
		notReady("draining")
		return
	}
	if !rt.bootOK.Load() {
		if !rt.client.CheckReady(r.Context()) {
			notReady("waiting for shards")
			return
		}
		rt.bootOK.Store(true)
	}
	for shard, alive := range rt.client.AliveReplicas() {
		if alive == 0 {
			notReady(fmt.Sprintf("shard %d has no live replicas", shard))
			return
		}
	}
	rt.writeJSON(w, serve.ReadyResponse{Status: "ready"})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if obs.AcceptsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		rt.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", obs.ContentTypeText)
	rt.reg.WritePrometheus(w)
}

func (rt *Router) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, rt.reg.Snapshot())
}

func (rt *Router) writeJSON(w http.ResponseWriter, v interface{}) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// runeTruncate shortens s to at most n runes plus an ellipsis, matching
// the single-node /papers text truncation.
func runeTruncate(s string, n int) string {
	seen := 0
	for i := range s {
		if seen == n {
			return s[:i] + "..."
		}
		seen++
	}
	return s
}
