package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"expertfind/internal/pgindex"
)

// This file holds the quantized-scoring half of the equivalence suite:
// a PG-Index that scores traversal candidates against int8 codes and
// re-ranks with exact float32 kernels must publish the SAME rankings —
// ids, order, and float bits — as one running exact distances throughout,
// on a single node and across sharded topologies. Together with
// TestRouterMatchesSingleNode (exact shards vs single node) this pins the
// full chain: quantized sharded == exact sharded == single node.

// quantShardCfg returns per-shard configs with PG-Index retrieval in the
// given scoring mode. EF is kept below the per-shard corpus size so the
// quantized graph traversal actually runs instead of the exhaustive exact
// fallback.
func quantShardCfg(exactOnly bool, ef int) func(id, of int) ShardConfig {
	return func(id, of int) ShardConfig {
		return ShardConfig{
			ID: id, Of: of,
			UsePGIndex: true,
			EF:         ef,
			Index:      pgindex.Config{Refine: true, Seed: 11, ExactOnly: exactOnly},
		}
	}
}

// TestQuantizedEquivalence is the acceptance test for int8 candidate
// scoring: for S in {1, 2, 4}, a topology whose shards search with the
// quantized fast path must answer /experts exactly like one whose shards
// run exact-only — same experts, same order, same Float64bits, ties
// included. Both topologies share one deterministic engine and identical
// index seeds, so any divergence is attributable to quantization alone.
func TestQuantizedEquivalence(t *testing.T) {
	ds, eng := equivEngine(t)
	queries := ds.Queries(8, rand.New(rand.NewSource(29)))
	const m, n = 40, 10

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// ~200 papers split over S shards; EF 24 stays under every
			// shard's corpus size so traversal is exercised, not bypassed.
			exact := startTopologyCfg(t, eng, shards, RouterConfig{}, ClientConfig{}, nil, nil,
				quantShardCfg(true, 24))
			quant := startTopologyCfg(t, eng, shards, RouterConfig{}, ClientConfig{}, nil, nil,
				quantShardCfg(false, 24))
			for _, q := range queries {
				want := queryExperts(t, exact.routerURL, q.Text, m, n)
				got := queryExperts(t, quant.routerURL, q.Text, m, n)
				if len(got.Experts) != len(want.Experts) {
					t.Fatalf("query %q: quantized returned %d experts, exact %d",
						q.Text, len(got.Experts), len(want.Experts))
				}
				for i, e := range got.Experts {
					w := want.Experts[i]
					if e.ID != w.ID {
						t.Fatalf("query %q rank %d: quantized expert %d, exact %d",
							q.Text, i+1, e.ID, w.ID)
					}
					if math.Float64bits(e.Score) != math.Float64bits(w.Score) {
						t.Fatalf("query %q rank %d (expert %d): quantized score %x, exact %x",
							q.Text, i+1, e.ID, math.Float64bits(e.Score), math.Float64bits(w.Score))
					}
				}
			}
		})
	}
}

// TestQuantizedShardRetrieve pins the per-shard retrieval lists
// themselves, below the router merge: each shard's top-m under quantized
// scoring must match its exact-only twin entry for entry, distances
// compared as float bits.
func TestQuantizedShardRetrieve(t *testing.T) {
	ds, eng := equivEngine(t)
	queries := ds.Queries(6, rand.New(rand.NewSource(31)))
	const m, of = 25, 2

	for id := 0; id < of; id++ {
		exact, err := NewShardEngine(eng, quantShardCfg(true, 24)(id, of))
		if err != nil {
			t.Fatal(err)
		}
		quant, err := NewShardEngine(eng, quantShardCfg(false, 24)(id, of))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want, err := exact.Retrieve(context.Background(), q.Text, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := quant.Retrieve(context.Background(), q.Text, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shard %d query %q: quantized %d results, exact %d",
					id, q.Text, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID ||
					math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Fatalf("shard %d query %q rank %d: quantized (%d, %x), exact (%d, %x)",
						id, q.Text, i+1, got[i].ID, math.Float64bits(got[i].Dist),
						want[i].ID, math.Float64bits(want[i].Dist))
				}
			}
		}
	}
}
