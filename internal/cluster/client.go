package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"expertfind/internal/obs"
)

// ClientConfig tunes the router's fan-out behaviour.
type ClientConfig struct {
	// Retries is how many times one sub-request is retried on another
	// replica (or the same one, single-replica shards) after a failure.
	Retries int
	// RetryBackoff is the base backoff before a retry; the actual wait is
	// jittered uniformly in [backoff/2, backoff) per attempt, doubling
	// each retry. Zero skips waiting.
	RetryBackoff time.Duration
	// HedgeAfter launches a duplicate request to a second replica when
	// the first has not answered within this delay. Zero derives the
	// delay from the shard's observed p99 fan-out latency; negative
	// disables hedging.
	HedgeAfter time.Duration
	// EjectAfter ejects a replica after this many consecutive failures
	// (default 3). Ejected replicas receive no traffic until a probe
	// re-admits them.
	EjectAfter int
	// ProbeInterval is the health-probe period for ejected replicas
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 500ms).
	ProbeTimeout time.Duration
	// MinHedge floors the p99-derived hedge delay (default 1ms) so a
	// cold histogram cannot hedge instantly and double every request.
	MinHedge time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.MinHedge <= 0 {
		c.MinHedge = time.Millisecond
	}
	return c
}

// replica is one backend address of a shard with its health state.
type replica struct {
	addr string // host:port, no scheme

	mu          sync.Mutex
	consecFails int
	ejected     bool
}

func (rp *replica) alive() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return !rp.ejected
}

// replicaSet is the replicas of one shard plus round-robin state.
type replicaSet struct {
	shard    int
	replicas []*replica
	next     uint32
	mu       sync.Mutex
}

// pick returns the next replica in rotation, preferring live ones and
// avoiding the given replica when an alternative exists (for hedges and
// retries). With every replica ejected it falls back to plain rotation —
// a fully dark shard is better probed with real traffic than failed
// without trying.
func (rs *replicaSet) pick(avoid *replica) *replica {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := len(rs.replicas)
	var fallback *replica
	for i := 0; i < n; i++ {
		rp := rs.replicas[int(rs.next)%n]
		rs.next++
		if rp == avoid {
			if fallback == nil {
				fallback = rp
			}
			continue
		}
		if rp.alive() {
			return rp
		}
		if fallback == nil {
			fallback = rp
		}
	}
	for i := 0; i < n; i++ { // all ejected or avoided: any non-avoided
		rp := rs.replicas[int(rs.next)%n]
		rs.next++
		if rp != avoid {
			return rp
		}
	}
	return fallback
}

func (rs *replicaSet) aliveCount() int {
	n := 0
	for _, rp := range rs.replicas {
		if rp.alive() {
			n++
		}
	}
	return n
}

// ShardClient performs the router's per-shard sub-requests with deadline
// budgets, bounded jittered retries, hedging and replica health tracking.
type ShardClient struct {
	sets []*replicaSet
	hc   *http.Client
	cfg  ClientConfig
	reg  *obs.Registry
	log  *obs.Logger

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewShardClient builds a client over one replica address list per shard.
func NewShardClient(shards [][]string, cfg ClientConfig, reg *obs.Registry, log *obs.Logger) (*ShardClient, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if reg == nil {
		reg = obs.Default()
	}
	if log == nil {
		log = obs.NopLogger()
	}
	obs.RegisterCluster(reg)
	c := &ShardClient{
		hc:  &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}},
		cfg: cfg.withDefaults(),
		reg: reg,
		log: log,
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for i, addrs := range shards {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		rs := &replicaSet{shard: i}
		for _, a := range addrs {
			rs.replicas = append(rs.replicas, &replica{addr: a})
		}
		c.sets = append(c.sets, rs)
		c.aliveGauge(i).Set(float64(len(addrs)))
	}
	return c, nil
}

// NumShards returns the shard count of the topology.
func (c *ShardClient) NumShards() int { return len(c.sets) }

// Replicas returns the configured replica addresses per shard.
func (c *ShardClient) Replicas() [][]string {
	out := make([][]string, len(c.sets))
	for i, rs := range c.sets {
		for _, rp := range rs.replicas {
			out[i] = append(out[i], rp.addr)
		}
	}
	return out
}

// AliveReplicas returns the non-ejected replica count per shard.
func (c *ShardClient) AliveReplicas() []int {
	out := make([]int, len(c.sets))
	for i, rs := range c.sets {
		out[i] = rs.aliveCount()
	}
	return out
}

func (c *ShardClient) shardLabel(shard int) obs.Label {
	return obs.L("shard", strconv.Itoa(shard))
}

func (c *ShardClient) aliveGauge(shard int) *obs.Gauge {
	return c.reg.Gauge("expertfind_cluster_replicas_alive",
		"Non-ejected replicas per shard.", c.shardLabel(shard))
}

func (c *ShardClient) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// hedgeDelay resolves the hedging trigger: the configured value, or the
// shard's observed p99 fan-out latency when unset.
func (c *ShardClient) hedgeDelay(shard int) time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return -1
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	h := c.reg.Histogram("expertfind_cluster_fanout_seconds",
		"Latency of shard sub-requests, by shard.", nil, c.shardLabel(shard))
	if h.Count() < 16 {
		return -1 // not enough signal yet; don't double cold traffic
	}
	d := time.Duration(h.Quantile(0.99) * float64(time.Second))
	if d < c.cfg.MinHedge {
		d = c.cfg.MinHedge
	}
	return d
}

// collectKey flags a context whose sub-requests should ask shards to
// return their span trees in the response envelope. The router sets it
// only when it holds a trace store — untraced deployments never pay the
// export or wire cost.
type collectKey struct{}

func withCollect(ctx context.Context) context.Context {
	return context.WithValue(ctx, collectKey{}, true)
}

func collectEnabled(ctx context.Context) bool {
	on, _ := ctx.Value(collectKey{}).(bool)
	return on
}

// shardError is a sub-request failure after all attempts; the router maps
// it to 502.
type shardError struct {
	shard int
	err   error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("cluster: shard %d unavailable: %v", e.shard, e.err)
}
func (e *shardError) Unwrap() error { return e.err }

// Get runs a GET sub-request against shard, with retries and hedging, and
// returns the response body.
func (c *ShardClient) Get(ctx context.Context, shard int, pathAndQuery string) ([]byte, error) {
	return c.do(ctx, shard, http.MethodGet, pathAndQuery, nil)
}

// Post runs a POST sub-request with a JSON body against shard.
func (c *ShardClient) Post(ctx context.Context, shard int, path string, body []byte) ([]byte, error) {
	return c.do(ctx, shard, http.MethodPost, path, body)
}

func (c *ShardClient) do(ctx context.Context, shard int, method, path string, body []byte) ([]byte, error) {
	rs := c.sets[shard]
	attempts := c.cfg.Retries + 1
	backoff := c.cfg.RetryBackoff
	var last error
	var prev *replica
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, &shardError{shard: shard, err: err}
		}
		if attempt > 0 {
			c.reg.Counter("expertfind_cluster_retries_total",
				"Shard sub-request retries, by shard.", c.shardLabel(shard)).Inc()
			wait := c.jitter(backoff)
			backoff *= 2
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, &shardError{shard: shard, err: ctx.Err()}
			}
		}
		// Budget: split the remaining deadline evenly over the attempts
		// still available, so early failures leave time to retry.
		actx, cancel := c.attemptContext(ctx, attempts-attempt)
		rp := rs.pick(prev)
		prev = rp
		b, err := c.attempt(actx, rs, rp, method, path, body)
		cancel()
		if err == nil {
			return b, nil
		}
		last = err
	}
	c.reg.Counter("expertfind_cluster_fanout_errors_total",
		"Failed shard sub-requests (after all retries), by shard.", c.shardLabel(shard)).Inc()
	return nil, &shardError{shard: shard, err: last}
}

// attemptContext derives one attempt's deadline from the request context:
// an equal split of the remaining budget across the attempts left.
func (c *ShardClient) attemptContext(ctx context.Context, attemptsLeft int) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	share := time.Until(dl) / time.Duration(attemptsLeft)
	return context.WithTimeout(ctx, share)
}

// attempt issues one (possibly hedged) request to the shard. On a hedge,
// the first response wins and the loser's context is cancelled. Each
// launched request gets its own "rpc" span — hedges appear as siblings —
// annotated with the replica it hit; the winning hedge additionally gets
// a hedge_win mark, and an attempt abandoned in flight is closed with a
// cancelled mark before attempt returns (attributes are safe to set
// after End, which only freezes timing).
func (c *ShardClient) attempt(ctx context.Context, rs *replicaSet, rp *replica, method, path string, body []byte) ([]byte, error) {
	type outcome struct {
		body   []byte
		err    error
		rp     *replica
		hedged bool
		span   *obs.Span
	}
	results := make(chan outcome, 2)
	hctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	// Any attempt still in flight when attempt() returns is being
	// abandoned (hedge loser, or the whole request cancelled). Its span
	// must be closed here, not by the losing goroutine: the caller can
	// serialize the trace tree immediately after return, and an open span
	// would show up with a still-running clock. EndIfOpen leaves spans
	// that finished on their own untouched, so only genuinely interrupted
	// attempts get the cancelled mark.
	var launched []*obs.Span
	defer func() {
		for _, sp := range launched {
			if sp.EndIfOpen() {
				sp.Annotate("cancelled", "1")
			}
		}
	}()

	launch := func(target *replica, hedged bool) {
		sctx, span := obs.StartSpan(hctx, "rpc")
		span.Annotate("replica", target.addr)
		span.Annotate("shard", strconv.Itoa(rs.shard))
		if hedged {
			span.Annotate("hedge", "1")
		}
		launched = append(launched, span)
		go func() {
			b, err := c.send(sctx, rs.shard, target, method, path, body)
			span.End()
			if err != nil {
				span.Annotate("error", err.Error())
			}
			results <- outcome{body: b, err: err, rp: target, hedged: hedged, span: span}
		}()
	}
	launch(rp, false)

	var hedgeTimer <-chan time.Time
	if d := c.hedgeDelay(rs.shard); d >= 0 && rs.aliveCount() > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeTimer = t.C
	}

	inflight := 1
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			second := rs.pick(rp)
			if second == nil || second == rp {
				continue
			}
			c.reg.Counter("expertfind_cluster_hedges_total",
				"Hedged (duplicate) shard sub-requests launched, by shard.",
				c.shardLabel(rs.shard)).Inc()
			inflight++
			launch(second, true)
		case out := <-results:
			inflight--
			if out.err == nil {
				if out.hedged {
					c.reg.Counter("expertfind_cluster_hedge_wins_total",
						"Hedged shard sub-requests that finished before the primary, by shard.",
						c.shardLabel(rs.shard)).Inc()
					out.span.Annotate("hedge_win", "1")
				}
				cancelAll() // the loser, if any, stops now
				return out.body, nil
			}
			if inflight == 0 {
				return nil, out.err
			}
			// One of two in-flight requests failed; wait for the other.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// send issues one HTTP request to one replica and settles its health
// accounting: success resets the failure streak, failure advances it and
// ejects past the threshold. A response, whatever its status, proves the
// replica alive; only 5xx and transport errors count as failures.
func (c *ShardClient) send(ctx context.Context, shard int, rp *replica, method, path string, body []byte) ([]byte, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+rp.addr+path, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := int(time.Until(dl).Milliseconds())
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(BudgetHeader, strconv.Itoa(ms))
	}
	// Forward the router's request ID so access logs join across nodes,
	// and the trace context so the shard's spans land in this query's
	// trace instead of a fresh one.
	if reqID, ok := ctx.Value(requestIDKey{}).(string); ok && reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	obs.InjectTrace(ctx, req.Header)
	if collectEnabled(ctx) {
		req.Header.Set(obs.CollectHeader, "1")
	}

	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		// A cancelled context is the caller's doing — the primary won a
		// hedge race, or the query was abandoned — and says nothing about
		// this replica's health. Counting it would eject healthy replicas
		// on every hedge, permanently disabling hedging for the shard.
		if !errors.Is(err, context.Canceled) {
			c.fail(shard, rp, err)
		}
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	dur := time.Since(start)
	c.reg.Histogram("expertfind_cluster_fanout_seconds",
		"Latency of shard sub-requests, by shard.", nil, c.shardLabel(shard)).
		Observe(dur.Seconds())
	c.reg.Counter("expertfind_cluster_wire_bytes_total",
		"Response bytes read from shard sub-requests, by shard.", c.shardLabel(shard)).
		Add(float64(len(b)))
	if err != nil {
		c.fail(shard, rp, err)
		return nil, err
	}
	if resp.StatusCode >= 500 {
		err := fmt.Errorf("replica %s: status %d: %s", rp.addr, resp.StatusCode, firstLine(b))
		c.fail(shard, rp, err)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		// 4xx is the router's bug, not the replica's health problem.
		return nil, fmt.Errorf("replica %s: status %d: %s", rp.addr, resp.StatusCode, firstLine(b))
	}
	c.succeed(shard, rp)
	return b, nil
}

func (c *ShardClient) succeed(shard int, rp *replica) {
	rp.mu.Lock()
	rp.consecFails = 0
	readmitted := rp.ejected
	rp.ejected = false
	rp.mu.Unlock()
	if readmitted {
		c.readmitted(shard, rp, "traffic")
	}
}

func (c *ShardClient) fail(shard int, rp *replica, cause error) {
	rp.mu.Lock()
	rp.consecFails++
	eject := !rp.ejected && rp.consecFails >= c.cfg.EjectAfter
	if eject {
		rp.ejected = true
	}
	rp.mu.Unlock()
	if eject {
		c.reg.Counter("expertfind_cluster_ejections_total",
			"Replica ejections after consecutive failures, by shard and replica.",
			c.shardLabel(shard), obs.L("replica", rp.addr)).Inc()
		c.aliveGauge(shard).Set(float64(c.sets[shard].aliveCount()))
		c.log.Warn("replica_ejected", "shard", shard, "replica", rp.addr,
			"consec_fails", c.cfg.EjectAfter, "cause", cause)
	}
}

func (c *ShardClient) readmitted(shard int, rp *replica, how string) {
	c.reg.Counter("expertfind_cluster_readmissions_total",
		"Ejected replicas re-admitted by a successful probe, by shard and replica.",
		c.shardLabel(shard), obs.L("replica", rp.addr)).Inc()
	c.aliveGauge(shard).Set(float64(c.sets[shard].aliveCount()))
	c.log.Info("replica_readmitted", "shard", shard, "replica", rp.addr, "via", how)
}

// StartProbes launches the background health-probe loop: every
// ProbeInterval, each ejected replica gets a GET /readyz; a 200 clears
// its failure streak and re-admits it. The loop exits when ctx ends.
func (c *ShardClient) StartProbes(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.probeOnce(ctx)
			}
		}
	}()
}

func (c *ShardClient) probeOnce(ctx context.Context) {
	for _, rs := range c.sets {
		for _, rp := range rs.replicas {
			rp.mu.Lock()
			ejected := rp.ejected
			rp.mu.Unlock()
			if !ejected {
				continue
			}
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			ok := c.probe(pctx, rp)
			cancel()
			if !ok {
				continue
			}
			rp.mu.Lock()
			rp.consecFails = 0
			rp.ejected = false
			rp.mu.Unlock()
			c.readmitted(rs.shard, rp, "probe")
		}
	}
}

// probe checks a replica's /readyz without touching failure accounting:
// probes decide re-admission only, never ejection.
func (c *ShardClient) probe(ctx context.Context, rp *replica) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+rp.addr+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// CheckReady reports whether every shard has at least one replica
// answering /readyz 200 right now — the router's boot readiness scan.
func (c *ShardClient) CheckReady(ctx context.Context) bool {
	for _, rs := range c.sets {
		ok := false
		for _, rp := range rs.replicas {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			alive := c.probe(pctx, rp)
			cancel()
			if alive {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
		if i > 160 {
			return string(b[:i]) + "..."
		}
	}
	return string(b)
}
