package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"expertfind/internal/colstore"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
)

// TestMmapEquivalenceSharded is the sharded leg of the mmap acceptance
// suite: a 2-shard router topology whose shards serve an engine loaded
// from the mmap'd columnar snapshot must return rankings Float64bits-
// identical to the heap-decoded load of the same snapshot — the mapping
// is invisible at every layer above the matrix.
func TestMmapEquivalenceSharded(t *testing.T) {
	ds, eng := equivEngine(t)
	snap := filepath.Join(t.TempDir(), "engine.snap")
	w, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	freshGraph := func() *core.Engine {
		g := dataset.Generate(dataset.AminerSim(200)).Graph
		e, err := core.LoadFileWith(snap, g, core.LoadOptions{Mmap: colstore.ModeOff})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	heap := freshGraph()
	mapped, err := core.LoadFileWith(snap,
		dataset.Generate(dataset.AminerSim(200)).Graph,
		core.LoadOptions{Mmap: colstore.ModeOn})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.CloseSnapshot()
	if !mapped.SnapshotMapped() {
		t.Fatal("ModeOn load did not map the snapshot")
	}

	queries := ds.Queries(6, rand.New(rand.NewSource(13)))
	const m, n = 40, 10
	for _, shards := range []int{2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			topo := startTopology(t, mapped, shards, RouterConfig{}, ClientConfig{}, nil, nil)
			for _, q := range queries {
				want, _, err := heap.TopExperts(q.Text, m, n)
				if err != nil {
					t.Fatal(err)
				}
				got := queryExperts(t, topo.routerURL, q.Text, m, n)
				assertSameRanking(t, q.Text, got, want)
			}
		})
	}
}
