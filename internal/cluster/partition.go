// Package cluster is the multi-process topology of the system: a
// deterministic corpus partitioner, a shard server mode exposing bounded
// partial rankings over internal /shard/* APIs, and a router mode that
// scatter-gathers those partials and merges them with the distributed
// threshold bound of ta.MergePartials (see DESIGN.md, "Sharded cluster").
//
// Shards own disjoint subsets of the papers, assigned by a hash of the
// paper id that every process computes identically, so the router needs no
// placement service: ownership is a pure function of (paper id, shard
// count). Authors are not partitioned — an author's global score is the
// sum of per-shard partial scores over the papers each shard owns.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"expertfind/internal/hetgraph"
)

// AssignShard returns the shard (0..shards-1) owning paper p: FNV-1a over
// the id's little-endian bytes, reduced modulo the shard count. The hash —
// not the raw id — decides ownership so consecutive ids (papers generated
// or ingested together, likely on related topics) spread across shards
// instead of landing on one.
func AssignShard(p hetgraph.NodeID, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	v := uint32(p)
	for i := 0; i < 4; i++ {
		h ^= v & 0xff
		h *= prime32
		v >>= 8
	}
	return int(h % uint32(shards))
}

// PartitionPapers splits the graph's papers into shard-owned lists, each
// in ascending id order. Every paper lands in exactly one list.
func PartitionPapers(g *hetgraph.Graph, shards int) [][]hetgraph.NodeID {
	out := make([][]hetgraph.NodeID, shards)
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		s := AssignShard(p, shards)
		out[s] = append(out[s], p)
	}
	return out
}

// ShardInfo describes one shard slice in a partition manifest.
type ShardInfo struct {
	Papers  int `json:"papers"`
	Authors int `json:"authors"`
	Nodes   int `json:"nodes"`
	Edges   int `json:"edges"`
}

// Manifest describes a partitioned corpus directory.
type Manifest struct {
	Shards int         `json:"shards"`
	Papers int         `json:"papers"`
	Slices []ShardInfo `json:"slices"`
}

// WritePartition materialises the S-way partition of g under dir:
//
//	dir/manifest.json         partition summary
//	dir/shard-<i>/graph.json  the induced subgraph owned by shard i
//	dir/shard-<i>/idmap.json  global id -> slice-local id
//
// Each slice keeps the shard's papers plus every adjacent author, venue
// and topic (authors therefore appear in several slices), with author
// order — and hence Zipf contribution ranks — preserved. The output is
// deterministic: same graph, same shard count, same bytes.
func WritePartition(dir string, g *hetgraph.Graph, shards int) (*Manifest, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count must be positive, got %d", shards)
	}
	parts := PartitionPapers(g, shards)
	man := &Manifest{Shards: shards, Papers: g.NumNodesOfType(hetgraph.Paper)}
	for i, papers := range parts {
		sub, idmap, err := hetgraph.InducedSubgraph(g, papers)
		if err != nil {
			return nil, fmt.Errorf("cluster: slice %d: %w", i, err)
		}
		sdir := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return nil, err
		}
		if err := writeGraphFile(filepath.Join(sdir, "graph.json"), sub); err != nil {
			return nil, err
		}
		if err := writeJSONFile(filepath.Join(sdir, "idmap.json"), idmapWire(idmap)); err != nil {
			return nil, err
		}
		man.Slices = append(man.Slices, ShardInfo{
			Papers:  sub.NumNodesOfType(hetgraph.Paper),
			Authors: sub.NumNodesOfType(hetgraph.Author),
			Nodes:   sub.NumNodes(),
			Edges:   sub.NumEdges(),
		})
	}
	if err := writeJSONFile(filepath.Join(dir, "manifest.json"), man); err != nil {
		return nil, err
	}
	return man, nil
}

// ReadManifest loads dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	if m.Shards < 1 || len(m.Slices) != m.Shards {
		return nil, fmt.Errorf("cluster: manifest lists %d slices for %d shards", len(m.Slices), m.Shards)
	}
	return &m, nil
}

// ReadSlice loads shard i's graph slice and its global->local id map.
func ReadSlice(dir string, i int) (*hetgraph.Graph, map[hetgraph.NodeID]hetgraph.NodeID, error) {
	sdir := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
	f, err := os.Open(filepath.Join(sdir, "graph.json"))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, err := hetgraph.ReadJSON(f)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: slice %d graph: %w", i, err)
	}
	b, err := os.ReadFile(filepath.Join(sdir, "idmap.json"))
	if err != nil {
		return nil, nil, err
	}
	var wire map[string]int32
	if err := json.Unmarshal(b, &wire); err != nil {
		return nil, nil, fmt.Errorf("cluster: slice %d idmap: %w", i, err)
	}
	idmap := make(map[hetgraph.NodeID]hetgraph.NodeID, len(wire))
	for k, v := range wire {
		var old int32
		if _, err := fmt.Sscanf(k, "%d", &old); err != nil {
			return nil, nil, fmt.Errorf("cluster: slice %d idmap key %q: %w", i, k, err)
		}
		idmap[hetgraph.NodeID(old)] = hetgraph.NodeID(v)
	}
	return g, idmap, nil
}

// idmapWire renders the id map with string keys (JSON objects cannot key
// on numbers) in a shape json.Unmarshal reverses losslessly.
func idmapWire(m map[hetgraph.NodeID]hetgraph.NodeID) map[string]int32 {
	out := make(map[string]int32, len(m))
	for k, v := range m {
		out[fmt.Sprintf("%d", k)] = int32(v)
	}
	return out
}

func writeGraphFile(path string, g *hetgraph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSONFile(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
