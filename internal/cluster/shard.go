package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/obs"
	"expertfind/internal/serve"
)

// BudgetHeader carries the router's per-attempt deadline budget, in
// milliseconds, to the shard. The shard bounds its own work by it so a
// sub-request never outlives the fan-out attempt that issued it — the
// router's context deadline cannot reach across the process boundary, the
// header can.
const BudgetHeader = "X-Budget-Ms"

// MountShard exposes the internal shard API on an existing serve.Server:
//
//	GET  /shard/papers?q=&m=[&meta=1] -> PapersResponse
//	POST /shard/experts               -> ShardExpertsResponse
//
// The routes ride the server's observability middleware and in-flight
// shedding like the public ones, and honour the X-Budget-Ms deadline
// budget. The server's /healthz topology block is set to the shard's
// coordinates (satisfying probes that must tell topology members apart).
func MountShard(srv *serve.Server, se *ShardEngine) {
	sh := &shardAPI{srv: srv, se: se}
	srv.Handle("/shard/papers", sh.handlePapers)
	srv.Handle("/shard/experts", sh.handleExperts)
	srv.SetTopology(serve.Topology{
		Role:        "shard",
		ShardID:     se.ID(),
		Shards:      se.Of(),
		OwnedPapers: se.NumOwned(),
	})
}

// MountFollowerShard exposes the shard API on a replication follower,
// making it a drop-in member of a router replica set: same /shard/*
// routes, same wire shapes, but the engine underneath is replicated
// from a leader rather than locally written. The differences are all
// lifecycle — /healthz reports role "follower", /readyz stays 503
// (status "replication_lag") until the follower's lag is within its
// bound, and /add refuses writes until promotion — and the router needs
// none of them spelled out: its ejection/re-admission loop already
// keys off /readyz, so a lagging follower drains and a caught-up one
// re-admits with zero router changes.
func MountFollowerShard(srv *serve.Server, se *ShardEngine, fo *core.Follower) {
	MountShard(srv, se)
	srv.SetTopology(serve.Topology{
		Role:        "follower",
		ShardID:     se.ID(),
		Shards:      se.Of(),
		OwnedPapers: se.NumOwned(),
	})
	srv.ReadyProbe = func() (bool, string) {
		if fo.Ready() {
			return true, ""
		}
		return false, "replication_lag"
	}
	srv.DenyWrites("replication follower serves reads only; write to the leader")
}

type shardAPI struct {
	srv *serve.Server
	se  *ShardEngine
}

// budgetContext bounds ctx by the request's X-Budget-Ms header, when
// present and positive.
func budgetContext(ctx context.Context, r *http.Request) (context.Context, context.CancelFunc) {
	raw := r.Header.Get(BudgetHeader)
	if raw == "" {
		return ctx, func() {}
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}

// writeShardError maps shard-side failures the way the public query
// routes do: 400 for bad parameters, 504 past the budget, 499 when the
// router went away, 500 otherwise.
func writeShardError(w http.ResponseWriter, err error) bool {
	if err == nil {
		return false
	}
	var bad *core.BadParamError
	switch {
	case errors.As(err, &bad):
		http.Error(w, bad.Error(), http.StatusBadRequest)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "shard budget exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "router closed request", 499)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return true
}

// collectRequested reports whether the router asked for the span tree in
// the response envelope.
func collectRequested(r *http.Request) bool {
	return r.Header.Get(obs.CollectHeader) == "1"
}

// exportTree closes the shard-side root span and returns its tree for
// the envelope when the router asked for it.
func exportTree(span *obs.Span, r *http.Request) *obs.SpanNode {
	span.End()
	if !collectRequested(r) {
		return nil
	}
	t := span.Tree()
	return &t
}

func (sh *shardAPI) handlePapers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	m, err := strconv.Atoi(r.URL.Query().Get("m"))
	if err != nil || m < 1 {
		http.Error(w, "parameter m must be a positive integer", http.StatusBadRequest)
		return
	}
	withMeta := r.URL.Query().Get("meta") == "1"
	// The root span joins the router's trace through the remote context
	// the serve middleware extracted from X-Trace-Context.
	sctx, span := obs.StartSpan(r.Context(), "shard_papers")
	span.Annotate("shard", strconv.Itoa(sh.se.ID()))
	defer span.End()
	ctx, cancel := budgetContext(sctx, r)
	defer cancel()

	res, err := sh.se.Retrieve(ctx, q, m)
	if writeShardError(w, err) {
		return
	}
	resp := PapersResponse{Shard: sh.se.ID(), Papers: make([]WirePaper, 0, len(res))}
	for _, p := range res {
		wp := WirePaper{ID: int32(p.ID), Dist: p.Dist}
		if withMeta {
			wp.Text, wp.Authors = sh.se.PaperMeta(p.ID)
		}
		resp.Papers = append(resp.Papers, wp)
	}
	resp.Trace = exportTree(span, r)
	sh.srv.WriteJSON(w, resp)
}

func (sh *shardAPI) handleExperts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ExpertsRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	sctx, span := obs.StartSpan(r.Context(), "shard_experts")
	span.Annotate("shard", strconv.Itoa(sh.se.ID()))
	span.Annotate("limit", strconv.Itoa(req.Limit))
	defer span.End()
	ctx, cancel := budgetContext(sctx, r)
	defer cancel()
	if err := ctx.Err(); err != nil {
		writeShardError(w, err)
		return
	}
	_, score := obs.StartSpan(ctx, "score")
	resp, err := sh.se.ScoreExperts(req)
	score.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp.Trace = exportTree(span, r)
	sh.srv.WriteJSON(w, resp)
}
