package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/serve"
	"expertfind/internal/ta"
)

// The equivalence corpus: one deterministic engine in exact-retrieval
// mode, shared by every test (builds are the expensive part).
var (
	eqOnce sync.Once
	eqDS   *dataset.Dataset
	eqEng  *core.Engine
)

func equivEngine(t *testing.T) (*dataset.Dataset, *core.Engine) {
	t.Helper()
	eqOnce.Do(func() {
		eqDS = dataset.Generate(dataset.AminerSim(200))
		e, err := core.Build(eqDS.Graph, core.Options{
			Dim: 16, Seed: 5, UsePGIndex: core.Bool(false), Metrics: obs.NewRegistry(),
		})
		if err != nil {
			panic(err)
		}
		eqEng = e
	})
	return eqDS, eqEng
}

// topology is a live router-over-real-HTTP-shards deployment for tests.
type topology struct {
	routerURL string
	reg       *obs.Registry
	client    *ShardClient
}

// startTopology serves eng as S shards (each on its own loopback HTTP
// server, exact retrieval) fronted by a router, all torn down with the
// test. faults, when non-nil, wraps shard handlers for fault injection:
// it receives (shard, replica index, inner handler) and returns the
// handler to serve. replicasPerShard maps shard -> replica count
// (default 1).
func startTopology(t *testing.T, eng *core.Engine, shards int, rcfg RouterConfig, ccfg ClientConfig,
	replicasPerShard map[int]int, faults func(shard, rep int, inner http.Handler) http.Handler) *topology {
	t.Helper()
	return startTopologyCfg(t, eng, shards, rcfg, ccfg, replicasPerShard, faults, nil)
}

// startTopologyCfg is startTopology with per-shard engine configuration:
// shardCfg, when non-nil, produces the full ShardConfig for each shard
// (PG-Index settings included) instead of the default exact scan.
func startTopologyCfg(t *testing.T, eng *core.Engine, shards int, rcfg RouterConfig, ccfg ClientConfig,
	replicasPerShard map[int]int, faults func(shard, rep int, inner http.Handler) http.Handler,
	shardCfg func(id, of int) ShardConfig) *topology {
	t.Helper()
	addrs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		cfg := ShardConfig{ID: i, Of: shards}
		if shardCfg != nil {
			cfg = shardCfg(i, shards)
		}
		se, err := NewShardEngine(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reps := 1
		if replicasPerShard != nil && replicasPerShard[i] > 0 {
			reps = replicasPerShard[i]
		}
		for r := 0; r < reps; r++ {
			srv := serve.New(eng)
			srv.SetReady(true)
			MountShard(srv, se)
			var h http.Handler = srv
			if faults != nil {
				h = faults(i, r, h)
			}
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			addrs[i] = append(addrs[i], strings.TrimPrefix(ts.URL, "http://"))
		}
	}
	reg := obs.NewRegistry()
	client, err := NewShardClient(addrs, ccfg, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(client, rcfg, reg, nil)
	rs := httptest.NewServer(router)
	t.Cleanup(rs.Close)
	return &topology{routerURL: rs.URL, reg: reg, client: client}
}

// queryExperts runs one /experts query against a base URL and decodes it.
func queryExperts(t *testing.T, base, q string, m, n int) serve.ExpertsResponse {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/experts?q=%s&m=%d&n=%d", base, url.QueryEscape(q), m, n))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: status %d: %s", q, resp.StatusCode, b)
	}
	var er serve.ExpertsResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("query %q: bad payload: %v", q, err)
	}
	return er
}

// assertSameRanking compares a router response with the single-node
// ground truth bit for bit: same experts, same order, same score bits.
func assertSameRanking(t *testing.T, q string, got serve.ExpertsResponse, want []ta.Ranking) {
	t.Helper()
	if len(got.Experts) != len(want) {
		t.Fatalf("query %q: router returned %d experts, single node %d",
			q, len(got.Experts), len(want))
	}
	for i, e := range got.Experts {
		w := want[i]
		if int32(w.Expert) != e.ID {
			t.Fatalf("query %q rank %d: router expert %d, single node %d",
				q, i+1, e.ID, w.Expert)
		}
		if math.Float64bits(e.Score) != math.Float64bits(w.Score) {
			t.Fatalf("query %q rank %d (expert %d): router score %x, single node %x",
				q, i+1, e.ID, math.Float64bits(e.Score), math.Float64bits(w.Score))
		}
		if e.Rank != i+1 {
			t.Fatalf("query %q: rank field %d at position %d", q, e.Rank, i+1)
		}
	}
}

// TestRouterMatchesSingleNode is the acceptance equivalence test: for
// S in {2, 4}, the router's top-n over S shards must equal single-node
// ta.TopExperts exactly — ids, order and float bits, ties included.
func TestRouterMatchesSingleNode(t *testing.T) {
	ds, eng := equivEngine(t)
	queries := ds.Queries(8, rand.New(rand.NewSource(3)))
	const m, n = 40, 10

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			topo := startTopology(t, eng, shards, RouterConfig{}, ClientConfig{}, nil, nil)
			for _, q := range queries {
				want, _, err := eng.TopExperts(q.Text, m, n)
				if err != nil {
					t.Fatal(err)
				}
				got := queryExperts(t, topo.routerURL, q.Text, m, n)
				assertSameRanking(t, q.Text, got, want)
			}
		})
	}
}

// TestRouterDeepeningRound forces the second, deeper fetch: with the
// initial per-shard limit squeezed to 1 the first round's bound cannot
// certify, the router must go back for more, and the final ranking must
// still match single node exactly.
func TestRouterDeepeningRound(t *testing.T) {
	ds, eng := equivEngine(t)
	queries := ds.Queries(4, rand.New(rand.NewSource(9)))
	const m, n = 40, 10

	topo := startTopology(t, eng, 2, RouterConfig{InitialLimit: 1}, ClientConfig{}, nil, nil)
	for _, q := range queries {
		want, _, err := eng.TopExperts(q.Text, m, n)
		if err != nil {
			t.Fatal(err)
		}
		got := queryExperts(t, topo.routerURL, q.Text, m, n)
		assertSameRanking(t, q.Text, got, want)
		if got.TADepth < 2 {
			t.Fatalf("query %q: expected a deepening round, ta_depth = %d", q.Text, got.TADepth)
		}
	}
	deep := topo.reg.Counter("expertfind_cluster_deep_fetches_total", "").Value()
	if deep < float64(len(queries)) {
		t.Fatalf("deep-fetch counter %v after %d forced-deepening queries", deep, len(queries))
	}
}

// TestRouterPapersMatchesSingleNode checks the retrieval route too: the
// merged /papers list must equal the single-node one.
func TestRouterPapersMatchesSingleNode(t *testing.T) {
	ds, eng := equivEngine(t)
	q := ds.Queries(1, rand.New(rand.NewSource(17)))[0]
	const m = 15

	single := httptest.NewServer(func() http.Handler {
		s := serve.New(eng)
		s.SetReady(true)
		return s
	}())
	defer single.Close()
	topo := startTopology(t, eng, 2, RouterConfig{}, ClientConfig{}, nil, nil)

	fetch := func(base string) []serve.PaperResult {
		resp, err := http.Get(fmt.Sprintf("%s/papers?q=%s&m=%d", base, url.QueryEscape(q.Text), m))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		var out []serve.PaperResult
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := fetch(single.URL)
	got := fetch(topo.routerURL)
	if len(got) != len(want) {
		t.Fatalf("router returned %d papers, single node %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Rank != want[i].Rank || got[i].Text != want[i].Text {
			t.Fatalf("paper %d: router %+v, single node %+v", i, got[i], want[i])
		}
	}
}

// TestRouterHealthTopology pins the /healthz contract for routers and
// shards: role, shard coordinates, replica sets.
func TestRouterHealthTopology(t *testing.T) {
	_, eng := equivEngine(t)
	topo := startTopology(t, eng, 2, RouterConfig{}, ClientConfig{}, nil, nil)

	resp, err := http.Get(topo.routerURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rh RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&rh); err != nil {
		t.Fatal(err)
	}
	if rh.Role != "router" || rh.Shards != 2 {
		t.Fatalf("router healthz: %+v", rh)
	}
	if len(rh.Replicas) != 2 || len(rh.Replicas[0]) != 1 {
		t.Fatalf("router healthz replicas: %+v", rh.Replicas)
	}
	if len(rh.AliveReplicas) != 2 || rh.AliveReplicas[0] != 1 || rh.AliveReplicas[1] != 1 {
		t.Fatalf("router healthz alive: %+v", rh.AliveReplicas)
	}

	sresp, err := http.Get("http://" + rh.Replicas[1][0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sh serve.HealthResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sh); err != nil {
		t.Fatal(err)
	}
	if sh.Role != "shard" || sh.ShardID != 1 || sh.Shards != 2 || sh.OwnedPapers <= 0 {
		t.Fatalf("shard healthz topology: %+v", sh.Topology)
	}
}

// addEquivPapers applies n deterministic updates starting at index
// start; the same call against any engine over the same base corpus
// produces bit-identical state.
func addEquivPapers(t *testing.T, eng *core.Engine, start, n int) {
	t.Helper()
	authors := eng.Graph().NodesOfType(hetgraph.Author)
	for i := start; i < start+n; i++ {
		_, err := eng.AddPaper(core.NewPaper{
			Text: fmt.Sprintf("replicated paper %d on expert retrieval", i),
			Authors: []hetgraph.NodeID{
				authors[i%len(authors)], authors[(i*5+2)%len(authors)],
			},
		})
		if err != nil {
			t.Fatalf("add paper %d: %v", i, err)
		}
	}
}

// TestFollowerReplicaMatchesSingleNode slots a WAL-shipping follower
// into a router replica set next to its leader: one shard, two replicas,
// one of them replicated rather than locally written. After catch-up
// every routed query — whichever replica serves it — must match the
// single-node ranking bit for bit, and the follower must actually have
// served some of the traffic.
func TestFollowerReplicaMatchesSingleNode(t *testing.T) {
	const papers = 150
	ds := dataset.Generate(dataset.AminerSim(papers))
	reg := obs.NewRegistry()
	store, err := core.OpenStore(t.TempDir(), ds.Graph,
		func() (*core.Engine, error) {
			return core.Build(ds.Graph, core.Options{
				Dim: 16, Seed: 5, UsePGIndex: core.Bool(false), Metrics: reg,
			})
		}, core.StoreOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	leaderEng := store.Engine()
	addEquivPapers(t, leaderEng, 0, 10)

	// Leader replica: shard API plus the replication surface.
	leaderSE, err := NewShardEngine(leaderEng, ShardConfig{ID: 0, Of: 1})
	if err != nil {
		t.Fatal(err)
	}
	leaderSrv := serve.New(leaderEng)
	leaderSrv.SetReady(true)
	MountShard(leaderSrv, leaderSE)
	serve.MountReplication(leaderSrv, store, nil)
	lts := httptest.NewServer(leaderSrv)
	defer lts.Close()

	// Follower replica: bootstraps from the leader's snapshot and tails
	// its WAL over the wire, over an independent copy of the base graph.
	fg := dataset.Generate(dataset.AminerSim(papers)).Graph
	foReg := obs.NewRegistry()
	obs.RegisterReplication(foReg)
	fo, err := core.OpenFollower(t.TempDir(), fg, lts.URL, core.FollowerOptions{
		ID: "replica-1", PollInterval: 10 * time.Millisecond, Metrics: foReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()
	fo.Start()
	deadline := time.Now().Add(20 * time.Second)
	for !(fo.CaughtUp() && fo.Store().LastSeq() >= 10) {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", fo.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The shard view is carved out only after catch-up — shard serving
	// state is a build-time snapshot on leaders and followers alike.
	foSE, err := NewShardEngine(fo.Engine(), ShardConfig{ID: 0, Of: 1})
	if err != nil {
		t.Fatal(err)
	}
	if foSE.NumOwned() != leaderSE.NumOwned() {
		t.Fatalf("follower shard owns %d papers, leader owns %d — the 10 "+
			"replicated updates are missing", foSE.NumOwned(), leaderSE.NumOwned())
	}

	foSrv := serve.New(fo.Engine())
	foSrv.SetReady(true)
	MountFollowerShard(foSrv, foSE, fo)
	var followerHits atomic.Int64
	fts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/shard/") {
			followerHits.Add(1)
		}
		foSrv.ServeHTTP(w, r)
	}))
	defer fts.Close()

	// The follower is a drop-in replica: same address list shape, no
	// router-side configuration.
	creg := obs.NewRegistry()
	addrs := [][]string{{
		strings.TrimPrefix(lts.URL, "http://"),
		strings.TrimPrefix(fts.URL, "http://"),
	}}
	client, err := NewShardClient(addrs, ClientConfig{}, creg, nil)
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(client, RouterConfig{}, creg, nil)
	rs := httptest.NewServer(router)
	defer rs.Close()

	queries := ds.Queries(8, rand.New(rand.NewSource(3)))
	const m, n = 40, 10
	for _, q := range queries {
		want, _, err := leaderEng.TopExperts(q.Text, m, n)
		if err != nil {
			t.Fatal(err)
		}
		got := queryExperts(t, rs.URL, q.Text, m, n)
		assertSameRanking(t, q.Text, got, want)
	}
	if followerHits.Load() == 0 {
		t.Fatal("the follower replica never served a shard sub-request")
	}

	// The follower's lag-aware /readyz is what the router's re-admission
	// probe reads; caught up, it must say 200.
	resp, err := http.Get(fts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up follower /readyz = %d, want 200", resp.StatusCode)
	}
}
