package cluster

import (
	"path/filepath"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

func TestAssignShardDeterministicAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		for id := int32(0); id < 500; id++ {
			s := AssignShard(hetgraph.NodeID(id), shards)
			if s < 0 || s >= shards {
				t.Fatalf("AssignShard(%d, %d) = %d, out of range", id, shards, s)
			}
			if again := AssignShard(hetgraph.NodeID(id), shards); again != s {
				t.Fatalf("AssignShard(%d, %d) not deterministic: %d then %d", id, shards, s, again)
			}
		}
	}
}

func TestAssignShardSpreadsConsecutiveIDs(t *testing.T) {
	// The hash, not the raw id, decides placement: a run of consecutive
	// ids must not all land on one shard.
	counts := make([]int, 4)
	for id := int32(0); id < 100; id++ {
		counts[AssignShard(hetgraph.NodeID(id), 4)]++
	}
	for s, c := range counts {
		if c == 0 || c == 100 {
			t.Fatalf("shard %d owns %d of 100 consecutive ids: no spread", s, c)
		}
	}
}

func TestPartitionPapersCoversDisjointly(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(150))
	g := ds.Graph
	for _, shards := range []int{2, 4} {
		parts := PartitionPapers(g, shards)
		if len(parts) != shards {
			t.Fatalf("got %d parts, want %d", len(parts), shards)
		}
		seen := map[hetgraph.NodeID]int{}
		total := 0
		for s, papers := range parts {
			prev := hetgraph.NodeID(-1)
			for _, p := range papers {
				if owner, dup := seen[p]; dup {
					t.Fatalf("paper %d in shards %d and %d", p, owner, s)
				}
				seen[p] = s
				if AssignShard(p, shards) != s {
					t.Fatalf("paper %d listed under shard %d but hashes to %d",
						p, s, AssignShard(p, shards))
				}
				if p <= prev {
					t.Fatalf("shard %d papers not ascending: %d after %d", s, p, prev)
				}
				prev = p
				total++
			}
		}
		if want := g.NumNodesOfType(hetgraph.Paper); total != want {
			t.Fatalf("partition covers %d papers, graph has %d", total, want)
		}
	}
}

func TestWritePartitionRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(120))
	g := ds.Graph
	dir := filepath.Join(t.TempDir(), "parts")

	man, err := WritePartition(dir, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != 3 || len(man.Slices) != 3 {
		t.Fatalf("manifest: %+v", man)
	}
	if man.Papers != g.NumNodesOfType(hetgraph.Paper) {
		t.Fatalf("manifest papers %d, graph %d", man.Papers, g.NumNodesOfType(hetgraph.Paper))
	}

	loaded, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards != man.Shards || loaded.Papers != man.Papers || len(loaded.Slices) != len(man.Slices) {
		t.Fatalf("manifest round trip: wrote %+v, read %+v", man, loaded)
	}
	for i := range man.Slices {
		if loaded.Slices[i] != man.Slices[i] {
			t.Fatalf("manifest slice %d round trip: wrote %+v, read %+v",
				i, man.Slices[i], loaded.Slices[i])
		}
	}

	parts := PartitionPapers(g, 3)
	sumPapers := 0
	for i := 0; i < 3; i++ {
		sub, idmap, err := ReadSlice(dir, i)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sub.NumNodesOfType(hetgraph.Paper), len(parts[i]); got != want {
			t.Fatalf("slice %d has %d papers, partition says %d", i, got, want)
		}
		sumPapers += sub.NumNodesOfType(hetgraph.Paper)
		// Every owned paper maps into the slice with its authorship order
		// intact — the Zipf contribution ranks must survive slicing.
		for _, p := range parts[i] {
			local, ok := idmap[p]
			if !ok {
				t.Fatalf("slice %d: owned paper %d missing from idmap", i, p)
			}
			gAuthors := g.AuthorsOf(p)
			sAuthors := sub.AuthorsOf(local)
			if len(gAuthors) != len(sAuthors) {
				t.Fatalf("slice %d paper %d: %d authors in slice, %d in graph",
					i, p, len(sAuthors), len(gAuthors))
			}
			for j := range gAuthors {
				if idmap[gAuthors[j]] != sAuthors[j] {
					t.Fatalf("slice %d paper %d: author order diverged at position %d", i, p, j)
				}
			}
		}
	}
	if sumPapers != man.Papers {
		t.Fatalf("slices hold %d papers, manifest %d", sumPapers, man.Papers)
	}
}

func TestWritePartitionDeterministic(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(100))
	d1 := filepath.Join(t.TempDir(), "a")
	d2 := filepath.Join(t.TempDir(), "b")
	m1, err := WritePartition(d1, ds.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := WritePartition(d2, ds.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Slices {
		if m1.Slices[i] != m2.Slices[i] {
			t.Fatalf("slice %d differs across runs: %+v vs %+v", i, m1.Slices[i], m2.Slices[i])
		}
	}
}
