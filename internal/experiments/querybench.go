package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/obs"
)

// QueryBenchReport is the payload of BENCH_query.json: the serving-layer
// benchmark that tracks the concurrent query path (cache, singleflight)
// across PRs. Latencies are milliseconds.
type QueryBenchReport struct {
	Dataset string `json:"dataset"`
	Papers  int    `json:"papers"`
	Queries int    `json:"queries"` // distinct query texts
	Rounds  int    `json:"rounds"`  // warm repetitions per query

	ColdP50Ms float64 `json:"cold_p50_ms"` // first touch: full encode+search+rank
	ColdP99Ms float64 `json:"cold_p99_ms"`
	WarmP50Ms float64 `json:"warm_p50_ms"` // repeat touch: cache hit
	WarmP99Ms float64 `json:"warm_p99_ms"`

	ColdQPS       float64 `json:"cold_qps"`
	WarmQPS       float64 `json:"warm_qps"`
	ConcurrentQPS float64 `json:"concurrent_qps"` // 8 workers over the warm set

	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	WarmSpeedup float64 `json:"warm_speedup_p50"` // cold_p50 / warm_p50
}

// RunQueryBench builds one engine with the query cache enabled and
// measures the online path three ways: cold (every query a miss), warm
// (every query a hit) and concurrent (8 workers hammering the warm set).
func RunQueryBench(sc Scale) QueryBenchReport {
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	reg := obs.NewRegistry()
	e, err := core.Build(ds.Graph, core.Options{Dim: sc.Dim, Seed: sc.Seed, Metrics: reg})
	if err != nil {
		panic(err)
	}
	e.EnableQueryCache(core.CacheConfig{MaxEntries: 4096})

	rng := rand.New(rand.NewSource(sc.Seed))
	queries := ds.Queries(sc.Queries, rng)
	rep := QueryBenchReport{
		Dataset: "aminer-sim", Papers: sc.Papers, Queries: len(queries), Rounds: 5,
	}

	topExperts := func(text string) time.Duration {
		t0 := time.Now()
		if _, _, err := e.TopExperts(text, sc.M, sc.N); err != nil {
			panic(err)
		}
		return time.Since(t0)
	}

	// Cold: first touch of every query.
	cold := make([]time.Duration, 0, len(queries))
	t0 := time.Now()
	for _, q := range queries {
		cold = append(cold, topExperts(q.Text))
	}
	coldWall := time.Since(t0)

	// Warm: every query again, Rounds times.
	warm := make([]time.Duration, 0, len(queries)*rep.Rounds)
	t0 = time.Now()
	for r := 0; r < rep.Rounds; r++ {
		for _, q := range queries {
			warm = append(warm, topExperts(q.Text))
		}
	}
	warmWall := time.Since(t0)

	// Concurrent: 8 workers over the warm set.
	const workers = 8
	t0 = time.Now()
	var wg sync.WaitGroup
	var concurrentOps int64 = int64(workers * len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < len(queries); i++ {
				topExperts(queries[(i+off)%len(queries)].Text)
			}
		}(w)
	}
	wg.Wait()
	concWall := time.Since(t0)

	rep.ColdP50Ms = durPercentile(cold, 0.50)
	rep.ColdP99Ms = durPercentile(cold, 0.99)
	rep.WarmP50Ms = durPercentile(warm, 0.50)
	rep.WarmP99Ms = durPercentile(warm, 0.99)
	rep.ColdQPS = float64(len(cold)) / coldWall.Seconds()
	rep.WarmQPS = float64(len(warm)) / warmWall.Seconds()
	rep.ConcurrentQPS = float64(concurrentOps) / concWall.Seconds()
	rep.CacheHits = int(reg.Counter("expertfind_qcache_hits_total", "").Value())
	rep.CacheMisses = int(reg.Counter("expertfind_qcache_misses_total", "").Value())
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(total)
	}
	if rep.WarmP50Ms > 0 {
		rep.WarmSpeedup = rep.ColdP50Ms / rep.WarmP50Ms
	}
	return rep
}

// durPercentile returns the q-quantile of samples in milliseconds.
func durPercentile(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return float64(s[i].Nanoseconds()) / 1e6
}

// FormatQueryBench renders the report as a human-readable table.
func FormatQueryBench(r QueryBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query-serving benchmark — %s, %d papers, %d queries × %d rounds\n",
		r.Dataset, r.Papers, r.Queries, r.Rounds)
	fmt.Fprintf(&b, "%-12s %10s %10s %12s\n", "pass", "p50 ms", "p99 ms", "QPS")
	fmt.Fprintf(&b, "%-12s %10.3f %10.3f %12.0f\n", "cold", r.ColdP50Ms, r.ColdP99Ms, r.ColdQPS)
	fmt.Fprintf(&b, "%-12s %10.3f %10.3f %12.0f\n", "warm", r.WarmP50Ms, r.WarmP99Ms, r.WarmQPS)
	fmt.Fprintf(&b, "%-12s %10s %10s %12.0f\n", "concurrent×8", "-", "-", r.ConcurrentQPS)
	fmt.Fprintf(&b, "cache: %d hits / %d misses (hit rate %.3f), warm speedup %.0f×\n",
		r.CacheHits, r.CacheMisses, r.HitRate, r.WarmSpeedup)
	return b.String()
}

// WriteJSON writes the report as indented JSON (the BENCH_query.json format).
func (r QueryBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
