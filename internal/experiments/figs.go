package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"expertfind/internal/baselines"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/kpcore"
	"expertfind/internal/metrics"
	"expertfind/internal/sampling"
)

// Thin wrappers keep the algorithm table in RunCoreSearchComparison
// uniform.
func kpcoreSearch(g *hetgraph.Graph, s hetgraph.NodeID, k int, mp hetgraph.MetaPath) []hetgraph.NodeID {
	return kpcore.Search(g, s, k, mp).Core
}

func kpcoreFastB(g *hetgraph.Graph, s hetgraph.NodeID, k int, mp hetgraph.MetaPath) []hetgraph.NodeID {
	return kpcore.FastBCore(g, s, k, mp)
}

func kpcoreNaive(g *hetgraph.Graph, s hetgraph.NodeID, k int, mp hetgraph.MetaPath) []hetgraph.NodeID {
	return kpcore.NaiveSearch(g, s, k, mp)
}

// Fig7Row is one bar of Figure 7: the mean query response time of a method
// on one dataset.
type Fig7Row struct {
	Dataset string
	Method  string
	AvgMs   float64
}

// oursVariants returns the four efficiency variants of Figure 7.
func oursVariants() []struct {
	Name              string
	UsePGIndex, UseTA bool
} {
	return []struct {
		Name              string
		UsePGIndex, UseTA bool
	}{
		{"Ours-1 (PG+TA)", true, true},
		{"Ours-2 (PG only)", true, false},
		{"Ours-3 (TA only)", false, true},
		{"Ours-4 (neither)", false, false},
	}
}

// RunFig7 reproduces Figure 7: mean response time of the seven baselines
// and the four Ours variants (with/without PG-Index and TA) per dataset.
// The fine-tuned embeddings are built once per dataset and shared by the
// four variants, since Figure 7 varies only the online path.
func RunFig7(sc Scale) []Fig7Row {
	var out []Fig7Row
	for _, spec := range Datasets() {
		ds, queries, _ := buildDataset(spec, sc)
		g := ds.Graph
		for _, m := range baselines.All(sc.Dim, sc.Seed) {
			if err := m.Build(g); err != nil {
				panic(err)
			}
			eff := Evaluate(baselineSystem{m, g}, g, queries, sc.M, sc.N, nil)
			out = append(out, Fig7Row{Dataset: spec.Name, Method: m.Name(), AvgMs: eff.AvgMs})
		}
		for _, v := range oursVariants() {
			v := v
			e := buildOurs(g, sc, func(o *core.Options) {
				o.UsePGIndex = core.Bool(v.UsePGIndex)
				o.UseTA = core.Bool(v.UseTA)
			})
			eff := Evaluate(WrapEngine(v.Name, e), g, queries, sc.M, sc.N, nil)
			out = append(out, Fig7Row{Dataset: spec.Name, Method: v.Name, AvgMs: eff.AvgMs})
		}
	}
	return out
}

// FormatFig7 renders RunFig7 output.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("FIGURE 7 — mean query response time\n")
	fmt.Fprintf(&b, "%-8s %-20s %10s\n", "Dataset", "Method", "ms/query")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-20s %10.3f\n", r.Dataset, r.Method, r.AvgMs)
	}
	return b.String()
}

// SensitivityRow is one x-axis point of a Figure 8 sweep.
type SensitivityRow struct {
	Param string
	Value float64
	MAP   float64
	PAtN  float64 // P@5 for (a)(b)(c); P@n for (d)
	Cost  time.Duration
}

// FormatSensitivity renders a Figure 8 sweep.
func FormatSensitivity(title, costLabel string, rows []SensitivityRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-8s %8s %7s %7s %12s\n", "param", "value", "MAP", "P@", costLabel)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8.3g %7.3f %7.3f %12s\n", r.Param, r.Value, r.MAP, r.PAtN,
			r.Cost.Round(time.Microsecond))
	}
	return b.String()
}

// RunFig8a reproduces Figure 8(a): the effect of the sample ratio f on
// effectiveness and training time (Aminer-sim).
func RunFig8a(sc Scale) []SensitivityRow {
	ds, queries, ref := buildDataset(Datasets()[0], sc)
	g := ds.Graph
	var out []SensitivityRow
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		f := f
		e := buildOurs(g, sc, func(o *core.Options) { o.SampleFraction = f })
		eff := Evaluate(WrapEngine("Ours", e), g, queries, sc.M, sc.N, ref)
		st := e.Stats()
		out = append(out, SensitivityRow{
			Param: "f", Value: f, MAP: eff.MAP, PAtN: eff.P5,
			Cost: st.CommunityTime + st.TrainTime,
		})
	}
	return out
}

// RunFig8b reproduces Figure 8(b): the effect of the core size k on
// effectiveness and training time (Aminer-sim).
func RunFig8b(sc Scale) []SensitivityRow {
	ds, queries, ref := buildDataset(Datasets()[0], sc)
	g := ds.Graph
	var out []SensitivityRow
	for k := 2; k <= 9; k++ {
		k := k
		e := buildOurs(g, sc, func(o *core.Options) { o.K = k })
		eff := Evaluate(WrapEngine("Ours", e), g, queries, sc.M, sc.N, ref)
		st := e.Stats()
		out = append(out, SensitivityRow{
			Param: "k", Value: float64(k), MAP: eff.MAP, PAtN: eff.P5,
			Cost: st.CommunityTime + st.TrainTime,
		})
	}
	return out
}

// RunFig8c reproduces Figure 8(c): the effect of the retrieval size m on
// effectiveness and query time, over one built engine (Aminer-sim).
func RunFig8c(sc Scale) []SensitivityRow {
	ds, queries, ref := buildDataset(Datasets()[0], sc)
	g := ds.Graph
	e := buildOurs(g, sc, nil)
	var out []SensitivityRow
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		m := int(frac * float64(sc.M))
		if m < 5 {
			m = 5
		}
		eff := Evaluate(WrapEngine("Ours", e), g, queries, m, sc.N, ref)
		out = append(out, SensitivityRow{
			Param: "m", Value: float64(m), MAP: eff.MAP, PAtN: eff.P5,
			Cost: time.Duration(eff.AvgMs * float64(time.Millisecond)),
		})
	}
	return out
}

// RunFig8d reproduces Figure 8(d): the effect of the result size n on P@n
// and query time, over one built engine (Aminer-sim).
func RunFig8d(sc Scale) []SensitivityRow {
	ds, queries, _ := buildDataset(Datasets()[0], sc)
	g := ds.Graph
	e := buildOurs(g, sc, nil)
	var out []SensitivityRow
	for _, n := range []int{5, 10, 20, 50, 100} {
		var pAtN float64
		var aps []float64
		var total time.Duration
		for _, q := range queries {
			t0 := time.Now()
			ranked, _, _ := e.TopExperts(q.Text, sc.M, n)
			total += time.Since(t0)
			ids := make([]hetgraph.NodeID, len(ranked))
			for i, r := range ranked {
				ids[i] = r.Expert
			}
			pAtN += metrics.PrecisionAtN(ids, q.Truth, n)
			aps = append(aps, metrics.AveragePrecision(ids, q.Truth))
		}
		if len(queries) > 0 {
			pAtN /= float64(len(queries))
			total /= time.Duration(len(queries))
		}
		out = append(out, SensitivityRow{Param: "n", Value: float64(n),
			MAP: metrics.MAP(aps), PAtN: pAtN, Cost: total})
	}
	return out
}

// CoreSearchComparison benchmarks the three community-search algorithms of
// §III-A on one dataset: the ablation DESIGN.md calls out for Algorithm
// 1's early pruning.
type CoreSearchComparison struct {
	Algorithm string
	AvgTime   time.Duration
	AvgCore   float64
}

// RunCoreSearchComparison times Algorithm 1, FastBCore and the naive
// projection-based search over random seeds.
func RunCoreSearchComparison(sc Scale, k int, seeds int) []CoreSearchComparison {
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	g := ds.Graph
	rng := rand.New(rand.NewSource(sc.Seed))
	papers := g.NodesOfType(hetgraph.Paper)
	var seedPapers []hetgraph.NodeID
	for _, i := range rng.Perm(len(papers))[:min(seeds, len(papers))] {
		seedPapers = append(seedPapers, papers[i])
	}
	mp := hetgraph.PAP

	algos := []struct {
		name string
		run  func(s hetgraph.NodeID) int
	}{
		{"Algorithm 1 (ours)", func(s hetgraph.NodeID) int {
			return len(kpcoreSearch(g, s, k, mp))
		}},
		{"FastBCore", func(s hetgraph.NodeID) int {
			return len(kpcoreFastB(g, s, k, mp))
		}},
		{"Naive (project+decompose)", func(s hetgraph.NodeID) int {
			return len(kpcoreNaive(g, s, k, mp))
		}},
	}
	var out []CoreSearchComparison
	for _, a := range algos {
		t0 := time.Now()
		var total int
		for _, s := range seedPapers {
			total += a.run(s)
		}
		el := time.Since(t0)
		out = append(out, CoreSearchComparison{
			Algorithm: a.name,
			AvgTime:   el / time.Duration(len(seedPapers)),
			AvgCore:   float64(total) / float64(len(seedPapers)),
		})
	}
	return out
}

// SamplingStrategyStats exposes the near-vs-random pool statistics for
// ablation reporting.
func SamplingStrategyStats(sc Scale, strategy sampling.Strategy) *sampling.Report {
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	rng := rand.New(rand.NewSource(sc.Seed))
	_, rep := sampling.Generate(ds.Graph, sampling.Config{Strategy: strategy}, rng)
	return rep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
