package experiments

import (
	"strings"
	"testing"
	"time"

	"expertfind/internal/ta"
)

// micro is small enough that every experiment finishes in seconds.
var micro = Scale{Papers: 150, Queries: 5, M: 30, N: 10, Dim: 16, Seed: 7}

func TestRunTable2ShapesAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	res := RunTable2(micro)
	if len(res) != 3 {
		t.Fatalf("datasets = %d, want 3", len(res))
	}
	for _, r := range res {
		if len(r.Rows) != 8 { // 7 baselines + ours
			t.Fatalf("%s: %d rows, want 8", r.Dataset, len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.MAP < 0 || row.MAP > 1 || row.P5 < 0 || row.P5 > 1 {
				t.Errorf("%s/%s: metrics out of range: %+v", r.Dataset, row.Method, row)
			}
		}
	}
	out := FormatTable2(res)
	for _, want := range []string{"TABLE II", "Aminer", "DBLP", "ACM", "Ours", "TFIDF"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestRunTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	cases := RunTable3(micro)
	if len(cases) != 4 { // 2 queries x 2 methods
		t.Fatalf("cases = %d, want 4", len(cases))
	}
	for _, c := range cases {
		if len(c.Experts) == 0 || len(c.Experts) > 5 {
			t.Errorf("%s: %d experts", c.Method, len(c.Experts))
		}
	}
	if out := FormatTable3(cases); !strings.Contains(out, "TABLE III") {
		t.Error("format missing header")
	}
}

func TestRunTable5StrategiesOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	rows := RunTable5(micro)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 strategies", len(rows))
	}
	for _, r := range rows {
		if r.Triples == 0 {
			t.Errorf("%s: no triples", r.Strategy)
		}
		if r.TrainTime <= 0 {
			t.Errorf("%s: no training time", r.Strategy)
		}
	}
	// Near(1:4) must use more triples than Near(1:1).
	if rows[1].Triples >= rows[4].Triples {
		t.Errorf("triples not increasing with s: 1:1=%d, 1:4=%d", rows[1].Triples, rows[4].Triples)
	}
	if out := FormatTable5(rows); !strings.Contains(out, "Near (1:3)") {
		t.Error("format missing strategy row")
	}
}

func TestRunTable6Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	rows := RunTable6(Scale{Papers: 300, Dim: 16, Seed: 7})
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 corpora", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Papers > rows[i-1].Papers {
			t.Error("corpora not shrinking")
		}
	}
	// Memory should shrink with corpus size (G vs G4 at least 2x).
	if rows[0].MemoryBytes <= rows[4].MemoryBytes {
		t.Errorf("memory not monotone: G=%d, G4=%d", rows[0].MemoryBytes, rows[4].MemoryBytes)
	}
	if out := FormatTable6(rows); !strings.Contains(out, "TABLE VI") {
		t.Error("format missing header")
	}
}

func TestRunFig8dPrecisionDecreasesWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	rows := RunFig8d(micro)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// P@n at n=5 must exceed P@n at n=100 (the paper's Figure 8(d) shape).
	if rows[0].PAtN <= rows[len(rows)-1].PAtN {
		t.Errorf("P@5=%.3f not greater than P@100=%.3f", rows[0].PAtN, rows[len(rows)-1].PAtN)
	}
}

func TestRunCoreSearchComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	rows := RunCoreSearchComparison(Scale{Papers: 300, Seed: 7}, 4, 8)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All three algorithms must agree on average core size.
	if rows[0].AvgCore != rows[1].AvgCore || rows[1].AvgCore != rows[2].AvgCore {
		t.Errorf("algorithms disagree: %+v", rows)
	}
	// The naive projection must be slower than Algorithm 1.
	if rows[0].AvgTime >= rows[2].AvgTime {
		t.Errorf("Algorithm 1 (%v) not faster than naive (%v)", rows[0].AvgTime, rows[2].AvgTime)
	}
}

func TestEvaluateEmptyQuerySet(t *testing.T) {
	eff := Evaluate(fakeSystem{}, nil, nil, 10, 5, nil)
	if eff.Method != "fake" {
		t.Error("method name lost")
	}
	if eff.MAP != 0 || eff.AvgMs != 0 {
		t.Errorf("empty evaluation non-zero: %+v", eff)
	}
	_ = time.Now()
}

type fakeSystem struct{}

func (fakeSystem) Name() string { return "fake" }
func (fakeSystem) TopExperts(string, int, int) []ta.Ranking {
	return nil
}

func TestRunTable1(t *testing.T) {
	rows := RunTable1(micro)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Papers != micro.Papers || r.Experts == 0 || r.Relations == 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if !strings.Contains(FormatTable1(rows), "TABLE I") {
		t.Error("format missing header")
	}
}

func TestRunFig5RefinementReducesWork(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	rows := RunFig5(Scale{Papers: 300, Queries: 10, Dim: 16, Seed: 7})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	raw, refined := rows[0], rows[1]
	if refined.Recall < 0.8 {
		t.Errorf("refined recall %.3f too low", refined.Recall)
	}
	// The refinement exists to cut search work (Figure 5's claim); allow
	// slack for the stratified entry points shared by both variants.
	if refined.AvgDistComps > raw.AvgDistComps*1.25 {
		t.Errorf("refined index does more work: %.1f vs %.1f dist comps",
			refined.AvgDistComps, raw.AvgDistComps)
	}
	if !strings.Contains(FormatFig5(rows), "FIGURE 5") {
		t.Error("format missing header")
	}
}

func TestRunSignificanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in -short mode")
	}
	rows := RunSignificance(Scale{Papers: 250, Queries: 12, M: 40, N: 10, Dim: 16, Seed: 7})
	if len(rows) != 6 { // 2 baselines x 3 datasets
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		res := r.Result
		if res.Iterations != 10000 {
			t.Errorf("%s/%s: iterations = %d", r.Dataset, r.Baseline, res.Iterations)
		}
		if !(res.CILow <= res.MeanDiff && res.MeanDiff <= res.CIHigh) {
			t.Errorf("%s/%s: CI [%v,%v] excludes mean %v",
				r.Dataset, r.Baseline, res.CILow, res.CIHigh, res.MeanDiff)
		}
		if res.PValue < 0 || res.PValue > 1 {
			t.Errorf("%s/%s: p = %v", r.Dataset, r.Baseline, res.PValue)
		}
	}
	if !strings.Contains(FormatSignificance(rows), "SIGNIFICANCE") {
		t.Error("format missing header")
	}
}
