package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/obs"
	"expertfind/internal/serve"
)

// ReplBenchReport is the payload of BENCH_replication.json: how fast a
// WAL-shipping follower bootstraps from its leader's snapshot, chews
// through a write backlog, and tracks new writes — plus whether the read
// path pays anything for being served from a replica. Times are
// milliseconds, measured on loopback HTTP.
type ReplBenchReport struct {
	Dataset string `json:"dataset"`
	Papers  int    `json:"papers"`
	Dim     int    `json:"dim"`

	// Bootstrap: snapshot download + load + local WAL replay, ending with
	// a serving engine (before any tailing).
	BootstrapMs float64 `json:"bootstrap_ms"`

	// Catch-up: the follower starts BacklogRecords behind and tails until
	// it has applied all of them.
	BacklogRecords   int     `json:"backlog_records"`
	CatchUpMs        float64 `json:"catch_up_ms"`
	CatchUpRecPerSec float64 `json:"catch_up_records_per_sec"`

	// Steady state: one write at a time on the leader, each timed from
	// the acknowledged append to the follower having applied it.
	SteadyRecords    int     `json:"steady_records"`
	PropagationP50Ms float64 `json:"propagation_p50_ms"`
	PropagationP99Ms float64 `json:"propagation_p99_ms"`

	// The same query set replayed against the leader and the caught-up
	// follower — the replica read path should be indistinguishable.
	QueriesReplayed  int     `json:"queries_replayed"`
	LeaderQueryP50Ms float64 `json:"leader_query_p50_ms"`
	FollowerQueryP50 float64 `json:"follower_query_p50_ms"`
}

// RunReplBench stands up a durable leader on loopback HTTP, writes a
// backlog, then opens a follower against it and measures bootstrap,
// catch-up throughput, steady-state propagation latency, and the
// follower-vs-leader read path.
func RunReplBench(sc Scale) ReplBenchReport {
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	reg := obs.NewRegistry()
	leaderDir, err := os.MkdirTemp("", "replbench-leader-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(leaderDir)
	store, err := core.OpenStore(leaderDir, ds.Graph,
		func() (*core.Engine, error) {
			return core.Build(ds.Graph, core.Options{
				Dim: sc.Dim, Seed: sc.Seed, UsePGIndex: core.Bool(false), Metrics: reg,
			})
		}, core.StoreOptions{Metrics: reg})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	leaderSrv := serve.New(store.Engine())
	leaderSrv.SetReady(true)
	serve.MountReplication(leaderSrv, store, nil)
	leaderAddr, stopLeader := serveOnLoopback(leaderSrv)
	defer stopLeader()

	rep := ReplBenchReport{Dataset: "aminer-sim", Papers: sc.Papers, Dim: sc.Dim}

	// The backlog the follower must chew through after bootstrapping.
	authors := ds.Graph.NodesOfType(hetgraph.Author)
	addOne := func(i int) uint64 {
		_, err := store.Engine().AddPaper(core.NewPaper{
			Text: fmt.Sprintf("replication bench paper %d on embedding cores", i),
			Authors: []hetgraph.NodeID{
				authors[i%len(authors)], authors[(i*7+3)%len(authors)],
			},
		})
		if err != nil {
			panic(err)
		}
		return store.Engine().LastUpdateSeq()
	}
	rep.BacklogRecords = 50
	for i := 0; i < rep.BacklogRecords; i++ {
		addOne(i)
	}

	followerDir, err := os.MkdirTemp("", "replbench-follower-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(followerDir)
	fg := dataset.Generate(dataset.AminerSim(sc.Papers)).Graph
	t0 := time.Now()
	fo, err := core.OpenFollower(followerDir, fg, "http://"+leaderAddr, core.FollowerOptions{
		ID: "bench-follower", PollInterval: 2 * time.Millisecond, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		panic(err)
	}
	defer fo.Close()
	rep.BootstrapMs = float64(time.Since(t0)) / float64(time.Millisecond)

	waitApplied := func(seq uint64) {
		deadline := time.Now().Add(2 * time.Minute)
		for fo.Store().LastSeq() < seq {
			if time.Now().After(deadline) {
				panic(fmt.Sprintf("replbench: follower stuck below seq %d: %+v", seq, fo.Status()))
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	t1 := time.Now()
	fo.Start()
	waitApplied(uint64(rep.BacklogRecords))
	catchUp := time.Since(t1)
	rep.CatchUpMs = float64(catchUp) / float64(time.Millisecond)
	if catchUp > 0 {
		rep.CatchUpRecPerSec = float64(rep.BacklogRecords) / catchUp.Seconds()
	}

	// Steady state: acknowledged append -> applied on the follower.
	rep.SteadyRecords = 30
	prop := make([]time.Duration, 0, rep.SteadyRecords)
	for i := 0; i < rep.SteadyRecords; i++ {
		t2 := time.Now()
		seq := addOne(rep.BacklogRecords + i)
		waitApplied(seq)
		prop = append(prop, time.Since(t2))
	}
	rep.PropagationP50Ms = durPercentile(prop, 0.50)
	rep.PropagationP99Ms = durPercentile(prop, 0.99)

	// Read path: the same queries against both nodes, interleaved so
	// machine noise hits both sides equally.
	foSrv := serve.New(fo.Engine())
	foSrv.SetReady(true)
	foAddr, stopFollower := serveOnLoopback(foSrv)
	defer stopFollower()
	queries := ds.Queries(sc.Queries, rand.New(rand.NewSource(sc.Seed)))
	rep.QueriesReplayed = len(queries)
	var onLeader, onFollower []time.Duration
	for _, q := range queries { // warm both
		timeExpertsQuery(leaderAddr, q.Text, sc.M, sc.N)
		timeExpertsQuery(foAddr, q.Text, sc.M, sc.N)
	}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			onLeader = append(onLeader, timeExpertsQuery(leaderAddr, q.Text, sc.M, sc.N))
			onFollower = append(onFollower, timeExpertsQuery(foAddr, q.Text, sc.M, sc.N))
		}
	}
	rep.LeaderQueryP50Ms = durPercentile(onLeader, 0.50)
	rep.FollowerQueryP50 = durPercentile(onFollower, 0.50)
	return rep
}

// FormatReplBench renders the report as a human-readable table.
func FormatReplBench(r ReplBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replication benchmark — %s, %d papers, dim %d (loopback HTTP)\n",
		r.Dataset, r.Papers, r.Dim)
	fmt.Fprintf(&b, "%-34s %12.1f ms\n", "snapshot bootstrap", r.BootstrapMs)
	fmt.Fprintf(&b, "%-34s %12.1f ms  (%d records, %.0f rec/s)\n",
		"backlog catch-up", r.CatchUpMs, r.BacklogRecords, r.CatchUpRecPerSec)
	fmt.Fprintf(&b, "%-34s %12.2f ms p50, %.2f ms p99  (%d records)\n",
		"write propagation", r.PropagationP50Ms, r.PropagationP99Ms, r.SteadyRecords)
	fmt.Fprintf(&b, "%-34s %12.3f ms p50 leader, %.3f ms p50 follower  (%d queries x3)\n",
		"read path", r.LeaderQueryP50Ms, r.FollowerQueryP50, r.QueriesReplayed)
	return b.String()
}

// WriteJSON writes the report as indented JSON (the
// BENCH_replication.json format).
func (r ReplBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
