// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the synthetic datasets: Table II (effectiveness vs
// seven baselines), Table III (case study), Table IV (meta-path ablation),
// Table V (negative-sampling strategies), Table VI (PG-Index overhead),
// Figure 7 (efficiency of Ours-1..4 vs baselines) and Figure 8 (parameter
// sensitivity). Each Run* function returns structured rows and can render
// them in the paper's layout; cmd/benchtab and bench_test.go both drive
// these entry points.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"expertfind/internal/baselines"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/metrics"
	"expertfind/internal/ta"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// Scale sizes an experiment run. The paper's corpora have 1-2M papers;
// these are laptop-scale reductions documented in EXPERIMENTS.md.
type Scale struct {
	Papers  int // papers per dataset
	Queries int // evaluation queries per dataset
	M       int // top-m papers retrieved
	N       int // top-n experts returned
	Dim     int // embedding dimension
	Seed    int64
}

// Quick is the scale used by unit tests and -short benchmarks.
var Quick = Scale{Papers: 400, Queries: 15, M: 60, N: 20, Dim: 32, Seed: 7}

// Default is the scale used by cmd/benchtab and the full benchmarks.
var Default = Scale{Papers: 1500, Queries: 50, M: 150, N: 20, Dim: 64, Seed: 7}

// System is anything that can answer a top-n expert query; the harness
// treats the paper's engine and every baseline uniformly.
type System interface {
	Name() string
	TopExperts(query string, m, n int) []ta.Ranking
}

// baselineSystem adapts a baselines.Method: exhaustive retrieval followed
// by full-scan candidate ranking, as the paper describes for all
// competitors.
type baselineSystem struct {
	m baselines.Method
	g *hetgraph.Graph
}

func (b baselineSystem) Name() string { return b.m.Name() }

func (b baselineSystem) TopExperts(query string, m, n int) []ta.Ranking {
	papers := b.m.QueryPapers(query, m)
	return ta.TopExpertsFullScan(b.g, papers, n)
}

// engineSystem adapts core.Engine.
type engineSystem struct {
	name string
	e    *core.Engine
}

func (s engineSystem) Name() string { return s.name }

func (s engineSystem) TopExperts(query string, m, n int) []ta.Ranking {
	r, _, _ := s.e.TopExperts(query, m, n)
	return r
}

// WrapEngine exposes a built engine as a System named name.
func WrapEngine(name string, e *core.Engine) System { return engineSystem{name, e} }

// Effectiveness is one row of Table II / IV / V.
type Effectiveness struct {
	Method string
	MAP    float64
	P5     float64
	P10    float64
	P20    float64
	ADS    float64
	AvgMs  float64 // mean response time per query, for Figure 7
}

// RefSpace is the fixed similarity space used by the ADS metric: the
// frozen pre-trained encoder's embeddings, identical for every method so
// ADS is comparable across rows (see EXPERIMENTS.md).
type RefSpace struct {
	Enc  *textenc.Encoder
	Embs map[hetgraph.NodeID]vec.Vector
}

// NewRefSpace builds the reference space for a dataset by constructing the
// frozen SBERT baseline.
func NewRefSpace(g *hetgraph.Graph, dim int, seed int64) *RefSpace {
	sb := baselines.NewSBERT(dim, seed)
	if err := sb.Build(g); err != nil {
		panic(err)
	}
	return &RefSpace{Enc: sb.Encoder(), Embs: sb.Embeddings()}
}

// Evaluate runs the queries against sys and aggregates the paper's
// effectiveness metrics, averaging over queries.
func Evaluate(sys System, g *hetgraph.Graph, queries []dataset.Query, m, n int,
	ref *RefSpace) Effectiveness {
	eff := Effectiveness{Method: sys.Name()}
	var aps []float64
	var totalDur time.Duration
	for _, q := range queries {
		t0 := time.Now()
		ranked := sys.TopExperts(q.Text, m, n)
		totalDur += time.Since(t0)
		ids := make([]hetgraph.NodeID, len(ranked))
		for i, r := range ranked {
			ids[i] = r.Expert
		}
		eff.P5 += metrics.PrecisionAtN(ids, q.Truth, 5)
		eff.P10 += metrics.PrecisionAtN(ids, q.Truth, 10)
		eff.P20 += metrics.PrecisionAtN(ids, q.Truth, 20)
		aps = append(aps, metrics.AveragePrecision(ids, q.Truth))
		if ref != nil {
			eff.ADS += metrics.ADS(g, ids, ref.Embs, ref.Enc.Encode(q.Text).Float64())
		}
	}
	nq := float64(len(queries))
	if nq > 0 {
		eff.P5 /= nq
		eff.P10 /= nq
		eff.P20 /= nq
		eff.ADS /= nq
		eff.AvgMs = float64(totalDur.Milliseconds()) / nq
	}
	eff.MAP = metrics.MAP(aps)
	return eff
}

// DatasetSpec names a dataset preset and its generator.
type DatasetSpec struct {
	Name string
	Gen  func(papers int) dataset.Config
}

// Datasets lists the three presets in the paper's order.
func Datasets() []DatasetSpec {
	return []DatasetSpec{
		{"Aminer", dataset.AminerSim},
		{"DBLP", dataset.DBLPSim},
		{"ACM", dataset.ACMSim},
	}
}

// buildDataset generates a dataset at the given scale plus its query set
// and reference space.
func buildDataset(spec DatasetSpec, sc Scale) (*dataset.Dataset, []dataset.Query, *RefSpace) {
	ds := dataset.Generate(spec.Gen(sc.Papers))
	rng := rand.New(rand.NewSource(sc.Seed))
	queries := ds.Queries(sc.Queries, rng)
	ref := NewRefSpace(ds.Graph, sc.Dim, sc.Seed)
	return ds, queries, ref
}

// buildOurs builds the paper's engine with default options at scale sc,
// applying mutate (if non-nil) to the options first.
func buildOurs(g *hetgraph.Graph, sc Scale, mutate func(*core.Options)) *core.Engine {
	opts := core.Options{Dim: sc.Dim, Seed: sc.Seed}
	if mutate != nil {
		mutate(&opts)
	}
	e, err := core.Build(g, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// FormatEffectivenessTable renders rows in the layout of Table II.
func FormatEffectivenessTable(title string, rows []Effectiveness, withTime bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %7s %7s %7s %7s %7s", "Method", "MAP", "P@5", "P@10", "P@20", "ADS")
	if withTime {
		fmt.Fprintf(&b, " %9s", "ms/query")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %7.3f %7.3f %7.3f %7.3f %7.3f", r.Method, r.MAP, r.P5, r.P10, r.P20, r.ADS)
		if withTime {
			fmt.Fprintf(&b, " %9.2f", r.AvgMs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EvalOne runs the Table II comparison on a single dataset, for quick
// shape checks and the per-dataset benchmarks.
func EvalOne(spec DatasetSpec, sc Scale) []Effectiveness {
	ds, queries, ref := buildDataset(spec, sc)
	g := ds.Graph
	var rows []Effectiveness
	for _, m := range baselines.All(sc.Dim, sc.Seed) {
		if err := m.Build(g); err != nil {
			panic(err)
		}
		rows = append(rows, Evaluate(baselineSystem{m, g}, g, queries, sc.M, sc.N, ref))
	}
	ours := buildOurs(g, sc, nil)
	rows = append(rows, Evaluate(WrapEngine("Ours (PAP ∩ PTP)", ours), g, queries, sc.M, sc.N, ref))
	return rows
}
