package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"expertfind/internal/vec"
)

// KernelBenchRow is one measured kernel at one dimension.
type KernelBenchRow struct {
	Kernel  string  `json:"kernel"`
	Dim     int     `json:"dim"`
	NsPerOp float64 `json:"ns_per_op"`
	// GBPerS is effective memory bandwidth: bytes touched per call over
	// the measured time. It is the honest cross-precision comparison —
	// float64, float32, and int8 kernels move 8, 4, and 1 byte per lane.
	GBPerS float64 `json:"gb_per_s"`
	// SpeedupVsF64 compares against the float64 dot at the same dim, for
	// the kernels where that baseline is meaningful.
	SpeedupVsF64 float64 `json:"speedup_vs_float64,omitempty"`
}

// KernelBenchReport is the payload of BENCH_kernels.json: the kernel-layer
// microbenchmark that tracks the vectorized float32 and int8 paths across
// PRs, independent of the end-to-end serving numbers.
type KernelBenchReport struct {
	Dims []int            `json:"dims"`
	Rows []KernelBenchRow `json:"rows"`
}

// benchNs returns the best-of-3 mean ns per call of f, auto-calibrating
// the iteration count so each timed window is long enough to trust.
func benchNs(f func()) float64 {
	for i := 0; i < 64; i++ {
		f() // warm caches and branch predictors
	}
	iters := 64
	for {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if el := time.Since(t0); el >= 10*time.Millisecond {
			best := float64(el.Nanoseconds()) / float64(iters)
			for r := 0; r < 2; r++ {
				t0 = time.Now()
				for i := 0; i < iters; i++ {
					f()
				}
				if ns := float64(time.Since(t0).Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
			}
			return best
		}
		iters *= 4
	}
}

// Sinks defeat dead-code elimination of the benchmarked calls.
var (
	sinkF32 float32
	sinkF64 float64
	sinkI32 int32
)

// RunKernelBench measures the distance/update kernels the query path is
// built from, at the dimensions the experiments use. Inputs are
// deterministic, so two runs on one machine are comparable.
func RunKernelBench(sc Scale) KernelBenchReport {
	dims := []int{64, 128, 256}
	rep := KernelBenchReport{Dims: dims}
	rng := rand.New(rand.NewSource(sc.Seed))

	for _, d := range dims {
		a64, b64 := vec.New(d), vec.New(d)
		a32, b32 := vec.New32(d), vec.New32(d)
		dst32 := vec.New32(d)
		for i := 0; i < d; i++ {
			a64[i] = rng.NormFloat64()
			b64[i] = rng.NormFloat64()
			a32[i] = float32(a64[i])
			b32[i] = float32(b64[i])
		}
		ca, cb := make([]int8, d), make([]int8, d)
		vec.QuantizeRow(ca, a32)
		vec.QuantizeRow(cb, b32)

		f64Bytes := float64(2 * d * 8)
		f32Bytes := float64(2 * d * 4)
		i8Bytes := float64(2 * d * 1)

		add := func(name string, bytes float64, f func()) float64 {
			ns := benchNs(f)
			rep.Rows = append(rep.Rows, KernelBenchRow{
				Kernel: name, Dim: d, NsPerOp: ns, GBPerS: bytes / ns,
			})
			return ns
		}
		markSpeedup := func(base float64) {
			r := &rep.Rows[len(rep.Rows)-1]
			if r.NsPerOp > 0 {
				r.SpeedupVsF64 = base / r.NsPerOp
			}
		}

		base := add("dot_float64", f64Bytes, func() { sinkF64 = a64.Dot(b64) })
		add("dot_float32", f32Bytes, func() { sinkF32 = vec.Dot32(a32, b32) })
		markSpeedup(base)
		add("dot_int8", i8Bytes, func() { sinkI32 = vec.DotInt8(ca, cb) })
		markSpeedup(base)
		add("l2sq_float32", f32Bytes, func() { sinkF32 = vec.L2Sq32(a32, b32) })
		markSpeedup(base)
		add("cosine_float32", f32Bytes, func() { sinkF32 = vec.Cosine32(a32, b32) })
		// Axpy touches dst twice (read+write) plus x once.
		add("axpy_float32", float64(3*d*4), func() { vec.Axpy32(dst32, 0.5, a32) })
		add("quantize_row", float64(d*4+d), func() { vec.QuantizeRow(ca, a32) })
	}
	return rep
}

// FormatKernelBench renders the report as a human-readable table.
func FormatKernelBench(r KernelBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel microbenchmarks — dims %v\n", r.Dims)
	fmt.Fprintf(&b, "%-16s %6s %12s %10s %12s\n", "kernel", "dim", "ns/op", "GB/s", "vs float64")
	for _, row := range r.Rows {
		speed := "-"
		if row.SpeedupVsF64 > 0 {
			speed = fmt.Sprintf("%.2fx", row.SpeedupVsF64)
		}
		fmt.Fprintf(&b, "%-16s %6d %12.1f %10.1f %12s\n",
			row.Kernel, row.Dim, row.NsPerOp, row.GBPerS, speed)
	}
	return b.String()
}

// WriteJSON writes the report as indented JSON (the BENCH_kernels.json
// format).
func (r KernelBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
