package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"expertfind/internal/cluster"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/obs"
	"expertfind/internal/serve"
)

// ClusterBenchReport is the payload of BENCH_cluster.json: single-node
// query latency against a real router-over-HTTP-shards topology on the
// same corpus and query set. Latencies are milliseconds, measured at the
// client of each topology.
type ClusterBenchReport struct {
	Dataset string `json:"dataset"`
	Papers  int    `json:"papers"`
	Queries int    `json:"queries"`

	SingleP50Ms float64 `json:"single_p50_ms"`
	SingleP99Ms float64 `json:"single_p99_ms"`

	Topologies []ClusterTopologyReport `json:"topologies"`
}

// ClusterTopologyReport measures one router+S-shards deployment.
type ClusterTopologyReport struct {
	Shards int `json:"shards"`

	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`

	// WireBytesPerQuery is the mean shard-response volume the router read
	// per query (both scatter rounds included).
	WireBytesPerQuery float64 `json:"wire_bytes_per_query"`
	// DeepFetches counts queries that needed a second, deeper expert
	// round because the first bound did not certify.
	DeepFetches int `json:"deep_fetches"`

	// Warm p50 over a replay of the query set with trace retention off
	// versus on (span collection headers, shard tree export in the
	// envelope, router-side assembly and ring retention) — the tracing
	// overhead delta. Both replays run against pre-warmed routers.
	WarmP50NoTraceMs float64 `json:"warm_p50_no_trace_ms"`
	WarmP50TraceMs   float64 `json:"warm_p50_trace_ms"`
	// TraceOverheadPct is (traced - untraced) / untraced * 100.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
}

// RunClusterBench builds one engine, serves it single-node style, then
// re-serves the same corpus as router + {2, 4} shards over real loopback
// HTTP and replays the same query set against each topology. Retrieval is
// exact (brute force) in every topology so the rankings are identical and
// the comparison is pure serving overhead: fan-out, wire, merge.
func RunClusterBench(sc Scale) ClusterBenchReport {
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	eng, err := core.Build(ds.Graph, core.Options{
		Dim: sc.Dim, Seed: sc.Seed, UsePGIndex: core.Bool(false),
	})
	if err != nil {
		panic(err)
	}
	queries := ds.Queries(sc.Queries, rand.New(rand.NewSource(sc.Seed)))
	rep := ClusterBenchReport{Dataset: "aminer-sim", Papers: sc.Papers, Queries: len(queries)}

	// Single node over HTTP, so both topologies pay the same envelope.
	single := serve.New(eng)
	single.SetReady(true)
	singleAddr, stopSingle := serveOnLoopback(single)
	lat := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		lat = append(lat, timeExpertsQuery(singleAddr, q.Text, sc.M, sc.N))
	}
	stopSingle()
	rep.SingleP50Ms = durPercentile(lat, 0.50)
	rep.SingleP99Ms = durPercentile(lat, 0.99)

	for _, s := range []int{2, 4} {
		rep.Topologies = append(rep.Topologies, runClusterTopology(eng, queries, sc, s))
	}
	return rep
}

func runClusterTopology(eng *core.Engine, queries []dataset.Query, sc Scale, shards int) ClusterTopologyReport {
	reg := obs.NewRegistry()
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	addrs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		se, err := cluster.NewShardEngine(eng, cluster.ShardConfig{ID: i, Of: shards})
		if err != nil {
			panic(err)
		}
		srv := serve.New(eng)
		srv.SetReady(true)
		cluster.MountShard(srv, se)
		addr, stop := serveOnLoopback(srv)
		stops = append(stops, stop)
		addrs[i] = []string{addr}
	}
	client, err := cluster.NewShardClient(addrs, cluster.ClientConfig{}, reg, nil)
	if err != nil {
		panic(err)
	}
	router := cluster.NewRouter(client, cluster.RouterConfig{MaxM: maxInt(sc.M, 5000)}, reg, nil)
	raddr, stopRouter := serveOnLoopback(router)
	stops = append(stops, stopRouter)

	lat := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		lat = append(lat, timeExpertsQuery(raddr, q.Text, sc.M, sc.N))
	}

	var wire float64
	for i := 0; i < shards; i++ {
		wire += reg.Counter("expertfind_cluster_wire_bytes_total", "",
			obs.L("shard", strconv.Itoa(i))).Value()
	}
	rep := ClusterTopologyReport{
		Shards:            shards,
		P50Ms:             durPercentile(lat, 0.50),
		P99Ms:             durPercentile(lat, 0.99),
		WireBytesPerQuery: wire / float64(len(queries)),
		DeepFetches:       int(reg.Counter("expertfind_cluster_deep_fetches_total", "").Value()),
	}

	// Trace overhead: warm p50 of the same replay with tracing off vs on.
	// A second router over the SAME shards carries a trace store, and the
	// two are measured interleaved query-by-query over several rounds, so
	// machine noise drifts hit both sides equally. One untimed replay
	// warms the traced router's connections first.
	traced := cluster.NewRouter(client, cluster.RouterConfig{MaxM: maxInt(sc.M, 5000)}, reg, nil)
	traced.Traces = obs.NewTraceStore(obs.TracePolicy{SampleEvery: 1}, reg)
	taddr, stopTraced := serveOnLoopback(traced)
	stops = append(stops, stopTraced)
	for _, q := range queries {
		timeExpertsQuery(taddr, q.Text, sc.M, sc.N)
	}
	var warmOff, warmOn []time.Duration
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			warmOff = append(warmOff, timeExpertsQuery(raddr, q.Text, sc.M, sc.N))
			warmOn = append(warmOn, timeExpertsQuery(taddr, q.Text, sc.M, sc.N))
		}
	}
	rep.WarmP50NoTraceMs = durPercentile(warmOff, 0.50)
	rep.WarmP50TraceMs = durPercentile(warmOn, 0.50)
	if rep.WarmP50NoTraceMs > 0 {
		rep.TraceOverheadPct = (rep.WarmP50TraceMs - rep.WarmP50NoTraceMs) /
			rep.WarmP50NoTraceMs * 100
	}
	return rep
}

// serveOnLoopback serves h on an ephemeral loopback port and returns the
// address plus a shutdown func.
func serveOnLoopback(h http.Handler) (addr string, stop func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }
}

// timeExpertsQuery issues one /experts query over HTTP and returns its
// client-observed latency.
func timeExpertsQuery(addr, text string, m, n int) time.Duration {
	u := "http://" + addr + "/experts?q=" + url.QueryEscape(text) +
		"&m=" + strconv.Itoa(m) + "&n=" + strconv.Itoa(n)
	t0 := time.Now()
	resp, err := http.Get(u)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("query %q: status %d", text, resp.StatusCode))
	}
	return time.Since(t0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatClusterBench renders the report as a human-readable table.
func FormatClusterBench(r ClusterBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster benchmark — %s, %d papers, %d queries (exact retrieval everywhere)\n",
		r.Dataset, r.Papers, r.Queries)
	fmt.Fprintf(&b, "%-16s %10s %10s %16s %8s %14s %12s %9s\n",
		"topology", "p50 ms", "p99 ms", "wire B/query", "deepens",
		"warm p50 off", "warm p50 on", "trace Δ%")
	fmt.Fprintf(&b, "%-16s %10.3f %10.3f %16s %8s %14s %12s %9s\n",
		"single", r.SingleP50Ms, r.SingleP99Ms, "-", "-", "-", "-", "-")
	for _, t := range r.Topologies {
		fmt.Fprintf(&b, "%-16s %10.3f %10.3f %16.0f %8d %14.3f %12.3f %+9.1f\n",
			fmt.Sprintf("router+%d shards", t.Shards), t.P50Ms, t.P99Ms,
			t.WireBytesPerQuery, t.DeepFetches,
			t.WarmP50NoTraceMs, t.WarmP50TraceMs, t.TraceOverheadPct)
	}
	return b.String()
}

// WriteJSON writes the report as indented JSON (the BENCH_cluster.json
// format).
func (r ClusterBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
