package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"expertfind/internal/baselines"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/metrics"
	"expertfind/internal/pgindex"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// Table1Row mirrors the paper's Table I: per-dataset statistics.
type Table1Row struct {
	Dataset   string
	Papers    int
	Experts   int
	Venues    int
	Topics    int
	Relations int
}

// RunTable1 reproduces Table I over the synthetic stand-ins at the given
// scale: the corpus statistics every other experiment runs against.
func RunTable1(sc Scale) []Table1Row {
	var out []Table1Row
	for _, spec := range Datasets() {
		ds := dataset.Generate(spec.Gen(sc.Papers))
		st := ds.Graph.Stats()
		out = append(out, Table1Row{
			Dataset:   spec.Name,
			Papers:    st.Papers,
			Experts:   st.Experts,
			Venues:    st.Venues,
			Topics:    st.Topics,
			Relations: st.Relations,
		})
	}
	return out
}

// FormatTable1 renders RunTable1 output in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("TABLE I — statistics of datasets (synthetic stand-ins)\n")
	fmt.Fprintf(&b, "%-8s %9s %9s %8s %8s %11s\n",
		"Dataset", "#papers", "#experts", "#venues", "#topics", "#relations")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %9d %9d %8d %8d %11d\n",
			r.Dataset, r.Papers, r.Experts, r.Venues, r.Topics, r.Relations)
	}
	return b.String()
}

// Fig5Row is one index variant of the Figure 5 comparison: how much work
// greedy search does on the raw kNN graph versus the refined PG-Index.
type Fig5Row struct {
	Index         string
	AvgExpansions float64
	AvgVisited    float64
	AvgDistComps  float64
	Recall        float64 // vs brute force, top-10
}

// RunFig5 reproduces the point of Figure 5: the refined PG-Index reaches
// the query's neighbourhood with fewer expansions and visited papers than
// the raw kNN graph, at equal-or-better recall. It embeds one corpus with
// the frozen encoder and runs the same query set over both index builds.
func RunFig5(sc Scale) []Fig5Row {
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	g := ds.Graph
	vocab := textenc.BuildVocab(ds.Corpus(), textenc.VocabConfig{})
	enc := textenc.NewEncoder(vocab, sc.Dim, sc.Seed)
	textenc.PretrainDistributional(enc, ds.Corpus())
	embs := make(map[hetgraph.NodeID]vec.Vec32, g.NumNodesOfType(hetgraph.Paper))
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		embs[p] = enc.Encode(g.Label(p))
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	queries := ds.Queries(sc.Queries, rng)

	variants := []struct {
		name   string
		refine bool
	}{
		{"raw kNN graph", false},
		{"PG-Index (refined)", true},
	}
	// Single-entry greedy search, the paper's §IV-B procedure: Figure 5
	// isolates the refinement's effect, which the stratified multi-entry
	// rescue would mask.
	const topM = 10
	var out []Fig5Row
	for _, v := range variants {
		idx := pgindex.Build(embs, pgindex.Config{Refine: v.refine, Seed: sc.Seed})
		row := Fig5Row{Index: v.name}
		for _, q := range queries {
			qv := enc.Encode(q.Text)
			res, st := idx.SearchEx(qv, topM, 3*topM, false)
			row.AvgExpansions += float64(st.Expansions)
			row.AvgVisited += float64(st.NodesVisited)
			row.AvgDistComps += float64(st.DistanceComputations)
			exact := map[hetgraph.NodeID]bool{}
			for _, r := range pgindex.BruteForce(embs, qv, topM) {
				exact[r.ID] = true
			}
			hit := 0
			for _, r := range res {
				if exact[r.ID] {
					hit++
				}
			}
			row.Recall += float64(hit) / topM
		}
		nq := float64(len(queries))
		row.AvgExpansions /= nq
		row.AvgVisited /= nq
		row.AvgDistComps /= nq
		row.Recall /= nq
		out = append(out, row)
	}
	return out
}

// FormatFig5 renders RunFig5 output.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("FIGURE 5 — greedy search work: raw kNN graph vs refined PG-Index\n")
	fmt.Fprintf(&b, "%-20s %12s %10s %11s %8s\n", "Index", "expansions", "visited", "dist-comps", "recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12.1f %10.1f %11.1f %8.3f\n",
			r.Index, r.AvgExpansions, r.AvgVisited, r.AvgDistComps, r.Recall)
	}
	return b.String()
}

// Significance compares Ours against one named baseline with a paired
// bootstrap over per-query average precision — the statistical backing for
// the Table II "Ours wins" claim.
type Significance struct {
	Dataset  string
	Baseline string
	Result   metrics.BootstrapResult
}

// RunSignificance evaluates Ours against the strongest embedding baseline
// (TADW, the comparison the paper's claim targets) and against TFIDF (the
// strongest baseline on synthetic text; see EXPERIMENTS.md), and
// bootstrap-tests the per-query AP differences on each dataset.
func RunSignificance(sc Scale) []Significance {
	var out []Significance
	for _, spec := range Datasets() {
		ds, queries, _ := buildDataset(spec, sc)
		g := ds.Graph
		ours := buildOurs(g, sc, nil)

		apsOf := func(sys System) []float64 {
			var aps []float64
			for _, q := range queries {
				ranked := sys.TopExperts(q.Text, sc.M, sc.N)
				ids := make([]hetgraph.NodeID, len(ranked))
				for i, r := range ranked {
					ids[i] = r.Expert
				}
				aps = append(aps, metrics.AveragePrecision(ids, q.Truth))
			}
			return aps
		}
		a := apsOf(WrapEngine("Ours", ours))

		for _, base := range []baselines.Method{
			baselines.NewTADW(sc.Dim, sc.Seed),
			baselines.NewTFIDF(),
		} {
			if err := base.Build(g); err != nil {
				panic(err)
			}
			b := apsOf(baselineSystem{base, g})
			res, err := metrics.PairedBootstrap(a, b, 10000, rand.New(rand.NewSource(sc.Seed)))
			if err != nil {
				panic(err)
			}
			out = append(out, Significance{Dataset: spec.Name, Baseline: base.Name(), Result: res})
		}
	}
	return out
}

// FormatSignificance renders RunSignificance output.
func FormatSignificance(rows []Significance) string {
	var b strings.Builder
	b.WriteString("SIGNIFICANCE — paired bootstrap, per-query AP, Ours vs strongest baseline\n")
	fmt.Fprintf(&b, "%-8s %-10s %10s %22s %8s\n", "Dataset", "Baseline", "ΔMAP", "95% CI", "p(≤0)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-10s %+10.4f   [%+8.4f, %+8.4f] %8.4f\n",
			r.Dataset, r.Baseline, r.Result.MeanDiff, r.Result.CILow, r.Result.CIHigh, r.Result.PValue)
	}
	return b.String()
}
